//! guest-rt — the guest-side runtime libraries and program build support.
//!
//! The runtime (`libc.mc`, `libomp.mc`, `libcilk.mc`) is written in
//! minic and compiled *into the guest binary*, exactly as LLVM's libomp
//! is linked into the applications the paper instruments. Its symbols
//! are `__kmp_*`/`__libc*`-prefixed so Taskgrind's default ignore-list
//! can suppress the runtime's own nondeterministic accesses (§IV-A),
//! and its allocator recycles freed blocks so the §IV-B false positives
//! genuinely occur without Taskgrind's allocator replacement.
//!
//! Use [`build_program`] to compile user sources against the runtime,
//! or [`build_program_tsan`] for the compile-time-instrumented variant
//! the Archer/TaskSanitizer baselines analyze.

use minicc::{compile, CompileError, SourceFile};
use tga::module::Module;

/// Source text of the guest C library.
pub const LIBC_MC: &str = include_str!("../sources/libc.mc");
/// Source text of the guest OpenMP-like runtime.
pub const LIBOMP_MC: &str = include_str!("../sources/libomp.mc");
/// Source text of the guest Cilk shims.
pub const LIBCILK_MC: &str = include_str!("../sources/libcilk.mc");

/// The runtime translation units, never TSan-instrumented — runtime
/// code is "non-instrumented code ... which source may not be visible
/// at compile-time" from the baselines' point of view.
pub fn runtime_sources() -> Vec<SourceFile> {
    vec![
        SourceFile::new("libc.mc", LIBC_MC),
        SourceFile::new("libomp.mc", LIBOMP_MC),
        SourceFile::new("libcilk.mc", LIBCILK_MC),
    ]
}

/// Compile user sources + runtime into an executable module.
pub fn build_program(user: &[SourceFile]) -> Result<Module, CompileError> {
    let mut files = runtime_sources();
    files.extend(user.iter().cloned());
    compile(&files)
}

/// Like [`build_program`] but with TSan instrumentation on user code
/// (the compile-time-instrumentation model of Archer/TaskSanitizer).
pub fn build_program_tsan(user: &[SourceFile]) -> Result<Module, CompileError> {
    let mut files = runtime_sources();
    files.extend(user.iter().cloned().map(|mut f| {
        f.tsan = true;
        f
    }));
    compile(&files)
}

/// Convenience: compile a single-file program from source text.
pub fn build_single(name: &str, text: &str) -> Result<Module, CompileError> {
    build_program(&[SourceFile::new(name, text)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use grindcore::tool::NulTool;
    use grindcore::{ExecMode, RunResult, Vm, VmConfig};

    fn run(src: &str, nthreads: u64, args: &[&str]) -> RunResult {
        let m = build_single("test.c", src).expect("compiles");
        let cfg = VmConfig { nthreads, ..Default::default() };
        Vm::new(m, Box::new(NulTool), cfg).run(ExecMode::Fast, args)
    }

    fn run_dbi(src: &str, nthreads: u64) -> RunResult {
        let m = build_single("test.c", src).expect("compiles");
        let cfg = VmConfig { nthreads, ..Default::default() };
        Vm::new(m, Box::new(NulTool), cfg).run(ExecMode::Dbi, &[])
    }

    #[test]
    fn hello_printf() {
        let r = run(
            r#"int main(void) { printf("hello %d %s %x %f %c%%\n", 42, "world", 255, 1.5, 'z'); return 0; }"#,
            1,
            &[],
        );
        assert!(r.ok(), "{:?}", r.error);
        assert_eq!(r.stdout_str(), "hello 42 world ff 1.500000 z%\n");
        assert_eq!(r.exit_code, Some(0));
    }

    #[test]
    fn negative_and_zero_formatting() {
        let r = run(r#"int main(void) { printf("%d %d %f\n", -17, 0, -2.25); return 0; }"#, 1, &[]);
        assert_eq!(r.stdout_str(), "-17 0 -2.250000\n");
    }

    #[test]
    fn argv_and_atoi() {
        let r = run(
            r#"int main(int argc, char **argv) { if (argc < 2) return 1; return atoi(argv[1]); }"#,
            1,
            &["33"],
        );
        assert_eq!(r.exit_code, Some(33));
    }

    #[test]
    fn malloc_recycles_freed_blocks() {
        let r = run(
            r#"
int main(void) {
    char *a = (char*) malloc(32);
    free(a);
    char *b = (char*) malloc(32);
    if (a == b) return 1;  // LIFO recycling: same address
    return 0;
}
"#,
            1,
            &[],
        );
        assert_eq!(r.exit_code, Some(1), "allocator must recycle (paper IV-B)");
    }

    #[test]
    fn malloc_distinct_live_blocks() {
        let r = run(
            r#"
int main(void) {
    long *a = (long*) malloc(16);
    long *b = (long*) malloc(16);
    a[0] = 1; b[0] = 2;
    if (a == b) return 9;
    return a[0] + b[0];
}
"#,
            1,
            &[],
        );
        assert_eq!(r.exit_code, Some(3));
    }

    #[test]
    fn parallel_region_runs_all_threads() {
        let src = r#"
int counter;
int main(void) {
    #pragma omp parallel num_threads(4)
    {
        __fetch_add(&counter, 1);
    }
    return counter;
}
"#;
        let r = run(src, 4, &[]);
        assert!(r.ok(), "{:?} {:?}", r.error, r.deadlock);
        assert_eq!(r.exit_code, Some(4));
        assert_eq!(r.metrics.threads_created, 4);
    }

    #[test]
    fn parallel_uses_nthreads_default() {
        let src = r#"
int counter;
int main(void) {
    #pragma omp parallel
    { __fetch_add(&counter, 1); }
    return counter;
}
"#;
        let r = run(src, 3, &[]);
        assert_eq!(r.exit_code, Some(3));
    }

    #[test]
    fn single_executes_once() {
        let src = r#"
int n;
int main(void) {
    #pragma omp parallel num_threads(4)
    {
        #pragma omp single
        { n = n + 1; }
        #pragma omp single
        { n = n + 1; }
    }
    return n;
}
"#;
        let r = run(src, 4, &[]);
        assert!(r.ok(), "{:?}", r.error);
        assert_eq!(r.exit_code, Some(2));
    }

    #[test]
    fn critical_protects_counter() {
        let src = r#"
int sum;
int main(void) {
    #pragma omp parallel num_threads(4)
    {
        int i = 0;
        while (i < 100) {
            #pragma omp critical
            { sum = sum + 1; }
            i = i + 1;
        }
    }
    return sum == 400;
}
"#;
        let r = run(src, 4, &[]);
        assert!(r.ok(), "{:?}", r.error);
        assert_eq!(r.exit_code, Some(1));
    }

    #[test]
    fn tasks_execute_and_taskwait_joins() {
        let src = r#"
int main(void) {
    int x = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task shared(x)
            { x = x + 40; }
            #pragma omp taskwait
            x = x + 2;
        }
    }
    return x;
}
"#;
        for nt in [1, 2] {
            let r = run(src, nt, &[]);
            assert!(r.ok(), "nt={nt}: {:?}", r.error);
            assert_eq!(r.exit_code, Some(42), "nt={nt}");
        }
    }

    #[test]
    fn firstprivate_captures_value() {
        let src = r#"
int result;
int main(void) {
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            int v = 10;
            #pragma omp task
            { result = v; }   // v is firstprivate: copied at creation
            v = 99;
            #pragma omp taskwait
        }
    }
    return result;
}
"#;
        // With 1 thread the task is included (runs at creation, sees 10);
        // with 2 threads the payload copy also preserves 10.
        for nt in [1, 2] {
            let r = run(src, nt, &[]);
            assert_eq!(r.exit_code, Some(10), "nt={nt} {:?}", r.error);
        }
    }

    #[test]
    fn task_dependencies_order_execution() {
        let src = r#"
int main(void) {
    int x = 0;
    int ok = 0;
    #pragma omp parallel num_threads(4)
    {
        #pragma omp single
        {
            #pragma omp task depend(out: x) shared(x)
            { x = 1; }
            #pragma omp task depend(inout: x) shared(x)
            { x = x * 10; }
            #pragma omp task depend(in: x) shared(x, ok)
            { ok = (x == 10); }
        }
    }
    return ok;
}
"#;
        for nt in [1, 4] {
            let r = run(src, nt, &[]);
            assert!(r.ok(), "nt={nt}: {:?} deadlock={}", r.error, r.deadlock);
            assert_eq!(r.exit_code, Some(1), "nt={nt}");
        }
    }

    #[test]
    fn taskgroup_waits_for_descendants() {
        let src = r#"
int done;
int main(void) {
    int after = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp taskgroup
            {
                #pragma omp task
                {
                    #pragma omp task
                    { __fetch_add(&done, 1); }
                    __fetch_add(&done, 1);
                }
            }
            after = done;
        }
    }
    return after;
}
"#;
        for nt in [1, 2] {
            let r = run(src, nt, &[]);
            assert_eq!(r.exit_code, Some(2), "nt={nt} {:?}", r.error);
        }
    }

    #[test]
    fn taskloop_covers_iteration_space() {
        let src = r#"
int main(void) {
    int a[64];
    int i;
    for (i = 0; i < 64; i++) a[i] = 0;
    #pragma omp parallel num_threads(4)
    {
        #pragma omp single
        {
            #pragma omp taskloop grainsize(4) shared(a)
            for (int j = 0; j < 64; j++) a[j] = a[j] + 1;
        }
    }
    int sum = 0;
    for (i = 0; i < 64; i++) sum += a[i];
    return sum;
}
"#;
        for nt in [1, 4] {
            let r = run(src, nt, &[]);
            assert!(r.ok(), "nt={nt}: {:?}", r.error);
            assert_eq!(r.exit_code, Some(64), "nt={nt}");
        }
    }

    #[test]
    fn threadprivate_gives_each_thread_a_copy() {
        let src = r#"
int tp;
#pragma omp threadprivate(tp)
int distinct;
int main(void) {
    #pragma omp parallel num_threads(4)
    {
        tp = omp_get_thread_num() + 1;
        #pragma omp barrier
        if (tp == omp_get_thread_num() + 1) __fetch_add(&distinct, 1);
    }
    return distinct;
}
"#;
        let r = run(src, 4, &[]);
        assert!(r.ok(), "{:?}", r.error);
        assert_eq!(r.exit_code, Some(4));
    }

    #[test]
    fn barriers_synchronize_phases() {
        let src = r#"
int phase1[8];
int bad;
int main(void) {
    #pragma omp parallel num_threads(4)
    {
        int me = omp_get_thread_num();
        phase1[me] = 1;
        #pragma omp barrier
        int i = 0;
        while (i < 4) {
            if (phase1[i] == 0) __fetch_add(&bad, 1);
            i = i + 1;
        }
    }
    return bad;
}
"#;
        let r = run(src, 4, &[]);
        assert!(r.ok(), "{:?}", r.error);
        assert_eq!(r.exit_code, Some(0));
    }

    #[test]
    fn cilk_spawn_and_sync() {
        let src = r#"
int fib(int n) {
    if (n < 2) return n;
    int a = cilk_spawn fib(n - 1);
    int b = fib(n - 2);
    cilk_sync;
    return a + b;
}
int main(void) { return fib(10); }
"#;
        let r = run(src, 1, &[]);
        assert!(r.ok(), "{:?}", r.error);
        assert_eq!(r.exit_code, Some(55));
    }

    #[test]
    fn master_runs_on_thread_zero_only() {
        let src = r#"
int n;
int main(void) {
    #pragma omp parallel num_threads(4)
    {
        #pragma omp master
        { n = n + 1; }
    }
    return n;
}
"#;
        let r = run(src, 4, &[]);
        assert_eq!(r.exit_code, Some(1));
    }

    #[test]
    fn dbi_mode_agrees_with_fast_mode() {
        let src = r#"
int main(void) {
    int x = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task depend(out: x) shared(x)
            { x = 21; }
            #pragma omp task depend(inout: x) shared(x)
            { x = x * 2; }
        }
    }
    return x;
}
"#;
        let fast = run(src, 2, &[]);
        let dbi = run_dbi(src, 2);
        assert_eq!(fast.exit_code, Some(42), "{:?}", fast.error);
        assert_eq!(dbi.exit_code, Some(42), "{:?}", dbi.error);
        assert!(dbi.metrics.translations > 0);
    }

    #[test]
    fn tsan_build_still_computes_correctly() {
        let src = r#"
int g;
int main(void) {
    g = 5;
    int *p = &g;
    *p = *p + 37;
    return g;
}
"#;
        let m = build_program_tsan(&[SourceFile::new("t.c", src)]).unwrap();
        let r = Vm::new(m, Box::new(NulTool), VmConfig::default()).run(ExecMode::Fast, &[]);
        assert_eq!(r.exit_code, Some(42), "{:?}", r.error);
    }

    #[test]
    fn client_request_codes_match_grindcore() {
        // libomp.mc hardcodes decimal creq codes; keep them in sync.
        use grindcore::creq;
        for (dec, code) in [
            (4096, creq::PARALLEL_BEGIN),
            (4097, creq::PARALLEL_END),
            (4098, creq::IMPLICIT_TASK_BEGIN),
            (4099, creq::IMPLICIT_TASK_END),
            (4112, creq::TASK_CREATE),
            (4113, creq::TASK_DEP),
            (4114, creq::TASK_BEGIN),
            (4115, creq::TASK_END),
            (4116, creq::TASKWAIT),
            (4117, creq::TASKGROUP_BEGIN),
            (4118, creq::TASKGROUP_END),
            (4119, creq::BARRIER),
            (4120, creq::CRITICAL_ENTER),
            (4121, creq::CRITICAL_EXIT),
            (4176, creq::USER_DEFERRABLE),
            (4192, creq::DISCARD_TRANSLATIONS),
        ] {
            assert_eq!(dec, code);
            assert!(
                LIBOMP_MC.contains(&dec.to_string()),
                "libomp.mc must reference creq code {dec}"
            );
        }
        assert_eq!(minicc::omp::TASK_PAYLOAD_OFF, 64);
    }

    #[test]
    fn nested_parallel_serializes() {
        let src = r#"
int n;
int main(void) {
    #pragma omp parallel num_threads(2)
    {
        #pragma omp parallel num_threads(2)
        { __fetch_add(&n, 1); }
    }
    return n;
}
"#;
        let r = run(src, 2, &[]);
        assert!(r.ok(), "{:?}", r.error);
        assert_eq!(r.exit_code, Some(2), "inner regions serialize");
    }
}
