//! tg-drb — the Table I microbenchmark corpus and harness.
//!
//! [`corpus()`] holds minic ports of the task-related DataRaceBench
//! subset and the seven TMB microbenchmarks; [`harness`] runs every
//! (program × tool × thread-count) cell and classifies verdicts;
//! [`paper`] embeds the published Table I for paper-vs-measured
//! agreement reporting. Regenerate the table with
//! `cargo run -p tg-drb --bin table1 --release`.

pub mod bots;
pub mod corpus;
pub mod extra;
pub mod harness;
pub mod paper;

pub use bots::bots_corpus;
pub use corpus::{by_name, corpus, BenchProgram, Suite};
pub use extra::extra_corpus;
pub use harness::{agreement, evaluate, render, table1, Table1Row, ToolId, ALL_TOOLS};
