//! Extended microbenchmarks beyond the paper's Table I corpus,
//! covering constructs this reproduction additionally supports:
//! runtime locks, the `detach` clause, Cilk spawn/sync, named criticals,
//! barrier phasing, taskloop variants and inoutset chaining. Each entry
//! carries ground truth; the test suite pins Taskgrind's verdict on all
//! of them.

use crate::corpus::{BenchProgram, Suite};

/// Additional programs (suite = Tmb so harnesses run them at 1 and 4
/// threads like the paper's own microbenchmarks).
pub fn extra_corpus() -> Vec<BenchProgram> {
    vec![
        BenchProgram {
            name: "x001-omp-lock",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: true,
            features: &["parallel", "locks"],
            source: r#"
long lock;
int sum;
int main(void) {
    omp_init_lock(&lock);
    #pragma omp parallel
    {
        omp_set_lock(&lock);
        sum = sum + 1;
        omp_unset_lock(&lock);
    }
    omp_destroy_lock(&lock);
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x002-omp-lock-mismatch",
            suite: Suite::Tmb,
            racy: true,
            tasksan_ncs: true,
            features: &["parallel", "locks"],
            source: r#"
long l1;
long l2;
int sum;
int main(void) {
    #pragma omp parallel
    {
        if (omp_get_thread_num() % 2 == 0) {
            omp_set_lock(&l1);
            sum = sum + 1;
            omp_unset_lock(&l1);
        } else {
            omp_set_lock(&l2);   // different lock: no exclusion
            sum = sum + 1;
            omp_unset_lock(&l2);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x003-detach-fulfilled",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "detach"],
            source: r#"
void tg_set_deferrable(long v);
long evt;
int y;
int out;
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task detach(evt)
            { int local = 1; }
            #pragma omp task
            {
                #pragma omp task shared(y)
                { y = 2; omp_fulfill_event(evt); }
            }
            #pragma omp taskwait
            out = y;
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x004-detach-missing-wait",
            suite: Suite::Tmb,
            racy: true,
            tasksan_ncs: true,
            features: &["task", "detach"],
            source: r#"
void tg_set_deferrable(long v);
long evt;
int y;
int out;
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task detach(evt) shared(y)
            { y = 1; omp_fulfill_event(evt); }
            out = y;   // no taskwait: races with the detached body
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x005-cilk-racy-spawns",
            suite: Suite::Tmb,
            racy: true,
            tasksan_ncs: true,
            features: &["cilk"],
            source: r#"
int counter;
int bump(int k) { counter = counter + k; return counter; }
int main(void) {
    int a = cilk_spawn bump(1);
    int b = cilk_spawn bump(2);
    cilk_sync;
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x006-cilk-synced",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: true,
            features: &["cilk"],
            source: r#"
int counter;
int bump(int k) { counter = counter + k; return counter; }
int main(void) {
    int a = cilk_spawn bump(1);
    cilk_sync;
    int b = cilk_spawn bump(2);
    cilk_sync;
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x007-named-criticals-distinct",
            suite: Suite::Tmb,
            racy: true,
            tasksan_ncs: false,
            features: &["parallel", "critical"],
            source: r#"
int sum;
int main(void) {
    #pragma omp parallel
    {
        if (omp_get_thread_num() % 2 == 0) {
            #pragma omp critical (alpha)
            sum = sum + 1;
        } else {
            #pragma omp critical (beta)
            sum = sum + 1;
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x008-barrier-phased",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: false,
            features: &["parallel", "barrier"],
            source: r#"
int a[64];
int b[64];
int main(void) {
    #pragma omp parallel
    {
        int me = omp_get_thread_num();
        int nt = omp_get_num_threads();
        for (int i = me; i < 64; i += nt) a[i] = i;
        #pragma omp barrier
        for (int i = me; i < 64; i += nt) b[i] = a[63 - i];
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x009-barrier-missing",
            suite: Suite::Tmb,
            racy: true,
            tasksan_ncs: false,
            features: &["parallel"],
            source: r#"
int a[64];
int b[64];
int main(void) {
    #pragma omp parallel
    {
        int me = omp_get_thread_num();
        int nt = omp_get_num_threads();
        for (int i = me; i < 64; i += nt) a[i] = i;
        // missing barrier: reads of a[63-i] race with other threads' writes
        for (int i = me; i < 64; i += nt) b[i] = a[63 - i];
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x010-taskloop-nogroup",
            suite: Suite::Tmb,
            racy: true,
            tasksan_ncs: true,
            features: &["taskloop"],
            source: r#"
void tg_set_deferrable(long v);
int a[32];
int total;
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp taskloop grainsize(8) nogroup shared(a)
            for (int i = 0; i < 32; i++) a[i] = i;
            // nogroup: no implicit join — summing races with the tasks
            for (int i = 0; i < 32; i++) total += a[i];
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x011-inoutset-chain",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "dep-inoutset"],
            source: r#"
void tg_set_deferrable(long v);
int a[4];
int total;
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(inoutset: total) shared(a)
            a[0] = 1;
            #pragma omp task depend(inoutset: total) shared(a)
            a[1] = 2;
            #pragma omp task depend(in: total) shared(a, total)
            total = a[0] + a[1];
            #pragma omp task depend(inoutset: total) shared(a)
            a[2] = total;   // second set generation: after the reader
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "x012-firstprivate-snapshot",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: false,
            features: &["task"],
            source: r#"
void tg_set_deferrable(long v);
int out[8];
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            for (int i = 0; i < 8; i++) {
                // i is firstprivate: each task gets a snapshot; the
                // creator's increments do not race with the tasks
                #pragma omp task shared(out)
                out[i] = i;
            }
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{evaluate, ToolId};
    use tg_baselines::Verdict;

    #[test]
    fn extra_corpus_programs_run_clean() {
        for p in extra_corpus() {
            let m = guest_rt::build_single(p.name, p.source)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            for nt in [1u64, 4] {
                let cfg = grindcore::VmConfig { nthreads: nt, ..Default::default() };
                let r = grindcore::Vm::new(m.clone(), Box::new(grindcore::tool::NulTool), cfg)
                    .run(grindcore::ExecMode::Fast, &[]);
                assert!(r.ok(), "{} nt={nt}: {:?} deadlock={}", p.name, r.error, r.deadlock);
            }
        }
    }

    #[test]
    fn taskgrind_is_accurate_on_the_extended_corpus() {
        // Taskgrind must classify every extended program correctly at
        // 4 threads (and the schedule-independent ones at 1 thread too).
        for p in extra_corpus() {
            let v = evaluate(&p, ToolId::Taskgrind, 4);
            let expected = if p.racy { Verdict::TruePositive } else { Verdict::TrueNegative };
            assert_eq!(v, expected, "{} @4 threads", p.name);
        }
    }

    #[test]
    fn taskgrind_single_thread_with_annotation_matches() {
        // programs carrying the deferrable annotation are schedule-proof
        for p in extra_corpus() {
            if !p.source.contains("tg_set_deferrable(1)") {
                continue;
            }
            let v = evaluate(&p, ToolId::Taskgrind, 1);
            let expected = if p.racy { Verdict::TruePositive } else { Verdict::TrueNegative };
            assert_eq!(v, expected, "{} @1 thread", p.name);
        }
    }

    #[test]
    fn names_are_unique_and_disjoint_from_table1() {
        let mut names: Vec<&str> = crate::corpus().iter().map(|p| p.name).collect();
        names.extend(extra_corpus().iter().map(|p| p.name));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
