//! The published cells of the paper's Table I, used to report
//! paper-vs-measured agreement (EXPERIMENTS.md, E1).
//!
//! Cells are `[TaskSanitizer, Archer, ROMP, Taskgrind]`. The paper
//! prints "FN/TP" for schedule-dependent Archer outcomes; we keep the
//! compound string and count either as a match. Note the paper lists
//! "TP" for TaskSanitizer on 174 although the row is not racy — we
//! transcribe it verbatim.

/// Published verdicts for a benchmark at a thread count.
pub fn expected(name: &str, threads: u64) -> [&'static str; 4] {
    match (name, threads) {
        ("027-taskdependmissing-orig", _) => ["TP", "FN", "TP", "TP"],
        ("072-taskdep1-orig", _) => ["TN", "TN", "TN", "TN"],
        ("078-taskdep2-orig", _) => ["TN", "TN", "TN", "FP"],
        ("079-taskdep3-orig", _) => ["ncs", "TN", "TN", "FP"],
        ("095-doall2-taskloop-orig", _) => ["ncs", "TP", "TP", "TP"],
        ("096-doall2-taskloop-collapse-orig", _) => ["ncs", "TN", "TN", "FP"],
        ("100-task-reference-orig", _) => ["ncs", "FP", "TN", "FP"],
        ("101-task-value-orig", _) => ["FP", "FP", "TN", "FP"],
        ("106-taskwaitmissing-orig", _) => ["TP", "TP", "TP", "TP"],
        ("107-taskgroup-orig", _) => ["FP", "TN", "TN", "FP"],
        ("122-taskundeferred-orig", _) => ["FP", "TN", "FP", "TN"],
        ("123-taskundeferred-orig", _) => ["TP", "TP", "TP", "TP"],
        ("127-tasking-threadprivate1-orig", _) => ["ncs", "TN", "segv", "FP"],
        ("128-tasking-threadprivate2-orig", _) => ["ncs", "TN", "TN", "FP"],
        ("129-mergeable-taskwait-orig", _) => ["ncs", "FN", "FN", "FN"],
        ("130-mergeable-taskwait-orig", _) => ["ncs", "TN", "TN", "TN"],
        ("131-taskdep4-orig-omp45", _) => ["ncs", "TP", "TP", "TP"],
        ("132-taskdep4-orig-omp45", _) => ["ncs", "TN", "TN", "TN"],
        ("133-taskdep5-orig-omp45", _) => ["ncs", "TN", "TN", "TN"],
        ("134-taskdep5-orig-omp45", _) => ["ncs", "TP", "TP", "TP"],
        ("135-taskdep-mutexinoutset-orig", _) => ["ncs", "TN", "FP", "TN"],
        ("136-taskdep-mutexinoutset-orig", _) => ["TP", "TP", "TP", "TP"],
        ("165-taskdep4-orig-omp50", _) => ["ncs", "FN", "TP", "TP"],
        ("166-taskdep4-orig-omp50", _) => ["ncs", "TN", "TN", "TN"],
        ("167-taskdep4-orig-omp50", _) => ["ncs", "TN", "TN", "TN"],
        ("168-taskdep5-orig-omp50", _) => ["ncs", "TP", "TP", "TP"],
        ("173-non-sibling-taskdep", _) => ["FN", "FN", "FN", "TP"],
        ("174-non-sibling-taskdep", _) => ["TP", "TN", "TN", "FP"],
        ("175-non-sibling-taskdep2", _) => ["FN", "TP", "TP", "TP"],
        ("1000-memory-recycling_1", 1) => ["TN", "TN", "TN", "TN"],
        ("1001-stack_1", 1) => ["TP", "FN", "FN", "TP"],
        ("1002-stack_2", 1) => ["TN", "TN", "TN", "TN"],
        ("1003-stack_3", 1) => ["FP", "TN", "TN", "TN"],
        ("1004-stack_4", 1) => ["TP", "FN", "TP", "TP"],
        ("1005-stack_5", 1) => ["FP", "TN", "TN", "TN"],
        ("1006-tls_1", 1) => ["FP", "TN", "TN", "TN"],
        ("1000-memory-recycling_1", 4) => ["TN", "TN", "TN", "FP"],
        ("1001-stack_1", 4) => ["TP", "FN/TP", "TP", "TP"],
        ("1002-stack_2", 4) => ["TN", "TN", "TN", "FP"],
        ("1003-stack_3", 4) => ["TN", "TN", "TN", "TN"],
        ("1004-stack_4", 4) => ["TP", "TP", "TP", "TP"],
        ("1005-stack_5", 4) => ["TN", "TN", "TN", "TN"],
        ("1006-tls_1", 4) => ["FP", "TN", "TN", "FP"],
        _ => ["", "", "", ""],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::corpus;

    #[test]
    fn every_corpus_row_has_paper_cells() {
        for p in corpus() {
            let threads: &[u64] = match p.suite {
                crate::corpus::Suite::Drb => &[4],
                crate::corpus::Suite::Tmb => &[1, 4],
            };
            for &nt in threads {
                let cells = expected(p.name, nt);
                assert!(
                    cells.iter().all(|c| !c.is_empty()),
                    "missing paper cells for {} @{}",
                    p.name,
                    nt
                );
            }
        }
    }

    #[test]
    fn paper_taskgrind_has_exactly_one_fn() {
        // the paper's headline: Taskgrind's only FN is DRB129
        let mut fns = 0;
        for p in corpus() {
            let threads: &[u64] = match p.suite {
                crate::corpus::Suite::Drb => &[4],
                crate::corpus::Suite::Tmb => &[1, 4],
            };
            for &nt in threads {
                if expected(p.name, nt)[3] == "FN" {
                    fns += 1;
                    assert_eq!(p.name, "129-mergeable-taskwait-orig");
                }
            }
        }
        assert_eq!(fns, 1);
    }
}
