//! The microbenchmark corpus of Table I: the task-related
//! DataRaceBench subset (DRB) plus the seven Taskgrind-specific
//! microbenchmarks (TMB) covering the heavyweight-DBI pitfalls of §IV.
//!
//! Each program is a minic port of the corresponding benchmark, with
//! its ground truth (`racy`), the OpenMP features it exercises, and a
//! `tasksan_ncs` flag for tests whose original source does not compile
//! with TaskSanitizer's Clang 8 ("ncs" in Table I).

/// Which suite a program belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// DataRaceBench subset (run with 4 threads).
    Drb,
    /// Taskgrind microbenchmarks (run with 1 and 4 threads).
    Tmb,
}

/// One corpus entry.
#[derive(Clone, Debug)]
pub struct BenchProgram {
    pub name: &'static str,
    pub suite: Suite,
    /// Ground truth: does the program contain a determinacy race?
    pub racy: bool,
    /// Original did not compile under TaskSanitizer's Clang 8.
    pub tasksan_ncs: bool,
    pub features: &'static [&'static str],
    pub source: &'static str,
}

/// The full corpus in Table I order.
pub fn corpus() -> Vec<BenchProgram> {
    vec![
        BenchProgram {
            name: "027-taskdependmissing-orig",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: false,
            features: &["task"],
            source: r#"
int main(void) {
    int i = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(i)
            i = 1;
            #pragma omp task shared(i)
            i = 2;
        }
    }
    printf("i=%d\n", i);
    return 0;
}
"#,
        },
        BenchProgram {
            name: "072-taskdep1-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "dep-out", "dep-in"],
            source: r#"
int main(void) {
    int i = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: i) shared(i)
            i = 1;
            #pragma omp task depend(in: i) shared(i)
            { int j = i; printf("%d\n", j); }
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "078-taskdep2-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "dep-out", "taskwait"],
            source: r#"
int main(void) {
    int i = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: i) shared(i)
            i = 1;
            #pragma omp task depend(out: i) shared(i)
            i = 2;
            #pragma omp taskwait
            printf("i=%d\n", i);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "079-taskdep3-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "dep-out", "dep-in", "taskwait"],
            source: r#"
int main(void) {
    int i = 0;
    int j = 0;
    int k = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: i) shared(i)
            i = 1;
            #pragma omp task depend(in: i) depend(out: j) shared(i, j)
            j = i + 1;
            #pragma omp task depend(in: i) depend(out: k) shared(i, k)
            k = i + 2;
            #pragma omp taskwait
            printf("%d %d\n", j, k);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "095-doall2-taskloop-orig",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: true,
            features: &["taskloop"],
            source: r#"
int a[64];
int j;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            // the inner index j is shared across taskloop tasks: race
            #pragma omp taskloop grainsize(2) shared(a, j)
            for (int i = 0; i < 8; i++) {
                for (j = 0; j < 8; j++)
                    a[i * 8 + j] = i + j;
            }
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "096-doall2-taskloop-collapse-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["taskloop", "collapse"],
            source: r#"
int a[64];
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            // collapse(2): both indices private per task — no race
            #pragma omp taskloop collapse(2) grainsize(2) shared(a)
            for (int i = 0; i < 8; i++) {
                for (int j = 0; j < 8; j++)
                    a[i * 8 + j] = i + j;
            }
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "100-task-reference-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "taskwait"],
            source: r#"
int init(int *p) { *p = 10; return 0; }
int main(void) {
    int result = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(result)
            init(&result);
            #pragma omp taskwait
            printf("%d\n", result);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "101-task-value-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "taskwait"],
            source: r#"
int use(int v) { return v + 1; }
int main(void) {
    int value = 5;
    int result = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(result)
            result = use(value);   // value is firstprivate
            value = 9;
            #pragma omp taskwait
            printf("%d\n", result);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "106-taskwaitmissing-orig",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: false,
            features: &["task"],
            source: r#"
int main(void) {
    int a = 0;
    int b = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(a)
            a = 3;
            #pragma omp task shared(b)
            b = 4;
            // missing taskwait
            printf("%d\n", a + b);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "107-taskgroup-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "taskgroup"],
            source: r#"
int main(void) {
    int result = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp taskgroup
            {
                #pragma omp task shared(result)
                result = 42;
            }
            printf("%d\n", result);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "122-taskundeferred-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "if-clause"],
            source: r#"
int main(void) {
    int var = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            for (int i = 0; i < 10; i++) {
                #pragma omp task shared(var) if(0)
                var = var + 1;    // undeferred: runs before creation returns
            }
            printf("%d\n", var);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "123-taskundeferred-orig",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: false,
            features: &["task", "if-clause"],
            source: r#"
int main(void) {
    int var = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(var)
            var = var + 10;          // deferred task ...
            #pragma omp task shared(var) if(0)
            var = var + 1;           // ... races with the undeferred one
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "127-tasking-threadprivate1-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "threadprivate"],
            source: r#"
int tp;
#pragma omp threadprivate(tp)
int result;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            {
                tp = 1;              // write to threadprivate from a task
                #pragma omp task
                { int v = tp; }
            }
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "128-tasking-threadprivate2-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "threadprivate"],
            source: r#"
int tp;
#pragma omp threadprivate(tp)
int main(void) {
    #pragma omp parallel
    {
        tp = omp_get_thread_num();   // written by implicit tasks only
        #pragma omp barrier
        #pragma omp single
        {
            #pragma omp task
            { int v = tp; printf("%d\n", v); }  // task only reads
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "129-mergeable-taskwait-orig",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: true,
            features: &["task", "mergeable"],
            source: r#"
int main(void) {
    int x = 2;
    #pragma omp parallel
    {
        #pragma omp single
        {
            // if merged, the task shares the parent's x: unsynchronized
            #pragma omp task mergeable
            x = x + 1;
            printf("%d\n", x);   // no taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "130-mergeable-taskwait-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "mergeable", "taskwait"],
            source: r#"
int main(void) {
    int x = 2;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task mergeable
            x = x + 1;
            #pragma omp taskwait
            printf("%d\n", x);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "131-taskdep4-orig-omp45",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: true,
            features: &["task", "dep-in", "taskwait"],
            source: r#"
int main(void) {
    int x = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(in: x) shared(x)
            { int v = x; printf("%d\n", v); }
            #pragma omp task depend(in: x) shared(x)
            x = 5;   // declares `in` but writes: races with the reader
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "132-taskdep4-orig-omp45",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "dep-in", "dep-inout", "taskwait"],
            source: r#"
int main(void) {
    int x = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(in: x) shared(x)
            { int v = x; printf("%d\n", v); }
            #pragma omp task depend(inout: x) shared(x)
            x = 5;
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "133-taskdep5-orig-omp45",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "dep-out", "dep-in", "taskwait"],
            source: r#"
int main(void) {
    int a = 0;
    int b = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: a) shared(a)
            a = 1;
            #pragma omp task depend(out: b) shared(b)
            b = 2;
            #pragma omp task depend(in: a) depend(in: b) shared(a, b)
            printf("%d\n", a + b);
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "134-taskdep5-orig-omp45",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: true,
            features: &["task", "dep-out", "dep-in", "taskwait"],
            source: r#"
int main(void) {
    int a = 0;
    int b = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: a) shared(a)
            a = 1;
            #pragma omp task depend(out: b) shared(a, b)
            { b = 2; a = 3; }    // writes a with only an out(b) dep
            #pragma omp task depend(in: a) shared(a)
            printf("%d\n", a);
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "135-taskdep-mutexinoutset-orig",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "dep-mutexinoutset", "taskwait"],
            source: r#"
int main(void) {
    int a = 0;
    int b = 1;
    int c = 2;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: c) shared(c)
            c = 1;
            #pragma omp task depend(out: a) shared(a)
            a = 2;
            #pragma omp task depend(out: b) shared(b)
            b = 3;
            #pragma omp task depend(in: a) depend(mutexinoutset: c) shared(a, c)
            c = c + a;
            #pragma omp task depend(in: b) depend(mutexinoutset: c) shared(b, c)
            c = c + b;
            #pragma omp taskwait
            printf("%d\n", c);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "136-taskdep-mutexinoutset-orig",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: false,
            features: &["task", "dep-mutexinoutset", "taskwait"],
            source: r#"
int main(void) {
    int a = 0;
    int b = 1;
    int c = 2;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: c) shared(c)
            c = 1;
            #pragma omp task depend(out: a) shared(a)
            a = 2;
            #pragma omp task depend(out: b) shared(b)
            b = 3;
            #pragma omp task depend(in: a) depend(mutexinoutset: c) shared(a, c)
            c = c + a;
            // missing the mutexinoutset dependence: unordered write to c
            #pragma omp task depend(in: b) shared(b, c)
            c = c + b;
            #pragma omp taskwait
            printf("%d\n", c);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "165-taskdep4-orig-omp50",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: true,
            features: &["task", "dep-inoutset", "taskwait"],
            source: r#"
int main(void) {
    int x = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            // two inoutset members writing the same variable: members of
            // a set are mutually unordered
            #pragma omp task depend(inoutset: x) shared(x)
            x = x + 1;
            #pragma omp task depend(inoutset: x) shared(x)
            x = x + 2;
            #pragma omp taskwait
            printf("%d\n", x);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "166-taskdep4-orig-omp50",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "dep-inoutset", "taskwait"],
            source: r#"
int a[2];
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(inoutset: a) shared(a)
            a[0] = 1;
            #pragma omp task depend(inoutset: a) shared(a)
            a[1] = 2;    // set members touch disjoint cells
            #pragma omp task depend(in: a) shared(a)
            printf("%d\n", a[0] + a[1]);
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "167-taskdep4-orig-omp50",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "dep-out", "dep-inoutset", "taskwait"],
            source: r#"
int a[2];
int total;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: total) shared(total)
            total = 0;
            #pragma omp task depend(inoutset: total) shared(a, total)
            a[0] = total;
            #pragma omp task depend(inout: total) shared(a, total)
            total = total + a[0];
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "168-taskdep5-orig-omp50",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: true,
            features: &["task", "dep-inoutset"],
            source: r#"
int main(void) {
    int x = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(inoutset: x) shared(x)
            x = 1;
            // no dependence at all: races with the set member
            #pragma omp task shared(x)
            printf("%d\n", x);
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "173-non-sibling-taskdep",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: false,
            features: &["task", "dep-out", "non-sibling-dep"],
            source: r#"
int x;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            {
                #pragma omp task depend(out: x)
                x = 1;
                #pragma omp taskwait
            }
            #pragma omp task
            {
                // dependences do not synchronize across parents
                #pragma omp task depend(out: x)
                x = 2;
                #pragma omp taskwait
            }
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "174-non-sibling-taskdep",
            suite: Suite::Drb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "dep-out", "non-sibling-dep", "taskwait"],
            source: r#"
int x;
int y;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            // the parents themselves are ordered by a dependence, so the
            // nested writers are transitively ordered
            #pragma omp task depend(out: y)
            {
                #pragma omp task depend(out: x)
                x = 1;
                #pragma omp taskwait
            }
            #pragma omp task depend(inout: y)
            {
                #pragma omp task depend(out: x)
                x = 2;
                #pragma omp taskwait
            }
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "175-non-sibling-taskdep2",
            suite: Suite::Drb,
            racy: true,
            tasksan_ncs: false,
            features: &["task", "dep-out", "non-sibling-dep"],
            source: r#"
int x;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task depend(out: x)
            x = 1;
            #pragma omp task
            {
                // nested task's dep cannot order against the sibling of
                // its parent
                #pragma omp task depend(out: x)
                x = 2;
                #pragma omp taskwait
            }
        }
    }
    return 0;
}
"#,
        },
        // ---- TMB: Taskgrind microbenchmarks (paper §V-A) ----
        BenchProgram {
            name: "1000-memory-recycling_1",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "malloc"],
            source: r#"
void tg_set_deferrable(long v);
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            for (int i = 0; i < 2; i++) {
                #pragma omp task
                {
                    int *x = (int*) malloc(4);
                    x[0] = 1;
                    free(x);
                }
            }
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "1001-stack_1",
            suite: Suite::Tmb,
            racy: true,
            tasksan_ncs: false,
            features: &["task"],
            source: r#"
void tg_set_deferrable(long v);
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            int v = 0;
            #pragma omp task shared(v)
            v = 1;
            #pragma omp task shared(v)
            v = 2;
            #pragma omp taskwait
            printf("%d\n", v);
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "1002-stack_2",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: false,
            features: &["task"],
            source: r#"
void tg_set_deferrable(long v);
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            for (int i = 0; i < 2; i++) {
                #pragma omp task
                {
                    int local = i;       // reuses the same stack slot
                    local = local + 1;
                }
            }
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "1003-stack_3",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "taskwait"],
            source: r#"
void tg_set_deferrable(long v);
int helper(int n) {
    int buf[8];
    for (int i = 0; i < 8; i++) buf[i] = n + i;
    return buf[7];
}
int main(void) {
    tg_set_deferrable(1);
    int r1 = 0;
    int r2 = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(r1)
            r1 = helper(1);
            #pragma omp taskwait
            #pragma omp task shared(r2)
            r2 = helper(2);   // same frame, but ordered by taskwait
            #pragma omp taskwait
        }
    }
    return r1 + r2;
}
"#,
        },
        BenchProgram {
            name: "1004-stack_4",
            suite: Suite::Tmb,
            racy: true,
            tasksan_ncs: false,
            features: &["task"],
            source: r#"
void tg_set_deferrable(long v);
int scribble(int *p) { *p = *p + 1; return *p; }
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            int v = 0;
            int *p = &v;
            #pragma omp task
            scribble(p);         // p firstprivate, still aims at v
            #pragma omp task
            scribble(p);
            #pragma omp taskwait
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "1005-stack_5",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "taskwait"],
            source: r#"
void tg_set_deferrable(long v);
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            for (int i = 0; i < 2; i++) {
                int v = i;
                #pragma omp task
                { int w = v + 1; }
                #pragma omp taskwait   // v's slot reused only after join
            }
        }
    }
    return 0;
}
"#,
        },
        BenchProgram {
            name: "1006-tls_1",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: false,
            features: &["task", "thread-local"],
            source: r#"
void tg_set_deferrable(long v);
_Thread_local int tls_x;
int main(void) {
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            for (int i = 0; i < 2; i++) {
                #pragma omp task
                tls_x = tls_x + 1;   // thread-local: no sharing
            }
        }
    }
    return 0;
}
"#,
        },
    ]
}

/// Look up a program by name.
pub fn by_name(name: &str) -> Option<BenchProgram> {
    corpus().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape() {
        let c = corpus();
        assert_eq!(c.iter().filter(|p| p.suite == Suite::Drb).count(), 29);
        assert_eq!(c.iter().filter(|p| p.suite == Suite::Tmb).count(), 7);
        let mut names: Vec<_> = c.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 36, "names unique");
    }

    #[test]
    fn every_program_compiles_and_runs_clean() {
        for p in corpus() {
            let m = guest_rt::build_single(p.name, p.source)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let cfg = grindcore::VmConfig { nthreads: 2, ..Default::default() };
            let r = grindcore::Vm::new(m, Box::new(grindcore::tool::NulTool), cfg)
                .run(grindcore::ExecMode::Fast, &[]);
            assert!(r.ok(), "{}: {:?} deadlock={}", p.name, r.error, r.deadlock);
        }
    }

    #[test]
    fn tsan_builds_work_too() {
        for p in corpus() {
            guest_rt::build_program_tsan(&[minicc::SourceFile::new(p.name, p.source)])
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn ground_truth_counts_match_table1() {
        let c = corpus();
        let drb_racy = c.iter().filter(|p| p.suite == Suite::Drb && p.racy).count();
        assert_eq!(drb_racy, 12, "12 racy DRB rows in Table I");
        let tmb_racy = c.iter().filter(|p| p.suite == Suite::Tmb && p.racy).count();
        assert_eq!(tmb_racy, 2, "stack_1 and stack_4");
    }
}
