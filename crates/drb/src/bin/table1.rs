//! Regenerates the paper's Table I (experiment E1).
//!
//! Usage: `cargo run -p tg-drb --bin table1 --release`

fn main() {
    let corpus = tg_drb::corpus();
    eprintln!("running {} programs x 4 tools ...", corpus.len());
    let rows = tg_drb::table1(&corpus);
    print!("{}", tg_drb::render(&rows));
    let (matches, total) = tg_drb::agreement(&rows);
    println!(
        "\nagreement with the paper's published cells: {matches}/{total} ({:.0}%)",
        100.0 * matches as f64 / total as f64
    );
}
