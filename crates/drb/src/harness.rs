//! The Table I harness: run every corpus program under every tool and
//! classify the verdicts against ground truth.

use crate::corpus::{BenchProgram, Suite};
use crate::paper;
use grindcore::VmConfig;
use minicc::SourceFile;
use taskgrind::{check_module, TaskgrindConfig};
use tg_baselines::{archer::run_archer, romp::run_romp, tasksan::run_tasksan, Verdict};

/// The four tools of Table I, in column order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToolId {
    TaskSanitizer,
    Archer,
    Romp,
    Taskgrind,
}

pub const ALL_TOOLS: [ToolId; 4] =
    [ToolId::TaskSanitizer, ToolId::Archer, ToolId::Romp, ToolId::Taskgrind];

impl ToolId {
    pub fn name(&self) -> &'static str {
        match self {
            ToolId::TaskSanitizer => "TaskSanitizer",
            ToolId::Archer => "Archer",
            ToolId::Romp => "ROMP",
            ToolId::Taskgrind => "Taskgrind",
        }
    }
}

fn vm_cfg(nthreads: u64) -> VmConfig {
    VmConfig { nthreads, ..Default::default() }
}

/// Run one program under one tool at a given thread count and classify.
pub fn evaluate(p: &BenchProgram, tool: ToolId, nthreads: u64) -> Verdict {
    match tool {
        ToolId::TaskSanitizer => {
            if p.tasksan_ncs {
                return Verdict::Ncs;
            }
            let m = match guest_rt::build_program_tsan(&[SourceFile::new(p.name, p.source)]) {
                Ok(m) => m,
                Err(_) => return Verdict::Ncs,
            };
            let r = run_tasksan(&m, &[], &vm_cfg(nthreads));
            if r.run.deadlock {
                return Verdict::Deadlock;
            }
            Verdict::classify(p.racy, r.found_race())
        }
        ToolId::Archer => {
            let m = match guest_rt::build_program_tsan(&[SourceFile::new(p.name, p.source)]) {
                Ok(m) => m,
                Err(_) => return Verdict::Ncs,
            };
            // Archer's outcome is schedule-dependent (the paper prints
            // "FN/TP" and report *ranges*); aggregate over several
            // schedules — a race reported under any of them counts.
            let mut found = false;
            for (seed, sched) in [
                (42, grindcore::SchedPolicy::RoundRobin),
                (1, grindcore::SchedPolicy::Random),
                (2, grindcore::SchedPolicy::Random),
                (3, grindcore::SchedPolicy::Random),
                (4, grindcore::SchedPolicy::Random),
                (5, grindcore::SchedPolicy::Random),
            ] {
                let cfg = VmConfig { nthreads, seed, sched, quantum: 16, ..Default::default() };
                let r = run_archer(&m, &[], &cfg);
                if r.run.deadlock {
                    return Verdict::Deadlock;
                }
                found |= r.found_race();
                if found {
                    break;
                }
            }
            Verdict::classify(p.racy, found)
        }
        ToolId::Romp => {
            let m = match guest_rt::build_single(p.name, p.source) {
                Ok(m) => m,
                Err(_) => return Verdict::Ncs,
            };
            let r = run_romp(&m, &[], &vm_cfg(nthreads));
            if r.segv {
                return Verdict::Segv;
            }
            if r.run.deadlock {
                return Verdict::Deadlock;
            }
            Verdict::classify(p.racy, r.found_race())
        }
        ToolId::Taskgrind => {
            let m = match guest_rt::build_single(p.name, p.source) {
                Ok(m) => m,
                Err(_) => return Verdict::Ncs,
            };
            let cfg = TaskgrindConfig { vm: vm_cfg(nthreads), ..Default::default() };
            let r = check_module(&m, &[], &cfg);
            if r.run.deadlock {
                return Verdict::Deadlock;
            }
            Verdict::classify(p.racy, r.n_reports() > 0)
        }
    }
}

/// One row of the reproduced Table I.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub name: String,
    pub racy: bool,
    /// Verdicts in [TaskSanitizer, Archer, ROMP, Taskgrind] order.
    pub verdicts: [Verdict; 4],
    /// Paper's published cells for comparison (empty when unlisted).
    pub paper: [&'static str; 4],
    pub threads: u64,
}

/// Run the full Table I experiment.
pub fn table1(corpus: &[BenchProgram]) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for p in corpus {
        let configs: &[u64] = match p.suite {
            Suite::Drb => &[4],
            Suite::Tmb => &[1, 4],
        };
        for &nt in configs {
            let verdicts = [
                evaluate(p, ToolId::TaskSanitizer, nt),
                evaluate(p, ToolId::Archer, nt),
                evaluate(p, ToolId::Romp, nt),
                evaluate(p, ToolId::Taskgrind, nt),
            ];
            rows.push(Table1Row {
                name: p.name.to_string(),
                racy: p.racy,
                verdicts,
                paper: paper::expected(p.name, nt),
                threads: nt,
            });
        }
    }
    rows
}

/// Render the reproduced table (with paper cells in parentheses when
/// they differ).
pub fn render(rows: &[Table1Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>5} {:>4} | {:>14} {:>12} {:>12} {:>12}",
        "benchmark", "race", "nt", "TaskSanitizer", "Archer", "ROMP", "Taskgrind"
    );
    let _ = writeln!(out, "{}", "-".repeat(108));
    for r in rows {
        let cell = |i: usize| {
            let got = r.verdicts[i].cell();
            let want = r.paper[i];
            if want.is_empty() || want == got || want.contains(got) {
                got.to_string()
            } else {
                format!("{got} (paper {want})")
            }
        };
        let _ = writeln!(
            out,
            "{:<36} {:>5} {:>4} | {:>14} {:>12} {:>12} {:>12}",
            r.name,
            if r.racy { "yes" } else { "no" },
            r.threads,
            cell(0),
            cell(1),
            cell(2),
            cell(3)
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(108));
    for (i, tool) in ALL_TOOLS.iter().enumerate() {
        let fns = rows.iter().filter(|r| r.verdicts[i].is_fn()).count();
        let fps = rows.iter().filter(|r| r.verdicts[i] == Verdict::FalsePositive).count();
        let _ =
            writeln!(out, "{:>14}: {} false negatives, {} false positives", tool.name(), fns, fps);
    }
    out
}

/// Cells where our reproduction matches the paper exactly.
pub fn agreement(rows: &[Table1Row]) -> (usize, usize) {
    let mut matches = 0;
    let mut total = 0;
    for r in rows {
        for i in 0..4 {
            if r.paper[i].is_empty() {
                continue;
            }
            total += 1;
            if r.paper[i].contains(r.verdicts[i].cell()) {
                matches += 1;
            }
        }
    }
    (matches, total)
}
