//! BOTS-style task workloads (Barcelona OpenMP Task Suite shapes):
//! recursive fib, n-queens search, and a blocked sparse-LU
//! factorization with task dependences — the "porting simulation codes"
//! programs the paper's introduction motivates. Used as stress tests
//! for the runtime (deep task nesting, many concurrent siblings) and as
//! larger-than-microbenchmark inputs for Taskgrind.

use crate::corpus::{BenchProgram, Suite};

/// Recursive fib with binary task nesting and taskwait joins.
pub const FIB_MC: &str = r#"
void tg_set_deferrable(long v);
int fib(int n) {
    if (n < 2) return n;
    int a;
    int b;
    #pragma omp task shared(a) firstprivate(n)
    a = fib(n - 1);
    #pragma omp task shared(b) firstprivate(n)
    b = fib(n - 2);
    #pragma omp taskwait
    return a + b;
}
int main(int argc, char **argv) {
    int n = 10;
    if (argc > 1) n = atoi(argv[1]);
    tg_set_deferrable(1);
    int result = 0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task shared(result) firstprivate(n)
            result = fib(n);
            #pragma omp taskwait
        }
    }
    printf("fib(%d) = %d\n", n, result);
    return 0;
}
"#;

/// N-queens with per-row task fan-out and a critical-protected counter.
pub const NQUEENS_MC: &str = r#"
void tg_set_deferrable(long v);
int solutions;

int safe(int *board, int row, int col) {
    for (int i = 0; i < row; i++) {
        int c = board[i];
        if (c == col) return 0;
        if (c - col == row - i) return 0;
        if (col - c == row - i) return 0;
    }
    return 1;
}

void solve(int *board, int row, int n) {
    if (row == n) {
        #pragma omp critical
        solutions = solutions + 1;
        return;
    }
    for (int col = 0; col < n; col++) {
        if (safe(board, row, col)) {
            #pragma omp task firstprivate(row, col, n, board)
            {
                int mine[16];
                for (int i = 0; i < row; i++) mine[i] = board[i];
                mine[row] = col;
                solve(mine, row + 1, n);
            }
        }
    }
    #pragma omp taskwait
}

int main(int argc, char **argv) {
    int n = 6;
    if (argc > 1) n = atoi(argv[1]);
    tg_set_deferrable(1);
    #pragma omp parallel
    {
        #pragma omp single
        {
            int board[16];
            solve(board, 0, n);
        }
    }
    printf("queens(%d) = %d\n", n, solutions);
    return 0;
}
"#;

/// Blocked LU factorization with task dependences between block
/// operations (lu0 → fwd/bdiv → bmod), the SparseLU shape. `-racy`
/// drops the bmod task's input dependence.
pub const SPARSELU_MC: &str = r#"
void tg_set_deferrable(long v);
int NB;     // blocks per dimension
int BS;     // block size
double *A;  // NB*NB blocks of BS*BS doubles
int RACY;
int bdep[64];   // per-block dependence sentinels
int dummy_dep;

double *blk(int i, int j) {
    return A + ((i * NB + j) * BS * BS);
}

void lu0(double *d) {
    for (int k = 0; k < BS; k++) {
        double pivot = d[k * BS + k];
        if (fabs(pivot) < 0.000001) pivot = 1.0;
        for (int i = k + 1; i < BS; i++) {
            d[i * BS + k] = d[i * BS + k] / pivot;
            for (int j = k + 1; j < BS; j++)
                d[i * BS + j] = d[i * BS + j] - d[i * BS + k] * d[k * BS + j];
        }
    }
}

void fwd(double *d, double *c) {
    for (int k = 0; k < BS; k++)
        for (int i = k + 1; i < BS; i++)
            for (int j = 0; j < BS; j++)
                c[i * BS + j] = c[i * BS + j] - d[i * BS + k] * c[k * BS + j];
}

void bdiv(double *d, double *r) {
    for (int i = 0; i < BS; i++)
        for (int k = 0; k < BS; k++) {
            double pivot = d[k * BS + k];
            if (fabs(pivot) < 0.000001) pivot = 1.0;
            r[i * BS + k] = r[i * BS + k] / pivot;
            for (int j = k + 1; j < BS; j++)
                r[i * BS + j] = r[i * BS + j] - r[i * BS + k] * d[k * BS + j];
        }
}

void bmod(double *r, double *c, double *t) {
    for (int i = 0; i < BS; i++)
        for (int k = 0; k < BS; k++)
            for (int j = 0; j < BS; j++)
                t[i * BS + j] = t[i * BS + j] - r[i * BS + k] * c[k * BS + j];
}

int main(int argc, char **argv) {
    NB = 3;
    BS = 4;
    RACY = 0;
    for (int a = 1; a < argc; a++) {
        if (strcmp(argv[a], "-racy") == 0) RACY = 1;
        else if (strcmp(argv[a], "-nb") == 0) { a++; NB = atoi(argv[a]); }
    }
    tg_set_deferrable(1);
    A = (double*) malloc(NB * NB * BS * BS * 8);
    for (int i = 0; i < NB * NB * BS * BS; i++)
        A[i] = (double) ((i * 7 + 3) % 11) + 1.0;

    #pragma omp parallel
    {
        #pragma omp single
        {
            for (int k = 0; k < NB; k++) {
                #pragma omp task depend(inout: bdep[k * NB + k]) firstprivate(k)
                lu0(blk(k, k));
                for (int j = k + 1; j < NB; j++) {
                    #pragma omp task depend(in: bdep[k * NB + k]) depend(inout: bdep[k * NB + j]) firstprivate(k, j)
                    fwd(blk(k, k), blk(k, j));
                }
                for (int i = k + 1; i < NB; i++) {
                    #pragma omp task depend(in: bdep[k * NB + k]) depend(inout: bdep[i * NB + k]) firstprivate(k, i)
                    bdiv(blk(k, k), blk(i, k));
                }
                for (int i = k + 1; i < NB; i++) {
                    for (int j = k + 1; j < NB; j++) {
                        if (RACY) {
                            // drop the dependence on the bdiv result
                            #pragma omp task depend(in: dummy_dep) depend(in: bdep[k * NB + j]) depend(inout: bdep[i * NB + j]) firstprivate(k, i, j)
                            bmod(blk(i, k), blk(k, j), blk(i, j));
                        } else {
                            #pragma omp task depend(in: bdep[i * NB + k]) depend(in: bdep[k * NB + j]) depend(inout: bdep[i * NB + j]) firstprivate(k, i, j)
                            bmod(blk(i, k), blk(k, j), blk(i, j));
                        }
                    }
                }
            }
        }
    }
    double checksum = 0.0;
    for (int i = 0; i < NB * NB * BS * BS; i++) checksum = checksum + A[i];
    printf("checksum = %f\n", checksum);
    return 0;
}
"#;

/// The BOTS-style workloads as corpus entries (all non-racy; the racy
/// SparseLU variant is exercised separately by the tests below).
pub fn bots_corpus() -> Vec<BenchProgram> {
    vec![
        BenchProgram {
            name: "bots-fib",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "taskwait", "nested"],
            source: FIB_MC,
        },
        BenchProgram {
            name: "bots-nqueens",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "taskwait", "critical", "nested"],
            source: NQUEENS_MC,
        },
        BenchProgram {
            name: "bots-sparselu",
            suite: Suite::Tmb,
            racy: false,
            tasksan_ncs: true,
            features: &["task", "dep-in", "dep-inout"],
            source: SPARSELU_MC,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use grindcore::tool::NulTool;
    use grindcore::{ExecMode, Vm, VmConfig};
    use taskgrind::{check_module, TaskgrindConfig};

    fn run(src: &str, nthreads: u64, args: &[&str]) -> grindcore::RunResult {
        let m = guest_rt::build_single("bots.c", src).expect("compiles");
        let cfg = VmConfig { nthreads, ..Default::default() };
        Vm::new(m, Box::new(NulTool), cfg).run(ExecMode::Fast, args)
    }

    #[test]
    fn fib_computes_correctly_any_thread_count() {
        for nt in [1u64, 2, 4] {
            let r = run(FIB_MC, nt, &["11"]);
            assert!(r.ok(), "nt={nt}: {:?} deadlock={}", r.error, r.deadlock);
            assert_eq!(r.stdout_str(), "fib(11) = 89\n", "nt={nt}");
        }
    }

    #[test]
    fn nqueens_counts_solutions() {
        for nt in [1u64, 4] {
            let r = run(NQUEENS_MC, nt, &["6"]);
            assert!(r.ok(), "nt={nt}: {:?}", r.error);
            assert_eq!(r.stdout_str(), "queens(6) = 4\n", "nt={nt}");
        }
    }

    #[test]
    fn sparselu_is_deterministic_across_threads() {
        let r1 = run(SPARSELU_MC, 1, &[]);
        let r4 = run(SPARSELU_MC, 4, &[]);
        assert!(r1.ok() && r4.ok(), "{:?} {:?}", r1.error, r4.error);
        assert_eq!(r1.stdout_str(), r4.stdout_str(), "dep graph serializes the blocks");
        assert!(r1.stdout_str().starts_with("checksum = "));
    }

    #[test]
    fn taskgrind_clean_on_all_bots_workloads() {
        for p in bots_corpus() {
            let m = guest_rt::build_single(p.name, p.source).unwrap();
            let cfg = TaskgrindConfig {
                vm: VmConfig { nthreads: 2, ..Default::default() },
                ..Default::default()
            };
            let r = check_module(&m, &[], &cfg);
            assert!(r.run.ok(), "{}: {:?}", p.name, r.run.error);
            // nqueens/fib conflicts live in reused stack frames of
            // sibling subtrees (the paper's residual stack FP) — require
            // zero *heap/global* reports, the meaningful surface here.
            let real: Vec<_> = r.reports.iter().filter(|rep| rep.region != "stack").collect();
            assert!(real.is_empty(), "{}: {:#?}", p.name, real);
        }
    }

    #[test]
    fn racy_sparselu_is_detected() {
        let m = guest_rt::build_single("sparselu.c", SPARSELU_MC).unwrap();
        let cfg = TaskgrindConfig {
            vm: VmConfig { nthreads: 1, ..Default::default() },
            ..Default::default()
        };
        let r = check_module(&m, &["-racy"], &cfg);
        assert!(r.run.ok(), "{:?}", r.run.error);
        assert!(
            r.reports.iter().any(|rep| rep.region == "heap"),
            "dropped bdiv→bmod dependence must produce heap conflicts: {}",
            r.render_all()
        );
    }

    #[test]
    fn deep_nesting_stresses_the_runtime() {
        // fib(14) ≈ 1200 tasks with nesting depth 14
        let r = run(FIB_MC, 4, &["14"]);
        assert!(r.ok(), "{:?} deadlock={}", r.error, r.deadlock);
        assert_eq!(r.stdout_str(), "fib(14) = 377\n");
        assert!(r.metrics.threads_created >= 4);
    }
}
