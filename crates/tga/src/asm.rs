//! A minimal assembler and disassembler for TGA.
//!
//! The assembler exists so `grindcore` can be tested without pulling in
//! the full `minicc` compiler; the disassembler backs `tgrind --disasm`
//! dumps and debugging output.
//!
//! Syntax, one instruction per line (`;` or `#` starts a comment):
//!
//! ```text
//! main:                 ; label (absolute address of the next instruction)
//!     li   a0, 42
//!     addi sp, sp, -16
//!     st   a0, 8(sp)
//!     beq  a0, zero, done
//!     jal  ra, main
//! done:
//!     halt
//! ```

use crate::{reg, Inst, Op, INST_SIZE};
use std::collections::HashMap;

/// Disassemble a single instruction at `addr`.
pub fn disassemble(inst: &Inst, addr: u64) -> String {
    let m = inst.op.mnemonic();
    let rd = reg::name(inst.rd);
    let rs1 = reg::name(inst.rs1);
    let rs2 = reg::name(inst.rs2);
    let imm = inst.imm;
    match inst.op {
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::Sll
        | Op::Srl
        | Op::Sra
        | Op::Slt
        | Op::Sltu
        | Op::Seq
        | Op::Sne
        | Op::Sle
        | Op::Fadd
        | Op::Fsub
        | Op::Fmul
        | Op::Fdiv
        | Op::Feq
        | Op::Flt
        | Op::Fle => {
            format!("{addr:#08x}: {m} {rd}, {rs1}, {rs2}")
        }
        Op::Fsqrt | Op::Fneg | Op::Fabs | Op::Fcvtif | Op::Fcvtfi => {
            format!("{addr:#08x}: {m} {rd}, {rs1}")
        }
        Op::Addi | Op::Andi | Op::Ori | Op::Xori | Op::Slli | Op::Srli | Op::Srai | Op::Slti => {
            format!("{addr:#08x}: {m} {rd}, {rs1}, {imm}")
        }
        Op::Li => format!("{addr:#08x}: {m} {rd}, {imm}"),
        Op::Ld | Op::Lb => format!("{addr:#08x}: {m} {rd}, {imm}({rs1})"),
        Op::St | Op::Sb => format!("{addr:#08x}: {m} {rs2}, {imm}({rs1})"),
        Op::Jal => format!("{addr:#08x}: {m} {rd}, {imm:#x}"),
        Op::Jalr => format!("{addr:#08x}: {m} {rd}, {rs1}, {imm}"),
        Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu => {
            format!("{addr:#08x}: {m} {rs1}, {rs2}, {imm:#x}")
        }
        Op::Cas => format!("{addr:#08x}: {m} {rd}, ({rs1}), {rs2}"),
        Op::Amoadd => format!("{addr:#08x}: {m} {rd}, ({rs1}), {rs2}"),
        Op::Sys => format!("{addr:#08x}: {m} {rd}, {imm}"),
        Op::Clreq => format!("{addr:#08x}: {m} {rd}"),
        Op::Halt | Op::Nop => format!("{addr:#08x}: {m}"),
    }
}

/// Disassemble a code slice starting at `base`.
pub fn disassemble_all(code: &[Inst], base: u64) -> String {
    code.iter()
        .enumerate()
        .map(|(i, inst)| disassemble(inst, base + i as u64 * INST_SIZE))
        .collect::<Vec<_>>()
        .join("\n")
}

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "asm line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

struct PendingInst {
    line: usize,
    op: Op,
    rd: u8,
    rs1: u8,
    rs2: u8,
    imm: ImmSpec,
}

enum ImmSpec {
    Value(i64),
    Label(String),
    None,
}

/// Assemble a program. Labels become absolute addresses relative to `base`.
/// Returns the instructions and the label map.
pub fn assemble(src: &str, base: u64) -> Result<(Vec<Inst>, HashMap<String, u64>), AsmError> {
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut pending: Vec<PendingInst> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        // Leading labels, possibly several on one line.
        while let Some(colon) = rest.find(':') {
            let (lbl, after) = rest.split_at(colon);
            let lbl = lbl.trim();
            if lbl.is_empty() || lbl.contains(char::is_whitespace) {
                break;
            }
            let addr = base + pending.len() as u64 * INST_SIZE;
            if labels.insert(lbl.to_string(), addr).is_some() {
                return Err(AsmError { line, msg: format!("duplicate label `{lbl}`") });
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        pending.push(parse_inst(rest, line)?);
    }

    let mut code = Vec::with_capacity(pending.len());
    for p in pending {
        let imm = match p.imm {
            ImmSpec::Value(v) => v,
            ImmSpec::None => 0,
            ImmSpec::Label(l) => *labels
                .get(&l)
                .ok_or_else(|| AsmError { line: p.line, msg: format!("undefined label `{l}`") })?
                as i64,
        };
        code.push(Inst::new(p.op, p.rd, p.rs1, p.rs2, imm));
    }
    Ok((code, labels))
}

fn parse_inst(text: &str, line: usize) -> Result<PendingInst, AsmError> {
    let err = |msg: String| AsmError { line, msg };
    let (mn, args_text) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let op = ALL_OPS
        .iter()
        .copied()
        .find(|o| o.mnemonic() == mn)
        .ok_or_else(|| err(format!("unknown mnemonic `{mn}`")))?;
    let args: Vec<&str> = if args_text.is_empty() {
        vec![]
    } else {
        args_text.split(',').map(|a| a.trim()).collect()
    };

    let parse_reg = |s: &str| -> Result<u8, AsmError> {
        reg::parse(s).ok_or_else(|| err(format!("bad register `{s}`")))
    };
    let parse_imm = |s: &str| -> ImmSpec {
        let val = if let Some(hex) = s.strip_prefix("0x") {
            i64::from_str_radix(hex, 16).ok()
        } else if let Some(hex) = s.strip_prefix("-0x") {
            i64::from_str_radix(hex, 16).ok().map(|v| -v)
        } else {
            s.parse::<i64>().ok()
        };
        match val {
            Some(v) => ImmSpec::Value(v),
            None => ImmSpec::Label(s.to_string()),
        }
    };
    // `imm(reg)` addressing for loads/stores.
    let parse_mem = |s: &str| -> Result<(ImmSpec, u8), AsmError> {
        let open = s.find('(').ok_or_else(|| err(format!("expected imm(reg), got `{s}`")))?;
        let close = s.rfind(')').ok_or_else(|| err(format!("expected imm(reg), got `{s}`")))?;
        let immpart = s[..open].trim();
        let regpart = s[open + 1..close].trim();
        let imm = if immpart.is_empty() { ImmSpec::Value(0) } else { parse_imm(immpart) };
        Ok((imm, parse_reg(regpart)?))
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(format!("`{mn}` expects {n} operands, got {}", args.len())))
        }
    };

    let mut p = PendingInst { line, op, rd: 0, rs1: 0, rs2: 0, imm: ImmSpec::None };
    match op {
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::Sll
        | Op::Srl
        | Op::Sra
        | Op::Slt
        | Op::Sltu
        | Op::Seq
        | Op::Sne
        | Op::Sle
        | Op::Fadd
        | Op::Fsub
        | Op::Fmul
        | Op::Fdiv
        | Op::Feq
        | Op::Flt
        | Op::Fle => {
            want(3)?;
            p.rd = parse_reg(args[0])?;
            p.rs1 = parse_reg(args[1])?;
            p.rs2 = parse_reg(args[2])?;
        }
        Op::Fsqrt | Op::Fneg | Op::Fabs | Op::Fcvtif | Op::Fcvtfi => {
            want(2)?;
            p.rd = parse_reg(args[0])?;
            p.rs1 = parse_reg(args[1])?;
        }
        Op::Addi | Op::Andi | Op::Ori | Op::Xori | Op::Slli | Op::Srli | Op::Srai | Op::Slti => {
            want(3)?;
            p.rd = parse_reg(args[0])?;
            p.rs1 = parse_reg(args[1])?;
            p.imm = parse_imm(args[2]);
        }
        Op::Li => {
            want(2)?;
            p.rd = parse_reg(args[0])?;
            p.imm = parse_imm(args[1]);
        }
        Op::Ld | Op::Lb => {
            want(2)?;
            p.rd = parse_reg(args[0])?;
            let (imm, r) = parse_mem(args[1])?;
            p.imm = imm;
            p.rs1 = r;
        }
        Op::St | Op::Sb => {
            want(2)?;
            p.rs2 = parse_reg(args[0])?;
            let (imm, r) = parse_mem(args[1])?;
            p.imm = imm;
            p.rs1 = r;
        }
        Op::Jal => {
            want(2)?;
            p.rd = parse_reg(args[0])?;
            p.imm = parse_imm(args[1]);
        }
        Op::Jalr => {
            want(3)?;
            p.rd = parse_reg(args[0])?;
            p.rs1 = parse_reg(args[1])?;
            p.imm = parse_imm(args[2]);
        }
        Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu => {
            want(3)?;
            p.rs1 = parse_reg(args[0])?;
            p.rs2 = parse_reg(args[1])?;
            p.imm = parse_imm(args[2]);
        }
        Op::Cas | Op::Amoadd => {
            want(3)?;
            p.rd = parse_reg(args[0])?;
            let addr = args[1].trim_start_matches('(').trim_end_matches(')');
            p.rs1 = parse_reg(addr)?;
            p.rs2 = parse_reg(args[2])?;
        }
        Op::Sys => {
            want(2)?;
            p.rd = parse_reg(args[0])?;
            p.imm = parse_imm(args[1]);
        }
        Op::Clreq => {
            want(1)?;
            p.rd = parse_reg(args[0])?;
        }
        Op::Halt | Op::Nop => want(0)?,
    }
    Ok(p)
}

const ALL_OPS: &[Op] = &[
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::Rem,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Sll,
    Op::Srl,
    Op::Sra,
    Op::Slt,
    Op::Sltu,
    Op::Seq,
    Op::Sne,
    Op::Sle,
    Op::Addi,
    Op::Andi,
    Op::Ori,
    Op::Xori,
    Op::Slli,
    Op::Srli,
    Op::Srai,
    Op::Slti,
    Op::Li,
    Op::Fadd,
    Op::Fsub,
    Op::Fmul,
    Op::Fdiv,
    Op::Fsqrt,
    Op::Fneg,
    Op::Fabs,
    Op::Feq,
    Op::Flt,
    Op::Fle,
    Op::Fcvtif,
    Op::Fcvtfi,
    Op::Ld,
    Op::St,
    Op::Lb,
    Op::Sb,
    Op::Jal,
    Op::Jalr,
    Op::Beq,
    Op::Bne,
    Op::Blt,
    Op::Bge,
    Op::Bltu,
    Op::Cas,
    Op::Amoadd,
    Op::Sys,
    Op::Clreq,
    Op::Halt,
    Op::Nop,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::CODE_BASE;

    #[test]
    fn assemble_simple_program() {
        let src = "
            main:
                li   a0, 42
                addi sp, sp, -16
                st   a0, 8(sp)
                ld   a1, 8(sp)
                beq  a0, a1, done
                nop
            done:
                halt
        ";
        let (code, labels) = assemble(src, CODE_BASE).unwrap();
        assert_eq!(code.len(), 7);
        assert_eq!(labels["main"], CODE_BASE);
        assert_eq!(labels["done"], CODE_BASE + 6 * INST_SIZE);
        assert_eq!(code[0], Inst::new(Op::Li, reg::A0, 0, 0, 42));
        assert_eq!(code[2], Inst::new(Op::St, 0, reg::SP, reg::A0, 8));
        assert_eq!(
            code[4],
            Inst::new(Op::Beq, 0, reg::A0, reg::A1, (CODE_BASE + 6 * INST_SIZE) as i64)
        );
    }

    #[test]
    fn forward_and_backward_labels() {
        let src = "
            loop: addi t0, t0, 1
                  blt t0, t1, loop
                  jal ra, end
                  nop
            end:  halt
        ";
        let (code, labels) = assemble(src, 0x100).unwrap();
        assert_eq!(code[1].imm, 0x100);
        assert_eq!(code[2].imm, labels["end"] as i64);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = assemble("  bogus a0, a1\n", 0).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("unknown mnemonic"));

        let e = assemble("\n add a0, a1\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("expects 3 operands"));

        let e = assemble("jal ra, nowhere", 0).unwrap_err();
        assert!(e.msg.contains("undefined label"));

        let e = assemble("x: nop\nx: nop", 0).unwrap_err();
        assert!(e.msg.contains("duplicate label"));
    }

    #[test]
    fn disassemble_roundtrips_through_assembler() {
        let src = "
            start:
                li    a0, -7
                addi  t0, a0, 12
                st    t0, 0(sp)
                ld    t1, 0(sp)
                fadd  t2, t0, t1
                cas   t3, (a1), t4
                amoadd t5, (a1), t4
                sys   a0, 3
                jalr  zero, ra, 0
                halt
        ";
        let (code, _) = assemble(src, 0x40).unwrap();
        let text = disassemble_all(&code, 0x40);
        // Every mnemonic we emitted shows up in the disassembly.
        for mn in ["li", "addi", "st", "ld", "fadd", "cas", "amoadd", "sys", "jalr", "halt"] {
            assert!(text.contains(mn), "missing {mn} in:\n{text}");
        }
        // And the operand syntax parses back.
        let reparse: String = text
            .lines()
            .map(|l| l.split(": ").nth(1).unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let (code2, _) = assemble(&reparse, 0x40).unwrap();
        assert_eq!(code, code2);
    }
}
