//! tga — the **T**ask**G**rind **A**rchitecture: a synthetic 64-bit guest ISA.
//!
//! The paper instruments x86-64 binaries under Valgrind. A Rust
//! reproduction cannot link against Valgrind (its tool API is C-only), so
//! this crate defines the guest architecture our DBI framework
//! (`grindcore`) instruments instead. It is a load/store RISC machine
//! chosen to make the *binary* aspects of the paper real:
//!
//! * instructions have a genuine fixed-width binary encoding
//!   ([`Inst::encode`]/[`Inst::decode`], round-trip property-tested), so
//!   "binary instrumentation" means decoding actual machine words;
//! * a [`module::Module`] is an executable image: code, data, BSS, a TLS
//!   template, a symbol table and a DWARF-like line table — everything the
//!   ignore-lists, stack traces and error reports of Taskgrind consume;
//! * a tiny assembler/disassembler ([`asm`]) supports tests and dumps.
//!
//! ## Register convention
//!
//! | register | alias | role |
//! |---|---|---|
//! | r0  | `zero` | hardwired zero |
//! | r1  | `ra`   | return address |
//! | r2  | `sp`   | stack pointer |
//! | r3  | `fp`   | frame pointer |
//! | r4  | `tp`   | thread pointer (TLS base) |
//! | r5–r12 | `a0`–`a7` | arguments / return value in `a0` |
//! | r13–r22 | `t0`–`t9` | caller-saved temporaries |
//! | r23–r31 | `s1`–`s9` | callee-saved |

pub mod asm;
pub mod module;

use serde::{Deserialize, Serialize};

/// Number of general-purpose guest registers.
pub const NUM_REGS: usize = 32;
/// Size in bytes of one encoded instruction.
pub const INST_SIZE: u64 = 16;

/// Named registers of the calling convention.
pub mod reg {
    pub const ZERO: u8 = 0;
    pub const RA: u8 = 1;
    pub const SP: u8 = 2;
    pub const FP: u8 = 3;
    /// Thread pointer: base of the executing thread's TLS block.
    pub const TP: u8 = 4;
    pub const A0: u8 = 5;
    pub const A1: u8 = 6;
    pub const A2: u8 = 7;
    pub const A3: u8 = 8;
    pub const A4: u8 = 9;
    pub const A5: u8 = 10;
    pub const A6: u8 = 11;
    pub const A7: u8 = 12;
    pub const T0: u8 = 13;
    pub const T1: u8 = 14;
    pub const T2: u8 = 15;
    pub const T3: u8 = 16;
    pub const T4: u8 = 17;
    pub const T5: u8 = 18;
    pub const T6: u8 = 19;
    pub const T7: u8 = 20;
    pub const T8: u8 = 21;
    pub const T9: u8 = 22;
    pub const S1: u8 = 23;
    pub const S9: u8 = 31;

    /// Human-readable register name.
    pub fn name(r: u8) -> String {
        match r {
            ZERO => "zero".into(),
            RA => "ra".into(),
            SP => "sp".into(),
            FP => "fp".into(),
            TP => "tp".into(),
            A0..=A7 => format!("a{}", r - A0),
            T0..=T9 => format!("t{}", r - T0),
            S1..=S9 => format!("s{}", r - S1 + 1),
            _ => format!("r{r}"),
        }
    }

    /// Parse a register name back to its index.
    pub fn parse(s: &str) -> Option<u8> {
        match s {
            "zero" => Some(ZERO),
            "ra" => Some(RA),
            "sp" => Some(SP),
            "fp" => Some(FP),
            "tp" => Some(TP),
            _ => {
                let (prefix, n) = s.split_at(1);
                let idx: u8 = n.parse().ok()?;
                match prefix {
                    "a" if idx <= 7 => Some(A0 + idx),
                    "t" if idx <= 9 => Some(T0 + idx),
                    "s" if (1..=9).contains(&idx) => Some(S1 + idx - 1),
                    "r" if (idx as usize) < super::NUM_REGS => Some(idx),
                    _ => None,
                }
            }
        }
    }
}

/// Instruction opcodes.
///
/// Three-register ALU ops compute `rd = rs1 op rs2`; immediate forms use
/// `imm` as the second operand. Floating-point ops operate on f64 bit
/// patterns held in the unified register file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Op {
    // --- integer ALU, register form ---
    Add = 0,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    /// Set-less-than (signed): `rd = (rs1 < rs2)`.
    Slt,
    /// Set-less-than unsigned.
    Sltu,
    /// Set-equal.
    Seq,
    /// Set-not-equal.
    Sne,
    /// Set-less-or-equal (signed).
    Sle,
    // --- integer ALU, immediate form ---
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    /// Load a full 64-bit immediate: `rd = imm`.
    Li,
    // --- floating point (f64 bit patterns in GPRs) ---
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fsqrt,
    Fneg,
    Fabs,
    /// `rd = (f64)rs1 == (f64)rs2`.
    Feq,
    Flt,
    Fle,
    /// Convert signed integer rs1 to f64.
    Fcvtif,
    /// Convert f64 rs1 to signed integer (truncating).
    Fcvtfi,
    // --- memory ---
    /// `rd = mem64[rs1 + imm]`.
    Ld,
    /// `mem64[rs1 + imm] = rs2`.
    St,
    /// `rd = zext(mem8[rs1 + imm])`.
    Lb,
    /// `mem8[rs1 + imm] = low8(rs2)`.
    Sb,
    // --- control flow (absolute targets; relocated at link time) ---
    /// `rd = pc + 16; pc = imm`.
    Jal,
    /// `rd = pc + 16; pc = rs1 + imm`.
    Jalr,
    /// `if rs1 == rs2 { pc = imm }`.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    // --- atomics ---
    /// Compare-and-swap: `old = mem64[rs1]; if old == rd { mem64[rs1] = rs2 }; rd = old`.
    Cas,
    /// Atomic fetch-and-add: `rd = mem64[rs1]; mem64[rs1] += rs2`.
    Amoadd,
    // --- system ---
    /// Syscall `imm`; args in `a0..`, result in `rd`.
    Sys,
    /// Client request: code in `a0`, args in `a1..a5`, result in `rd`.
    /// This is how the guest runtime talks to the instrumentation tool.
    Clreq,
    /// Stop the executing thread.
    Halt,
    Nop,
}

impl Op {
    const MAX: u8 = Op::Nop as u8;

    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        if b <= Self::MAX {
            // SAFETY: Op is repr(u8) with contiguous discriminants 0..=MAX.
            Some(unsafe { std::mem::transmute::<u8, Op>(b) })
        } else {
            None
        }
    }

    /// Mnemonic used by the assembler/disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Rem => "rem",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Sll => "sll",
            Op::Srl => "srl",
            Op::Sra => "sra",
            Op::Slt => "slt",
            Op::Sltu => "sltu",
            Op::Seq => "seq",
            Op::Sne => "sne",
            Op::Sle => "sle",
            Op::Addi => "addi",
            Op::Andi => "andi",
            Op::Ori => "ori",
            Op::Xori => "xori",
            Op::Slli => "slli",
            Op::Srli => "srli",
            Op::Srai => "srai",
            Op::Slti => "slti",
            Op::Li => "li",
            Op::Fadd => "fadd",
            Op::Fsub => "fsub",
            Op::Fmul => "fmul",
            Op::Fdiv => "fdiv",
            Op::Fsqrt => "fsqrt",
            Op::Fneg => "fneg",
            Op::Fabs => "fabs",
            Op::Feq => "feq",
            Op::Flt => "flt",
            Op::Fle => "fle",
            Op::Fcvtif => "fcvt.if",
            Op::Fcvtfi => "fcvt.fi",
            Op::Ld => "ld",
            Op::St => "st",
            Op::Lb => "lb",
            Op::Sb => "sb",
            Op::Jal => "jal",
            Op::Jalr => "jalr",
            Op::Beq => "beq",
            Op::Bne => "bne",
            Op::Blt => "blt",
            Op::Bge => "bge",
            Op::Bltu => "bltu",
            Op::Cas => "cas",
            Op::Amoadd => "amoadd",
            Op::Sys => "sys",
            Op::Clreq => "clreq",
            Op::Halt => "halt",
            Op::Nop => "nop",
        }
    }

    /// Does this opcode end a superblock during translation?
    pub fn ends_block(self) -> bool {
        matches!(
            self,
            Op::Jal
                | Op::Jalr
                | Op::Beq
                | Op::Bne
                | Op::Blt
                | Op::Bge
                | Op::Bltu
                | Op::Sys
                | Op::Clreq
                | Op::Halt
        )
    }
}

/// A decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inst {
    pub op: Op,
    pub rd: u8,
    pub rs1: u8,
    pub rs2: u8,
    pub imm: i64,
}

impl Inst {
    /// Shorthand constructor.
    pub fn new(op: Op, rd: u8, rs1: u8, rs2: u8, imm: i64) -> Inst {
        Inst { op, rd, rs1, rs2, imm }
    }

    /// Encode to the two little-endian 64-bit machine words.
    pub fn encode(&self) -> [u8; 16] {
        let word0: u64 = (self.op as u64)
            | ((self.rd as u64) << 8)
            | ((self.rs1 as u64) << 16)
            | ((self.rs2 as u64) << 24);
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&word0.to_le_bytes());
        out[8..].copy_from_slice(&(self.imm as u64).to_le_bytes());
        out
    }

    /// Decode from machine words. Returns `None` for an invalid opcode or
    /// out-of-range register field — the VM treats that as SIGILL.
    pub fn decode(bytes: &[u8; 16]) -> Option<Inst> {
        let word0 = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let op = Op::from_u8((word0 & 0xff) as u8)?;
        let rd = ((word0 >> 8) & 0xff) as u8;
        let rs1 = ((word0 >> 16) & 0xff) as u8;
        let rs2 = ((word0 >> 24) & 0xff) as u8;
        if rd as usize >= NUM_REGS || rs1 as usize >= NUM_REGS || rs2 as usize >= NUM_REGS {
            return None;
        }
        let imm = u64::from_le_bytes(bytes[8..].try_into().unwrap()) as i64;
        Some(Inst { op, rd, rs1, rs2, imm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_basic() {
        let i = Inst::new(Op::Addi, reg::A0, reg::SP, 0, -48);
        let enc = i.encode();
        assert_eq!(Inst::decode(&enc), Some(i));
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let mut bytes = [0u8; 16];
        bytes[0] = 0xff;
        assert_eq!(Inst::decode(&bytes), None);
    }

    #[test]
    fn decode_rejects_bad_register() {
        let i = Inst::new(Op::Add, 0, 0, 0, 0);
        let mut enc = i.encode();
        enc[1] = 40; // rd out of range
        assert_eq!(Inst::decode(&enc), None);
    }

    #[test]
    fn op_from_u8_covers_all_and_rejects_past_end() {
        for b in 0..=Op::MAX {
            let op = Op::from_u8(b).expect("valid opcode");
            assert_eq!(op as u8, b);
        }
        assert_eq!(Op::from_u8(Op::MAX + 1), None);
    }

    #[test]
    fn block_enders() {
        assert!(Op::Jal.ends_block());
        assert!(Op::Sys.ends_block());
        assert!(Op::Clreq.ends_block());
        assert!(Op::Halt.ends_block());
        assert!(!Op::Add.ends_block());
        assert!(!Op::Ld.ends_block());
        assert!(!Op::Cas.ends_block());
    }

    #[test]
    fn register_names_roundtrip() {
        for r in 0..NUM_REGS as u8 {
            let n = reg::name(r);
            assert_eq!(reg::parse(&n), Some(r), "register {r} name {n}");
        }
        assert_eq!(reg::parse("bogus"), None);
        assert_eq!(reg::parse("a9"), None);
    }

    #[test]
    fn full_width_immediates_survive() {
        for imm in [i64::MIN, -1, 0, 1, i64::MAX, 0x1234_5678_9abc_def0] {
            let i = Inst::new(Op::Li, reg::T0, 0, 0, imm);
            assert_eq!(Inst::decode(&i.encode()), Some(i));
        }
    }
}
