//! Executable module format: code, data, TLS template, symbols and a
//! DWARF-like line table.
//!
//! A [`Module`] is what `minicc` emits and what `grindcore` loads. It
//! carries everything Taskgrind's report machinery needs from "debug
//! information compiled into the binary" (paper §III-C): a symbol table
//! used by ignore-/instrument-lists and stack traces, and an
//! address→`file:line` mapping used by error reports.
//!
//! Modules serialize to a small binary container ([`Module::to_bytes`] /
//! [`Module::from_bytes`]) so programs can be "compiled" once and loaded
//! as opaque binaries — the situation heavyweight DBI is designed for.

use crate::{Inst, INST_SIZE};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Default load address of the code section.
pub const CODE_BASE: u64 = 0x1_0000;
/// Alignment applied between sections.
pub const SECTION_ALIGN: u64 = 0x1000;

/// What a symbol labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymKind {
    Func,
    Data,
    /// A thread-local variable; `addr` is the offset inside the TLS block.
    Tls,
}

/// A named address range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Symbol {
    pub name: String,
    pub addr: u64,
    pub size: u64,
    pub kind: SymKind,
}

/// One row of the line table: the guest instruction at `addr` came from
/// `files[file] : line`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineInfo {
    pub addr: u64,
    pub file: u32,
    pub line: u32,
}

/// A resolved source location.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrcLoc {
    pub file: String,
    pub line: u32,
}

impl std::fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// An executable image for the TGA machine.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Load address of the first instruction.
    pub code_base: u64,
    /// The text section.
    pub code: Vec<Inst>,
    /// Load address of the data section.
    pub data_base: u64,
    /// Initialized data.
    pub data: Vec<u8>,
    /// Zero-initialized space following `data`.
    pub bss_size: u64,
    /// Per-thread TLS initialization image; each thread gets a copy.
    pub tls_template: Vec<u8>,
    /// Extra zero-initialized TLS space past the template.
    pub tls_bss: u64,
    /// Entry point address (conventionally `_start`).
    pub entry: u64,
    /// Symbol table, sorted by address at finalize time.
    pub symbols: Vec<Symbol>,
    /// Source file names referenced by `lines`.
    pub files: Vec<String>,
    /// Line table, sorted by address.
    pub lines: Vec<LineInfo>,
}

impl Module {
    /// Create an empty module at the default load address.
    pub fn new() -> Module {
        Module { code_base: CODE_BASE, ..Module::default() }
    }

    /// End address (exclusive) of the code section.
    pub fn code_end(&self) -> u64 {
        self.code_base + self.code.len() as u64 * INST_SIZE
    }

    /// End address (exclusive) of data + bss.
    pub fn data_end(&self) -> u64 {
        self.data_base + self.data.len() as u64 + self.bss_size
    }

    /// First address the guest heap may use.
    pub fn heap_start(&self) -> u64 {
        (self.data_end() + SECTION_ALIGN - 1) & !(SECTION_ALIGN - 1)
    }

    /// Total per-thread TLS block size in bytes.
    pub fn tls_size(&self) -> u64 {
        self.tls_template.len() as u64 + self.tls_bss
    }

    /// `[base, end)` address range of the text section.
    pub fn code_range(&self) -> std::ops::Range<u64> {
        self.code_base..self.code_end()
    }

    /// `[base, end)` address range of data + bss.
    pub fn data_range(&self) -> std::ops::Range<u64> {
        self.data_base..self.data_end()
    }

    /// Does `addr` fall inside data or bss?
    pub fn is_data_addr(&self, addr: u64) -> bool {
        self.data_range().contains(&addr)
    }

    /// Does `addr` fall inside the text section?
    pub fn is_code_addr(&self, addr: u64) -> bool {
        addr >= self.code_base
            && addr < self.code_end()
            && (addr - self.code_base).is_multiple_of(INST_SIZE)
    }

    /// Fetch the instruction at `addr`, if it is a valid code address.
    pub fn fetch(&self, addr: u64) -> Option<Inst> {
        if !self.is_code_addr(addr) {
            return None;
        }
        let idx = ((addr - self.code_base) / INST_SIZE) as usize;
        self.code.get(idx).copied()
    }

    /// Sort the symbol and line tables; call once after construction.
    pub fn finalize(&mut self) {
        self.symbols.sort_by_key(|s| s.addr);
        self.lines.sort_by_key(|l| l.addr);
    }

    /// The function symbol covering `addr`, if any.
    pub fn find_func(&self, addr: u64) -> Option<&Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymKind::Func)
            .find(|s| addr >= s.addr && addr < s.addr + s.size)
    }

    /// Any symbol covering `addr` (data symbols included).
    pub fn find_symbol(&self, addr: u64) -> Option<&Symbol> {
        self.symbols
            .iter()
            .find(|s| s.kind != SymKind::Tls && addr >= s.addr && addr < s.addr + s.size)
    }

    /// Look up a symbol by exact name.
    pub fn symbol_by_name(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Source location of the instruction at `addr`: the last line-table
    /// row at or before `addr` (standard line-table semantics).
    pub fn line_for(&self, addr: u64) -> Option<SrcLoc> {
        let idx = self.lines.partition_point(|l| l.addr <= addr);
        if idx == 0 {
            return None;
        }
        let li = &self.lines[idx - 1];
        // Do not attribute addresses past the end of the code section.
        if addr >= self.code_end() {
            return None;
        }
        Some(SrcLoc { file: self.files.get(li.file as usize)?.clone(), line: li.line })
    }

    /// Serialize to the binary container format.
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_slice(b"TGA1");
        b.put_u64_le(self.code_base);
        b.put_u64_le(self.code.len() as u64);
        for i in &self.code {
            b.put_slice(&i.encode());
        }
        b.put_u64_le(self.data_base);
        put_bytes(&mut b, &self.data);
        b.put_u64_le(self.bss_size);
        put_bytes(&mut b, &self.tls_template);
        b.put_u64_le(self.tls_bss);
        b.put_u64_le(self.entry);
        b.put_u64_le(self.symbols.len() as u64);
        for s in &self.symbols {
            put_str(&mut b, &s.name);
            b.put_u64_le(s.addr);
            b.put_u64_le(s.size);
            b.put_u8(match s.kind {
                SymKind::Func => 0,
                SymKind::Data => 1,
                SymKind::Tls => 2,
            });
        }
        b.put_u64_le(self.files.len() as u64);
        for f in &self.files {
            put_str(&mut b, f);
        }
        b.put_u64_le(self.lines.len() as u64);
        for l in &self.lines {
            b.put_u64_le(l.addr);
            b.put_u32_le(l.file);
            b.put_u32_le(l.line);
        }
        b.freeze()
    }

    /// Parse the binary container format.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Module, String> {
        fn need(buf: &[u8], n: usize) -> Result<(), String> {
            if buf.remaining() < n {
                Err("truncated module".into())
            } else {
                Ok(())
            }
        }
        need(buf, 4)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != b"TGA1" {
            return Err("bad magic".into());
        }
        need(buf, 16)?;
        let code_base = buf.get_u64_le();
        let n_code = buf.get_u64_le() as usize;
        need(buf, n_code * 16)?;
        let mut code = Vec::with_capacity(n_code);
        for _ in 0..n_code {
            let mut raw = [0u8; 16];
            buf.copy_to_slice(&mut raw);
            code.push(Inst::decode(&raw).ok_or("bad instruction encoding")?);
        }
        need(buf, 8)?;
        let data_base = buf.get_u64_le();
        let data = get_bytes(&mut buf)?;
        need(buf, 8)?;
        let bss_size = buf.get_u64_le();
        let tls_template = get_bytes(&mut buf)?;
        need(buf, 24)?;
        let tls_bss = buf.get_u64_le();
        let entry = buf.get_u64_le();
        let n_syms = buf.get_u64_le() as usize;
        let mut symbols = Vec::with_capacity(n_syms);
        for _ in 0..n_syms {
            let name = get_str(&mut buf)?;
            need(buf, 17)?;
            let addr = buf.get_u64_le();
            let size = buf.get_u64_le();
            let kind = match buf.get_u8() {
                0 => SymKind::Func,
                1 => SymKind::Data,
                2 => SymKind::Tls,
                k => return Err(format!("bad symbol kind {k}")),
            };
            symbols.push(Symbol { name, addr, size, kind });
        }
        need(buf, 8)?;
        let n_files = buf.get_u64_le() as usize;
        let mut files = Vec::with_capacity(n_files);
        for _ in 0..n_files {
            files.push(get_str(&mut buf)?);
        }
        need(buf, 8)?;
        let n_lines = buf.get_u64_le() as usize;
        need(buf, n_lines * 16)?;
        let mut lines = Vec::with_capacity(n_lines);
        for _ in 0..n_lines {
            let addr = buf.get_u64_le();
            let file = buf.get_u32_le();
            let line = buf.get_u32_le();
            lines.push(LineInfo { addr, file, line });
        }
        Ok(Module {
            code_base,
            code,
            data_base,
            data,
            bss_size,
            tls_template,
            tls_bss,
            entry,
            symbols,
            files,
            lines,
        })
    }
}

fn put_bytes(b: &mut BytesMut, s: &[u8]) {
    b.put_u64_le(s.len() as u64);
    b.put_slice(s);
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, String> {
    if buf.remaining() < 8 {
        return Err("truncated module".into());
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n {
        return Err("truncated module".into());
    }
    let mut v = vec![0u8; n];
    buf.copy_to_slice(&mut v);
    Ok(v)
}

fn put_str(b: &mut BytesMut, s: &str) {
    put_bytes(b, s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, String> {
    String::from_utf8(get_bytes(buf)?).map_err(|_| "bad utf-8 in module string".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Op};

    fn sample() -> Module {
        let mut m = Module::new();
        m.code = vec![
            Inst::new(Op::Li, reg::A0, 0, 0, 42),
            Inst::new(Op::Sys, reg::ZERO, 0, 0, 0),
            Inst::new(Op::Halt, 0, 0, 0, 0),
        ];
        m.data_base = m.heap_start_unaligned_for_test();
        m.data = vec![1, 2, 3, 4];
        m.bss_size = 16;
        m.tls_template = vec![9, 9];
        m.tls_bss = 6;
        m.entry = m.code_base;
        m.symbols.push(Symbol {
            name: "main".into(),
            addr: m.code_base,
            size: 3 * INST_SIZE,
            kind: SymKind::Func,
        });
        m.symbols.push(Symbol {
            name: "g".into(),
            addr: m.data_base,
            size: 4,
            kind: SymKind::Data,
        });
        m.files.push("a.c".into());
        m.lines.push(LineInfo { addr: m.code_base, file: 0, line: 3 });
        m.lines.push(LineInfo { addr: m.code_base + 32, file: 0, line: 5 });
        m.finalize();
        m
    }

    impl Module {
        fn heap_start_unaligned_for_test(&self) -> u64 {
            self.code_end()
        }
    }

    #[test]
    fn layout_queries() {
        let m = sample();
        assert_eq!(m.code_end(), m.code_base + 48);
        assert!(m.is_code_addr(m.code_base));
        assert!(m.is_code_addr(m.code_base + 16));
        assert!(!m.is_code_addr(m.code_base + 8), "misaligned");
        assert!(!m.is_code_addr(m.code_end()));
        assert_eq!(m.fetch(m.code_base).unwrap().op, Op::Li);
        assert_eq!(m.fetch(m.code_base + 32).unwrap().op, Op::Halt);
        assert_eq!(m.fetch(m.code_end()), None);
        assert_eq!(m.tls_size(), 8);
        assert_eq!(m.heap_start() % SECTION_ALIGN, 0);
        assert!(m.heap_start() >= m.data_end());
    }

    #[test]
    fn symbol_lookup() {
        let m = sample();
        assert_eq!(m.find_func(m.code_base + 16).unwrap().name, "main");
        assert_eq!(m.find_func(m.code_end()), None);
        assert_eq!(m.find_symbol(m.data_base + 2).unwrap().name, "g");
        assert!(m.symbol_by_name("main").is_some());
        assert!(m.symbol_by_name("nope").is_none());
    }

    #[test]
    fn line_table_semantics() {
        let m = sample();
        assert_eq!(m.line_for(m.code_base).unwrap().line, 3);
        // Address between rows attributes to the previous row.
        assert_eq!(m.line_for(m.code_base + 16).unwrap().line, 3);
        assert_eq!(m.line_for(m.code_base + 32).unwrap().line, 5);
        assert_eq!(m.line_for(m.code_base - 16), None);
        assert_eq!(m.line_for(m.code_end() + 64), None);
    }

    #[test]
    fn container_roundtrip() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = Module::from_bytes(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn container_rejects_garbage() {
        assert!(Module::from_bytes(b"").is_err());
        assert!(Module::from_bytes(b"NOPE").is_err());
        let m = sample();
        let bytes = m.to_bytes();
        assert!(Module::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}
