//! Property tests for the TGA instruction codec: `Inst::encode` and
//! `Inst::decode` must be mutually inverse over the valid instruction
//! space, and `decode` must be total (never panic) over arbitrary
//! 16-byte words — the decoder runs on whatever the lifter fetches,
//! including garbage after self-modifying stores.

use proptest::prelude::*;
use tga::{Inst, Op, NUM_REGS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode ∘ decode = id over arbitrary *valid* instructions:
    /// every opcode, every register triple, the full immediate range.
    #[test]
    fn encode_decode_round_trip(
        opcode in 0u8..(Op::Nop as u8 + 1),
        rd in 0u8..NUM_REGS as u8,
        rs1 in 0u8..NUM_REGS as u8,
        rs2 in 0u8..NUM_REGS as u8,
        imm in 0u64..u64::MAX,
    ) {
        let op = Op::from_u8(opcode).expect("range covers exactly the valid opcodes");
        let inst = Inst::new(op, rd, rs1, rs2, imm as i64);
        let decoded = Inst::decode(&inst.encode());
        prop_assert_eq!(decoded, Some(inst));
    }

    /// decode is total: arbitrary 16-byte words either decode to an
    /// instruction that re-encodes to the canonical form of those bytes,
    /// or are rejected with `None` — never a panic.
    #[test]
    fn decode_never_panics_and_is_idempotent(lo in 0u64..u64::MAX, hi in 0u64..u64::MAX) {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&lo.to_le_bytes());
        bytes[8..].copy_from_slice(&hi.to_le_bytes());
        if let Some(inst) = Inst::decode(&bytes) {
            // Decoding is a projection: re-encoding and re-decoding is
            // stable even when the raw word had junk in unused bits.
            let canon = inst.encode();
            prop_assert_eq!(Inst::decode(&canon), Some(inst));
        }
    }
}
