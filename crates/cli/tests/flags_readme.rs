//! The README's engine-flag reference table is generated from
//! [`tg_cli::engine::FLAGS`]; this test diffs the two so the
//! documentation cannot drift from the code.

#[test]
fn readme_flag_table_matches_declaration() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(path).expect("README.md readable");
    let begin = "<!-- flags:begin -->";
    let end = "<!-- flags:end -->";
    let start = readme.find(begin).expect("README missing flags:begin marker") + begin.len();
    let stop = readme[start..].find(end).expect("README missing flags:end marker") + start;
    let in_readme = readme[start..stop].trim();
    let generated = tg_cli::engine::render_flag_table();
    assert_eq!(
        in_readme,
        generated.trim(),
        "README engine-flag table is stale: paste the output of \
         tg_cli::engine::render_flag_table() between the flags:begin/end markers"
    );
}
