//! tgrind — compile a minic program and run it under an analysis tool.
//!
//! ```text
//! tgrind [options] <program.c> [-- <guest args>...]
//! tgrind lint [--lint-json=<file>] <program.c>
//!                        static analysis only: CFG stats, lock findings
//!                        (deadlock cycles, double locks, lock leaks);
//!                        exits non-zero when there are findings
//! tgrind warm --code-cache=<dir> <program.c>
//!                        precompile the whole statically recoverable
//!                        CFG into the persistent code cache
//!
//!   --tool=<taskgrind|archer|tasksan|romp|none>   (default: taskgrind)
//!   --threads=<n>        OMP_NUM_THREADS analog    (default: 1)
//!   --seed=<n>           scheduler seed            (default: 42)
//!   --random-sched       random scheduling policy
//!   --no-ignore-list     record runtime-internal accesses too
//!   --keep-free          do not replace the allocator (IV-B off)
//!   --no-static-filter   do not prune instrumentation with static facts
//!   --no-static-concurrency  disable the static concurrency pass: no
//!                        lock findings in lint and no statically-proven
//!                        guard masks in the sweep (verdicts unchanged)
//!   --lint-json=<file>   (lint mode) dump the lint registry as JSON
//!   --no-chaining        disable superblock chaining (slow dispatch)
//!   --cache-blocks=<n>   translation-cache capacity in superblocks
//!   --no-suppress        disable all analysis-time suppression
//!   --suppressions=<f>   Valgrind-style report suppression file
//!   --analysis-threads=<n>   analysis host threads (default: 0 = auto,
//!                        std::thread::available_parallelism)
//!   --parallel-analysis=<n>  alias for --analysis-threads
//!   --no-sweep           all-pairs reference pair generation instead of
//!                        the address-indexed sweep
//!   --no-bulk            per-access interval-tree inserts instead of
//!                        bulk ingestion (TG_NO_BULK=1 equivalent)
//!   --no-fuse            disable peephole fusion in the lifter
//!                        (TG_NO_FUSE=1 equivalent)
//!   --code-cache=<dir>   persistent on-disk cache of compiled blocks
//!                        and static facts (TG_CODE_CACHE equivalent)
//!   --no-code-cache      ignore --code-cache / TG_CODE_CACHE
//!   --streaming          online bounded-memory analysis: retire segments
//!                        as the happens-before frontier passes them and
//!                        analyze per epoch on a background pool
//!                        (TG_STREAMING=1 equivalent)
//!   --no-streaming       force the batch reference engine
//!   --max-live-segments=<n>  streaming backpressure: block the guest
//!                        when more closed segments are resident (0 = off)
//!   --trace-out=<file>   write a Chrome-trace/Perfetto JSON timeline
//!                        (TG_TRACE_OUT equivalent)
//!   --metrics-json=<file>    dump the metrics registry as JSON
//!                        (TG_METRICS_JSON equivalent)
//!   --self-profile       sample executed-op budget per guest function
//!                        (TG_SELF_PROFILE equivalent)
//!   --dot=<file>         write the segment graph as Graphviz DOT
//!   --disasm             dump the compiled guest binary and exit
//! ```
//!
//! Every engine escape hatch is resolved once, in
//! [`tg_cli::engine::EngineConfig`], with precedence **explicit flag >
//! environment variable > default**; the flag reference table in the
//! README is generated from [`tg_cli::engine::FLAGS`].

use grindcore::{SchedPolicy, VmConfig};
use minicc::SourceFile;
use std::process::ExitCode;
use taskgrind::analysis::SuppressOptions;
use taskgrind::tool::RecordOptions;
use taskgrind::{check_module, TaskgrindConfig};
use tg_baselines::{archer::run_archer, romp::run_romp, tasksan::run_tasksan};
use tg_cli::engine::{parse_args, EngineConfig, Opts};

/// Write `text` to `path`, reporting (but not aborting on) failure.
fn write_artifact(what: &str, path: &str, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("tgrind: cannot write {what} {path}: {e}");
    }
}

/// Flush the trace ring to `--trace-out` and the registry to
/// `--metrics-json`, when requested.
fn write_observability(eng: &EngineConfig, reg: &tg_obs::Registry) {
    if let Some(path) = &eng.trace_out {
        write_artifact("trace", path, &tg_obs::trace::export_chrome_json());
    }
    if let Some(path) = &eng.metrics_json {
        write_artifact("metrics", path, &reg.to_json());
    }
}

/// Render the top of the self-profile (`profile.*` registry entries)
/// when `--self-profile` was given.
fn render_profile(reg: &tg_obs::Registry) -> String {
    let mut rows: Vec<(&str, u64)> = reg
        .iter()
        .filter_map(|(k, v)| {
            let name = k.strip_prefix("profile.")?;
            match v {
                tg_obs::Value::U64(n) => Some((name, *n)),
                _ => None,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let total: u64 = rows.iter().map(|r| r.1).sum();
    let mut out = String::new();
    if total == 0 {
        return out;
    }
    out.push_str("== self-profile (sampled ops per guest function):\n");
    for (name, ops) in rows.iter().take(10) {
        out.push_str(&format!(
            "     {:>6.2}%  {:>12}  {}\n",
            100.0 * *ops as f64 / total as f64,
            ops,
            name
        ));
    }
    out
}

/// The recording options shared by `tgrind warm` and the taskgrind run
/// path. Factored so both sides instrument identically — a warmed block
/// must be byte-for-byte what the cold translation pipeline produces.
fn record_options(o: &Opts, eng: &EngineConfig) -> RecordOptions {
    RecordOptions {
        ignore_list: if o.no_ignore { Vec::new() } else { taskgrind::tool::default_ignore_list() },
        replace_allocator: !o.keep_free,
        static_filter: eng.static_filter,
        static_concurrency: eng.static_concurrency,
        bulk_ingest: eng.bulk,
        ..Default::default()
    }
}

/// Open the on-disk code cache for `m` under the current configuration.
/// The fingerprint folds in everything instrumentation-shaping that is
/// *not* already an [`EngineConfig`] translation knob: the tool name and
/// the two RecordOptions toggles that change what gets instrumented.
fn open_code_cache(
    dir: &str,
    m: &tga::module::Module,
    o: &Opts,
    eng: &EngineConfig,
) -> Option<tg_cache::DiskCodeCache> {
    let parts = vec![
        format!("tool={}", o.tool),
        format!("ignore={}", !o.no_ignore),
        format!("allocator={}", !o.keep_free),
    ];
    let fp = eng.translation_fingerprint(&parts);
    match tg_cache::DiskCodeCache::open(std::path::Path::new(dir), tg_cache::module_hash(m), fp) {
        Ok(c) => Some(c),
        Err(e) => {
            eprintln!("tgrind: cannot open code cache {dir}: {e}");
            None
        }
    }
}

fn main() -> ExitCode {
    let o = parse_args(std::env::args().skip(1));
    let text = match std::fs::read_to_string(&o.program) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tgrind: cannot read {}: {e}", o.program);
            return ExitCode::from(2);
        }
    };
    let file = SourceFile::new(o.program.clone(), text);

    let build = |tsan: bool| {
        let r = if tsan {
            guest_rt::build_program_tsan(std::slice::from_ref(&file))
        } else {
            guest_rt::build_program(std::slice::from_ref(&file))
        };
        r.unwrap_or_else(|e| {
            eprintln!("tgrind: {e}");
            std::process::exit(1);
        })
    };

    let eng = EngineConfig::resolve(&o);
    eng.export_fuse();
    if eng.trace_out.is_some() {
        tg_obs::trace::init_default();
    }
    let vm = VmConfig {
        nthreads: o.threads,
        seed: o.seed,
        sched: if o.random { SchedPolicy::Random } else { SchedPolicy::RoundRobin },
        chaining: eng.chaining,
        cache_blocks: o.cache_blocks.unwrap_or_else(|| VmConfig::default().cache_blocks),
        compile_threads: eng.compile_threads,
        self_profile: eng.self_profile,
        ..Default::default()
    };
    let guest_args: Vec<&str> = o.guest_args.iter().map(|s| s.as_str()).collect();

    if o.disasm {
        let m = build(false);
        println!("{}", tga::asm::disassemble_all(&m.code, m.code_base));
        return ExitCode::SUCCESS;
    }

    if o.lint {
        let m = build(false);
        let opts = tga_analysis::AnalyzeOpts { concurrency: eng.static_concurrency };
        let facts = tga_analysis::analyze_with(&m, &opts);
        // Findings route through one registry: the printed report is the
        // `lint.report` entry, and `--lint-json` dumps the same registry,
        // so human and machine output cannot disagree.
        let mut reg = tg_obs::Registry::new();
        tg_cli::lint::publish(&facts, &mut reg);
        print!("{}", reg.str("lint.report"));
        if let Some(path) = &o.lint_json {
            write_artifact("lint json", path, &reg.to_json());
        }
        return ExitCode::from(if reg.u64("lint.findings") > 0 { 1 } else { 0 });
    }

    if o.warm {
        let Some(dir) = eng.code_cache.clone() else {
            eprintln!(
                "tgrind warm: no cache directory (pass --code-cache=DIR or set TG_CODE_CACHE)"
            );
            return ExitCode::from(2);
        };
        if o.tool != "taskgrind" {
            eprintln!("tgrind warm: only the taskgrind tool is cacheable (got `{}`)", o.tool);
            return ExitCode::from(2);
        }
        let m = build(false);
        let Some(mut cache) = open_code_cache(&dir, &m, &o, &eng) else {
            return ExitCode::from(2);
        };
        let stats = tg_cli::warm::warm_module(
            &m,
            record_options(&o, &eng),
            &mut cache,
            eng.compile_threads,
        );
        if let Err(e) = cache.flush() {
            eprintln!("tgrind warm: cannot write {}: {e}", cache.path().display());
            return ExitCode::from(2);
        }
        eprintln!(
            "== warm: {} block(s) precompiled, {} already cached, {} unliftable | {} worker(s), {:.0} blocks/s | facts {} | {}",
            stats.precompiled,
            stats.already_cached,
            stats.skipped,
            stats.threads,
            stats.blocks_per_sec,
            if stats.facts_stored { "stored" } else { "reused" },
            cache.path().display(),
        );
        return ExitCode::SUCCESS;
    }

    match o.tool.as_str() {
        "none" => {
            let m = build(false);
            let r = grindcore::Vm::new(m, Box::new(grindcore::tool::NulTool), vm)
                .run(grindcore::ExecMode::Fast, &guest_args);
            print!("{}", r.stdout_str());
            eprintln!(
                "== tgrind(none): {} instrs, exit {:?}, deadlock={}",
                r.metrics.instrs, r.exit_code, r.deadlock
            );
            let mut reg = tg_obs::Registry::new();
            r.metrics.publish(&mut reg);
            eng.publish(&mut reg);
            eprint!("{}", render_profile(&reg));
            write_observability(&eng, &reg);
            ExitCode::SUCCESS
        }
        "archer" => {
            let m = build(true);
            let r = run_archer(&m, &guest_args, &vm);
            print!("{}", r.run.stdout_str());
            for rep in &r.reports {
                eprintln!("{rep}");
            }
            eprintln!("== archer: {} report(s) in {:.3}s", r.n_reports, r.time_secs);
            ExitCode::from(if r.n_reports > 0 { 1 } else { 0 })
        }
        "tasksan" => {
            let m = build(true);
            let r = run_tasksan(&m, &guest_args, &vm);
            print!("{}", r.run.stdout_str());
            for rep in &r.reports {
                eprintln!("{rep}");
            }
            eprintln!("== tasksanitizer: {} report(s) in {:.3}s", r.n_reports, r.time_secs);
            ExitCode::from(if r.n_reports > 0 { 1 } else { 0 })
        }
        "romp" => {
            let m = build(false);
            let r = run_romp(&m, &guest_args, &vm);
            print!("{}", r.run.stdout_str());
            for rep in &r.reports {
                eprintln!("{rep}");
            }
            eprintln!("== romp: {} report(s), segv={} in {:.3}s", r.n_reports, r.segv, r.time_secs);
            ExitCode::from(if r.n_reports > 0 || r.segv { 1 } else { 0 })
        }
        "taskgrind" => {
            let m = build(false);
            // The CLI keeps the concretely typed cache for the post-run
            // flush; the VM and taskgrind see it only through the
            // type-erased handle.
            let disk_cache = eng
                .code_cache
                .as_ref()
                .and_then(|dir| open_code_cache(dir, &m, &o, &eng))
                .map(|c| std::rc::Rc::new(std::cell::RefCell::new(c)));
            let cfg = TaskgrindConfig {
                vm,
                record: record_options(&o, &eng),
                code_cache: disk_cache.clone().map(|rc| grindcore::CodeCacheHandle::new(rc)),
                suppress: if o.no_suppress {
                    SuppressOptions {
                        tls: false,
                        stack: false,
                        locks: false,
                        mutexinoutset: false,
                        static_proof: false,
                    }
                } else {
                    SuppressOptions { static_proof: eng.static_concurrency, ..Default::default() }
                },
                analysis_threads: o.analysis_threads,
                sweep: eng.sweep,
                streaming: eng.streaming,
                max_live_segments: eng.max_live_segments,
                suppressions: match &o.suppressions {
                    Some(path) => {
                        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                            eprintln!("tgrind: cannot read {path}: {e}");
                            std::process::exit(2);
                        });
                        taskgrind::suppressions::Suppressions::parse(&text).unwrap_or_else(|e| {
                            eprintln!("tgrind: {e}");
                            std::process::exit(2);
                        })
                    }
                    None => Default::default(),
                },
            };
            let r = check_module(&m, &guest_args, &cfg);
            print!("{}", r.run.stdout_str());
            if let Some(path) = &o.dot {
                if let Err(e) = std::fs::write(path, r.graph.to_dot()) {
                    eprintln!("tgrind: cannot write {path}: {e}");
                }
            }
            eprint!("{}", r.render_all());
            // One registry feeds the `==` summary, the self-profile and
            // the --metrics-json dump, so they can never disagree.
            let mut reg = tg_obs::Registry::new();
            taskgrind::metrics::publish(&r, &mut reg);
            eng.publish(&mut reg);
            eprint!("{}", taskgrind::metrics::render_summary(&reg));
            eprint!("{}", render_profile(&reg));
            write_observability(&eng, &reg);
            if let Some(rc) = &disk_cache {
                let mut cache = rc.borrow_mut();
                if let Err(e) = cache.flush() {
                    eprintln!("tgrind: cannot write code cache {}: {e}", cache.path().display());
                }
            }
            if r.run.deadlock {
                eprintln!("== guest deadlocked");
                return ExitCode::from(3);
            }
            ExitCode::from(if r.n_reports() > 0 { 1 } else { 0 })
        }
        other => {
            eprintln!("unknown tool `{other}`");
            tg_cli::engine::usage()
        }
    }
}
