//! tgrind — compile a minic program and run it under an analysis tool.
//!
//! ```text
//! tgrind [options] <program.c> [-- <guest args>...]
//! tgrind lint <program.c>      static analysis only: CFG stats + findings
//!
//!   --tool=<taskgrind|archer|tasksan|romp|none>   (default: taskgrind)
//!   --threads=<n>        OMP_NUM_THREADS analog    (default: 1)
//!   --seed=<n>           scheduler seed            (default: 42)
//!   --random-sched       random scheduling policy
//!   --no-ignore-list     record runtime-internal accesses too
//!   --keep-free          do not replace the allocator (IV-B off)
//!   --no-static-filter   do not prune instrumentation with static facts
//!   --no-chaining        disable superblock chaining (slow dispatch)
//!   --cache-blocks=<n>   translation-cache capacity in superblocks
//!   --no-suppress        disable all analysis-time suppression
//!   --suppressions=<f>   Valgrind-style report suppression file
//!   --analysis-threads=<n>   analysis host threads (default: 0 = auto,
//!                        std::thread::available_parallelism)
//!   --parallel-analysis=<n>  alias for --analysis-threads
//!   --no-sweep           all-pairs reference pair generation instead of
//!                        the address-indexed sweep
//!   --no-bulk            per-access interval-tree inserts instead of
//!                        bulk ingestion (TG_NO_BULK=1 equivalent)
//!   --no-fuse            disable peephole fusion in the lifter
//!                        (TG_NO_FUSE=1 equivalent)
//!   --streaming          online bounded-memory analysis: retire segments
//!                        as the happens-before frontier passes them and
//!                        analyze per epoch on a background pool
//!                        (TG_STREAMING=1 equivalent)
//!   --no-streaming       force the batch reference engine
//!   --max-live-segments=<n>  streaming backpressure: block the guest
//!                        when more closed segments are resident (0 = off)
//!   --dot=<file>         write the segment graph as Graphviz DOT
//!   --disasm             dump the compiled guest binary and exit
//! ```
//!
//! Every engine escape hatch is resolved once, in [`EngineConfig`],
//! with precedence **explicit flag > environment variable > default**.

use grindcore::{SchedPolicy, VmConfig};
use minicc::SourceFile;
use std::process::ExitCode;
use taskgrind::analysis::SuppressOptions;
use taskgrind::tool::RecordOptions;
use taskgrind::{check_module, TaskgrindConfig};
use tg_baselines::{archer::run_archer, romp::run_romp, tasksan::run_tasksan};

fn usage() -> ! {
    eprintln!("usage: tgrind [--tool=taskgrind|archer|tasksan|romp|none] [--threads=N] [--seed=N]");
    eprintln!(
        "              [--random-sched] [--no-ignore-list] [--keep-free] [--no-static-filter]"
    );
    eprintln!("              [--no-chaining] [--cache-blocks=N] [--no-suppress]");
    eprintln!("              [--analysis-threads=N] [--no-sweep] [--no-bulk] [--no-fuse]");
    eprintln!("              [--streaming|--no-streaming] [--max-live-segments=N]");
    eprintln!("              [--dot=FILE] [--disasm]");
    eprintln!("              <program.c> [-- args...]");
    eprintln!("       tgrind lint <program.c>");
    eprintln!("       env: TG_NO_BULK, TG_NO_FUSE, TG_STREAMING (flags win over env)");
    std::process::exit(2)
}

struct Opts {
    lint: bool,
    tool: String,
    threads: u64,
    seed: u64,
    random: bool,
    no_ignore: bool,
    keep_free: bool,
    no_static_filter: bool,
    no_chaining: bool,
    cache_blocks: Option<usize>,
    no_suppress: bool,
    analysis_threads: usize,
    no_sweep: bool,
    no_bulk: bool,
    no_fuse: bool,
    streaming: bool,
    no_streaming: bool,
    max_live_segments: usize,
    suppressions: Option<String>,
    dot: Option<String>,
    disasm: bool,
    program: String,
    guest_args: Vec<String>,
}

/// Every engine escape hatch, resolved in one place. Precedence:
/// explicit flag > environment variable > default.
///
/// | knob            | flag                        | env variable | default |
/// |-----------------|-----------------------------|--------------|---------|
/// | chaining        | `--no-chaining`             | —            | on      |
/// | sweep engine    | `--no-sweep`                | —            | on      |
/// | bulk ingestion  | `--no-bulk`                 | `TG_NO_BULK` | on      |
/// | peephole fusion | `--no-fuse`                 | `TG_NO_FUSE` | on      |
/// | static filter   | `--no-static-filter`        | —            | on      |
/// | streaming       | `--streaming`/`--no-streaming` | `TG_STREAMING` | off |
/// | backpressure    | `--max-live-segments=N`     | —            | 0 (off) |
struct EngineConfig {
    chaining: bool,
    sweep: bool,
    bulk: bool,
    fuse: bool,
    static_filter: bool,
    streaming: bool,
    max_live_segments: usize,
}

impl EngineConfig {
    fn resolve(o: &Opts) -> EngineConfig {
        EngineConfig {
            chaining: !o.no_chaining,
            sweep: !o.no_sweep,
            bulk: !o.no_bulk && std::env::var_os("TG_NO_BULK").is_none(),
            fuse: !o.no_fuse && std::env::var_os("TG_NO_FUSE").is_none(),
            static_filter: !o.no_static_filter,
            streaming: if o.streaming {
                true
            } else if o.no_streaming {
                false
            } else {
                std::env::var_os("TG_STREAMING").is_some()
            },
            max_live_segments: o.max_live_segments,
        }
    }

    /// `TG_NO_FUSE` is read inside the lifter at translation time, so an
    /// explicit `--no-fuse` (or an explicit absence, when only the env
    /// var was set and no flag given) must be materialized in the
    /// environment before the VM translates anything.
    fn export_fuse(&self) {
        if self.fuse {
            std::env::remove_var("TG_NO_FUSE");
        } else {
            std::env::set_var("TG_NO_FUSE", "1");
        }
    }
}

fn parse_args() -> Opts {
    let mut o = Opts {
        lint: false,
        tool: "taskgrind".into(),
        threads: 1,
        seed: 42,
        random: false,
        no_ignore: false,
        keep_free: false,
        no_static_filter: false,
        no_chaining: false,
        cache_blocks: None,
        no_suppress: false,
        analysis_threads: 0,
        no_sweep: false,
        no_bulk: false,
        no_fuse: false,
        streaming: false,
        no_streaming: false,
        max_live_segments: 0,
        suppressions: None,
        dot: None,
        disasm: false,
        program: String::new(),
        guest_args: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--" {
            o.guest_args.extend(args.by_ref());
            break;
        } else if let Some(v) = a.strip_prefix("--tool=") {
            o.tool = v.to_string();
        } else if let Some(v) = a.strip_prefix("--threads=") {
            o.threads = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = a.strip_prefix("--seed=") {
            o.seed = v.parse().unwrap_or_else(|_| usage());
        } else if a == "--random-sched" {
            o.random = true;
        } else if a == "--no-ignore-list" {
            o.no_ignore = true;
        } else if a == "--keep-free" {
            o.keep_free = true;
        } else if a == "--no-static-filter" {
            o.no_static_filter = true;
        } else if a == "--no-chaining" {
            o.no_chaining = true;
        } else if let Some(v) = a.strip_prefix("--cache-blocks=") {
            o.cache_blocks = Some(v.parse().unwrap_or_else(|_| usage()));
        } else if a == "--no-suppress" {
            o.no_suppress = true;
        } else if let Some(v) =
            a.strip_prefix("--analysis-threads=").or_else(|| a.strip_prefix("--parallel-analysis="))
        {
            o.analysis_threads = v.parse().unwrap_or_else(|_| usage());
        } else if a == "--no-sweep" {
            o.no_sweep = true;
        } else if a == "--no-bulk" {
            o.no_bulk = true;
        } else if a == "--no-fuse" {
            o.no_fuse = true;
        } else if a == "--streaming" {
            o.streaming = true;
        } else if a == "--no-streaming" {
            o.no_streaming = true;
        } else if let Some(v) = a.strip_prefix("--max-live-segments=") {
            o.max_live_segments = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = a.strip_prefix("--suppressions=") {
            o.suppressions = Some(v.to_string());
        } else if let Some(v) = a.strip_prefix("--dot=") {
            o.dot = Some(v.to_string());
        } else if a == "--disasm" {
            o.disasm = true;
        } else if a.starts_with("--") {
            eprintln!("unknown option {a}");
            usage();
        } else if a == "lint" && !o.lint && o.program.is_empty() {
            o.lint = true;
        } else if o.program.is_empty() {
            o.program = a;
        } else {
            usage();
        }
    }
    if o.program.is_empty() {
        usage();
    }
    o
}

fn main() -> ExitCode {
    let o = parse_args();
    let text = match std::fs::read_to_string(&o.program) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tgrind: cannot read {}: {e}", o.program);
            return ExitCode::from(2);
        }
    };
    let file = SourceFile::new(o.program.clone(), text);

    let build = |tsan: bool| {
        let r = if tsan {
            guest_rt::build_program_tsan(std::slice::from_ref(&file))
        } else {
            guest_rt::build_program(std::slice::from_ref(&file))
        };
        r.unwrap_or_else(|e| {
            eprintln!("tgrind: {e}");
            std::process::exit(1);
        })
    };

    let eng = EngineConfig::resolve(&o);
    eng.export_fuse();
    let vm = VmConfig {
        nthreads: o.threads,
        seed: o.seed,
        sched: if o.random { SchedPolicy::Random } else { SchedPolicy::RoundRobin },
        chaining: eng.chaining,
        cache_blocks: o.cache_blocks.unwrap_or_else(|| VmConfig::default().cache_blocks),
        ..Default::default()
    };
    let guest_args: Vec<&str> = o.guest_args.iter().map(|s| s.as_str()).collect();

    if o.disasm {
        let m = build(false);
        println!("{}", tga::asm::disassemble_all(&m.code, m.code_base));
        return ExitCode::SUCCESS;
    }

    if o.lint {
        let m = build(false);
        let facts = tga_analysis::analyze(&m);
        print!("{}", facts.render());
        return ExitCode::from(if facts.findings.is_empty() { 0 } else { 1 });
    }

    match o.tool.as_str() {
        "none" => {
            let m = build(false);
            let r = grindcore::Vm::new(m, Box::new(grindcore::tool::NulTool), vm)
                .run(grindcore::ExecMode::Fast, &guest_args);
            print!("{}", r.stdout_str());
            eprintln!(
                "== tgrind(none): {} instrs, exit {:?}, deadlock={}",
                r.metrics.instrs, r.exit_code, r.deadlock
            );
            ExitCode::SUCCESS
        }
        "archer" => {
            let m = build(true);
            let r = run_archer(&m, &guest_args, &vm);
            print!("{}", r.run.stdout_str());
            for rep in &r.reports {
                eprintln!("{rep}");
            }
            eprintln!("== archer: {} report(s) in {:.3}s", r.n_reports, r.time_secs);
            ExitCode::from(if r.n_reports > 0 { 1 } else { 0 })
        }
        "tasksan" => {
            let m = build(true);
            let r = run_tasksan(&m, &guest_args, &vm);
            print!("{}", r.run.stdout_str());
            for rep in &r.reports {
                eprintln!("{rep}");
            }
            eprintln!("== tasksanitizer: {} report(s) in {:.3}s", r.n_reports, r.time_secs);
            ExitCode::from(if r.n_reports > 0 { 1 } else { 0 })
        }
        "romp" => {
            let m = build(false);
            let r = run_romp(&m, &guest_args, &vm);
            print!("{}", r.run.stdout_str());
            for rep in &r.reports {
                eprintln!("{rep}");
            }
            eprintln!("== romp: {} report(s), segv={} in {:.3}s", r.n_reports, r.segv, r.time_secs);
            ExitCode::from(if r.n_reports > 0 || r.segv { 1 } else { 0 })
        }
        "taskgrind" => {
            let m = build(false);
            let cfg = TaskgrindConfig {
                vm,
                record: RecordOptions {
                    ignore_list: if o.no_ignore {
                        Vec::new()
                    } else {
                        taskgrind::tool::default_ignore_list()
                    },
                    replace_allocator: !o.keep_free,
                    static_filter: eng.static_filter,
                    bulk_ingest: eng.bulk,
                    ..Default::default()
                },
                suppress: if o.no_suppress {
                    SuppressOptions { tls: false, stack: false, locks: false, mutexinoutset: false }
                } else {
                    SuppressOptions::default()
                },
                analysis_threads: o.analysis_threads,
                sweep: eng.sweep,
                streaming: eng.streaming,
                max_live_segments: eng.max_live_segments,
                suppressions: match &o.suppressions {
                    Some(path) => {
                        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                            eprintln!("tgrind: cannot read {path}: {e}");
                            std::process::exit(2);
                        });
                        taskgrind::suppressions::Suppressions::parse(&text).unwrap_or_else(|e| {
                            eprintln!("tgrind: {e}");
                            std::process::exit(2);
                        })
                    }
                    None => Default::default(),
                },
            };
            let r = check_module(&m, &guest_args, &cfg);
            print!("{}", r.run.stdout_str());
            if let Some(path) = &o.dot {
                if let Err(e) = std::fs::write(path, r.graph.to_dot()) {
                    eprintln!("tgrind: cannot write {path}: {e}");
                }
            }
            eprint!("{}", r.render_all());
            eprintln!(
                "== taskgrind: {} report(s) ({} raw candidates) | recording {:.3}s, analysis {:.3}s | {} segments, {} instrs",
                r.n_reports(),
                r.analysis.candidates.len(),
                r.recording_secs,
                r.analysis_secs,
                r.graph.n_nodes(),
                r.run.metrics.instrs,
            );
            eprintln!(
                "== analysis: engine {} | {} thread(s) | {} candidate pair(s), {} unordered | {} raw range(s) | {:.3}s",
                r.analysis_engine,
                r.analysis_threads_used,
                r.analysis.pairs_checked,
                r.analysis.unordered_pairs,
                r.analysis.raw_ranges,
                r.analysis_secs,
            );
            eprintln!(
                "== analysis: {} epoch(s), {} segment(s) retired, {} throttle wait(s) | peak {} live segment(s), {} high-water tool byte(s)",
                r.analysis_epochs,
                r.retired_segments,
                r.throttle_waits,
                r.peak_live_segments,
                r.peak_tool_bytes,
            );
            eprintln!(
                "== static filter: {} | {} site(s) pruned, {} instrumented, {} access(es) recorded",
                if eng.static_filter { "on" } else { "off" },
                r.sites_pruned,
                r.sites_instrumented,
                r.accesses_recorded,
            );
            let d = &r.dispatch;
            eprintln!(
                "== dispatch: chaining {} | {} chain hit(s) ({} ibtc), {} probe(s), {} translation(s), {} eviction(s), {} discard(s)",
                if eng.chaining { "on" } else { "off" },
                d.chain_hits,
                d.ibtc_hits,
                d.probes,
                r.run.metrics.translations,
                d.evictions,
                d.discarded_blocks,
            );
            if r.run.deadlock {
                eprintln!("== guest deadlocked");
                return ExitCode::from(3);
            }
            ExitCode::from(if r.n_reports() > 0 { 1 } else { 0 })
        }
        other => {
            eprintln!("unknown tool `{other}`");
            usage()
        }
    }
}
