//! `tgrind warm`: populate the persistent code cache ahead of time.
//!
//! Recovers the module's CFG statically ([`tga_analysis::cfg::block_starts`]),
//! then runs every block start through the exact translation pipeline the
//! VM uses at run time — lift, iropt, tool instrumentation, flat
//! compilation — and stores the result in a [`DiskCodeCache`]. A later
//! `tgrind --code-cache=DIR` run on the same binary and engine
//! configuration then installs these blocks straight into its translation
//! cache instead of recompiling them.
//!
//! Determinism: `lift_superblock`, `opt::optimize`, the Taskgrind
//! instrumenter and `flat::compile` are all pure functions of
//! `(module, pc, RecordOptions)`, so a block precompiled here is
//! byte-identical to the one a cold run would produce at the same pc.
//! Block starts the static CFG cannot see (e.g. superblock continuation
//! pcs after the instruction-count cap) simply stay cold and are compiled
//! — and appended to the cache — on first execution.

use grindcore::tool::BlockMeta;
use grindcore::{CodeCache, Tool};
use taskgrind::tool::{RecordOptions, TaskgrindTool};
use tg_cache::DiskCodeCache;
use tga::module::Module;

/// What `warm_module` did, for the one-line CLI summary.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmStats {
    /// Block starts compiled and stored this invocation.
    pub precompiled: u64,
    /// Block starts already present in the cache (left untouched).
    pub already_cached: u64,
    /// Block starts the lifter rejected (data mistaken for code, etc.).
    pub skipped: u64,
    /// Whether static facts were computed and stored this invocation.
    pub facts_stored: bool,
}

/// Precompile every statically recoverable block of `module` into
/// `cache`. `record` must match the options a later run will use — the
/// cache file's config fingerprint (chosen by the caller when opening
/// `cache`) is what keeps mismatched configurations apart on disk.
pub fn warm_module(module: &Module, record: RecordOptions, cache: &mut DiskCodeCache) -> WarmStats {
    let mut stats = WarmStats::default();
    let mut record = record;
    // Mirror `taskgrind::check_module`: compute-and-store the static
    // facts so the warmed run skips the whole static analysis too.
    if record.static_filter && record.static_facts.is_none() {
        let cached =
            cache.load_facts().and_then(|bytes| tga_analysis::StaticFacts::from_bytes(&bytes).ok());
        let facts = cached.unwrap_or_else(|| {
            let opts = tga_analysis::AnalyzeOpts { concurrency: record.static_concurrency };
            let facts = tga_analysis::analyze_with(module, &opts);
            cache.store_facts(&facts.to_bytes());
            stats.facts_stored = true;
            facts
        });
        record.static_facts = Some(std::sync::Arc::new(facts));
    }
    let mut tool = TaskgrindTool::new(record);
    for pc in tga_analysis::cfg::block_starts(module) {
        if cache.contains(pc) {
            stats.already_cached += 1;
            continue;
        }
        let block = match grindcore::lift::lift_superblock(module, pc) {
            Ok(b) => b,
            Err(_) => {
                stats.skipped += 1;
                continue;
            }
        };
        // `VmConfig::default().optimize_ir` is true and the CLI never
        // clears it, so the runtime pipeline always runs iropt.
        let block = grindcore::opt::optimize(block);
        let meta = BlockMeta { base: pc, fn_symbol: module.find_func(pc).map(|s| s.name.clone()) };
        let block = tool.instrument(block, &meta);
        let flat = grindcore::flat::compile(&block);
        let bytes = 64 + block.stmts.len() as u64 * 48;
        let (_, end) = block.extent();
        cache.store(pc, end, bytes, &flat);
        stats.precompiled += 1;
    }
    stats
}
