//! `tgrind warm`: populate the persistent code cache ahead of time.
//!
//! Recovers the module's CFG statically ([`tga_analysis::cfg::block_starts`]),
//! then runs every block start through the exact translation pipeline the
//! VM uses at run time — lift, iropt, tool instrumentation, flat
//! compilation — and stores the result in a [`DiskCodeCache`]. A later
//! `tgrind --code-cache=DIR` run on the same binary and engine
//! configuration then installs these blocks straight into its translation
//! cache instead of recompiling them.
//!
//! The compile loop fans out across a [`grindcore::CompilePool`]
//! (`--compile-threads`, same knob as the runtime pipeline): each worker
//! owns a private [`TaskgrindTool`] built *on* the worker thread (the
//! tool is `!Send`), and results are sorted by pc before they are stored
//! so the cache file is byte-identical for any thread count. Stores go
//! into the in-memory container; the caller flushes the file exactly
//! once at the end.
//!
//! Determinism: `lift_superblock`, `opt::optimize`, the Taskgrind
//! instrumenter and `flat::compile` are all pure functions of
//! `(module, pc, RecordOptions)`, so a block precompiled here is
//! byte-identical to the one a cold run would produce at the same pc —
//! on any worker thread. Block starts the static CFG cannot see (e.g.
//! superblock continuation pcs after the instruction-count cap) simply
//! stay cold and are compiled — and appended to the cache — on first
//! execution.

use grindcore::flat::FlatBlock;
use grindcore::tool::BlockMeta;
use grindcore::{CodeCache, CompilePool, Tool};
use std::sync::Arc;
use taskgrind::tool::{RecordOptions, TaskgrindTool};
use tg_cache::DiskCodeCache;
use tga::module::Module;

/// What `warm_module` did, for the one-line CLI summary.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmStats {
    /// Block starts compiled and stored this invocation.
    pub precompiled: u64,
    /// Block starts already present in the cache (left untouched).
    pub already_cached: u64,
    /// Block starts the lifter rejected (data mistaken for code, etc.).
    pub skipped: u64,
    /// Whether static facts were computed and stored this invocation.
    pub facts_stored: bool,
    /// Compile workers used (≥ 1).
    pub threads: usize,
    /// Precompiled blocks per wall-clock second of the compile phase.
    pub blocks_per_sec: f64,
}

/// One precompiled block coming back from a warm worker. `None` body
/// means the lifter rejected the pc.
type WarmDone = (u64, Option<(u64, u64, FlatBlock)>);

/// Precompile every statically recoverable block of `module` into
/// `cache`, fanning the per-block pipeline across `threads` workers
/// (0 or 1 = a single worker). `record` must match the options a later
/// run will use — the cache file's config fingerprint (chosen by the
/// caller when opening `cache`) is what keeps mismatched configurations
/// apart on disk.
pub fn warm_module(
    module: &Module,
    record: RecordOptions,
    cache: &mut DiskCodeCache,
    threads: usize,
) -> WarmStats {
    let mut stats = WarmStats::default();
    let mut record = record;
    // Mirror `taskgrind::check_module`: compute-and-store the static
    // facts so the warmed run skips the whole static analysis too.
    if record.static_filter && record.static_facts.is_none() {
        let cached =
            cache.load_facts().and_then(|bytes| tga_analysis::StaticFacts::from_bytes(&bytes).ok());
        let facts = cached.unwrap_or_else(|| {
            let opts = tga_analysis::AnalyzeOpts { concurrency: record.static_concurrency };
            let facts = tga_analysis::analyze_with(module, &opts);
            cache.store_facts(&facts.to_bytes());
            stats.facts_stored = true;
            facts
        });
        record.static_facts = Some(std::sync::Arc::new(facts));
    }
    let mut todo: Vec<u64> = Vec::new();
    for pc in tga_analysis::cfg::block_starts(module) {
        if cache.contains(pc) {
            stats.already_cached += 1;
        } else {
            todo.push(pc);
        }
    }
    stats.threads = threads.max(1);
    if todo.is_empty() {
        return stats;
    }

    let t0 = std::time::Instant::now();
    let module = Arc::new(module.clone());
    let pool: CompilePool<u64, WarmDone> =
        CompilePool::new(stats.threads, todo.len(), "warm", move |_i| {
            let module = module.clone();
            // The tool is `!Send`; the pool's factory runs on the worker
            // thread, so each worker owns a private instance.
            let mut tool = TaskgrindTool::new(record.clone());
            move |pc: u64| {
                let block = match grindcore::lift::lift_superblock(&module, pc) {
                    Ok(b) => b,
                    Err(_) => return (pc, None),
                };
                // `VmConfig::default().optimize_ir` is true and the CLI
                // never clears it, so the runtime pipeline always runs
                // iropt.
                let block = grindcore::opt::optimize(block);
                let meta =
                    BlockMeta { base: pc, fn_symbol: module.find_func(pc).map(|s| s.name.clone()) };
                let block = tool.instrument(block, &meta);
                let flat = grindcore::flat::compile(&block);
                let bytes = 64 + block.stmts.len() as u64 * 48;
                let (_, end) = block.extent();
                (pc, Some((end, bytes, flat)))
            }
        });
    // The queue is sized to hold every job, so these sends cannot fail.
    for pc in &todo {
        pool.try_send(*pc).expect("warm queue sized for all jobs");
    }
    let mut done = pool.shutdown();
    // Store in pc order so the cache file is identical for any thread
    // count or completion interleaving.
    done.sort_unstable_by_key(|(pc, _)| *pc);
    for (pc, body) in done {
        match body {
            Some((end, bytes, flat)) => {
                cache.store(pc, end, bytes, &flat);
                stats.precompiled += 1;
            }
            None => stats.skipped += 1,
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    if secs > 0.0 {
        stats.blocks_per_sec = stats.precompiled as f64 / secs;
    }
    stats
}
