//! Command-line options and the engine escape-hatch configuration.
//!
//! Every engine knob is resolved once, in [`EngineConfig::resolve`],
//! with precedence **explicit flag > environment variable > default**,
//! and every knob is *declared* in [`FLAGS`] — the README's reference
//! table is generated from that declaration and a test diffs the two,
//! so the documentation cannot rot.

/// Parsed command-line options (see `tgrind --help`).
pub struct Opts {
    pub lint: bool,
    pub warm: bool,
    pub tool: String,
    pub threads: u64,
    pub seed: u64,
    pub random: bool,
    pub no_ignore: bool,
    pub keep_free: bool,
    pub no_static_filter: bool,
    pub no_static_concurrency: bool,
    pub lint_json: Option<String>,
    pub no_chaining: bool,
    pub cache_blocks: Option<usize>,
    pub no_suppress: bool,
    pub analysis_threads: usize,
    /// `--compile-threads=N`, already resolved through
    /// [`parse_thread_count`]; `None` when the flag was absent (the
    /// environment variable may still enable the pool at resolve time).
    pub compile_threads: Option<usize>,
    pub no_sweep: bool,
    pub no_bulk: bool,
    pub no_fuse: bool,
    pub code_cache: Option<String>,
    pub no_code_cache: bool,
    pub streaming: bool,
    pub no_streaming: bool,
    pub max_live_segments: usize,
    pub suppressions: Option<String>,
    pub trace_out: Option<String>,
    pub metrics_json: Option<String>,
    pub self_profile: bool,
    pub dot: Option<String>,
    pub disasm: bool,
    pub program: String,
    pub guest_args: Vec<String>,
}

/// One declared engine knob: the flag that sets it, the environment
/// variable that also sets it (flags win), its default, and what it
/// does. [`FLAGS`] is the single source the README table and `--help`
/// derive from.
pub struct FlagSpec {
    /// Short stable knob name, matching [`EngineConfig::describe`].
    pub knob: &'static str,
    /// Command-line flag(s).
    pub flag: &'static str,
    /// Environment variable, if any.
    pub env: Option<&'static str>,
    /// Default setting, as rendered in the table.
    pub default: &'static str,
    /// Which subsystem the knob belongs to.
    pub subsystem: &'static str,
    /// One-line effect description.
    pub effect: &'static str,
}

/// Every engine escape hatch and observability knob, declared once.
pub const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        knob: "chaining",
        flag: "`--no-chaining`",
        env: None,
        default: "on",
        subsystem: "dispatch",
        effect: "superblock chaining + IBTC; off = tree-walk reference engine",
    },
    FlagSpec {
        knob: "sweep",
        flag: "`--no-sweep`",
        env: None,
        default: "on",
        subsystem: "analysis",
        effect: "address-indexed sweep pair generation; off = all-pairs reference",
    },
    FlagSpec {
        knob: "bulk",
        flag: "`--no-bulk`",
        env: Some("`TG_NO_BULK`"),
        default: "on",
        subsystem: "recording",
        effect: "bulk access ingestion at segment close; off = per-access inserts",
    },
    FlagSpec {
        knob: "fuse",
        flag: "`--no-fuse`",
        env: Some("`TG_NO_FUSE`"),
        default: "on",
        subsystem: "translation",
        effect: "peephole fusion of flat-compiled blocks",
    },
    FlagSpec {
        knob: "compile_threads",
        flag: "`--compile-threads=N`",
        env: Some("`TG_COMPILE_THREADS`"),
        default: "0 (synchronous)",
        subsystem: "translation",
        effect: "background compile workers; dispatch tree-walks blocks until they promote (N=0 means auto)",
    },
    FlagSpec {
        knob: "code_cache",
        flag: "`--code-cache=DIR` / `--no-code-cache`",
        env: Some("`TG_CODE_CACHE`"),
        default: "off",
        subsystem: "translation",
        effect: "persistent on-disk cache of compiled blocks + static facts (see `tgrind warm`)",
    },
    FlagSpec {
        knob: "static_filter",
        flag: "`--no-static-filter`",
        env: None,
        default: "on",
        subsystem: "translation",
        effect: "prune instrumentation of statically safe accesses (tga-analysis)",
    },
    FlagSpec {
        knob: "static_concurrency",
        flag: "`--no-static-concurrency`",
        env: None,
        default: "on",
        subsystem: "analysis",
        effect: "static lockset/lock-order findings + statically-proven sweep suppression",
    },
    FlagSpec {
        knob: "streaming",
        flag: "`--streaming` / `--no-streaming`",
        env: Some("`TG_STREAMING`"),
        default: "off",
        subsystem: "analysis",
        effect: "online bounded-memory segment retirement; off = batch reference",
    },
    FlagSpec {
        knob: "max_live_segments",
        flag: "`--max-live-segments=N`",
        env: None,
        default: "0 (off)",
        subsystem: "analysis",
        effect: "streaming backpressure: block the guest above N resident closed segments",
    },
    FlagSpec {
        knob: "trace_out",
        flag: "`--trace-out=FILE`",
        env: Some("`TG_TRACE_OUT`"),
        default: "off",
        subsystem: "observability",
        effect: "write a Chrome-trace/Perfetto JSON timeline of the run (tg-obs)",
    },
    FlagSpec {
        knob: "metrics_json",
        flag: "`--metrics-json=FILE`",
        env: Some("`TG_METRICS_JSON`"),
        default: "off",
        subsystem: "observability",
        effect: "dump every counter of the metrics registry as JSON",
    },
    FlagSpec {
        knob: "self_profile",
        flag: "`--self-profile`",
        env: Some("`TG_SELF_PROFILE`"),
        default: "off",
        subsystem: "observability",
        effect: "sample executed-op budget per guest function (symbol-resolved)",
    },
];

/// Render [`FLAGS`] as the README's markdown reference table.
pub fn render_flag_table() -> String {
    let mut out = String::new();
    out.push_str("| knob | flag | env variable | default | subsystem | effect |\n");
    out.push_str("|------|------|--------------|---------|-----------|--------|\n");
    for f in FLAGS {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            f.knob,
            f.flag,
            f.env.unwrap_or("—"),
            f.default,
            f.subsystem,
            f.effect
        ));
    }
    out
}

/// Every engine escape hatch, resolved in one place. Precedence:
/// explicit flag > environment variable > default. The knob set is
/// declared in [`FLAGS`]; [`EngineConfig::describe`] must stay in sync
/// (a unit test compares the two).
pub struct EngineConfig {
    pub chaining: bool,
    pub sweep: bool,
    pub bulk: bool,
    pub fuse: bool,
    /// Background compile workers (`--compile-threads`,
    /// `TG_COMPILE_THREADS`); 0 compiles synchronously on the dispatch
    /// thread. The flag/env value 0 means auto (one per host core) and
    /// is resolved before it lands here.
    pub compile_threads: usize,
    /// Directory of the persistent compiled-code cache (`--code-cache`,
    /// `TG_CODE_CACHE`); `None` runs cold.
    pub code_cache: Option<String>,
    pub static_filter: bool,
    pub static_concurrency: bool,
    pub streaming: bool,
    pub max_live_segments: usize,
    /// Write a Chrome-trace JSON timeline here (`--trace-out`).
    pub trace_out: Option<String>,
    /// Write the metrics-registry JSON dump here (`--metrics-json`).
    pub metrics_json: Option<String>,
    /// Enable the sampling self-profiler (`--self-profile`).
    pub self_profile: bool,
}

fn env_path(var: &str) -> Option<String> {
    std::env::var(var).ok().filter(|s| !s.is_empty())
}

/// Resolve a thread-count knob value: 0 means auto — one worker per
/// available host core. Shared convention of `--analysis-threads` and
/// `--compile-threads`.
pub fn resolve_thread_count(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        n
    }
}

/// Parse a `--*-threads=N` flag value and resolve the 0=auto
/// convention; exits with usage on a malformed count.
pub fn parse_thread_count(v: &str) -> usize {
    resolve_thread_count(v.parse().unwrap_or_else(|_| usage()))
}

impl EngineConfig {
    /// Resolve the engine configuration from parsed options and the
    /// environment.
    pub fn resolve(o: &Opts) -> EngineConfig {
        EngineConfig {
            chaining: !o.no_chaining,
            sweep: !o.no_sweep,
            bulk: !o.no_bulk && std::env::var_os("TG_NO_BULK").is_none(),
            fuse: !o.no_fuse && std::env::var_os("TG_NO_FUSE").is_none(),
            compile_threads: o.compile_threads.unwrap_or_else(|| {
                env_path("TG_COMPILE_THREADS")
                    .and_then(|v| v.parse().ok())
                    .map(resolve_thread_count)
                    .unwrap_or(0)
            }),
            code_cache: if o.no_code_cache {
                None
            } else {
                o.code_cache.clone().or_else(|| env_path("TG_CODE_CACHE"))
            },
            static_filter: !o.no_static_filter,
            static_concurrency: !o.no_static_concurrency,
            streaming: if o.streaming {
                true
            } else if o.no_streaming {
                false
            } else {
                std::env::var_os("TG_STREAMING").is_some()
            },
            max_live_segments: o.max_live_segments,
            trace_out: o.trace_out.clone().or_else(|| env_path("TG_TRACE_OUT")),
            metrics_json: o.metrics_json.clone().or_else(|| env_path("TG_METRICS_JSON")),
            self_profile: o.self_profile || std::env::var_os("TG_SELF_PROFILE").is_some(),
        }
    }

    /// `TG_NO_FUSE` is read inside the lifter at translation time, so an
    /// explicit `--no-fuse` (or an explicit absence, when only the env
    /// var was set and no flag given) must be materialized in the
    /// environment before the VM translates anything.
    pub fn export_fuse(&self) {
        if self.fuse {
            std::env::remove_var("TG_NO_FUSE");
        } else {
            std::env::set_var("TG_NO_FUSE", "1");
        }
    }

    /// The resolved value of every declared knob, in [`FLAGS`] order —
    /// the runtime counterpart of the declaration, compared against it
    /// by the rot-proofing test.
    pub fn describe(&self) -> Vec<(&'static str, String)> {
        let onoff = |b: bool| if b { "on" } else { "off" }.to_string();
        vec![
            ("chaining", onoff(self.chaining)),
            ("sweep", onoff(self.sweep)),
            ("bulk", onoff(self.bulk)),
            ("fuse", onoff(self.fuse)),
            ("compile_threads", self.compile_threads.to_string()),
            ("code_cache", self.code_cache.clone().unwrap_or_else(|| "off".into())),
            ("static_filter", onoff(self.static_filter)),
            ("static_concurrency", onoff(self.static_concurrency)),
            ("streaming", onoff(self.streaming)),
            ("max_live_segments", self.max_live_segments.to_string()),
            ("trace_out", self.trace_out.clone().unwrap_or_else(|| "off".into())),
            ("metrics_json", self.metrics_json.clone().unwrap_or_else(|| "off".into())),
            ("self_profile", onoff(self.self_profile)),
        ]
    }

    /// Fingerprint of every knob that changes what a translation looks
    /// like — the config half of the code-cache key. Two runs whose
    /// fingerprints match would compile byte-identical flat blocks (and
    /// identical `StaticFacts`), so they may share cached code; any
    /// other knob (scheduling, analysis engine, observability) is
    /// deliberately excluded. `extra` carries caller context that also
    /// shapes instrumentation (tool name, ignore-list / allocator
    /// replacement settings).
    pub fn translation_fingerprint(&self, extra: &[String]) -> u64 {
        use grindcore::wire::fold64;
        let mut h = fold64(0, b"tgc-fp-v1");
        h = fold64(
            h,
            &[
                self.chaining as u8,
                self.fuse as u8,
                self.static_filter as u8,
                self.static_concurrency as u8,
            ],
        );
        for part in extra {
            h = fold64(h, part.as_bytes());
            h = fold64(h, &[0xff]); // separator: ["ab"] != ["a","b"]
        }
        h
    }

    /// Publish the resolved engine toggles into the metrics registry
    /// under `engine.*`.
    pub fn publish(&self, reg: &mut tg_obs::Registry) {
        reg.set_bool("engine.chaining", self.chaining);
        reg.set_bool("engine.sweep", self.sweep);
        reg.set_bool("engine.bulk", self.bulk);
        reg.set_bool("engine.fuse", self.fuse);
        reg.set_u64("engine.compile_threads", self.compile_threads as u64);
        reg.set_str("engine.code_cache", self.code_cache.as_deref().unwrap_or("off"));
        reg.set_bool("engine.static_filter", self.static_filter);
        reg.set_bool("engine.static_concurrency", self.static_concurrency);
        reg.set_bool("engine.streaming", self.streaming);
        reg.set_u64("engine.max_live_segments", self.max_live_segments as u64);
        reg.set_bool("engine.self_profile", self.self_profile);
    }
}

/// Print the usage banner and exit with status 2.
pub fn usage() -> ! {
    eprintln!("usage: tgrind [--tool=taskgrind|archer|tasksan|romp|none] [--threads=N] [--seed=N]");
    eprintln!(
        "              [--random-sched] [--no-ignore-list] [--keep-free] [--no-static-filter]"
    );
    eprintln!("              [--no-static-concurrency]");
    eprintln!("              [--no-chaining] [--cache-blocks=N] [--no-suppress]");
    eprintln!("              [--analysis-threads=N] [--compile-threads=N] [--no-sweep]");
    eprintln!("              [--no-bulk] [--no-fuse]");
    eprintln!("              [--code-cache=DIR] [--no-code-cache]");
    eprintln!("              [--streaming|--no-streaming] [--max-live-segments=N]");
    eprintln!("              [--trace-out=FILE] [--metrics-json=FILE] [--self-profile]");
    eprintln!("              [--dot=FILE] [--disasm]");
    eprintln!("              <program.c> [-- args...]");
    eprintln!("       tgrind lint [--lint-json=FILE] <program.c>");
    eprintln!("       tgrind warm --code-cache=DIR <program.c>   (precompile the whole CFG)");
    eprintln!("       env: TG_NO_BULK, TG_NO_FUSE, TG_COMPILE_THREADS, TG_CODE_CACHE,");
    eprintln!("            TG_STREAMING, TG_TRACE_OUT, TG_METRICS_JSON, TG_SELF_PROFILE");
    eprintln!("            (flags win over env)");
    std::process::exit(2)
}

/// Parse the process arguments (without the program name).
pub fn parse_args(args: impl Iterator<Item = String>) -> Opts {
    let mut o = Opts {
        lint: false,
        warm: false,
        tool: "taskgrind".into(),
        threads: 1,
        seed: 42,
        random: false,
        no_ignore: false,
        keep_free: false,
        no_static_filter: false,
        no_static_concurrency: false,
        lint_json: None,
        no_chaining: false,
        cache_blocks: None,
        no_suppress: false,
        analysis_threads: 0,
        compile_threads: None,
        no_sweep: false,
        no_bulk: false,
        no_fuse: false,
        code_cache: None,
        no_code_cache: false,
        streaming: false,
        no_streaming: false,
        max_live_segments: 0,
        suppressions: None,
        trace_out: None,
        metrics_json: None,
        self_profile: false,
        dot: None,
        disasm: false,
        program: String::new(),
        guest_args: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--" {
            o.guest_args.extend(args.by_ref());
            break;
        } else if let Some(v) = a.strip_prefix("--tool=") {
            o.tool = v.to_string();
        } else if let Some(v) = a.strip_prefix("--threads=") {
            o.threads = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = a.strip_prefix("--seed=") {
            o.seed = v.parse().unwrap_or_else(|_| usage());
        } else if a == "--random-sched" {
            o.random = true;
        } else if a == "--no-ignore-list" {
            o.no_ignore = true;
        } else if a == "--keep-free" {
            o.keep_free = true;
        } else if a == "--no-static-filter" {
            o.no_static_filter = true;
        } else if a == "--no-static-concurrency" {
            o.no_static_concurrency = true;
        } else if let Some(v) = a.strip_prefix("--lint-json=") {
            o.lint_json = Some(v.to_string());
        } else if a == "--no-chaining" {
            o.no_chaining = true;
        } else if let Some(v) = a.strip_prefix("--cache-blocks=") {
            o.cache_blocks = Some(v.parse().unwrap_or_else(|_| usage()));
        } else if a == "--no-suppress" {
            o.no_suppress = true;
        } else if let Some(v) =
            a.strip_prefix("--analysis-threads=").or_else(|| a.strip_prefix("--parallel-analysis="))
        {
            o.analysis_threads = parse_thread_count(v);
        } else if let Some(v) = a.strip_prefix("--compile-threads=") {
            o.compile_threads = Some(parse_thread_count(v));
        } else if a == "--no-sweep" {
            o.no_sweep = true;
        } else if a == "--no-bulk" {
            o.no_bulk = true;
        } else if a == "--no-fuse" {
            o.no_fuse = true;
        } else if let Some(v) = a.strip_prefix("--code-cache=") {
            o.code_cache = Some(v.to_string());
        } else if a == "--no-code-cache" {
            o.no_code_cache = true;
        } else if a == "--streaming" {
            o.streaming = true;
        } else if a == "--no-streaming" {
            o.no_streaming = true;
        } else if let Some(v) = a.strip_prefix("--max-live-segments=") {
            o.max_live_segments = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = a.strip_prefix("--suppressions=") {
            o.suppressions = Some(v.to_string());
        } else if let Some(v) = a.strip_prefix("--trace-out=") {
            o.trace_out = Some(v.to_string());
        } else if let Some(v) = a.strip_prefix("--metrics-json=") {
            o.metrics_json = Some(v.to_string());
        } else if a == "--self-profile" {
            o.self_profile = true;
        } else if let Some(v) = a.strip_prefix("--dot=") {
            o.dot = Some(v.to_string());
        } else if a == "--disasm" {
            o.disasm = true;
        } else if a.starts_with("--") {
            eprintln!("unknown option {a}");
            usage();
        } else if a == "lint" && !o.lint && !o.warm && o.program.is_empty() {
            o.lint = true;
        } else if a == "warm" && !o.warm && !o.lint && o.program.is_empty() {
            o.warm = true;
        } else if o.program.is_empty() {
            o.program = a;
        } else {
            usage();
        }
    }
    if o.program.is_empty() {
        usage();
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Opts {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn declared_flags_match_engine_config_knobs() {
        let eng = EngineConfig::resolve(&opts(&["p.c"]));
        let declared: Vec<&str> = FLAGS.iter().map(|f| f.knob).collect();
        let described: Vec<&str> = eng.describe().iter().map(|(k, _)| *k).collect();
        assert_eq!(
            declared, described,
            "FLAGS and EngineConfig::describe must list the same knobs in the same order"
        );
    }

    #[test]
    fn observability_flags_parse_and_resolve() {
        let o = opts(&[
            "--trace-out=/tmp/t.json",
            "--metrics-json=/tmp/m.json",
            "--self-profile",
            "p.c",
        ]);
        let eng = EngineConfig::resolve(&o);
        assert_eq!(eng.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(eng.metrics_json.as_deref(), Some("/tmp/m.json"));
        assert!(eng.self_profile);
        let eng = EngineConfig::resolve(&opts(&["p.c"]));
        assert!(eng.trace_out.is_none() || std::env::var_os("TG_TRACE_OUT").is_some());
        assert!(!eng.self_profile || std::env::var_os("TG_SELF_PROFILE").is_some());
    }

    #[test]
    fn code_cache_flags_parse_and_resolve() {
        let o = opts(&["--code-cache=/tmp/tgc", "p.c"]);
        let eng = EngineConfig::resolve(&o);
        assert_eq!(eng.code_cache.as_deref(), Some("/tmp/tgc"));
        // --no-code-cache wins over the directory flag and the env var.
        let o = opts(&["--code-cache=/tmp/tgc", "--no-code-cache", "p.c"]);
        assert!(EngineConfig::resolve(&o).code_cache.is_none());
        let o = opts(&["warm", "p.c"]);
        assert!(o.warm);
        assert_eq!(o.program, "p.c");
    }

    #[test]
    fn fingerprint_tracks_translation_knobs_only() {
        let base = EngineConfig::resolve(&opts(&["p.c"]));
        let fp = base.translation_fingerprint(&[]);
        let nofuse = EngineConfig::resolve(&opts(&["--no-fuse", "p.c"]));
        assert_ne!(fp, nofuse.translation_fingerprint(&[]), "fuse must be keyed");
        let noconc = EngineConfig::resolve(&opts(&["--no-static-concurrency", "p.c"]));
        assert_ne!(fp, noconc.translation_fingerprint(&[]), "static_concurrency must be keyed");
        let streaming = EngineConfig::resolve(&opts(&["--streaming", "p.c"]));
        assert_eq!(
            fp,
            streaming.translation_fingerprint(&[]),
            "analysis-side knobs must not invalidate cached code"
        );
        let pooled = EngineConfig::resolve(&opts(&["--compile-threads=4", "p.c"]));
        assert_eq!(
            fp,
            pooled.translation_fingerprint(&[]),
            "compile scheduling must not invalidate cached code (output is identical)"
        );
        assert_ne!(fp, base.translation_fingerprint(&["tool=archer".into()]));
        assert_ne!(
            base.translation_fingerprint(&["ab".into()]),
            base.translation_fingerprint(&["a".into(), "b".into()]),
            "extra parts must be delimited"
        );
    }

    #[test]
    fn compile_threads_parse_and_resolve() {
        // Flag absent: synchronous engine, regardless of core count.
        let eng = EngineConfig::resolve(&opts(&["p.c"]));
        assert!(
            eng.compile_threads == 0 || std::env::var_os("TG_COMPILE_THREADS").is_some(),
            "no flag, no env: stay synchronous"
        );
        // Explicit count passes through.
        let eng = EngineConfig::resolve(&opts(&["--compile-threads=4", "p.c"]));
        assert_eq!(eng.compile_threads, 4);
        // Explicit 0 means auto: one worker per available core.
        let eng = EngineConfig::resolve(&opts(&["--compile-threads=0", "p.c"]));
        assert_eq!(eng.compile_threads, resolve_thread_count(0));
        assert!(eng.compile_threads >= 1);
        // The shared helper backs --analysis-threads too.
        let o = opts(&["--analysis-threads=0", "p.c"]);
        assert_eq!(o.analysis_threads, resolve_thread_count(0));
        let o = opts(&["--analysis-threads=3", "p.c"]);
        assert_eq!(o.analysis_threads, 3);
    }

    #[test]
    fn flag_table_renders_every_declared_knob() {
        let table = render_flag_table();
        for f in FLAGS {
            assert!(table.contains(f.knob), "table missing knob {}", f.knob);
            assert!(table.contains(f.flag), "table missing flag {}", f.flag);
        }
    }
}
