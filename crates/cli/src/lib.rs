//! Library half of the `tgrind` CLI: argument parsing and the engine
//! escape-hatch configuration.
//!
//! Split from the binary so tests (and the README flag-table check) can
//! reach [`engine::EngineConfig`] and [`engine::FLAGS`] without spawning
//! a process.

pub mod engine;
pub mod lint;
pub mod warm;
