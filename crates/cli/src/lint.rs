//! Publish a static-analysis verdict table ([`StaticFacts`]) into the
//! tg-obs metrics registry and render `tgrind lint`'s output from it.
//!
//! The same single-source-of-truth rule as `taskgrind::metrics`: the
//! human-readable report the CLI prints is read back out of the
//! registry (`lint.report`), and the `--lint-json` dump serializes that
//! registry — so the two can never disagree.

use tg_obs::Registry;
use tga_analysis::StaticFacts;

/// Publish `facts` under the `lint.*` namespace: summary counters, one
/// `lint.finding.NNN` entry per finding (rendered with its `file:line`
/// anchor), and the full human-readable report as `lint.report`.
pub fn publish(facts: &StaticFacts, reg: &mut Registry) {
    reg.set_u64("lint.functions", facts.stats.functions as u64);
    reg.set_u64("lint.blocks", facts.stats.blocks as u64);
    reg.set_u64("lint.safe_pcs", facts.safe_pcs.len() as u64);
    reg.set_u64("lint.access_pcs", facts.access_pcs as u64);
    reg.set_u64("lint.ro_globals", facts.ro.len() as u64);
    reg.set_u64("lint.init_only_globals", facts.init_only.len() as u64);
    reg.set_u64("lint.locks", facts.lock_universe.len() as u64);
    reg.set_u64("lint.guarded_sites", facts.guarded.len() as u64);
    reg.set_u64("lint.findings", facts.findings.len() as u64);
    for (i, f) in facts.findings.iter().enumerate() {
        reg.set_str(&format!("lint.finding.{i:03}"), &f.to_string());
    }
    reg.set_str("lint.report", &facts.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_and_counters_come_from_one_registry() {
        let src = r#"
int main(void) {
    #pragma omp parallel
    {
        #pragma omp critical (a)
        {
            #pragma omp critical (b)
            { }
        }
        #pragma omp critical (b)
        {
            #pragma omp critical (a)
            { }
        }
    }
    return 0;
}
"#;
        let m = guest_rt::build_single("lintcli.c", src).unwrap();
        let facts = tga_analysis::analyze(&m);
        let mut reg = Registry::new();
        publish(&facts, &mut reg);
        // the printed report is exactly the registry entry
        assert_eq!(reg.str("lint.report"), facts.render());
        assert_eq!(reg.u64("lint.findings"), facts.findings.len() as u64);
        // every finding string in the report is in the JSON dump too
        let json = reg.to_json();
        for (i, f) in facts.findings.iter().enumerate() {
            assert!(json.contains(&format!("lint.finding.{i:03}")), "{json}");
            let _ = f;
        }
    }
}
