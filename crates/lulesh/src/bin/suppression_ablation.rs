//! The §IV motivation experiment (E6): how many "determinacy races" the
//! naive tool reports on a small LULESH (the paper: ~400,000 with
//! `-s 4 -tel 2`), and how much each false-positive suppression layer
//! removes.
//!
//! Usage: `cargo run -p tg-lulesh --bin suppression_ablation --release`

use taskgrind::analysis::SuppressOptions;
use taskgrind::tool::default_ignore_list;
use tg_lulesh::harness::{measure_taskgrind_suppression, LuleshParams};

fn main() {
    // the paper's naive-run configuration
    let params =
        LuleshParams { s: 4, tel: 2, tnl: 2, iters: 2, progress: false, racy: false, threads: 1 };
    let all_on = SuppressOptions::default();
    let all_off = SuppressOptions {
        tls: false,
        stack: false,
        locks: false,
        mutexinoutset: false,
        static_proof: false,
    };

    println!("suppression ablation on LULESH -s 4 -tel 2 -tnl 2 -i 2 (non-racy: every report is a false positive)");
    println!("{:<58} {:>12} {:>12}", "configuration", "candidates", "reports");
    println!("{}", "-".repeat(86));

    let naive = measure_taskgrind_suppression(&params, Vec::new(), false, all_off);
    println!(
        "{:<58} {:>12} {:>12}",
        "naive (no ignore-list, allocator kept, no suppression)", naive.1, naive.0
    );

    let ign = measure_taskgrind_suppression(&params, default_ignore_list(), false, all_off);
    println!("{:<58} {:>12} {:>12}", "+ ignore-list (IV-A)", ign.1, ign.0);

    let alloc = measure_taskgrind_suppression(&params, default_ignore_list(), true, all_off);
    println!("{:<58} {:>12} {:>12}", "+ allocator replacement (IV-B)", alloc.1, alloc.0);

    let tls = measure_taskgrind_suppression(
        &params,
        default_ignore_list(),
        true,
        SuppressOptions { tls: true, ..all_off },
    );
    println!("{:<58} {:>12} {:>12}", "+ TLS suppression (IV-C)", tls.1, tls.0);

    let full = measure_taskgrind_suppression(&params, default_ignore_list(), true, all_on);
    println!(
        "{:<58} {:>12} {:>12}",
        "+ stack/lock suppression (IV-D): full Taskgrind", full.1, full.0
    );

    println!("{}", "-".repeat(86));
    println!(
        "suppression layers removed {} of {} candidate ranges ({:.2}%); the full tool reports {}.",
        naive.1 - full.1,
        naive.1,
        100.0 * (naive.1 - full.1) as f64 / naive.1.max(1) as f64,
        full.0
    );
}
