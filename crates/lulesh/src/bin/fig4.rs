//! Regenerates the paper's Fig. 4 (experiment E3): execution time and
//! memory overhead on LULESH as the problem size `-s` varies, with
//! `-tel 4 -tnl 4 -p -i 4`. The reference and Archer run with 4
//! threads, Taskgrind with 1 (exactly the paper's setup).
//!
//! Usage:
//!   cargo run -p tg-lulesh --bin fig4 --release            # s = 4..16
//!   cargo run -p tg-lulesh --bin fig4 --release -- --full  # s = 4..32
//!   cargo run -p tg-lulesh --bin fig4 --release -- --romp  # include ROMP
//!
//! Output is CSV: one row per (s, tool) with seconds, memory and the
//! overhead factors relative to the uninstrumented reference.

use tg_lulesh::harness::{measure, LuleshParams, ToolCfg};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let full = argv.iter().any(|a| a == "--full");
    let with_romp = argv.iter().any(|a| a == "--romp");
    let sizes: &[u64] = if full { &[4, 8, 12, 16, 24, 32] } else { &[4, 8, 12, 16] };

    println!("s,tool,threads,time_secs,mem_bytes,time_overhead,mem_overhead,reports,instrs");
    for &s in sizes {
        let refp = LuleshParams { s, threads: 4, ..Default::default() };
        let none = measure(ToolCfg::None, &refp);
        let archer = measure(ToolCfg::Archer, &refp);
        let tgp = LuleshParams { s, threads: 1, ..Default::default() };
        let tg = measure(ToolCfg::Taskgrind, &tgp);
        let mut rows = vec![none.clone(), archer, tg];
        if with_romp {
            rows.push(measure(ToolCfg::Romp, &tgp));
        }
        for m in rows {
            println!(
                "{},{},{},{:.4},{},{:.1},{:.2},{},{}",
                s,
                m.tool.name().replace(' ', "-"),
                m.params.threads,
                m.time_secs,
                m.mem_bytes,
                m.time_secs / none.time_secs.max(1e-9),
                m.mem_bytes as f64 / none.mem_bytes.max(1) as f64,
                m.reports,
                m.instrs,
            );
        }
    }
    eprintln!(
        "expected shape: O(s^3) growth for every curve; taskgrind >> archer >> none in time;"
    );
    eprintln!("taskgrind > archer > none in memory; ROMP (if enabled) grows far faster in memory.");
}
