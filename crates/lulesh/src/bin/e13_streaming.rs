//! Experiment E13: streaming segment retirement vs the batch engine on
//! dependent task-based LULESH with the Table II configuration
//! (`-s 16 -tel 4 -tnl 4 -p -i 4`).
//!
//! Usage: `cargo run -p tg-lulesh --bin e13_streaming --release [-- --small]`
//!
//! Reports, per engine: wall-clock for the full check (recording +
//! analysis — the streaming engine overlaps them), the tool-structure
//! high-water mark (closed interval trees + pending bulk buffers), and
//! the retirement counters. Both engines must agree on every
//! verdict-bearing output; this binary asserts that before printing.

use std::time::Instant;

use taskgrind::{check_module, TaskgrindConfig};
use tg_lulesh::harness::LuleshParams;
use tg_lulesh::LULESH_MC;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let small = argv.iter().any(|a| a == "--small");
    let s = if small { 8 } else { 16 };

    let params = LuleshParams { s, ..Default::default() };
    let args_owned = params.args();
    let args: Vec<&str> = args_owned.iter().map(|s| s.as_str()).collect();
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");

    let run = |streaming: bool| {
        let cfg = TaskgrindConfig {
            vm: grindcore::VmConfig { nthreads: params.threads, ..Default::default() },
            streaming,
            ..Default::default()
        };
        let t0 = Instant::now();
        let r = check_module(&m, &args, &cfg);
        let t = t0.elapsed().as_secs_f64();
        (r, t)
    };

    println!("E13 — streaming vs batch, LULESH -s {s} -tel 4 -tnl 4 -p -i 4");
    let (batch, t_batch) = run(false);
    let (stream, t_stream) = run(true);

    assert_eq!(batch.analysis.candidates, stream.analysis.candidates, "verdicts must match");
    assert_eq!(batch.render_all(), stream.render_all(), "report text must match");

    for (label, r, t) in [("batch", &batch, t_batch), ("streaming", &stream, t_stream)] {
        println!(
            "{label:<10} wall {t:>7.3} s | high-water {:>10} B | {} epochs, {} retired, peak {} live segs",
            r.peak_tool_bytes, r.analysis_epochs, r.retired_segments, r.peak_live_segments
        );
    }
    let dmem = 100.0 * (1.0 - stream.peak_tool_bytes as f64 / batch.peak_tool_bytes.max(1) as f64);
    let dt = 100.0 * (t_stream / t_batch - 1.0);
    println!("high-water reduction {dmem:.1}% | wall-clock delta {dt:+.1}%");
}
