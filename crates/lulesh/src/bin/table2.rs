//! Regenerates the paper's Table II (experiment E2): execution time,
//! memory usage and number of reports for Archer and Taskgrind on
//! dependent task-based LULESH with `-s 16 -tel 4 -tnl 4 -p -i 4`.
//!
//! Usage: `cargo run -p tg-lulesh --bin table2 --release [-- --small]`
//!
//! Paper values for context (i5-12450H; absolute numbers are not
//! expected to transfer to an emulated substrate — the *ratios* are):
//!
//! ```text
//! racy  nt | time  none/archer/taskgrind | mem none/archer/taskgrind | reports archer/taskgrind
//! no    1  | 0.01 / 0.12 / 1.23          | 10 / 41 / 64 MB           | 0 / 0
//! no    4  | 0.01 / 0.43 / deadlock      | 15 / 83 / deadlock        | 149-273 / deadlock
//! yes   1  | 0.01 / 0.12 / 1.23          | 10 / 41 / 64 MB           | 0 / 458
//! yes   4  | 0.01 / 0.46 / deadlock      | 15 / 84 / deadlock        | 140-221 / deadlock
//! ```
//!
//! The paper's Taskgrind deadlocks when the guest runs multithreaded
//! (cause "remains to be investigated"); our implementation does not.
//! Pass `--emulate-sc24-deadlock` to print those cells as the paper has
//! them instead of measuring.

use tg_lulesh::harness::{measure, measure_archer_range, LuleshParams, ToolCfg};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let small = argv.iter().any(|a| a == "--small");
    let emulate_deadlock = argv.iter().any(|a| a == "--emulate-sc24-deadlock");
    let s = if small { 8 } else { 16 };

    println!("Table II — LULESH -s {s} -tel 4 -tnl 4 -p -i 4 (emulated substrate)");
    println!(
        "{:<5} {:>3} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12} | {:>8} {:>9}",
        "racy",
        "nt",
        "t none (s)",
        "t archer",
        "t taskgrind",
        "mem none",
        "archer",
        "taskgrind",
        "archer#",
        "tg#"
    );
    println!("{}", "-".repeat(122));
    for racy in [false, true] {
        for nt in [1u64, 4] {
            let params = LuleshParams { s, racy, threads: nt, ..Default::default() };
            let none = measure(ToolCfg::None, &params);
            let (alo, ahi, archer) = measure_archer_range(&params, &[42, 1, 2, 3]);
            let archer_reports = if alo == ahi { alo.to_string() } else { format!("{alo}-{ahi}") };
            let (tg_time, tg_mem, tg_rep) = if emulate_deadlock && nt > 1 {
                ("deadlock".into(), "deadlock".into(), "deadlock".to_string())
            } else {
                let tg = measure(ToolCfg::Taskgrind, &params);
                (
                    format!("{:.3}", tg.time_secs),
                    format!("{:.1} MB", tg.mem_mb()),
                    format!("{}", tg.raw_reports),
                )
            };
            println!(
                "{:<5} {:>3} | {:>12.3} {:>12.3} {:>12} | {:>10.1} MB {:>9.1} MB {:>12} | {:>8} {:>9}",
                if racy { "yes" } else { "no" },
                nt,
                none.time_secs,
                archer.time_secs,
                tg_time,
                none.mem_mb(),
                archer.mem_mb(),
                tg_mem,
                archer_reports,
                tg_rep,
            );
        }
    }
    println!("{}", "-".repeat(122));
    println!("expected shape: t(none) < t(archer) < t(taskgrind); mem(none) < mem(archer) < mem(taskgrind);");
    println!("archer reports 0 single-threaded on the racy version; taskgrind reports the removed dependence.");
}
