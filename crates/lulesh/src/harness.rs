//! Shared measurement harness for the LULESH experiments
//! (Table II, Fig. 4, and the §IV suppression ablation).

use crate::LULESH_MC;
use grindcore::tool::NulTool;
use grindcore::{ExecMode, Vm, VmConfig};
use minicc::SourceFile;
use std::time::Instant;
use taskgrind::analysis::SuppressOptions;
use taskgrind::tool::RecordOptions;
use taskgrind::{check_module, TaskgrindConfig};
use tg_baselines::archer::run_archer;
use tg_baselines::romp::run_romp;

/// Which configuration a measurement ran under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToolCfg {
    /// Uninstrumented reference ("No tools").
    None,
    Archer,
    Taskgrind,
    Romp,
}

impl ToolCfg {
    pub fn name(&self) -> &'static str {
        match self {
            ToolCfg::None => "No tools",
            ToolCfg::Archer => "Archer",
            ToolCfg::Taskgrind => "Taskgrind",
            ToolCfg::Romp => "ROMP",
        }
    }
}

/// LULESH run parameters.
#[derive(Clone, Copy, Debug)]
pub struct LuleshParams {
    pub s: u64,
    pub tel: u64,
    pub tnl: u64,
    pub iters: u64,
    pub progress: bool,
    pub racy: bool,
    pub threads: u64,
}

impl Default for LuleshParams {
    fn default() -> Self {
        // the Table II configuration: -s 16 -tel 4 -tnl 4 -p -i 4
        LuleshParams { s: 16, tel: 4, tnl: 4, iters: 4, progress: true, racy: false, threads: 1 }
    }
}

impl LuleshParams {
    pub fn args(&self) -> Vec<String> {
        let mut a = vec![
            "-s".into(),
            self.s.to_string(),
            "-tel".into(),
            self.tel.to_string(),
            "-tnl".into(),
            self.tnl.to_string(),
            "-i".into(),
            self.iters.to_string(),
        ];
        if self.progress {
            a.push("-p".into());
        }
        if self.racy {
            a.push("-racy".into());
        }
        a
    }
}

/// One measurement row.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub tool: ToolCfg,
    pub params: LuleshParams,
    /// Wall-clock seconds of the (instrumented) execution.
    pub time_secs: f64,
    /// Guest memory + tool structures, bytes.
    pub mem_bytes: u64,
    /// Race reports after deduplication (0 for the reference).
    pub reports: usize,
    /// Raw conflicting ranges before deduplication (the paper's Table II
    /// counts are of this kind — 458 on racy single-threaded LULESH).
    pub raw_reports: usize,
    pub deadlock: bool,
    /// Guest instructions executed (the deterministic "work" metric).
    pub instrs: u64,
}

impl Measurement {
    pub fn mem_mb(&self) -> f64 {
        self.mem_bytes as f64 / (1024.0 * 1024.0)
    }
}

fn vm_cfg(threads: u64) -> VmConfig {
    VmConfig { nthreads: threads, ..Default::default() }
}

/// Run one LULESH configuration under one tool.
pub fn measure(tool: ToolCfg, params: &LuleshParams) -> Measurement {
    let args_owned = params.args();
    let args: Vec<&str> = args_owned.iter().map(|s| s.as_str()).collect();
    match tool {
        ToolCfg::None => {
            let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
            let t0 = Instant::now();
            let r =
                Vm::new(m, Box::new(NulTool), vm_cfg(params.threads)).run(ExecMode::Fast, &args);
            Measurement {
                tool,
                params: *params,
                time_secs: t0.elapsed().as_secs_f64(),
                mem_bytes: r.metrics.guest_footprint,
                reports: 0,
                raw_reports: 0,
                deadlock: r.deadlock,
                instrs: r.metrics.instrs,
            }
        }
        ToolCfg::Archer => {
            let m = guest_rt::build_program_tsan(&[SourceFile::new("lulesh.c", LULESH_MC)])
                .expect("compiles");
            let r = run_archer(&m, &args, &vm_cfg(params.threads));
            Measurement {
                tool,
                params: *params,
                time_secs: r.time_secs,
                mem_bytes: r.run.metrics.guest_footprint + r.tool_bytes,
                reports: r.n_reports,
                raw_reports: r.n_reports,
                deadlock: r.run.deadlock,
                instrs: r.run.metrics.instrs,
            }
        }
        ToolCfg::Taskgrind => {
            let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
            let cfg = TaskgrindConfig { vm: vm_cfg(params.threads), ..Default::default() };
            let r = check_module(&m, &args, &cfg);
            Measurement {
                tool,
                params: *params,
                // the paper reports the recording phase only
                time_secs: r.recording_secs,
                // guest + tool structures + the DBI translation cache
                mem_bytes: r.run.metrics.guest_footprint
                    + r.tool_bytes
                    + r.run.metrics.translation_bytes,
                reports: r.n_reports(),
                raw_reports: r.analysis.candidates.len(),
                deadlock: r.run.deadlock,
                instrs: r.run.metrics.instrs,
            }
        }
        ToolCfg::Romp => {
            let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
            let r = run_romp(&m, &args, &vm_cfg(params.threads));
            Measurement {
                tool,
                params: *params,
                time_secs: r.time_secs,
                mem_bytes: r.run.metrics.guest_footprint
                    + r.tool_bytes
                    + r.run.metrics.translation_bytes,
                reports: r.n_reports,
                raw_reports: r.n_reports,
                deadlock: r.run.deadlock,
                instrs: r.run.metrics.instrs,
            }
        }
    }
}

/// Archer's report counts vary with the schedule (the paper publishes
/// ranges like "140 to 221"); measure across a few seeds and return the
/// (min, max) report counts plus the last measurement.
pub fn measure_archer_range(params: &LuleshParams, seeds: &[u64]) -> (usize, usize, Measurement) {
    let args_owned = params.args();
    let args: Vec<&str> = args_owned.iter().map(|s| s.as_str()).collect();
    let m = guest_rt::build_program_tsan(&[SourceFile::new("lulesh.c", crate::LULESH_MC)])
        .expect("compiles");
    let mut lo = usize::MAX;
    let mut hi = 0;
    let mut last = None;
    for &seed in seeds {
        let cfg = VmConfig {
            nthreads: params.threads,
            seed,
            sched: if seed == 42 {
                grindcore::SchedPolicy::RoundRobin
            } else {
                grindcore::SchedPolicy::Random
            },
            quantum: 16,
            ..Default::default()
        };
        let r = run_archer(&m, &args, &cfg);
        lo = lo.min(r.n_reports);
        hi = hi.max(r.n_reports);
        last = Some(Measurement {
            tool: ToolCfg::Archer,
            params: *params,
            time_secs: r.time_secs,
            mem_bytes: r.run.metrics.guest_footprint + r.tool_bytes,
            reports: r.n_reports,
            raw_reports: r.n_reports,
            deadlock: r.run.deadlock,
            instrs: r.run.metrics.instrs,
        });
    }
    (lo, hi, last.expect("at least one seed"))
}

/// Run Taskgrind with configurable suppression (the §IV ablation).
pub fn measure_taskgrind_suppression(
    params: &LuleshParams,
    ignore_list: Vec<String>,
    replace_allocator: bool,
    suppress: SuppressOptions,
) -> (usize, u64, taskgrind::analysis::AnalysisOutput) {
    let args_owned = params.args();
    let args: Vec<&str> = args_owned.iter().map(|s| s.as_str()).collect();
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
    let cfg = TaskgrindConfig {
        vm: vm_cfg(params.threads),
        record: RecordOptions { ignore_list, replace_allocator, ..Default::default() },
        suppress,
        analysis_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ..Default::default()
    };
    let r = check_module(&m, &args, &cfg);
    (r.n_reports(), r.analysis.candidates.len() as u64, r.analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LuleshParams {
        LuleshParams { s: 4, tel: 2, tnl: 2, iters: 2, progress: false, racy: false, threads: 1 }
    }

    #[test]
    fn reference_and_tools_complete() {
        let p = small();
        let none = measure(ToolCfg::None, &p);
        assert!(!none.deadlock);
        assert_eq!(none.reports, 0);
        let tg = measure(ToolCfg::Taskgrind, &p);
        assert!(!tg.deadlock);
        assert_eq!(tg.reports, 0, "non-racy LULESH must be clean under Taskgrind");
        let ar = measure(ToolCfg::Archer, &p);
        assert!(!ar.deadlock);
        assert_eq!(ar.reports, 0);
    }

    #[test]
    fn racy_lulesh_detected_by_taskgrind_single_thread_only() {
        let p = LuleshParams { racy: true, ..small() };
        let tg = measure(ToolCfg::Taskgrind, &p);
        assert!(tg.reports > 0, "removed dependence must be reported");
        // Archer at 1 thread never reports (thread-centric serialization)
        let ar = measure(ToolCfg::Archer, &p);
        assert_eq!(ar.reports, 0, "the Table II Archer single-thread contrast");
    }

    #[test]
    fn overhead_ordering_matches_the_paper() {
        // instructions: taskgrind (DBI) and reference execute the same
        // guest work; time: reference < archer < taskgrind
        let p = small();
        let none = measure(ToolCfg::None, &p);
        let ar = measure(ToolCfg::Archer, &p);
        let tg = measure(ToolCfg::Taskgrind, &p);
        assert!(
            ar.instrs > none.instrs,
            "tsan instrumentation adds guest instructions: {} vs {}",
            ar.instrs,
            none.instrs
        );
        assert!(tg.mem_bytes > none.mem_bytes, "tool structures add memory");
        assert!(ar.mem_bytes > none.mem_bytes);
    }
}
