//! tg-lulesh — a dependent task-based mini-LULESH proxy and the
//! Table II / Fig. 4 harnesses.
//!
//! The paper evaluates on a task-based OpenMP port of LULESH (the
//! Livermore Sedov-blast hydrodynamics proxy) with parameters
//! `-s` (mesh size, O(s³) time and memory), `-tel`/`-tnl` (tasks per
//! element/node loop), `-i` (iterations) and `-p` (progress). Our port
//! keeps the structure that matters for the experiments:
//!
//! * five phases per iteration (force → velocity/position → energy →
//!   EOS → volume), each decomposed into `tel`/`tnl` explicit tasks;
//! * inter-phase ordering expressed with task dependences, using
//!   `inoutset` phase sentinels (phase writers are mutually unordered,
//!   the next phase's readers wait for the whole set);
//! * a **racy variant**: passing `-racy` redirects the energy phase's
//!   input dependence on the node-advance phase to a dummy sentinel —
//!   the removed-dependence experiment of Table II, producing genuine
//!   determinacy races between the velocity writers and energy readers;
//! * the §V-B annotation `tg_set_deferrable(1)`, so single-threaded
//!   Taskgrind still sees the declared task graph while Archer sees a
//!   serialized execution (0 reports — the Table II contrast).

pub mod harness;

/// The mini-LULESH source (minic).
pub const LULESH_MC: &str = r#"
// mini-LULESH: dependent task-based hydrodynamics proxy.
// usage: lulesh -s <size> -tel <n> -tnl <n> -i <iters> [-p] [-racy]

void tg_set_deferrable(long v);

int N;          // elements = s^3
int M;          // nodes = (s+1)^3
int TEL;        // tasks per element loop
int TNL;        // tasks per node loop
int ITERS;
int PROGRESS;
int RACY;

double *p;      // element pressure
double *q;      // element viscosity
double *e;      // element energy
double *v;      // element volume
double *f;      // node force
double *xd;     // node velocity
double *xp;     // node position

// phase sentinels for dependences
int f_ph;
int xd_ph;
int e_ph;
int pq_ph;
int v_ph;
int dummy_ph;

long el_lo(long c) { return c * N / TEL; }
long el_hi(long c) { return (c + 1) * N / TEL; }
long nd_lo(long c) { return c * M / TNL; }
long nd_hi(long c) { return (c + 1) * M / TNL; }

void calc_force(long lo, long hi) {
    for (long n = lo; n < hi; n++) {
        long i = n;
        if (i >= N) i = N - 1;
        long j = i - 1;
        if (j < 0) j = 0;
        f[n] = (p[i] - p[j]) + 0.25 * (q[i] + q[j]);
    }
}

void advance_nodes(long lo, long hi) {
    double dt = 0.001;
    for (long n = lo; n < hi; n++) {
        xd[n] = xd[n] + f[n] * dt;
        xp[n] = xp[n] + xd[n] * dt;
    }
}

void calc_energy(long lo, long hi) {
    for (long i = lo; i < hi; i++) {
        long n = i;
        long m = i + 1;
        double work = (xd[m] - xd[n]) * (p[i] + q[i]);
        double enew = e[i] - 0.5 * work;
        if (enew < 0.0) enew = 0.0;
        e[i] = enew;
    }
}

void calc_eos(long lo, long hi) {
    for (long i = lo; i < hi; i++) {
        double c1s = 2.0 / 3.0;
        p[i] = c1s * e[i] / v[i];
        double ss = sqrt(c1s * e[i]);
        q[i] = 0.1 * ss * fabs(xd[i] - xd[i + 1]);
    }
}

void update_volume(long lo, long hi) {
    for (long i = lo; i < hi; i++) {
        double dv = (xp[i + 1] - xp[i]) * 0.01;
        double vnew = v[i] + dv;
        if (vnew < 0.1) vnew = 0.1;
        v[i] = vnew;
    }
}

void iterate(void) {
    for (long it = 0; it < ITERS; it++) {
        for (long c = 0; c < TNL; c++) {
            long lo = nd_lo(c);
            long hi = nd_hi(c);
            #pragma omp task depend(in: pq_ph) depend(inoutset: f_ph)
            calc_force(lo, hi);
        }
        for (long c = 0; c < TNL; c++) {
            long lo = nd_lo(c);
            long hi = nd_hi(c);
            #pragma omp task depend(in: f_ph) depend(inoutset: xd_ph)
            advance_nodes(lo, hi);
        }
        for (long c = 0; c < TEL; c++) {
            long lo = el_lo(c);
            long hi = el_hi(c);
            if (RACY) {
                // the removed dependence of Table II: the energy phase no
                // longer waits for the node-advance phase, so its reads
                // of xd race with advance_nodes' writes
                #pragma omp task depend(in: dummy_ph) depend(in: pq_ph) depend(inoutset: e_ph)
                calc_energy(lo, hi);
            } else {
                #pragma omp task depend(in: xd_ph) depend(in: pq_ph) depend(inoutset: e_ph)
                calc_energy(lo, hi);
            }
        }
        for (long c = 0; c < TEL; c++) {
            long lo = el_lo(c);
            long hi = el_hi(c);
            #pragma omp task depend(in: e_ph) depend(in: v_ph) depend(inoutset: pq_ph)
            calc_eos(lo, hi);
        }
        for (long c = 0; c < TEL; c++) {
            long lo = el_lo(c);
            long hi = el_hi(c);
            #pragma omp task depend(in: xd_ph) depend(inoutset: v_ph)
            update_volume(lo, hi);
        }
        if (PROGRESS) {
            #pragma omp taskwait
            printf("iteration %d done, e[0]=%f\n", it, e[0]);
        }
    }
}

int main(int argc, char **argv) {
    long s = 8;
    TEL = 4;
    TNL = 4;
    ITERS = 4;
    PROGRESS = 0;
    RACY = 0;
    for (int a = 1; a < argc; a++) {
        if (strcmp(argv[a], "-s") == 0) { a++; s = atoi(argv[a]); }
        else if (strcmp(argv[a], "-tel") == 0) { a++; TEL = atoi(argv[a]); }
        else if (strcmp(argv[a], "-tnl") == 0) { a++; TNL = atoi(argv[a]); }
        else if (strcmp(argv[a], "-i") == 0) { a++; ITERS = atoi(argv[a]); }
        else if (strcmp(argv[a], "-p") == 0) { PROGRESS = 1; }
        else if (strcmp(argv[a], "-racy") == 0) { RACY = 1; }
    }
    N = s * s * s;
    M = (s + 1) * (s + 1) * (s + 1);

    p = (double*) malloc(N * 8);
    q = (double*) malloc(N * 8);
    e = (double*) malloc(N * 8);
    v = (double*) malloc(N * 8);
    f = (double*) malloc(M * 8);
    xd = (double*) malloc(M * 8);
    xp = (double*) malloc(M * 8);

    for (long i = 0; i < N; i++) {
        p[i] = 1.0;
        q[i] = 0.0;
        e[i] = 0.0;
        v[i] = 1.0;
    }
    e[0] = 3.948746e5;   // Sedov point charge at the origin
    for (long n = 0; n < M; n++) {
        f[n] = 0.0;
        xd[n] = 0.0;
        xp[n] = (double) n;
    }

    // paper V-B: tell the tool that tasks are semantically deferrable
    // even when the runtime serializes them on a single thread
    tg_set_deferrable(1);

    #pragma omp parallel
    {
        #pragma omp single
        iterate();
    }

    printf("final e[0]=%f p[0]=%f\n", e[0], p[0]);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use grindcore::tool::NulTool;
    use grindcore::{ExecMode, Vm, VmConfig};

    fn run_plain(args: &[&str], nthreads: u64) -> grindcore::RunResult {
        let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
        let cfg = VmConfig { nthreads, ..Default::default() };
        Vm::new(m, Box::new(NulTool), cfg).run(ExecMode::Fast, args)
    }

    #[test]
    fn runs_and_produces_sane_output() {
        let r = run_plain(&["-s", "4", "-tel", "2", "-tnl", "2", "-i", "2"], 1);
        assert!(r.ok(), "{:?} deadlock={}", r.error, r.deadlock);
        let out = r.stdout_str();
        assert!(out.contains("final e[0]="), "{out}");
        assert!(!out.contains("e[0]=-"), "energy must stay non-negative: {out}");
    }

    #[test]
    fn multithreaded_matches_sequential_when_not_racy() {
        let r1 = run_plain(&["-s", "4", "-i", "3"], 1);
        let r4 = run_plain(&["-s", "4", "-i", "3"], 4);
        assert!(r1.ok() && r4.ok(), "{:?} {:?}", r1.error, r4.error);
        assert_eq!(
            r1.stdout_str(),
            r4.stdout_str(),
            "dependences make the computation deterministic"
        );
    }

    #[test]
    fn progress_flag_prints_each_iteration() {
        let r = run_plain(&["-s", "2", "-i", "3", "-p"], 2);
        assert!(r.ok(), "{:?}", r.error);
        assert_eq!(r.stdout_str().matches("iteration").count(), 3);
    }

    #[test]
    fn problem_size_scales_memory_cubically() {
        // fixed costs (code, stacks) dominate tiny meshes; the *growth*
        // between sizes shows the O(s^3) array footprint
        let m4 = run_plain(&["-s", "4", "-i", "1"], 1).metrics.guest_footprint as f64;
        let m8 = run_plain(&["-s", "8", "-i", "1"], 1).metrics.guest_footprint as f64;
        let m16 = run_plain(&["-s", "16", "-i", "1"], 1).metrics.guest_footprint as f64;
        let d1 = m8 - m4;
        let d2 = m16 - m8;
        assert!(d2 > 4.0 * d1.max(1.0), "growth must be ~cubic: d(4→8)={d1} d(8→16)={d2}");
    }

    #[test]
    fn racy_flag_changes_only_the_dependences() {
        // execution still completes; values may differ, but must be finite
        let r = run_plain(&["-s", "4", "-i", "2", "-racy"], 4);
        assert!(r.ok(), "{:?}", r.error);
        assert!(r.stdout_str().contains("final e[0]="));
    }
}
