//! DBI-substrate ablation: where the ~100x of Table II comes from.
//! The same guest kernel under (a) the fast interpreter, (b) heavyweight
//! DBI with no tool ("nulgrind"), (c) DBI with access counting
//! ("lackey"), and (d) the full Taskgrind recording pass — plus the
//! dispatch ablation: nulgrind with superblock chaining on vs. the
//! `--no-chaining` probe-every-block dispatcher, on the synthetic
//! kernel and on the Table II mini-LULESH kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use grindcore::tool::{CountTool, NulTool};
use grindcore::{ExecMode, Vm, VmConfig};
use taskgrind::tool::{RecordOptions, TaskgrindTool};
use tg_lulesh::LULESH_MC;

const KERNEL: &str = r#"
int main(void) {
    long n = 20000;
    long *a = (long*) malloc(n * 8);
    long i = 0;
    while (i < n) { a[i] = i; i = i + 1; }
    long sum = 0;
    i = 0;
    while (i < n) { sum = sum + a[i] * 3 - (a[i] >> 1); i = i + 1; }
    return sum & 127;
}
"#;

fn bench_dbi(c: &mut Criterion) {
    let module = guest_rt::build_single("kernel.c", KERNEL).unwrap();
    let mut g = c.benchmark_group("dbi_overhead");
    g.sample_size(10);

    g.bench_function("fast_interpreter", |b| {
        b.iter(|| {
            let r = Vm::new(module.clone(), Box::new(NulTool), VmConfig::default())
                .run(ExecMode::Fast, &[]);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_nulgrind_no_iropt", |b| {
        b.iter(|| {
            let cfg = VmConfig { optimize_ir: false, ..Default::default() };
            let r = Vm::new(module.clone(), Box::new(NulTool), cfg).run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_nulgrind", |b| {
        b.iter(|| {
            let r = Vm::new(module.clone(), Box::new(NulTool), VmConfig::default())
                .run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            assert!(r.metrics.dispatch.chain_hits > 0);
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_nulgrind_nochain", |b| {
        b.iter(|| {
            let cfg = VmConfig { chaining: false, ..Default::default() };
            let r = Vm::new(module.clone(), Box::new(NulTool), cfg).run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            assert_eq!(r.metrics.dispatch.chain_hits, 0);
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_countgrind", |b| {
        b.iter(|| {
            let r = Vm::new(module.clone(), Box::new(CountTool::default()), VmConfig::default())
                .run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_taskgrind_recording", |b| {
        b.iter(|| {
            let tool = TaskgrindTool::new(RecordOptions::default());
            let r = Vm::new(module.clone(), Box::new(tool), VmConfig::default())
                .run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.finish();
}

/// The dispatch ablation on the Table II kernel itself: mini-LULESH
/// under nulgrind, chaining on vs. off. This is the pair behind the
/// EXPERIMENTS.md dispatch-overhead entry.
fn bench_lulesh_dispatch(c: &mut Criterion) {
    let module = guest_rt::build_single("lulesh.c", LULESH_MC).unwrap();
    // Four solver iterations so steady-state dispatch dominates the
    // one-time translation and mesh-setup cost; at `-i 1` roughly half
    // the run is startup and the chaining win is diluted below 1.2x.
    let args = ["-s", "10", "-tel", "2", "-tnl", "2", "-i", "4"];
    let mut g = c.benchmark_group("dbi_overhead");
    g.sample_size(10);

    g.bench_function("lulesh_nulgrind_chained", |b| {
        b.iter(|| {
            let r = Vm::new(module.clone(), Box::new(NulTool), VmConfig::default())
                .run(ExecMode::Dbi, &args);
            assert!(r.ok());
            assert!(r.metrics.dispatch.chain_hits > 0);
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("lulesh_nulgrind_nochain", |b| {
        b.iter(|| {
            let cfg = VmConfig { chaining: false, ..Default::default() };
            let r = Vm::new(module.clone(), Box::new(NulTool), cfg).run(ExecMode::Dbi, &args);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dbi, bench_lulesh_dispatch);
criterion_main!(benches);
