//! DBI-substrate ablation: where the ~100x of Table II comes from.
//! The same guest kernel under (a) the fast interpreter, (b) heavyweight
//! DBI with no tool ("nulgrind"), (c) DBI with access counting
//! ("lackey"), and (d) the full Taskgrind recording pass — plus the
//! dispatch ablation: nulgrind with superblock chaining on vs. the
//! `--no-chaining` probe-every-block dispatcher, on the synthetic
//! kernel and on the Table II mini-LULESH kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use grindcore::tool::{CountTool, NulTool};
use grindcore::{ExecMode, Vm, VmConfig};
use taskgrind::tool::{RecordOptions, TaskgrindTool};
use tg_lulesh::LULESH_MC;

const KERNEL: &str = r#"
int main(void) {
    long n = 20000;
    long *a = (long*) malloc(n * 8);
    long i = 0;
    while (i < n) { a[i] = i; i = i + 1; }
    long sum = 0;
    i = 0;
    while (i < n) { sum = sum + a[i] * 3 - (a[i] >> 1); i = i + 1; }
    return sum & 127;
}
"#;

fn bench_dbi(c: &mut Criterion) {
    let module = guest_rt::build_single("kernel.c", KERNEL).unwrap();
    let mut g = c.benchmark_group("dbi_overhead");
    g.sample_size(10);

    g.bench_function("fast_interpreter", |b| {
        b.iter(|| {
            let r = Vm::new(module.clone(), Box::new(NulTool), VmConfig::default())
                .run(ExecMode::Fast, &[]);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_nulgrind_no_iropt", |b| {
        b.iter(|| {
            let cfg = VmConfig { optimize_ir: false, ..Default::default() };
            let r = Vm::new(module.clone(), Box::new(NulTool), cfg).run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_nulgrind", |b| {
        b.iter(|| {
            let r = Vm::new(module.clone(), Box::new(NulTool), VmConfig::default())
                .run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            assert!(r.metrics.dispatch.chain_hits > 0);
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_nulgrind_nochain", |b| {
        b.iter(|| {
            let cfg = VmConfig { chaining: false, ..Default::default() };
            let r = Vm::new(module.clone(), Box::new(NulTool), cfg).run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            assert_eq!(r.metrics.dispatch.chain_hits, 0);
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_countgrind", |b| {
        b.iter(|| {
            let r = Vm::new(module.clone(), Box::new(CountTool::default()), VmConfig::default())
                .run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("dbi_taskgrind_recording", |b| {
        b.iter(|| {
            let tool = TaskgrindTool::new(RecordOptions::default());
            let r = Vm::new(module.clone(), Box::new(tool), VmConfig::default())
                .run(ExecMode::Dbi, &[]);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.finish();
}

/// The dispatch ablation on the Table II kernel itself: mini-LULESH
/// under nulgrind, chaining on vs. off. This is the pair behind the
/// EXPERIMENTS.md dispatch-overhead entry.
fn bench_lulesh_dispatch(c: &mut Criterion) {
    let module = guest_rt::build_single("lulesh.c", LULESH_MC).unwrap();
    // Four solver iterations so steady-state dispatch dominates the
    // one-time translation and mesh-setup cost; at `-i 1` roughly half
    // the run is startup and the chaining win is diluted below 1.2x.
    let args = ["-s", "10", "-tel", "2", "-tnl", "2", "-i", "4"];
    let mut g = c.benchmark_group("dbi_overhead");
    g.sample_size(10);

    g.bench_function("lulesh_nulgrind_chained", |b| {
        b.iter(|| {
            let r = Vm::new(module.clone(), Box::new(NulTool), VmConfig::default())
                .run(ExecMode::Dbi, &args);
            assert!(r.ok());
            assert!(r.metrics.dispatch.chain_hits > 0);
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.bench_function("lulesh_nulgrind_nochain", |b| {
        b.iter(|| {
            let cfg = VmConfig { chaining: false, ..Default::default() };
            let r = Vm::new(module.clone(), Box::new(NulTool), cfg).run(ExecMode::Dbi, &args);
            assert!(r.ok());
            std::hint::black_box(r.metrics.instrs)
        })
    });
    g.finish();
}

/// The async-compile ablation (EXPERIMENTS.md E17): mini-LULESH cold
/// start under the full recording tool with `--compile-threads` 0
/// (synchronous), 1 and 4. A single solver iteration keeps translation
/// a large fraction of the run — the regime the background pool exists
/// for. Structural assertions pin the pipeline's shape on any machine;
/// the ≥20% wall-clock claim is asserted only when the host actually
/// has cores to compile on, and the sweep is emitted as
/// `BENCH_compile_pipeline.json` at the workspace root so the perf
/// trajectory stays machine-readable.
fn bench_compile_pipeline(c: &mut Criterion) {
    let module = guest_rt::build_single("lulesh.c", LULESH_MC).unwrap();
    let args = ["-s", "4", "-tel", "2", "-tnl", "2", "-i", "1"];

    let cold_run = |compile_threads: usize| {
        let tool = TaskgrindTool::new(RecordOptions::default());
        let cfg = VmConfig { compile_threads, ..Default::default() };
        let m = module.clone();
        let t0 = std::time::Instant::now();
        let r = Vm::new(m, Box::new(tool), cfg).run(ExecMode::Dbi, &args);
        let dt = t0.elapsed().as_secs_f64();
        assert!(r.ok());
        (dt, r.metrics)
    };
    // Min of three cold runs per setting: cold-start benches are noisy
    // and the minimum is the least contaminated estimate.
    let measure = |compile_threads: usize| {
        let (mut best, mut metrics) = cold_run(compile_threads);
        for _ in 0..2 {
            let (dt, m) = cold_run(compile_threads);
            if dt < best {
                best = dt;
                metrics = m;
            }
        }
        (best, metrics)
    };
    let (s0, m0) = measure(0);
    let (s1, m1) = measure(1);
    let (s4, m4) = measure(4);

    // Structural claims, valid on any host: the synchronous run spawns
    // no workers; the async runs route every translation through the
    // pool (or the queue-full inline path), actually execute cold
    // blocks on the tree-walk fallback, and promote worker results.
    assert_eq!(m0.compile.workers, 0, "t0 must stay synchronous");
    for (label, m) in [("t1", &m1), ("t4", &m4)] {
        assert!(m.compile.workers > 0, "{label}: workers must spawn");
        assert_eq!(
            m.compile.queued + m.compile.inline_compiles,
            m.translations,
            "{label}: every translation goes through the pool or inline"
        );
        assert!(
            m.compile.fallback_executions > 0,
            "{label}: cold blocks must execute on the tree-walk fallback"
        );
        assert!(m.compile.installed > 0, "{label}: workers must promote blocks");
        // Bit-identical guest behavior across the sweep.
        assert_eq!(m.instrs, m0.instrs, "{label}: instruction count");
        assert_eq!(m.sched_digest, m0.sched_digest, "{label}: schedule");
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let speedup = s0 / s4;
    // The wall-clock claim needs real parallelism: on a single-core
    // host the workers just time-slice against dispatch.
    let asserted = cores >= 2;
    println!(
        "compile pipeline cold start: t0 {s0:.3}s, t1 {s1:.3}s, t4 {s4:.3}s \
         ({speedup:.2}x at t4, {cores} core(s), wall-clock assertion {})",
        if asserted { "on" } else { "off" }
    );
    if asserted {
        assert!(
            s4 <= 0.8 * s0,
            "t4 cold start must improve >=20% over synchronous: {s4:.3}s vs {s0:.3}s"
        );
    }

    let compile_json = |m: &grindcore::Metrics| {
        format!(
            "{{\"queued\": {}, \"inline\": {}, \"fallback_executions\": {}, \
             \"installed\": {}, \"stale\": {}, \"queue_depth_peak\": {}}}",
            m.compile.queued,
            m.compile.inline_compiles,
            m.compile.fallback_executions,
            m.compile.installed,
            m.compile.stale,
            m.compile.queue_depth_peak,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"compile_pipeline\",\n  \"workload\": \"lulesh {}\",\n  \
         \"cores\": {cores},\n  \"t0_secs\": {s0:.6},\n  \"t1_secs\": {s1:.6},\n  \
         \"t4_secs\": {s4:.6},\n  \"speedup_t4\": {speedup:.4},\n  \
         \"wallclock_asserted\": {asserted},\n  \"t1\": {},\n  \"t4\": {}\n}}\n",
        args.join(" "),
        compile_json(&m1),
        compile_json(&m4),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_compile_pipeline.json");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("cannot write {}: {e}", out.display());
    }

    let mut g = c.benchmark_group("compile_pipeline");
    g.sample_size(10);
    for threads in [0usize, 1, 4] {
        g.bench_function(format!("lulesh_coldstart/t{threads}"), |b| {
            b.iter(|| std::hint::black_box(cold_run(threads).1.instrs))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dbi, bench_lulesh_dispatch, bench_compile_pipeline);
criterion_main!(benches);
