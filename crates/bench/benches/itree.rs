//! E9 ablation: the per-segment interval tree (paper §III-B, Fig. 3)
//! versus a naive interval list — the O(log n) claim, on dense sweeps,
//! sparse accesses, and pairwise intersection (the inner loop of
//! Algorithm 1).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use taskgrind::itree::{IntervalTree, NaiveIntervalSet};

fn dense_inserts(n: u64) -> IntervalTree {
    let mut t = IntervalTree::new();
    for i in 0..n {
        t.insert(0x1000 + i * 8, 0x1000 + i * 8 + 8);
    }
    t
}

fn sparse_pairs(seed: u64, n: usize) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let lo = rng.random_range(0u64..1_000_000) * 16;
            (lo, lo + rng.random_range(1u64..64))
        })
        .collect()
}

fn bench_itree(c: &mut Criterion) {
    let mut g = c.benchmark_group("itree");

    g.bench_function("dense_sweep/tree/4096", |b| {
        b.iter(|| std::hint::black_box(dense_inserts(4096).len()))
    });
    g.bench_function("dense_sweep/naive/4096", |b| {
        b.iter(|| {
            let mut s = NaiveIntervalSet::default();
            for i in 0..4096u64 {
                s.insert(0x1000 + i * 8, 0x1000 + i * 8 + 8);
            }
            std::hint::black_box(s.normalized().len())
        })
    });

    let pairs = sparse_pairs(7, 4096);
    g.bench_function("sparse_insert/tree/4096", |b| {
        b.iter(|| {
            let mut t = IntervalTree::new();
            for &(lo, hi) in &pairs {
                t.insert(lo, hi);
            }
            std::hint::black_box(t.len())
        })
    });

    // intersection: the hot operation of Algorithm 1
    let mut a = IntervalTree::new();
    let mut na = NaiveIntervalSet::default();
    for &(lo, hi) in &sparse_pairs(11, 2048) {
        a.insert(lo, hi);
        na.insert(lo, hi);
    }
    let mut b2 = IntervalTree::new();
    let mut nb = NaiveIntervalSet::default();
    for &(lo, hi) in &sparse_pairs(13, 2048) {
        b2.insert(lo, hi);
        nb.insert(lo, hi);
    }
    g.bench_function("intersects/tree/2048x2048", |bch| {
        bch.iter(|| std::hint::black_box(a.intersects(&b2)))
    });
    g.bench_function("intersects/naive/2048x2048", |bch| {
        bch.iter(|| std::hint::black_box(na.intersects(&nb)))
    });
    g.finish();
}

criterion_group!(benches, bench_itree);
criterion_main!(benches);
