//! E2/E3 bench: the Table II / Fig. 4 overhead measurements as
//! Criterion benchmarks — reference vs Archer vs Taskgrind on LULESH,
//! over two problem sizes so the O(s³) growth is visible. The
//! standalone harnesses (`table2`, `fig4`) print the paper-shaped rows.

use criterion::{criterion_group, criterion_main, Criterion};
use tg_lulesh::harness::{measure, LuleshParams, ToolCfg};

fn bench_lulesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_fig4");
    g.sample_size(10);
    for s in [4u64, 8] {
        let p =
            LuleshParams { s, tel: 2, tnl: 2, iters: 2, progress: false, racy: false, threads: 1 };
        g.bench_function(format!("none/s{s}"), |b| {
            b.iter(|| std::hint::black_box(measure(ToolCfg::None, &p).instrs))
        });
        g.bench_function(format!("archer/s{s}"), |b| {
            b.iter(|| std::hint::black_box(measure(ToolCfg::Archer, &p).instrs))
        });
        g.bench_function(format!("taskgrind/s{s}"), |b| {
            b.iter(|| std::hint::black_box(measure(ToolCfg::Taskgrind, &p).instrs))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lulesh);
criterion_main!(benches);
