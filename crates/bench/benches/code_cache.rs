//! Persistent code-cache bench: warm vs cold taskgrind runs on
//! mini-LULESH (EXPERIMENTS.md E16). Three configurations:
//!
//! * `no_cache` — the baseline pipeline, nothing attached;
//! * `cold` — a fresh cache directory every iteration: pays the
//!   serialize-and-store cost on top of compilation;
//! * `warm` — a pre-populated cache: compilation replaced by
//!   deserialization.
//!
//! Wall clock is environment-dependent, so the in-bench assertions pin
//! the *structural* claim instead: the warm run serves ≥90% of its
//! translations from disk and reports byte-identically to the cold run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use taskgrind::{check_module, TaskgrindConfig};
use tg_cache::{module_hash, DiskCodeCache};
use tg_lulesh::harness::LuleshParams;
use tg_lulesh::LULESH_MC;

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "tg-bench-cache-{}-{}-{}",
        tag,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn run_once(
    m: &tga::module::Module,
    args: &[&str],
    cache: Option<&Rc<RefCell<DiskCodeCache>>>,
) -> taskgrind::TaskgrindResult {
    let cfg = TaskgrindConfig {
        vm: grindcore::VmConfig { nthreads: 2, ..Default::default() },
        code_cache: cache.map(|rc| grindcore::CodeCacheHandle::new(rc.clone())),
        ..Default::default()
    };
    let r = check_module(m, args, &cfg);
    if let Some(rc) = cache {
        rc.borrow_mut().flush().expect("cache flushes");
    }
    r
}

fn open(dir: &Path, m: &tga::module::Module) -> Rc<RefCell<DiskCodeCache>> {
    Rc::new(RefCell::new(DiskCodeCache::open(dir, module_hash(m), 0).expect("cache opens")))
}

fn bench_code_cache(c: &mut Criterion) {
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
    let p =
        LuleshParams { s: 4, tel: 2, tnl: 2, iters: 2, progress: false, racy: false, threads: 2 };
    let args_owned = p.args();
    let args: Vec<&str> = args_owned.iter().map(|s| s.as_str()).collect();

    // One-off structural comparison, also the smoke assertion for CI.
    let warm_dir = temp_dir("warm");
    let cache = open(&warm_dir, &m);
    let cold = run_once(&m, &args, Some(&cache));
    let cache = open(&warm_dir, &m);
    let warm = run_once(&m, &args, Some(&cache));
    let (cs, ws) = (cold.run.metrics.cache, warm.run.metrics.cache);
    println!(
        "cold: {:>4} translations, {:>4} stored blocks, {:>8} bytes stored, rec {:.3}s",
        cold.run.metrics.translations, cs.misses, cs.bytes_stored, cold.recording_secs
    );
    println!(
        "warm: {:>4} translations, {:>4} hits / {:>2} misses, {:>8} bytes loaded, rec {:.3}s",
        warm.run.metrics.translations, ws.hits, ws.misses, ws.bytes_loaded, warm.recording_secs
    );
    assert!(ws.hits * 10 >= (ws.hits + ws.misses) * 9, "warm run must hit >=90%: {ws:?}");
    assert!(
        warm.run.metrics.translations * 10 <= cold.run.metrics.translations,
        "warm run must skip >=90% of compilations"
    );
    assert_eq!(cold.render_all(), warm.render_all(), "verdict parity");
    assert_eq!(cold.accesses_recorded, warm.accesses_recorded, "recording parity");

    let mut g = c.benchmark_group("code_cache");
    g.sample_size(10);
    g.bench_function("lulesh_s4/no_cache", |b| {
        b.iter(|| std::hint::black_box(run_once(&m, &args, None).accesses_recorded))
    });
    g.bench_function("lulesh_s4/cold", |b| {
        b.iter(|| {
            let dir = temp_dir("cold");
            let cache = open(&dir, &m);
            let n = run_once(&m, &args, Some(&cache)).accesses_recorded;
            drop(cache);
            let _ = std::fs::remove_dir_all(&dir);
            std::hint::black_box(n)
        })
    });
    g.bench_function("lulesh_s4/warm", |b| {
        b.iter(|| {
            let cache = open(&warm_dir, &m);
            std::hint::black_box(run_once(&m, &args, Some(&cache)).accesses_recorded)
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&warm_dir);
}

criterion_group!(benches, bench_code_cache);
criterion_main!(benches);
