//! E9 ablation: happens-before reachability — precomputed bitset
//! transitive closure versus on-demand DFS, on task-shaped segment
//! graphs of increasing size.

use criterion::{criterion_group, criterion_main, Criterion};
use taskgrind::graph::{GraphBuilder, SegmentGraph, ThreadMeta};
use taskgrind::reach::{dfs_reaches, Reachability};

/// A fork/join-heavy graph: `n` rounds of 4 tasks + taskwait.
fn build_graph(rounds: u64) -> SegmentGraph {
    let mut b = GraphBuilder::new();
    let m = ThreadMeta::default();
    for r in 0..rounds {
        for i in 0..4u64 {
            let t = b.task_create(&m, 0, 0x100 + r * 8 + i);
            b.task_spawn(&m, t);
            b.task_begin(&m, t);
            b.record_access(&m, 0x1000 + (r * 4 + i) * 8, 8, true);
            b.task_end(&m, t);
        }
        b.taskwait(&m);
    }
    b.finalize()
}

fn bench_reach(c: &mut Criterion) {
    let mut g = c.benchmark_group("reach");
    for rounds in [16u64, 64] {
        let graph = build_graph(rounds);
        let n = graph.n_nodes() as u32;
        g.bench_function(format!("closure_build/{n}nodes"), |b| {
            b.iter(|| std::hint::black_box(Reachability::compute(&graph).heap_bytes()))
        });
        let reach = Reachability::compute(&graph);
        g.bench_function(format!("closure_query_all_pairs/{n}nodes"), |b| {
            b.iter(|| {
                let mut count = 0u64;
                for i in 0..n {
                    for j in 0..n {
                        if reach.reaches(i, j) {
                            count += 1;
                        }
                    }
                }
                std::hint::black_box(count)
            })
        });
        g.bench_function(format!("dfs_query_100_pairs/{n}nodes"), |b| {
            b.iter(|| {
                let mut count = 0u64;
                for i in 0..100.min(n) {
                    if dfs_reaches(&graph, i, n - 1) {
                        count += 1;
                    }
                }
                std::hint::black_box(count)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reach);
criterion_main!(benches);
