//! E1 bench: per-tool cost of analyzing representative Table I
//! microbenchmarks. Regenerate the full verdict table with
//! `cargo run -p tg-drb --bin table1 --release`.

use criterion::{criterion_group, criterion_main, Criterion};
use grindcore::VmConfig;
use minicc::SourceFile;
use taskgrind::{check_module, TaskgrindConfig};
use tg_baselines::{archer::run_archer, romp::run_romp, tasksan::run_tasksan};
use tg_drb::by_name;

const PROGRAMS: &[&str] = &[
    "027-taskdependmissing-orig",
    "072-taskdep1-orig",
    "107-taskgroup-orig",
    "173-non-sibling-taskdep",
];

fn bench_tools(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_micro");
    g.sample_size(10);
    let vm = VmConfig { nthreads: 4, ..Default::default() };
    for name in PROGRAMS {
        let p = by_name(name).expect("corpus program");
        let plain = guest_rt::build_single(p.name, p.source).unwrap();
        let tsan = guest_rt::build_program_tsan(&[SourceFile::new(p.name, p.source)]).unwrap();

        g.bench_function(format!("taskgrind/{name}"), |b| {
            b.iter(|| {
                let cfg = TaskgrindConfig { vm: vm.clone(), ..Default::default() };
                std::hint::black_box(check_module(&plain, &[], &cfg).n_reports())
            })
        });
        g.bench_function(format!("archer/{name}"), |b| {
            b.iter(|| std::hint::black_box(run_archer(&tsan, &[], &vm).n_reports))
        });
        g.bench_function(format!("tasksan/{name}"), |b| {
            b.iter(|| std::hint::black_box(run_tasksan(&tsan, &[], &vm).n_reports))
        });
        g.bench_function(format!("romp/{name}"), |b| {
            b.iter(|| std::hint::black_box(run_romp(&plain, &[], &vm).n_reports))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tools);
criterion_main!(benches);
