//! E8: the paper's future-work item — "the determinacy race
//! post-processing analysis is an embarrassingly parallel algorithm,
//! but it is currently run sequentially". Sequential Algorithm 1 versus
//! the crossbeam fan-out, on a segment graph with many unordered pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use taskgrind::analysis::{run, run_parallel, SuppressOptions};
use taskgrind::graph::{GraphBuilder, SegmentGraph, ThreadMeta};
use taskgrind::reach::Reachability;

/// Many mutually-unordered tasks with overlapping access sets.
fn wide_graph(tasks: u64) -> SegmentGraph {
    let mut b = GraphBuilder::new();
    let m = ThreadMeta::default();
    for i in 0..tasks {
        let t = b.task_create(&m, 0, 0x100 + i);
        b.task_spawn(&m, t);
        b.task_begin(&m, t);
        // overlapping stripes so intersections are non-trivial
        for k in 0..16u64 {
            let base = 0x1_0000 + ((i % 8) * 64 + k * 8);
            b.record_access(&m, base, 8, k % 3 == 0);
        }
        b.task_end(&m, t);
    }
    b.finalize()
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_analysis");
    g.sample_size(10);
    let graph = wide_graph(192);
    let reach = Reachability::compute(&graph);
    let opts = SuppressOptions::default();

    g.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(run(&graph, &reach, &opts).candidates.len()))
    });
    for threads in [2usize, 4, 8] {
        g.bench_function(format!("parallel_{threads}"), |b| {
            b.iter(|| {
                std::hint::black_box(run_parallel(&graph, &reach, &opts, threads).candidates.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
