//! E8: the paper's future-work item — "the determinacy race
//! post-processing analysis is an embarrassingly parallel algorithm,
//! but it is currently run sequentially". Sequential Algorithm 1 versus
//! the crossbeam fan-out, on a segment graph with many unordered pairs.
//!
//! E12 extends this with the two hot-path rewrites: the sweep-based
//! candidate generator versus the all-pairs loop at equal thread
//! counts (a many-segment workload with mostly-disjoint footprints,
//! where all-pairs burns its time proving segments never touch), and
//! bulk access ingestion versus per-access interval-tree inserts.
//!
//! E13 adds the streaming retirement engine: full `check_module` runs
//! on mini-LULESH, batch versus streaming, asserting the streaming
//! engine's raison d'être (a ≥ 30% lower closed-tree high-water mark)
//! before timing anything.

use criterion::{criterion_group, criterion_main, Criterion};
use taskgrind::analysis::{run, run_parallel, run_sweep, SuppressOptions};
use taskgrind::graph::{GraphBuilder, SegmentGraph, ThreadMeta};
use taskgrind::reach::Reachability;
use taskgrind::{check_module, TaskgrindConfig};
use tg_lulesh::harness::LuleshParams;
use tg_lulesh::LULESH_MC;

/// Many mutually-unordered tasks with overlapping access sets.
fn wide_graph(tasks: u64) -> SegmentGraph {
    let mut b = GraphBuilder::new();
    let m = ThreadMeta::default();
    for i in 0..tasks {
        let t = b.task_create(&m, 0, 0x100 + i);
        b.task_spawn(&m, t);
        b.task_begin(&m, t);
        // overlapping stripes so intersections are non-trivial
        for k in 0..16u64 {
            let base = 0x1_0000 + ((i % 8) * 64 + k * 8);
            b.record_access(&m, base, 8, k % 3 == 0);
        }
        b.task_end(&m, t);
    }
    b.finalize()
}

/// The workload the sweep exists for: many unordered tasks whose
/// footprints are mostly disjoint (per-task working sets), with small
/// overlap cliques. All-pairs checks every one of the ~tasks²/2 pairs;
/// the sweep only visits pairs that genuinely share addresses.
fn sparse_graph(tasks: u64) -> SegmentGraph {
    let mut b = GraphBuilder::new();
    let m = ThreadMeta::default();
    for i in 0..tasks {
        let t = b.task_create(&m, 0, 0x100 + i);
        b.task_spawn(&m, t);
        b.task_begin(&m, t);
        // private working set: 16 strided intervals nobody else touches
        for k in 0..16u64 {
            b.record_access(&m, 0x10_0000 + i * 0x1000 + k * 32, 8, true);
        }
        // cliques of 8 share one cache line
        b.record_access(&m, 0x100 + (i % 8) * 64, 8, true);
        b.task_end(&m, t);
    }
    b.finalize()
}

/// Per-access versus bulk ingestion: the same access stream recorded
/// through `record_access` with each path, including the finalize-time
/// drain the bulk path defers to.
fn ingest(bulk: bool, segs: u64, accesses_per_seg: u64) -> usize {
    let mut b = GraphBuilder::new();
    b.set_bulk_ingest(bulk);
    let m = ThreadMeta::default();
    for i in 0..segs {
        let t = b.task_create(&m, 0, 0x100 + i);
        b.task_spawn(&m, t);
        b.task_begin(&m, t);
        for k in 0..accesses_per_seg {
            // 3/4 dense sequential (absorbed by the last-interval fast
            // path), 1/4 scattered (exercises the sort + coalesce)
            if k % 4 != 3 {
                b.record_access(&m, 0x10_0000 + i * 0x10000 + k * 8, 8, true);
            } else {
                b.record_access(&m, 0x80_0000 + (k * 2654435761) % 0x10000, 4, false);
            }
        }
        b.task_end(&m, t);
    }
    b.finalize().segments.len()
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_analysis");
    g.sample_size(10);
    let graph = wide_graph(192);
    let reach = Reachability::compute(&graph);
    let opts = SuppressOptions::default();

    g.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(run(&graph, &reach, &opts).candidates.len()))
    });
    for threads in [2usize, 4, 8] {
        g.bench_function(format!("parallel_{threads}"), |b| {
            b.iter(|| {
                std::hint::black_box(run_parallel(&graph, &reach, &opts, threads).candidates.len())
            })
        });
    }
    g.finish();
}

/// E12a: sweep vs all-pairs at equal thread counts.
fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_vs_allpairs");
    g.sample_size(10);
    let graph = sparse_graph(512);
    let reach = Reachability::compute(&graph);
    let opts = SuppressOptions::default();

    // sanity: both engines agree before we time them
    let a = run(&graph, &reach, &opts);
    let s = run_sweep(&graph, &reach, &opts, 1);
    assert_eq!(a.candidates, s.candidates, "engines disagree");

    g.bench_function("allpairs_1", |b| {
        b.iter(|| std::hint::black_box(run(&graph, &reach, &opts).candidates.len()))
    });
    g.bench_function("sweep_1", |b| {
        b.iter(|| std::hint::black_box(run_sweep(&graph, &reach, &opts, 1).candidates.len()))
    });
    let threads = 4usize;
    g.bench_function(format!("allpairs_{threads}"), |b| {
        b.iter(|| {
            std::hint::black_box(run_parallel(&graph, &reach, &opts, threads).candidates.len())
        })
    });
    g.bench_function(format!("sweep_{threads}"), |b| {
        b.iter(|| std::hint::black_box(run_sweep(&graph, &reach, &opts, threads).candidates.len()))
    });
    g.finish();
}

/// E12b: bulk vs per-access ingestion of the same access stream.
fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("access_ingestion");
    g.sample_size(10);
    assert_eq!(ingest(true, 4, 64), ingest(false, 4, 64), "paths build different graphs");
    g.bench_function("per_access", |b| b.iter(|| std::hint::black_box(ingest(false, 64, 4096))));
    g.bench_function("bulk", |b| b.iter(|| std::hint::black_box(ingest(true, 64, 4096))));
    g.finish();
}

/// E13: streaming retirement vs the batch pipeline, end to end.
fn bench_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_vs_batch");
    g.sample_size(10);
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
    let params =
        LuleshParams { s: 8, tel: 2, tnl: 2, iters: 2, progress: false, racy: false, threads: 1 };
    let args_owned = params.args();
    let args: Vec<&str> = args_owned.iter().map(|s| s.as_str()).collect();
    let run_cfg = |streaming: bool| {
        let cfg = TaskgrindConfig {
            vm: grindcore::VmConfig { nthreads: params.threads, ..Default::default() },
            streaming,
            ..Default::default()
        };
        check_module(&m, &args, &cfg)
    };

    // sanity before timing: identical verdicts, and the memory win that
    // justifies the engine (high-water ≥ 30% below batch)
    let batch = run_cfg(false);
    let stream = run_cfg(true);
    assert_eq!(batch.analysis.candidates, stream.analysis.candidates, "engines disagree");
    assert_eq!(batch.render_all(), stream.render_all(), "report text differs");
    assert!(stream.retired_segments > 0, "streaming retired nothing");
    assert!(
        10 * stream.peak_tool_bytes <= 7 * batch.peak_tool_bytes,
        "streaming high-water {} not >= 30% below batch {}",
        stream.peak_tool_bytes,
        batch.peak_tool_bytes,
    );

    g.bench_function("batch", |b| {
        b.iter(|| std::hint::black_box(run_cfg(false).analysis.candidates.len()))
    });
    g.bench_function("streaming", |b| {
        b.iter(|| std::hint::black_box(run_cfg(true).analysis.candidates.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_parallel, bench_sweep, bench_ingest, bench_streaming);
criterion_main!(benches);
