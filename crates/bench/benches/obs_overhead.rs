//! E14: tg-obs tracing overhead on the Table II workload.
//!
//! The observability contract is "zero-cost when disabled, cheap when
//! enabled": every hook guards on one relaxed atomic load, and the
//! enabled path is a mutex push into a bounded ring. This harness times
//! the full Taskgrind recording pass over mini-LULESH with the ring
//! disabled and enabled and **asserts** the enabled run stays within 5%
//! of the disabled one (min-of-N, so scheduler noise cancels).
//!
//! `TG_BENCH_SAMPLES` scales the sample count as in the other benches,
//! but the assertion always uses at least 3 samples per side.

use std::time::{Duration, Instant};

use grindcore::{ExecMode, Vm, VmConfig};
use taskgrind::tool::{RecordOptions, TaskgrindTool};
use tg_lulesh::LULESH_MC;

fn samples() -> usize {
    std::env::var("TG_BENCH_SAMPLES").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(5).max(3)
}

fn min_of<F: FnMut() -> u64>(n: usize, mut f: F) -> (Duration, u64) {
    let mut instrs = std::hint::black_box(f()); // warmup
    let mut best = Duration::MAX;
    for _ in 0..n {
        let t0 = Instant::now();
        instrs = std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    (best, instrs)
}

fn fmt(d: Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

fn main() {
    let module = guest_rt::build_single("lulesh.c", LULESH_MC).unwrap();
    let args = ["-s", "8", "-tel", "2", "-tnl", "2", "-i", "2"];
    let run = || {
        let tool = TaskgrindTool::new(RecordOptions::default());
        let r =
            Vm::new(module.clone(), Box::new(tool), VmConfig::default()).run(ExecMode::Dbi, &args);
        assert!(r.ok());
        r.metrics.instrs
    };
    let n = samples();

    tg_obs::trace::shutdown();
    assert!(!tg_obs::trace::enabled());
    let (off, instrs_off) = min_of(n, run);

    tg_obs::trace::init_default();
    let (on, instrs_on) = min_of(n, run);
    let buffered = tg_obs::trace::buffered();
    tg_obs::trace::shutdown();

    assert_eq!(instrs_off, instrs_on, "tracing must not change execution");
    assert!(buffered > 0, "the enabled run must actually record events");
    let delta = on.as_secs_f64() / off.as_secs_f64() - 1.0;
    println!("obs_overhead/lulesh_recording_trace_off          [min {}] {n} samples", fmt(off));
    println!(
        "obs_overhead/lulesh_recording_trace_on           [min {}] {n} samples ({} events buffered)",
        fmt(on),
        buffered
    );
    println!("obs_overhead/delta                               {:+.2}%", delta * 100.0);
    assert!(
        delta < 0.05,
        "tracing overhead {:.2}% exceeds the 5% budget (off {}, on {})",
        delta * 100.0,
        fmt(off),
        fmt(on)
    );
}
