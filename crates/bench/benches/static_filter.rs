//! Static-filter bench: instrumented-access counts and wall clock for
//! the recording phase with the `tga-analysis` pruning filter on vs
//! off, on mini-LULESH `-s 10`. The interesting numbers are printed
//! directly (sites pruned, dynamic accesses recorded) alongside the
//! criterion timings — the filter should cut recorded accesses without
//! changing any verdict (that invariant is enforced by
//! `tests/static_filter.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use taskgrind::tool::RecordOptions;
use taskgrind::{check_module, TaskgrindConfig};
use tg_lulesh::harness::LuleshParams;
use tg_lulesh::LULESH_MC;

fn run_once(
    m: &tga::module::Module,
    args: &[&str],
    static_filter: bool,
    facts: Option<Arc<tga_analysis::StaticFacts>>,
) -> taskgrind::TaskgrindResult {
    let cfg = TaskgrindConfig {
        vm: grindcore::VmConfig { nthreads: 2, ..Default::default() },
        record: RecordOptions { static_filter, static_facts: facts, ..Default::default() },
        ..Default::default()
    };
    check_module(m, args, &cfg)
}

fn bench_static_filter(c: &mut Criterion) {
    let m = guest_rt::build_single("lulesh.c", LULESH_MC).expect("compiles");
    let p =
        LuleshParams { s: 10, tel: 2, tnl: 2, iters: 1, progress: false, racy: false, threads: 2 };
    let args_owned = p.args();
    let args: Vec<&str> = args_owned.iter().map(|s| s.as_str()).collect();

    // One-off comparison of the instrumentation counts.
    let facts = Arc::new(tga_analysis::analyze(&m));
    let on = run_once(&m, &args, true, Some(facts.clone()));
    let off = run_once(&m, &args, false, None);
    println!(
        "static_filter on : {:>6} sites pruned, {:>6} sites kept, {:>9} accesses recorded, rec {:.3}s",
        on.sites_pruned, on.sites_instrumented, on.accesses_recorded, on.recording_secs
    );
    println!(
        "static_filter off: {:>6} sites pruned, {:>6} sites kept, {:>9} accesses recorded, rec {:.3}s",
        off.sites_pruned, off.sites_instrumented, off.accesses_recorded, off.recording_secs
    );
    assert!(on.accesses_recorded < off.accesses_recorded);
    assert_eq!(on.n_reports(), off.n_reports());

    let mut g = c.benchmark_group("static_filter");
    g.sample_size(10);
    g.bench_function("lulesh_s10/filter_on", |b| {
        b.iter(|| {
            std::hint::black_box(run_once(&m, &args, true, Some(facts.clone())).accesses_recorded)
        })
    });
    g.bench_function("lulesh_s10/filter_off", |b| {
        b.iter(|| std::hint::black_box(run_once(&m, &args, false, None).accesses_recorded))
    });
    // Cost of the analysis itself, for the amortization argument.
    g.bench_function("analyze_only", |b| {
        b.iter(|| std::hint::black_box(tga_analysis::analyze(&m).safe_pcs.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_static_filter);
criterion_main!(benches);
