//! Quick dispatch-cost profile: per-block metrics for the dbi_overhead
//! kernels, chaining on vs. off. Not a benchmark — a scratch probe for
//! sizing the dispatcher's share of nulgrind time.

use grindcore::tool::NulTool;
use grindcore::{ExecMode, Vm, VmConfig};
use std::time::Instant;

const KERNEL: &str = r#"
int main(void) {
    long n = 20000;
    long *a = (long*) malloc(n * 8);
    long i = 0;
    while (i < n) { a[i] = i; i = i + 1; }
    long sum = 0;
    i = 0;
    while (i < n) { sum = sum + a[i] * 3 - (a[i] >> 1); i = i + 1; }
    return sum & 127;
}
"#;

fn main() {
    for (name, src, args) in [
        ("kernel", KERNEL.to_string(), vec![]),
        (
            "lulesh",
            tg_lulesh::LULESH_MC.to_string(),
            vec!["-s", "10", "-tel", "2", "-tnl", "2", "-i", "4"],
        ),
    ] {
        let m = guest_rt::build_single("prog.c", &src).unwrap();
        for chaining in [true, false] {
            let cfg = VmConfig { chaining, ..Default::default() };
            let mut dt = f64::MAX;
            let mut last = None;
            for _ in 0..7 {
                let t0 = Instant::now();
                let r =
                    Vm::new(m.clone(), Box::new(NulTool), cfg.clone()).run(ExecMode::Dbi, &args);
                dt = dt.min(t0.elapsed().as_secs_f64());
                last = Some(r);
            }
            let r = last.unwrap();
            assert!(r.ok());
            let mm = &r.metrics;
            println!(
                "{name} chain={chaining}: {:.1}ms | {} instrs {} blocks ({:.1} i/b) | hits {} ibtc {} probes {} transl {} | {:.0} ns/block",
                dt * 1e3,
                mm.instrs,
                mm.blocks,
                mm.instrs as f64 / mm.blocks as f64,
                mm.dispatch.chain_hits,
                mm.dispatch.ibtc_hits,
                mm.dispatch.probes,
                mm.translations,
                dt * 1e9 / mm.blocks as f64
            );
        }
    }
}
