//! Lexer for minic, the C dialect the benchmark corpus is written in.
//!
//! Besides ordinary C tokens, the lexer recognizes `#pragma` lines and
//! yields them as single [`Tok::Pragma`] tokens carrying the raw clause
//! text, the way a C compiler's preprocessor hands pragmas to the
//! front end. `cilk_spawn` / `cilk_sync` are keywords.

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // literals & identifiers
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    CharLit(u8),
    /// A `#pragma ...` line (text after `#pragma`, trimmed).
    Pragma(String),

    // keywords
    KwInt,
    KwDouble,
    KwChar,
    KwVoid,
    KwLong,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    KwExtern,
    KwStatic,
    KwConst,
    KwThreadLocal,
    KwUnsigned,
    KwCilkSpawn,
    KwCilkSync,

    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Bang,
    Tilde,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    Ellipsis,
    Eof,
}

/// A token paired with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub line: u32,
    pub msg: String,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "int" => Tok::KwInt,
        "double" | "float" => Tok::KwDouble,
        "char" => Tok::KwChar,
        "void" => Tok::KwVoid,
        "long" => Tok::KwLong,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "for" => Tok::KwFor,
        "return" => Tok::KwReturn,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        "sizeof" => Tok::KwSizeof,
        "extern" => Tok::KwExtern,
        "static" => Tok::KwStatic,
        "const" => Tok::KwConst,
        "unsigned" => Tok::KwUnsigned,
        "_Thread_local" | "__thread" => Tok::KwThreadLocal,
        "cilk_spawn" | "_Cilk_spawn" => Tok::KwCilkSpawn,
        "cilk_sync" | "_Cilk_sync" => Tok::KwCilkSync,
        _ => return None,
    })
}

/// Tokenize a full translation unit.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let err = |line: u32, msg: String| LexError { line, msg };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(err(line, "unterminated block comment".into()));
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'#' => {
                // preprocessor-ish line: only #pragma is meaningful,
                // #include/#define lines are skipped.
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap().trim();
                if let Some(rest) = text.strip_prefix("#pragma") {
                    out.push(Spanned { tok: Tok::Pragma(rest.trim().to_string()), line });
                }
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(err(line, "unterminated string literal".into()));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= b.len() {
                                return Err(err(line, "bad escape".into()));
                            }
                            s.push(unescape(b[i]));
                            i += 1;
                        }
                        b'\n' => return Err(err(line, "newline in string literal".into())),
                        ch => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned { tok: Tok::StrLit(s), line });
            }
            b'\'' => {
                i += 1;
                let ch = if b.get(i) == Some(&b'\\') {
                    i += 1;
                    let c = *b.get(i).ok_or_else(|| err(line, "bad char literal".into()))?;
                    unescape(c) as u8
                } else {
                    *b.get(i).ok_or_else(|| err(line, "bad char literal".into()))?
                };
                i += 1;
                if b.get(i) != Some(&b'\'') {
                    return Err(err(line, "unterminated char literal".into()));
                }
                i += 1;
                out.push(Spanned { tok: Tok::CharLit(ch), line });
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                if c == b'0' && b.get(i + 1).is_some_and(|&x| x == b'x' || x == b'X') {
                    i += 2;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = std::str::from_utf8(&b[start + 2..i]).unwrap();
                    let v = i64::from_str_radix(text, 16)
                        .or_else(|_| u64::from_str_radix(text, 16).map(|u| u as i64))
                        .map_err(|_| err(line, format!("bad hex literal 0x{text}")))?;
                    out.push(Spanned { tok: Tok::IntLit(v), line });
                    continue;
                }
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|x| x.is_ascii_digit()) {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if b.get(j).is_some_and(|&x| x == b'+' || x == b'-') {
                        j += 1;
                    }
                    if b.get(j).is_some_and(|x| x.is_ascii_digit()) {
                        is_float = true;
                        i = j;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                if is_float {
                    let v: f64 =
                        text.parse().map_err(|_| err(line, format!("bad float {text}")))?;
                    out.push(Spanned { tok: Tok::FloatLit(v), line });
                } else {
                    // Swallow integer suffixes (L, UL, ...).
                    while i < b.len()
                        && (b[i] == b'l' || b[i] == b'L' || b[i] == b'u' || b[i] == b'U')
                    {
                        i += 1;
                    }
                    let v: i64 = text.parse().map_err(|_| err(line, format!("bad int {text}")))?;
                    out.push(Spanned { tok: Tok::IntLit(v), line });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                let tok = keyword(text).unwrap_or_else(|| Tok::Ident(text.to_string()));
                out.push(Spanned { tok, line });
            }
            _ => {
                let two = |a: u8, b2: u8| i + 1 < b.len() && c == a && b[i + 1] == b2;
                let three = |a: u8, b2: u8, c3: u8| {
                    i + 2 < b.len() && c == a && b[i + 1] == b2 && b[i + 2] == c3
                };
                let (tok, len) = if three(b'.', b'.', b'.') {
                    (Tok::Ellipsis, 3)
                } else if two(b'+', b'+') {
                    (Tok::PlusPlus, 2)
                } else if two(b'-', b'-') {
                    (Tok::MinusMinus, 2)
                } else if two(b'+', b'=') {
                    (Tok::PlusAssign, 2)
                } else if two(b'-', b'=') {
                    (Tok::MinusAssign, 2)
                } else if two(b'*', b'=') {
                    (Tok::StarAssign, 2)
                } else if two(b'/', b'=') {
                    (Tok::SlashAssign, 2)
                } else if two(b'=', b'=') {
                    (Tok::Eq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'&', b'&') {
                    (Tok::AmpAmp, 2)
                } else if two(b'|', b'|') {
                    (Tok::PipePipe, 2)
                } else {
                    let t = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b';' => Tok::Semi,
                        b',' => Tok::Comma,
                        b':' => Tok::Colon,
                        b'?' => Tok::Question,
                        b'=' => Tok::Assign,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        b'!' => Tok::Bang,
                        b'~' => Tok::Tilde,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        other => {
                            return Err(err(
                                line,
                                format!("unexpected character `{}`", other as char),
                            ))
                        }
                    };
                    (t, 1)
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, line });
    Ok(out)
}

fn unescape(c: u8) -> char {
    match c {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        other => other as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::IntLit(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_suffixes() {
        assert_eq!(
            toks("0x10 1.5 2e3 7L")[..4],
            [Tok::IntLit(16), Tok::FloatLit(1.5), Tok::FloatLit(2000.0), Tok::IntLit(7)]
        );
    }

    #[test]
    fn strings_chars_escapes() {
        assert_eq!(
            toks(r#""a\nb" '\n' 'x'"#)[..3],
            [Tok::StrLit("a\nb".into()), Tok::CharLit(b'\n'), Tok::CharLit(b'x')]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("int a; // c1\n/* c2\n */ int b;").unwrap();
        let b_line = ts.iter().find(|s| s.tok == Tok::Ident("b".into())).unwrap().line;
        assert_eq!(b_line, 3);
    }

    #[test]
    fn pragma_lines() {
        let ts = lex("#pragma omp parallel num_threads(4)\n{ }").unwrap();
        assert_eq!(ts[0].tok, Tok::Pragma("omp parallel num_threads(4)".into()));
        assert_eq!(ts[0].line, 1);
    }

    #[test]
    fn includes_are_skipped() {
        assert_eq!(toks("#include <stdio.h>\nint x;")[0], Tok::KwInt);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a += b << 2 && c != d")[..9],
            [
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Ident("b".into()),
                Tok::Shl,
                Tok::IntLit(2),
                Tok::AmpAmp,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn cilk_and_tls_keywords() {
        assert_eq!(
            toks("cilk_spawn cilk_sync _Thread_local")[..3],
            [Tok::KwCilkSpawn, Tok::KwCilkSync, Tok::KwThreadLocal]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* x").is_err());
        assert!(lex("$").is_err());
    }
}
