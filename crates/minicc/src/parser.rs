//! Recursive-descent parser for minic.
//!
//! `#pragma omp ...` tokens are parsed by re-lexing the pragma text and
//! running clause sub-parsers over it, then attaching the construct to
//! the following statement — mirroring how OpenMP is a decoration on
//! structured blocks.

use crate::ast::*;
use crate::token::{lex, Spanned, Tok};

/// A parse error with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

pub struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parse a full translation unit.
pub fn parse(src: &str) -> PResult<Unit> {
    let toks = lex(src).map_err(|e| ParseError { line: e.line, msg: e.msg })?;
    Parser { toks, pos: 0 }.unit()
}

/// Parse a single expression (used by tests and pragma clauses).
pub fn parse_expr_str(src: &str, line: u32) -> PResult<Expr> {
    let toks = lex(src).map_err(|e| ParseError { line, msg: e.msg })?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect(&Tok::Eof)?;
    Ok(e)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> PResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}, found {:?}", t, self.peek())))
        }
    }

    fn err(&self, msg: String) -> ParseError {
        ParseError { line: self.line(), msg }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- types ----

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt
                | Tok::KwDouble
                | Tok::KwChar
                | Tok::KwVoid
                | Tok::KwLong
                | Tok::KwUnsigned
                | Tok::KwConst
        )
    }

    fn base_type(&mut self) -> PResult<Type> {
        while self.eat(&Tok::KwConst) || self.eat(&Tok::KwUnsigned) {}
        let t = match self.bump() {
            Tok::KwInt => Type::Int,
            Tok::KwDouble => Type::Double,
            Tok::KwChar => Type::Char,
            Tok::KwVoid => Type::Void,
            Tok::KwLong => {
                // accept `long`, `long int`, `long long`
                self.eat(&Tok::KwLong);
                self.eat(&Tok::KwInt);
                Type::Int
            }
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        while self.eat(&Tok::KwConst) {}
        Ok(t)
    }

    fn full_type(&mut self) -> PResult<Type> {
        let mut t = self.base_type()?;
        while self.eat(&Tok::Star) {
            t = Type::Ptr(Box::new(t));
            while self.eat(&Tok::KwConst) {}
        }
        Ok(t)
    }

    // ---- top level ----

    fn unit(&mut self) -> PResult<Unit> {
        let mut unit = Unit::default();
        let mut threadprivate: Vec<String> = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Pragma(text) => {
                    let text = text.clone();
                    let line = self.line();
                    self.bump();
                    if let Some(rest) = text.strip_prefix("omp threadprivate") {
                        let names = parse_name_list(rest, line)?;
                        threadprivate.extend(names);
                    } else {
                        return Err(ParseError {
                            line,
                            msg: format!("pragma `{text}` not allowed at file scope"),
                        });
                    }
                }
                _ => self.top_decl(&mut unit)?,
            }
        }
        for g in &mut unit.globals {
            if threadprivate.contains(&g.name) {
                g.thread_local = true;
                g.threadprivate = true;
            }
        }
        Ok(unit)
    }

    fn top_decl(&mut self, unit: &mut Unit) -> PResult<()> {
        let line = self.line();
        let is_extern = self.eat(&Tok::KwExtern);
        self.eat(&Tok::KwStatic);
        let thread_local = self.eat(&Tok::KwThreadLocal);
        self.eat(&Tok::KwStatic);
        let ty = self.full_type()?;
        let name = self.ident()?;

        if self.peek() == &Tok::LParen {
            // function
            self.bump();
            let mut params = Vec::new();
            let mut variadic = false;
            if !self.eat(&Tok::RParen) {
                loop {
                    if self.eat(&Tok::Ellipsis) {
                        variadic = true;
                        break;
                    }
                    if self.peek() == &Tok::KwVoid && self.peek2() == &Tok::RParen {
                        self.bump();
                        break;
                    }
                    let pty = self.full_type()?;
                    let pname = match self.peek() {
                        Tok::Ident(_) => self.ident()?,
                        _ => format!("__anon{}", params.len()),
                    };
                    // array parameter decays to pointer
                    let pty = if self.eat(&Tok::LBracket) {
                        while self.peek() != &Tok::RBracket {
                            self.bump();
                        }
                        self.expect(&Tok::RBracket)?;
                        Type::Ptr(Box::new(pty))
                    } else {
                        pty
                    };
                    params.push(Param { ty: pty, name: pname });
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
            }
            let body = if self.eat(&Tok::Semi) { None } else { Some(self.block_stmts()?) };
            unit.functions.push(Function { ret: ty, name, params, variadic, body, line });
            return Ok(());
        }

        // global variable(s)
        let mut first = true;
        let mut cur_name = name;
        loop {
            let mut gty = ty.clone();
            if !first {
                // subsequent declarators may have their own stars
                while self.eat(&Tok::Star) {
                    gty = Type::Ptr(Box::new(gty));
                }
                cur_name = self.ident()?;
            }
            first = false;
            if self.eat(&Tok::LBracket) {
                let n = match self.bump() {
                    Tok::IntLit(v) if v > 0 => v as u64,
                    other => return Err(self.err(format!("expected array size, found {other:?}"))),
                };
                self.expect(&Tok::RBracket)?;
                gty = Type::Array(Box::new(gty), n);
            }
            let init = if self.eat(&Tok::Assign) {
                match self.bump() {
                    Tok::IntLit(v) => GlobalInit::Int(v),
                    Tok::Minus => match self.bump() {
                        Tok::IntLit(v) => GlobalInit::Int(-v),
                        Tok::FloatLit(v) => GlobalInit::Double(-v),
                        other => return Err(self.err(format!("bad global initializer {other:?}"))),
                    },
                    Tok::FloatLit(v) => GlobalInit::Double(v),
                    Tok::StrLit(s) => GlobalInit::Str(s),
                    Tok::CharLit(c) => GlobalInit::Int(c as i64),
                    other => return Err(self.err(format!("bad global initializer {other:?}"))),
                }
            } else {
                GlobalInit::None
            };
            if !is_extern {
                unit.globals.push(Global {
                    ty: gty,
                    name: cur_name.clone(),
                    init,
                    thread_local,
                    threadprivate: false,
                    line,
                });
            }
            if self.eat(&Tok::Comma) {
                continue;
            }
            self.expect(&Tok::Semi)?;
            break;
        }
        Ok(())
    }

    // ---- statements ----

    fn block_stmts(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek() == &Tok::Eof {
                return Err(self.err("unexpected EOF in block".into()));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Pragma(text) => {
                self.bump();
                self.pragma_stmt(&text, line)
            }
            Tok::LBrace => Ok(Stmt::Block(self.block_stmts()?)),
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(&Tok::KwElse) { Some(Box::new(self.stmt()?)) } else { None };
                Ok(Stmt::If { cond, then, els, line })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body, line })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.is_type_start() {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(&Tok::Semi)?;
                let step = if self.peek() == &Tok::RParen { None } else { Some(self.expr()?) };
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For { init, cond, step, body, line })
            }
            Tok::KwReturn => {
                self.bump();
                let e = if self.peek() == &Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(e, line))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break(line))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue(line))
            }
            Tok::KwCilkSync => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::CilkSync(line))
            }
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Block(vec![]))
            }
            _ if self.is_type_start() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn decl_stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        let base = self.full_type()?;
        let mut decls = Vec::new();
        loop {
            let mut ty = base.clone();
            if !decls.is_empty() {
                while self.eat(&Tok::Star) {
                    ty = Type::Ptr(Box::new(ty));
                }
            }
            let name = self.ident()?;
            if self.eat(&Tok::LBracket) {
                let n = match self.bump() {
                    Tok::IntLit(v) if v > 0 => v as u64,
                    other => return Err(self.err(format!("expected array size, found {other:?}"))),
                };
                self.expect(&Tok::RBracket)?;
                ty = Type::Array(Box::new(ty), n);
            }
            let init = if self.eat(&Tok::Assign) { Some(self.expr()?) } else { None };
            decls.push(Stmt::Decl { ty, name, init, line });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Semi)?;
        Ok(if decls.len() == 1 { decls.pop().unwrap() } else { Stmt::Block(decls) })
    }

    // ---- pragma handling ----

    fn pragma_stmt(&mut self, text: &str, line: u32) -> PResult<Stmt> {
        let Some(rest) = text.strip_prefix("omp") else {
            // Unknown pragma namespaces are ignored like a C compiler would.
            return self.stmt();
        };
        let rest = rest.trim();
        let (directive, clause_text) = split_word(rest);
        match directive {
            "parallel" => {
                let cl = PragmaClauses::parse(clause_text, line)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::OmpParallel { num_threads: cl.get_expr("num_threads"), body, line })
            }
            "single" => {
                let cl = PragmaClauses::parse(clause_text, line)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::OmpSingle { nowait: cl.has("nowait"), body, line })
            }
            "master" | "masked" => {
                let body = Box::new(self.stmt()?);
                Ok(Stmt::OmpMaster { body, line })
            }
            "critical" => {
                let name = clause_text
                    .trim()
                    .strip_prefix('(')
                    .and_then(|s| s.strip_suffix(')'))
                    .map(|s| s.trim().to_string());
                let body = Box::new(self.stmt()?);
                Ok(Stmt::OmpCritical { name, body, line })
            }
            "task" => {
                let cl = PragmaClauses::parse(clause_text, line)?;
                let clauses = TaskClauses {
                    depends: cl.depends.clone(),
                    shared: cl.get_names("shared"),
                    firstprivate: {
                        let mut v = cl.get_names("firstprivate");
                        v.extend(cl.get_names("private"));
                        v
                    },
                    if_expr: cl.get_expr("if"),
                    final_expr: cl.get_expr("final"),
                    untied: cl.has("untied"),
                    mergeable: cl.has("mergeable"),
                    detach: cl.get_names("detach").into_iter().next(),
                };
                let body = Box::new(self.stmt()?);
                Ok(Stmt::OmpTask { clauses, body, line })
            }
            "taskwait" => Ok(Stmt::OmpTaskwait(line)),
            "taskgroup" => {
                let body = Box::new(self.stmt()?);
                Ok(Stmt::OmpTaskgroup { body, line })
            }
            "barrier" => Ok(Stmt::OmpBarrier(line)),
            "taskloop" => {
                let cl = PragmaClauses::parse(clause_text, line)?;
                let clauses = TaskloopClauses {
                    grainsize: cl.get_expr("grainsize"),
                    num_tasks: cl.get_expr("num_tasks"),
                    collapse: cl
                        .get_expr("collapse")
                        .and_then(|e| match e {
                            Expr::IntLit(n) => Some(n as u32),
                            _ => None,
                        })
                        .unwrap_or(1),
                    shared: cl.get_names("shared"),
                    nogroup: cl.has("nogroup"),
                };
                let body = self.stmt()?;
                if !matches!(body, Stmt::For { .. }) {
                    return Err(ParseError { line, msg: "taskloop requires a for loop".into() });
                }
                Ok(Stmt::OmpTaskloop { clauses, body: Box::new(body), line })
            }
            other => {
                Err(ParseError { line, msg: format!("unsupported OpenMP directive `{other}`") })
            }
        }
    }

    // ---- expressions (precedence climbing) ----

    pub fn expr(&mut self) -> PResult<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> PResult<Expr> {
        let lhs = self.ternary()?;
        let line = self.line();
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        let rhs = match op {
            None => rhs,
            Some(op) => Expr::Bin { op, lhs: Box::new(lhs.clone()), rhs: Box::new(rhs), line },
        };
        Ok(Expr::Assign { lhs: Box::new(lhs), rhs: Box::new(rhs), line })
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.binary(0)?;
        if self.peek() == &Tok::Question {
            let line = self.line();
            self.bump();
            let then = self.expr()?;
            self.expect(&Tok::Colon)?;
            let els = self.ternary()?;
            return Ok(Expr::Cond {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
                line,
            });
        }
        Ok(cond)
    }

    fn bin_op_prec(t: &Tok) -> Option<(BinOp, u8)> {
        Some(match t {
            Tok::PipePipe => (BinOp::LOr, 1),
            Tok::AmpAmp => (BinOp::LAnd, 2),
            Tok::Pipe => (BinOp::Or, 3),
            Tok::Caret => (BinOp::Xor, 4),
            Tok::Amp => (BinOp::And, 5),
            Tok::Eq => (BinOp::Eq, 6),
            Tok::Ne => (BinOp::Ne, 6),
            Tok::Lt => (BinOp::Lt, 7),
            Tok::Le => (BinOp::Le, 7),
            Tok::Gt => (BinOp::Gt, 7),
            Tok::Ge => (BinOp::Ge, 7),
            Tok::Shl => (BinOp::Shl, 8),
            Tok::Shr => (BinOp::Shr, 8),
            Tok::Plus => (BinOp::Add, 9),
            Tok::Minus => (BinOp::Sub, 9),
            Tok::Star => (BinOp::Mul, 10),
            Tok::Slash => (BinOp::Div, 10),
            Tok::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_prec(self.peek()) {
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Un { op: UnOp::Neg, x: Box::new(self.unary()?), line })
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Un { op: UnOp::Not, x: Box::new(self.unary()?), line })
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::Un { op: UnOp::BitNot, x: Box::new(self.unary()?), line })
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Deref(Box::new(self.unary()?), line))
            }
            Tok::Amp => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.unary()?), line))
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let inc = self.bump() == Tok::PlusPlus;
                let t = self.unary()?;
                Ok(Expr::IncDec { target: Box::new(t), inc, post: false, line })
            }
            Tok::KwSizeof => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let e = if self.is_type_start() {
                    Expr::SizeofType(self.full_type()?)
                } else {
                    // sizeof(expr): we only need the common scalar case.
                    let _ = self.expr()?;
                    Expr::SizeofType(Type::Int)
                };
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::KwCilkSpawn => {
                self.bump();
                let call = self.unary()?;
                if !matches!(call, Expr::Call { .. }) {
                    return Err(self.err("cilk_spawn must be applied to a call".into()));
                }
                Ok(Expr::CilkSpawn { call: Box::new(call), line })
            }
            Tok::LParen
                if {
                    // cast: `(type)` — lookahead for a type keyword
                    matches!(
                        self.peek2(),
                        Tok::KwInt
                            | Tok::KwDouble
                            | Tok::KwChar
                            | Tok::KwVoid
                            | Tok::KwLong
                            | Tok::KwUnsigned
                            | Tok::KwConst
                    )
                } =>
            {
                self.bump();
                let ty = self.full_type()?;
                self.expect(&Tok::RParen)?;
                let x = self.unary()?;
                Ok(Expr::Cast { ty, x: Box::new(x), line })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = Expr::Index { base: Box::new(e), index: Box::new(idx), line };
                }
                Tok::PlusPlus | Tok::MinusMinus => {
                    let inc = self.bump() == Tok::PlusPlus;
                    e = Expr::IncDec { target: Box::new(e), inc, post: true, line };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr::IntLit(v)),
            Tok::FloatLit(v) => Ok(Expr::FloatLit(v)),
            Tok::StrLit(s) => Ok(Expr::StrLit(s)),
            Tok::CharLit(c) => Ok(Expr::CharLit(c)),
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Ok(Expr::Call { name, args, line })
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(ParseError { line, msg: format!("unexpected token {other:?}") }),
        }
    }
}

// ---- pragma clause parsing ----

fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(|c: char| c.is_whitespace() || c == '(') {
        Some(i) if s.as_bytes()[i] == b'(' => (&s[..i], &s[i..]),
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

fn parse_name_list(s: &str, line: u32) -> PResult<Vec<String>> {
    let s = s.trim();
    let inner = s
        .strip_prefix('(')
        .and_then(|x| x.strip_suffix(')'))
        .ok_or(ParseError { line, msg: format!("expected (list), found `{s}`") })?;
    Ok(inner.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect())
}

#[derive(Default)]
struct PragmaClauses {
    /// (name, argument-text) pairs in order.
    items: Vec<(String, Option<String>)>,
    depends: Vec<Depend>,
    line: u32,
}

impl PragmaClauses {
    fn parse(text: &str, line: u32) -> PResult<PragmaClauses> {
        let mut out = PragmaClauses { line, ..Default::default() };
        let b = text.as_bytes();
        let mut i = 0usize;
        while i < b.len() {
            if b[i].is_ascii_whitespace() || b[i] == b',' {
                i += 1;
                continue;
            }
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            if i == start {
                return Err(ParseError { line, msg: format!("bad clause text `{text}`") });
            }
            let name = text[start..i].to_string();
            let mut arg = None;
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < b.len() && b[i] == b'(' {
                let mut depth = 0;
                let astart = i + 1;
                loop {
                    if i >= b.len() {
                        return Err(ParseError {
                            line,
                            msg: format!("unbalanced parentheses in clause `{name}`"),
                        });
                    }
                    if b[i] == b'(' {
                        depth += 1;
                    } else if b[i] == b')' {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
                arg = Some(text[astart..i].to_string());
                i += 1;
            }
            if name == "depend" {
                let a = arg.ok_or(ParseError { line, msg: "depend needs arguments".into() })?;
                out.depends.push(parse_depend(&a, line)?);
            } else {
                out.items.push((name, arg));
            }
        }
        Ok(out)
    }

    fn has(&self, name: &str) -> bool {
        self.items.iter().any(|(n, _)| n == name)
    }

    fn get_expr(&self, name: &str) -> Option<Expr> {
        self.items
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, a)| a.as_ref())
            .and_then(|a| parse_expr_str(a, self.line).ok())
    }

    fn get_names(&self, name: &str) -> Vec<String> {
        self.items
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, a)| a.as_ref())
            .flat_map(|a| a.split(',').map(|s| s.trim().to_string()))
            .filter(|s| !s.is_empty())
            .collect()
    }
}

fn parse_depend(arg: &str, line: u32) -> PResult<Depend> {
    let (kind_txt, items_txt) = arg.split_once(':').ok_or(ParseError {
        line,
        msg: format!("depend clause needs `kind: items`, got `{arg}`"),
    })?;
    let kind = match kind_txt.trim() {
        "in" => DepKind::In,
        "out" => DepKind::Out,
        "inout" => DepKind::Inout,
        "mutexinoutset" => DepKind::Mutexinoutset,
        "inoutset" => DepKind::Inoutset,
        other => {
            return Err(ParseError { line, msg: format!("unknown dependence kind `{other}`") })
        }
    };
    let mut items = Vec::new();
    for item in items_txt.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        items.push(parse_expr_str(item, line)?);
    }
    Ok(Depend { kind, items })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_and_globals() {
        let u = parse(
            "int g = 5;\n_Thread_local int t;\ndouble arr[4];\nint add(int a, int b) { return a + b; }",
        )
        .unwrap();
        assert_eq!(u.globals.len(), 3);
        assert!(u.globals[1].thread_local);
        assert_eq!(u.globals[2].ty, Type::Array(Box::new(Type::Double), 4));
        assert_eq!(u.functions.len(), 1);
        assert_eq!(u.functions[0].params.len(), 2);
    }

    #[test]
    fn parses_control_flow() {
        let u = parse(
            "int f(int n) {\n  int s = 0;\n  for (int i = 0; i < n; i++) { if (i % 2 == 0) s += i; else continue; }\n  while (s > 100) s = s - 1;\n  return s;\n}",
        )
        .unwrap();
        let body = u.functions[0].body.as_ref().unwrap();
        assert!(matches!(body[1], Stmt::For { .. }));
        assert!(matches!(body[2], Stmt::While { .. }));
    }

    #[test]
    fn parses_omp_parallel_single_task() {
        let src = r#"
int main(void) {
  int x = 0;
  #pragma omp parallel num_threads(4)
  {
    #pragma omp single
    {
      #pragma omp task depend(out: x) shared(x)
      { x = 1; }
      #pragma omp task depend(in: x)
      { int y = x; }
      #pragma omp taskwait
    }
  }
  return x;
}
"#;
        let u = parse(src).unwrap();
        let body = u.functions[0].body.as_ref().unwrap();
        let Stmt::OmpParallel { num_threads, body: pbody, .. } = &body[1] else {
            panic!("expected parallel, got {:?}", body[1]);
        };
        assert_eq!(num_threads, &Some(Expr::IntLit(4)));
        let Stmt::Block(inner) = pbody.as_ref() else { panic!() };
        let Stmt::OmpSingle { body: sbody, .. } = &inner[0] else { panic!() };
        let Stmt::Block(tasks) = sbody.as_ref() else { panic!() };
        let Stmt::OmpTask { clauses, .. } = &tasks[0] else { panic!() };
        assert_eq!(clauses.depends.len(), 1);
        assert_eq!(clauses.depends[0].kind, DepKind::Out);
        assert_eq!(clauses.shared, vec!["x".to_string()]);
        assert!(matches!(tasks[2], Stmt::OmpTaskwait(_)));
    }

    #[test]
    fn parses_depend_kinds_and_indexed_items() {
        let src = "void f(int *a) {\n#pragma omp task depend(inout: a[3]) depend(mutexinoutset: a[0], a[1])\n{ a[3] = 1; }\n}";
        let u = parse(src).unwrap();
        let body = u.functions[0].body.as_ref().unwrap();
        let Stmt::OmpTask { clauses, .. } = &body[0] else { panic!() };
        assert_eq!(clauses.depends.len(), 2);
        assert_eq!(clauses.depends[0].kind, DepKind::Inout);
        assert_eq!(clauses.depends[1].kind, DepKind::Mutexinoutset);
        assert_eq!(clauses.depends[1].items.len(), 2);
    }

    #[test]
    fn parses_taskloop() {
        let src = "void f(int *a, int n) {\n#pragma omp taskloop grainsize(4)\nfor (int i = 0; i < n; i++) a[i] = i;\n}";
        let u = parse(src).unwrap();
        let Stmt::OmpTaskloop { clauses, .. } = &u.functions[0].body.as_ref().unwrap()[0] else {
            panic!()
        };
        assert_eq!(clauses.grainsize, Some(Expr::IntLit(4)));
    }

    #[test]
    fn taskloop_requires_for() {
        let src = "void f() {\n#pragma omp taskloop\n{ }\n}";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parses_cilk() {
        let src = "int fib(int n) { int a = cilk_spawn fib(n-1); int b = fib(n-2); cilk_sync; return a + b; }";
        let u = parse(src).unwrap();
        let body = u.functions[0].body.as_ref().unwrap();
        let Stmt::Decl { init: Some(Expr::CilkSpawn { .. }), .. } = &body[0] else {
            panic!("expected spawn decl, got {:?}", body[0]);
        };
        assert!(matches!(body[2], Stmt::CilkSync(_)));
    }

    #[test]
    fn parses_casts_pointers_sizeof() {
        let src = "void f() { int *x = (int*) malloc(2 * sizeof(int)); x[0] = 42; *x = 1; }";
        let u = parse(src).unwrap();
        let body = u.functions[0].body.as_ref().unwrap();
        assert!(matches!(&body[0], Stmt::Decl { ty: Type::Ptr(_), .. }));
    }

    #[test]
    fn threadprivate_pragma_at_file_scope() {
        let src = "int counter;\n#pragma omp threadprivate(counter)\nvoid f() {}";
        let u = parse(src).unwrap();
        assert!(u.globals[0].thread_local);
    }

    #[test]
    fn variadic_prototype() {
        let u = parse("int printf(char *fmt, ...);").unwrap();
        assert!(u.functions[0].variadic);
        assert!(u.functions[0].body.is_none());
    }

    #[test]
    fn error_reporting_has_lines() {
        let e = parse("int f() {\n  return (1 +\n}").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn compound_assign_expands() {
        let e = parse_expr_str("a += 2", 1).unwrap();
        let Expr::Assign { rhs, .. } = e else { panic!() };
        assert!(matches!(*rhs, Expr::Bin { op: BinOp::Add, .. }));
    }
}
