//! OpenMP / Cilk lowering: outlining, capture planning and runtime calls.
//!
//! The lowering mirrors Clang's: each `parallel`/`task` body becomes an
//! outlined function taking a context pointer. For `parallel`, every
//! captured variable is shared (context slots hold addresses). For
//! `task`, the OpenMP implicit data-sharing rules for our subset apply:
//! a variable is shared if it is listed in `shared(...)` **or** if it was
//! already a shared capture of the enclosing outlined region (that is how
//! "shared in all enclosing contexts" manifests after outlining);
//! everything else is firstprivate and its value is copied into the task
//! payload at creation time.
//!
//! Task payloads live right after the runtime's task descriptor at
//! [`TASK_PAYLOAD_OFF`]; the guest runtime (`libomp.mc`) uses the same
//! constant.

use crate::ast::*;
use crate::codegen::{Binding, Capture, CaptureKind, FnGen, GenError};
use std::collections::HashSet;
use tga::{reg, Inst, Op};

/// Offset of the capture-payload *pointer* inside a runtime task
/// descriptor. The payload itself is a separate allocation from the
/// runtime's built-in allocator (`__kmp_fast_alloc`), which is why
/// Taskgrind must extend its allocator replacement beyond libc malloc —
/// the paper's §IV-B future-work item, implemented here.
pub const TASK_PAYLOAD_OFF: i64 = 64;

/// Task flag bits (must match `grindcore::creq::task_flags` and libomp).
pub const FLAG_UNDEFERRED: i64 = 1 << 0;
pub const FLAG_FINAL: i64 = 1 << 2;
pub const FLAG_MERGEABLE: i64 = 1 << 3;
pub const FLAG_UNTIED: i64 = 1 << 4;
pub const FLAG_DETACHED: i64 = 1 << 5;

const T0: u8 = reg::T0;
const T1: u8 = reg::T1;

type GResult<T> = Result<T, GenError>;

impl<'c> FnGen<'c> {
    pub(crate) fn gen_omp(&mut self, s: &Stmt) -> GResult<()> {
        match s {
            Stmt::OmpParallel { num_threads, body, line } => {
                self.gen_parallel(num_threads.as_ref(), body, *line)
            }
            Stmt::OmpSingle { nowait, body, line } => {
                self.set_line(*line);
                let l_skip = self.new_label();
                self.call_rt("__kmp_single_begin", &[]);
                self.emit_move_t0_from_a0();
                self.emit_branch_eqz(l_skip);
                self.gen_stmt(body)?;
                self.call_rt("__kmp_single_end", &[]);
                self.place_label(l_skip);
                if !nowait {
                    self.call_rt("__kmp_barrier", &[]);
                }
                Ok(())
            }
            Stmt::OmpMaster { body, line } => {
                self.set_line(*line);
                let l_skip = self.new_label();
                self.call_rt("__kmp_thread_num", &[]);
                self.emit_move_t0_from_a0();
                self.emit_branch_nez(l_skip);
                self.gen_stmt(body)?;
                self.place_label(l_skip);
                Ok(())
            }
            Stmt::OmpCritical { name, body, line } => {
                self.set_line(*line);
                let id = self.cc.critical_id(name.as_deref());
                self.emit(Inst::new(Op::Li, reg::A0, 0, 0, id as i64));
                self.emit_call_raw("__kmp_critical_begin");
                self.gen_stmt(body)?;
                self.emit(Inst::new(Op::Li, reg::A0, 0, 0, id as i64));
                self.emit_call_raw("__kmp_critical_end");
                Ok(())
            }
            Stmt::OmpTask { clauses, body, line } => self.gen_task(clauses, body, *line),
            Stmt::OmpTaskwait(line) => {
                self.set_line(*line);
                self.call_rt("__kmp_taskwait", &[]);
                Ok(())
            }
            Stmt::OmpTaskgroup { body, line } => {
                self.set_line(*line);
                self.call_rt("__kmp_taskgroup_begin", &[]);
                self.gen_stmt(body)?;
                self.call_rt("__kmp_taskgroup_end", &[]);
                Ok(())
            }
            Stmt::OmpBarrier(line) => {
                self.set_line(*line);
                self.call_rt("__kmp_barrier", &[]);
                Ok(())
            }
            Stmt::OmpTaskloop { clauses, body, line } => self.gen_taskloop(clauses, body, *line),
            Stmt::CilkSync(line) => {
                self.set_line(*line);
                self.call_rt("__cilk_sync", &[]);
                Ok(())
            }
            _ => unreachable!("gen_omp called on non-OpenMP statement"),
        }
    }

    fn gen_parallel(&mut self, num_threads: Option<&Expr>, body: &Stmt, line: u32) -> GResult<()> {
        self.set_line(line);
        // Every free variable of the region that is function-local here
        // is captured by reference (shared is the parallel default).
        let caps: Vec<Capture> = self
            .free_local_vars(body)
            .into_iter()
            .map(|(name, ty)| Capture { name, kind: CaptureKind::Ref, inner_ty: ty })
            .collect();
        let fname = self.cc.fresh_outlined(&self.buf.name, "_omp_fn");
        self.outline(&fname, body, &caps, line)?;

        // Build the context array on the stack.
        let ctx_off = self.alloc_ctx(caps.len().max(1));
        for (i, c) in caps.iter().enumerate() {
            self.addr_of_var(&c.name, line)?;
            self.emit(Inst::new(Op::St, 0, reg::FP, T0, -ctx_off + (i as i64) * 8));
        }
        // a2 = requested thread count (0 = runtime default)
        if let Some(e) = num_threads {
            self.eval(e)?;
            self.emit(Inst::new(Op::Add, reg::A2, T0, reg::ZERO, 0));
        } else {
            self.emit(Inst::new(Op::Li, reg::A2, 0, 0, 0));
        }
        self.emit_li_func(reg::A0, &fname);
        self.emit(Inst::new(Op::Addi, reg::A1, reg::FP, 0, -ctx_off));
        self.emit_call_raw("__kmp_fork_call");
        Ok(())
    }

    fn gen_task(&mut self, clauses: &TaskClauses, body: &Stmt, line: u32) -> GResult<()> {
        self.set_line(line);
        let caps = self.plan_task_captures(clauses, body);
        let fname = self.cc.fresh_outlined(&self.buf.name, "_omp_task");
        self.outline(&fname, body, &caps, line)?;

        // flags
        let mut const_flags = 0i64;
        if clauses.mergeable {
            const_flags |= FLAG_MERGEABLE;
        }
        if clauses.untied {
            const_flags |= FLAG_UNTIED;
        }
        if clauses.detach.is_some() {
            const_flags |= FLAG_DETACHED;
        }
        self.emit(Inst::new(Op::Li, T0, 0, 0, const_flags));
        self.push(T0);
        if let Some(e) = &clauses.if_expr {
            // if(expr) false ⇒ undeferred
            self.eval(e)?;
            self.emit(Inst::new(Op::Seq, T0, T0, reg::ZERO, 0));
            // FLAG_UNDEFERRED is bit 0, value already 0/1
            self.pop(T1);
            self.emit(Inst::new(Op::Or, T0, T1, T0, 0));
            self.push(T0);
        }
        if let Some(e) = &clauses.final_expr {
            self.eval(e)?;
            self.emit(Inst::new(Op::Sne, T0, T0, reg::ZERO, 0));
            self.emit(Inst::new(Op::Slli, T0, T0, 0, 2)); // FLAG_FINAL = 1<<2
            self.pop(T1);
            self.emit(Inst::new(Op::Or, T0, T1, T0, 0));
            self.push(T0);
        }
        // task = __kmp_task_alloc(fn, payload_bytes, flags)
        self.pop(reg::A2);
        self.emit_li_func(reg::A0, &fname);
        self.emit(Inst::new(Op::Li, reg::A1, 0, 0, (caps.len() as i64) * 8));
        self.emit_call_raw("__kmp_task_alloc");
        // Save the handle in a dedicated local.
        let task_slot = self.alloc_ctx(1);
        self.emit(Inst::new(Op::St, 0, reg::FP, reg::A0, -task_slot));

        // Fill the payload (indirect: the descriptor holds a pointer to a
        // separately allocated payload block).
        for (i, c) in caps.iter().enumerate() {
            match c.kind {
                CaptureKind::Ref => self.addr_of_var(&c.name, line)?,
                CaptureKind::Val => {
                    self.eval(&Expr::Var(c.name.clone(), line))?;
                }
            }
            self.emit(Inst::new(Op::Ld, T1, reg::FP, 0, -task_slot));
            self.emit(Inst::new(Op::Ld, T1, T1, 0, TASK_PAYLOAD_OFF));
            self.emit(Inst::new(Op::St, 0, T1, T0, (i as i64) * 8));
        }

        // detach(evt): hand the event (the task handle) to the program.
        if let Some(evt) = &clauses.detach {
            self.gen_lvalue(&Expr::Var(evt.clone(), line))?;
            self.emit(Inst::new(Op::Ld, T1, reg::FP, 0, -task_slot));
            self.emit(Inst::new(Op::St, 0, T0, T1, 0));
        }

        // Register dependences.
        for dep in &clauses.depends {
            let kind = match dep.kind {
                DepKind::In => 0i64,
                DepKind::Out => 1,
                DepKind::Inout => 2,
                DepKind::Mutexinoutset => 3,
                DepKind::Inoutset => 4,
            };
            for item in &dep.items {
                let ty = self.gen_lvalue(item)?;
                self.emit(Inst::new(Op::Add, reg::A1, T0, reg::ZERO, 0));
                self.emit(Inst::new(Op::Ld, reg::A0, reg::FP, 0, -task_slot));
                self.emit(Inst::new(Op::Li, reg::A2, 0, 0, ty.size().max(1) as i64));
                self.emit(Inst::new(Op::Li, reg::A3, 0, 0, kind));
                self.emit_call_raw("__kmp_task_dep");
            }
        }

        // Go.
        self.emit(Inst::new(Op::Ld, reg::A0, reg::FP, 0, -task_slot));
        self.emit_call_raw("__kmp_task_spawn");
        Ok(())
    }

    /// Decide sharing for every free variable of a task body.
    fn plan_task_captures(&self, clauses: &TaskClauses, body: &Stmt) -> Vec<Capture> {
        self.free_local_vars(body)
            .into_iter()
            .map(|(name, ty)| {
                let explicitly_shared = clauses.shared.contains(&name);
                let explicitly_private = clauses.firstprivate.contains(&name);
                let inherited_shared =
                    matches!(self.lookup(&name), Some(Binding::CapturedRef { .. }));
                let kind = if explicitly_shared || (inherited_shared && !explicitly_private) {
                    CaptureKind::Ref
                } else {
                    CaptureKind::Val
                };
                let inner_ty = match kind {
                    CaptureKind::Ref => ty,
                    CaptureKind::Val => ty.decayed(),
                };
                Capture { name, kind, inner_ty }
            })
            .collect()
    }

    fn gen_taskloop(&mut self, cl: &TaskloopClauses, body: &Stmt, line: u32) -> GResult<()> {
        self.set_line(line);
        let Stmt::For { init, cond, step, body: loop_body, .. } = body else {
            return Err(GenError { line, msg: "taskloop requires a for loop".into() });
        };
        // Canonical form extraction.
        let (var, lo) = match init.as_deref() {
            Some(Stmt::Decl { name, init: Some(e), .. }) => (name.clone(), e.clone()),
            Some(Stmt::Expr(Expr::Assign { lhs, rhs, .. })) => match lhs.as_ref() {
                Expr::Var(n, _) => (n.clone(), rhs.as_ref().clone()),
                _ => return Err(GenError { line, msg: "taskloop: non-canonical init".into() }),
            },
            _ => {
                return Err(GenError {
                    line,
                    msg: "taskloop: loop must initialize its variable".into(),
                })
            }
        };
        let (hi, inclusive) = match cond {
            Some(Expr::Bin { op: BinOp::Lt, rhs, .. }) => (rhs.as_ref().clone(), false),
            Some(Expr::Bin { op: BinOp::Le, rhs, .. }) => (rhs.as_ref().clone(), true),
            _ => return Err(GenError { line, msg: "taskloop: condition must be < or <=".into() }),
        };
        let step_c: i64 = match step {
            Some(Expr::IncDec { inc: true, .. }) => 1,
            Some(Expr::Assign { rhs, .. }) => match rhs.as_ref() {
                Expr::Bin { op: BinOp::Add, rhs: r, .. } => match r.as_ref() {
                    Expr::IntLit(c) if *c > 0 => *c,
                    _ => {
                        return Err(GenError {
                            line,
                            msg: "taskloop: step must be a positive constant".into(),
                        })
                    }
                },
                _ => return Err(GenError { line, msg: "taskloop: non-canonical step".into() }),
            },
            _ => return Err(GenError { line, msg: "taskloop: non-canonical step".into() }),
        };

        // Rebuild as chunked explicit tasks (see module docs). All the
        // synthesized names are prefixed so they cannot collide.
        let v = |n: &str| Expr::Var(n.into(), line);
        let hi_adj = if inclusive {
            Expr::Bin { op: BinOp::Add, lhs: Box::new(hi), rhs: Box::new(Expr::IntLit(1)), line }
        } else {
            hi
        };
        let grain = cl.grainsize.clone().unwrap_or(Expr::IntLit(0));
        let ntasks = cl.num_tasks.clone().unwrap_or(Expr::IntLit(0));
        let chunk_call = Expr::Call {
            name: "__kmp_taskloop_chunk".into(),
            args: vec![v("__tl_lo"), v("__tl_hi"), grain, ntasks],
            line,
        };
        // span = chunk * step
        let span = Expr::Bin {
            op: BinOp::Mul,
            lhs: Box::new(v("__tl_chunk")),
            rhs: Box::new(Expr::IntLit(step_c)),
            line,
        };
        // __tl_ihi = min(__tl_c + span, __tl_hi)
        let c_plus =
            Expr::Bin { op: BinOp::Add, lhs: Box::new(v("__tl_c")), rhs: Box::new(span), line };
        let ihi = Expr::Cond {
            cond: Box::new(Expr::Bin {
                op: BinOp::Lt,
                lhs: Box::new(c_plus.clone()),
                rhs: Box::new(v("__tl_hi")),
                line,
            }),
            then: Box::new(c_plus),
            els: Box::new(v("__tl_hi")),
            line,
        };
        let inner_for = Stmt::For {
            init: Some(Box::new(Stmt::Decl {
                ty: Type::Int,
                name: var.clone(),
                init: Some(v("__tl_c")),
                line,
            })),
            cond: Some(Expr::Bin {
                op: BinOp::Lt,
                lhs: Box::new(v(&var)),
                rhs: Box::new(v("__tl_ihi")),
                line,
            }),
            step: Some(Expr::Assign {
                lhs: Box::new(v(&var)),
                rhs: Box::new(Expr::Bin {
                    op: BinOp::Add,
                    lhs: Box::new(v(&var)),
                    rhs: Box::new(Expr::IntLit(step_c)),
                    line,
                }),
                line,
            }),
            body: loop_body.clone(),
            line,
        };
        let task = Stmt::OmpTask {
            clauses: TaskClauses { shared: cl.shared.clone(), ..Default::default() },
            body: Box::new(Stmt::Block(vec![
                Stmt::Decl { ty: Type::Int, name: "__tl_ihi".into(), init: Some(ihi), line },
                inner_for,
            ])),
            line,
        };
        let chunk_loop = Stmt::For {
            init: Some(Box::new(Stmt::Decl {
                ty: Type::Int,
                name: "__tl_c".into(),
                init: Some(v("__tl_lo")),
                line,
            })),
            cond: Some(Expr::Bin {
                op: BinOp::Lt,
                lhs: Box::new(v("__tl_c")),
                rhs: Box::new(v("__tl_hi")),
                line,
            }),
            step: Some(Expr::Assign {
                lhs: Box::new(v("__tl_c")),
                rhs: Box::new(Expr::Bin {
                    op: BinOp::Add,
                    lhs: Box::new(v("__tl_c")),
                    rhs: Box::new(Expr::Bin {
                        op: BinOp::Mul,
                        lhs: Box::new(v("__tl_chunk")),
                        rhs: Box::new(Expr::IntLit(step_c)),
                        line,
                    }),
                    line,
                }),
                line,
            }),
            body: Box::new(task),
            line,
        };
        let mut stmts = vec![
            Stmt::Decl { ty: Type::Int, name: "__tl_lo".into(), init: Some(lo), line },
            Stmt::Decl { ty: Type::Int, name: "__tl_hi".into(), init: Some(hi_adj), line },
            Stmt::Decl { ty: Type::Int, name: "__tl_chunk".into(), init: Some(chunk_call), line },
        ];
        if !cl.nogroup {
            stmts.push(Stmt::Expr(Expr::Call {
                name: "__kmp_taskgroup_begin".into(),
                args: vec![],
                line,
            }));
        }
        stmts.push(chunk_loop);
        if !cl.nogroup {
            stmts.push(Stmt::Expr(Expr::Call {
                name: "__kmp_taskgroup_end".into(),
                args: vec![],
                line,
            }));
        }
        self.gen_stmt(&Stmt::Block(stmts))
    }

    pub(crate) fn gen_cilk_spawn(
        &mut self,
        dst: Option<String>,
        call: &Expr,
        line: u32,
    ) -> GResult<()> {
        // `x = cilk_spawn f(a)` becomes a task assigning into shared x;
        // Cilk support rides on the tasking runtime ("work-in-progress
        // Cilk support" in the paper's words).
        self.call_rt("__cilk_enter", &[]);
        let body = match &dst {
            Some(name) => Stmt::Expr(Expr::Assign {
                lhs: Box::new(Expr::Var(name.clone(), line)),
                rhs: Box::new(call.clone()),
                line,
            }),
            None => Stmt::Expr(call.clone()),
        };
        let clauses = TaskClauses { shared: dst.into_iter().collect(), ..Default::default() };
        self.gen_task(&clauses, &body, line)
    }
}

/// Collect the free variables of a statement subtree, in first-use order:
/// names referenced but not declared within the subtree.
pub fn free_vars(s: &Stmt) -> Vec<String> {
    struct V {
        bound: Vec<HashSet<String>>,
        free: Vec<String>,
    }
    impl V {
        fn is_bound(&self, n: &str) -> bool {
            self.bound.iter().any(|s| s.contains(n))
        }
        fn use_var(&mut self, n: &str) {
            if !self.is_bound(n) && !self.free.iter().any(|x| x == n) {
                self.free.push(n.to_string());
            }
        }
        fn expr(&mut self, e: &Expr) {
            match e {
                Expr::Var(n, _) => self.use_var(n),
                Expr::Bin { lhs, rhs, .. } => {
                    self.expr(lhs);
                    self.expr(rhs);
                }
                Expr::Un { x, .. } => self.expr(x),
                Expr::Cond { cond, then, els, .. } => {
                    self.expr(cond);
                    self.expr(then);
                    self.expr(els);
                }
                Expr::Assign { lhs, rhs, .. } => {
                    self.expr(lhs);
                    self.expr(rhs);
                }
                Expr::IncDec { target, .. } => self.expr(target),
                Expr::Deref(p, _) => self.expr(p),
                Expr::AddrOf(p, _) => self.expr(p),
                Expr::Index { base, index, .. } => {
                    self.expr(base);
                    self.expr(index);
                }
                Expr::Call { args, .. } => args.iter().for_each(|a| self.expr(a)),
                Expr::Cast { x, .. } => self.expr(x),
                Expr::CilkSpawn { call, .. } => self.expr(call),
                Expr::IntLit(_)
                | Expr::FloatLit(_)
                | Expr::StrLit(_)
                | Expr::CharLit(_)
                | Expr::SizeofType(_) => {}
            }
        }
        fn stmt(&mut self, s: &Stmt) {
            match s {
                Stmt::Decl { name, init, .. } => {
                    if let Some(e) = init {
                        self.expr(e);
                    }
                    self.bound.last_mut().unwrap().insert(name.clone());
                }
                Stmt::Expr(e) => self.expr(e),
                Stmt::Block(v) => {
                    self.bound.push(HashSet::new());
                    v.iter().for_each(|x| self.stmt(x));
                    self.bound.pop();
                }
                Stmt::If { cond, then, els, .. } => {
                    self.expr(cond);
                    self.scoped(then);
                    if let Some(e) = els {
                        self.scoped(e);
                    }
                }
                Stmt::While { cond, body, .. } => {
                    self.expr(cond);
                    self.scoped(body);
                }
                Stmt::For { init, cond, step, body, .. } => {
                    self.bound.push(HashSet::new());
                    if let Some(i) = init {
                        self.stmt(i);
                    }
                    if let Some(c) = cond {
                        self.expr(c);
                    }
                    if let Some(st) = step {
                        self.expr(st);
                    }
                    self.stmt(body);
                    self.bound.pop();
                }
                Stmt::Return(e, _) => {
                    if let Some(e) = e {
                        self.expr(e);
                    }
                }
                Stmt::Break(_)
                | Stmt::Continue(_)
                | Stmt::OmpTaskwait(_)
                | Stmt::OmpBarrier(_)
                | Stmt::CilkSync(_) => {}
                Stmt::OmpParallel { num_threads, body, .. } => {
                    if let Some(e) = num_threads {
                        self.expr(e);
                    }
                    self.scoped(body);
                }
                Stmt::OmpSingle { body, .. }
                | Stmt::OmpMaster { body, .. }
                | Stmt::OmpCritical { body, .. }
                | Stmt::OmpTaskgroup { body, .. } => self.scoped(body),
                Stmt::OmpTask { clauses, body, .. } => {
                    for d in &clauses.depends {
                        d.items.iter().for_each(|e| self.expr(e));
                    }
                    if let Some(e) = &clauses.if_expr {
                        self.expr(e);
                    }
                    if let Some(e) = &clauses.final_expr {
                        self.expr(e);
                    }
                    self.scoped(body);
                }
                Stmt::OmpTaskloop { clauses, body, .. } => {
                    if let Some(e) = &clauses.grainsize {
                        self.expr(e);
                    }
                    if let Some(e) = &clauses.num_tasks {
                        self.expr(e);
                    }
                    self.scoped(body);
                }
            }
        }
        fn scoped(&mut self, s: &Stmt) {
            self.bound.push(HashSet::new());
            self.stmt(s);
            self.bound.pop();
        }
    }
    let mut v = V { bound: vec![HashSet::new()], free: Vec::new() };
    v.scoped(s);
    v.free
}

// --- small helpers exposed to FnGen (kept here to keep codegen.rs lean) ---

impl<'c> FnGen<'c> {
    /// Free variables of `body` that are bound in the current function
    /// scope (locals or captures), paired with their types.
    pub(crate) fn free_local_vars(&self, body: &Stmt) -> Vec<(String, Type)> {
        free_vars(body)
            .into_iter()
            .filter_map(|n| self.lookup(&n).map(|b| (n, b.ty().clone())))
            .collect()
    }

    /// Generate an outlined function with the given captures.
    fn outline(&mut self, fname: &str, body: &Stmt, caps: &[Capture], line: u32) -> GResult<()> {
        let params = vec![Param { ty: Type::Ptr(Box::new(Type::Int)), name: "__ctx".into() }];
        let body_vec = vec![body.clone()];
        let (file_id, tsan) = (self.file_id, self.tsan);
        FnGen::generate(
            self.cc,
            fname,
            file_id,
            tsan,
            Type::Void,
            &params,
            &body_vec,
            Some(caps),
            line,
        )
    }

    /// Address of a variable by name into `T0`.
    fn addr_of_var(&mut self, name: &str, line: u32) -> GResult<()> {
        self.gen_lvalue(&Expr::Var(name.to_string(), line)).map(|_| ())
    }

    fn call_rt(&mut self, name: &str, args: &[i64]) {
        for (i, a) in args.iter().enumerate() {
            self.emit(Inst::new(Op::Li, reg::A0 + i as u8, 0, 0, *a));
        }
        self.emit_call_raw(name);
    }

    fn emit_move_t0_from_a0(&mut self) {
        self.emit(Inst::new(Op::Add, T0, reg::A0, reg::ZERO, 0));
    }

    fn emit_branch_eqz(&mut self, label: usize) {
        self.emit_branch(Inst::new(Op::Beq, 0, T0, reg::ZERO, 0), label);
    }

    fn emit_branch_nez(&mut self, label: usize) {
        self.emit_branch(Inst::new(Op::Bne, 0, T0, reg::ZERO, 0), label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn body_of(src: &str) -> Stmt {
        let u = parse(src).unwrap();
        Stmt::Block(u.functions[0].body.clone().unwrap())
    }

    #[test]
    fn free_vars_basic() {
        let s = body_of("void f() { int a = x + y; a = a + x; z = 1; }");
        assert_eq!(free_vars(&s), vec!["x", "y", "z"]);
    }

    #[test]
    fn free_vars_respects_scopes() {
        let s = body_of("void f() { { int x; x = 1; } x = 2; }");
        assert_eq!(free_vars(&s), vec!["x"]);
        let s = body_of("void f() { for (int i = 0; i < n; i++) a[i] = i; i = 9; }");
        assert_eq!(free_vars(&s), vec!["n", "a", "i"]);
    }

    #[test]
    fn free_vars_sees_nested_pragma_clauses() {
        let s = body_of("void f() {\n#pragma omp task depend(out: q) if(c)\n{ int t = w; }\n}");
        let fv = free_vars(&s);
        assert!(fv.contains(&"q".to_string()));
        assert!(fv.contains(&"c".to_string()));
        assert!(fv.contains(&"w".to_string()));
    }

    #[test]
    fn free_vars_param_shadowing_in_decl_init() {
        // the initializer is evaluated before the name is bound
        let s = body_of("void f() { int x = x + 1; }");
        assert_eq!(free_vars(&s), vec!["x"]);
    }
}
