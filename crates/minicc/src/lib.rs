//! minicc — a mini-C compiler with OpenMP/Cilk support targeting the
//! TGA guest ISA.
//!
//! The paper's workloads (DataRaceBench subset, TMB microbenchmarks,
//! LULESH) are C programs with OpenMP pragmas compiled by Clang at
//! `-O0`; minicc plays Clang's role for the reproduction. It supports
//! the C subset those programs need — `int`/`double`/`char`, pointers,
//! fixed arrays, thread-locals — and lowers
//! `#pragma omp parallel/single/master/critical/task/taskwait/taskgroup/
//! barrier/taskloop/threadprivate` plus `cilk_spawn`/`cilk_sync` into
//! calls to the guest runtime (`guest-rt`), outlining bodies exactly the
//! way Clang does (context pointers, firstprivate payload copies).
//!
//! Entry point: [`compile()`], which takes every translation unit of the
//! program (user code + runtime libraries) and returns an executable
//! [`tga::module::Module`]. Per-file `tsan` flags insert `__tsan_*`
//! calls for the compile-time-instrumented baselines.

pub mod ast;
pub mod codegen;
pub mod compile;
pub mod omp;
pub mod parser;
pub mod token;

pub use compile::{compile, CompileError, SourceFile};
