//! Code generation: minic AST → TGA instructions.
//!
//! The generator is a deliberately simple `-O0`-style stack machine —
//! every intermediate value lives on the guest operand stack, locals are
//! frame-pointer-relative slots — because the paper compiles everything
//! with `-O0` and because the resulting dense stack traffic is exactly
//! the workload Taskgrind's segment-local suppression (§IV-D) exists for.
//!
//! OpenMP constructs are lowered the way Clang lowers them: the body of a
//! `parallel` or `task` is *outlined* into a fresh function taking a
//! context pointer; shared captures pass the variable's address, and
//! firstprivate captures pass its value in the task payload. The lowering
//! calls into the guest runtime (`__kmp_*`, see `guest-rt`), never into
//! the host.

use crate::ast::*;
use crate::compile::{Compiler, FnBuf, Reloc};
use tga::{reg, Inst, Op};

/// A code-generation error.
#[derive(Clone, Debug, PartialEq)]
pub struct GenError {
    pub line: u32,
    pub msg: String,
}

type GResult<T> = Result<T, GenError>;

/// How a name is bound inside the current function.
#[derive(Clone, Debug)]
pub enum Binding {
    /// At `fp - offset`.
    Local {
        offset: i64,
        ty: Type,
    },
    /// `ctx[slot]` holds the variable's *address* (shared capture).
    CapturedRef {
        slot: usize,
        ty: Type,
    },
    /// `ctx[slot]` holds the variable's *value* (firstprivate capture);
    /// the payload slot itself is the private copy's storage.
    CapturedVal {
        slot: usize,
        ty: Type,
    },
    Global {
        off: u64,
        ty: Type,
    },
    Tls {
        off: u64,
        ty: Type,
    },
}

impl Binding {
    pub fn ty(&self) -> &Type {
        match self {
            Binding::Local { ty, .. }
            | Binding::CapturedRef { ty, .. }
            | Binding::CapturedVal { ty, .. }
            | Binding::Global { ty, .. }
            | Binding::Tls { ty, .. } => ty,
        }
    }
}

/// How one variable is captured into an outlined region.
#[derive(Clone, Debug, PartialEq)]
pub enum CaptureKind {
    /// Address stored in the context (shared).
    Ref,
    /// Value copied into the payload (firstprivate).
    Val,
}

/// Capture plan for an outlined region.
#[derive(Clone, Debug)]
pub struct Capture {
    pub name: String,
    pub kind: CaptureKind,
    /// Type of the variable *inside* the outlined function
    /// (arrays decay to pointers for `Val` captures).
    pub inner_ty: Type,
}

const T0: u8 = reg::T0;
const T1: u8 = reg::T1;
const T2: u8 = reg::T2;

pub struct FnGen<'c> {
    pub cc: &'c mut Compiler,
    pub buf: FnBuf,
    scopes: Vec<Vec<(String, Binding)>>,
    frame: i64,
    /// Patched into the prologue's `addi sp, sp, -frame` at the end.
    frame_patch_idx: usize,
    labels: Vec<Option<usize>>,
    ret_label: usize,
    break_stack: Vec<usize>,
    continue_stack: Vec<usize>,
    pub(crate) tsan: bool,
    pub(crate) file_id: u32,
    ret_ty: Type,
}

impl<'c> FnGen<'c> {
    /// Generate a function and register its buffer with the compiler.
    #[allow(clippy::too_many_arguments)]
    pub fn generate(
        cc: &'c mut Compiler,
        name: &str,
        file_id: u32,
        tsan: bool,
        ret: Type,
        params: &[Param],
        body: &[Stmt],
        captures: Option<&[Capture]>,
        line: u32,
    ) -> GResult<()> {
        let mut g = FnGen {
            cc,
            buf: FnBuf::new(name.to_string(), file_id),
            scopes: vec![Vec::new()],
            frame: 0,
            frame_patch_idx: 0,
            labels: Vec::new(),
            ret_label: 0,
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
            tsan,
            file_id,
            ret_ty: ret,
        };
        g.set_line(line);
        // Prologue.
        g.emit(Inst::new(Op::Addi, reg::SP, reg::SP, 0, -16));
        g.emit(Inst::new(Op::St, 0, reg::SP, reg::RA, 8));
        g.emit(Inst::new(Op::St, 0, reg::SP, reg::FP, 0));
        g.emit(Inst::new(Op::Add, reg::FP, reg::SP, reg::ZERO, 0));
        g.frame_patch_idx = g.buf.insts.len();
        g.emit(Inst::new(Op::Addi, reg::SP, reg::SP, 0, 0)); // patched

        // Parameters: copy a0..aN into local slots.
        if params.len() > 8 {
            return Err(GenError {
                line,
                msg: format!("function `{name}` has more than 8 parameters"),
            });
        }
        for (i, p) in params.iter().enumerate() {
            let off = g.alloc_local(&p.ty);
            g.emit(Inst::new(Op::St, 0, reg::FP, reg::A0 + i as u8, -off));
            g.bind(&p.name, Binding::Local { offset: off, ty: p.ty.clone() });
        }
        // Captured bindings resolve through the context parameter (a0,
        // already stored as the first local when this is an outlined fn).
        if let Some(caps) = captures {
            for (slot, c) in caps.iter().enumerate() {
                let b = match c.kind {
                    CaptureKind::Ref => Binding::CapturedRef { slot, ty: c.inner_ty.clone() },
                    CaptureKind::Val => Binding::CapturedVal { slot, ty: c.inner_ty.clone() },
                };
                g.bind(&c.name, b);
            }
        }

        g.ret_label = g.new_label();
        for s in body {
            g.gen_stmt(s)?;
        }
        // Implicit `return 0`.
        g.emit(Inst::new(Op::Li, reg::A0, 0, 0, 0));
        let rl = g.ret_label;
        g.place_label(rl);
        g.emit(Inst::new(Op::Add, reg::SP, reg::FP, reg::ZERO, 0));
        g.emit(Inst::new(Op::Ld, reg::FP, reg::SP, 0, 0));
        g.emit(Inst::new(Op::Ld, reg::RA, reg::SP, 0, 8));
        g.emit(Inst::new(Op::Addi, reg::SP, reg::SP, 0, 16));
        g.emit(Inst::new(Op::Jalr, reg::ZERO, reg::RA, 0, 0));

        // Patch the frame allocation (16-byte aligned).
        let frame = (g.frame + 15) & !15;
        g.buf.insts[g.frame_patch_idx].imm = -frame;
        // Resolve local labels into relocations the layout pass finishes.
        let mut buf = g.buf;
        for (idx, l) in buf.label_refs.clone() {
            let target = g.labels[l].expect("label placed");
            buf.relocs.push((idx, Reloc::CodeLocal(target)));
        }
        g.cc.fn_bufs.push(buf);
        Ok(())
    }

    // ---- low-level emission ----

    pub(crate) fn emit(&mut self, i: Inst) -> usize {
        self.buf.insts.push(i);
        self.buf.insts.len() - 1
    }

    pub(crate) fn set_line(&mut self, line: u32) {
        if line == 0 {
            return;
        }
        let idx = self.buf.insts.len();
        if self.buf.lines.last().map(|&(_, l)| l) != Some(line) {
            self.buf.lines.push((idx, line));
        }
    }

    pub(crate) fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    pub(crate) fn place_label(&mut self, l: usize) {
        self.labels[l] = Some(self.buf.insts.len());
    }

    /// Emit a branch/jump whose target is a local label.
    pub(crate) fn emit_branch(&mut self, mut i: Inst, label: usize) {
        i.imm = 0;
        let idx = self.emit(i);
        self.buf.label_refs.push((idx, label));
    }

    /// Emit `li rd, <address of function>`.
    pub(crate) fn emit_li_func(&mut self, rd: u8, name: &str) {
        let idx = self.emit(Inst::new(Op::Li, rd, 0, 0, 0));
        self.buf.relocs.push((idx, Reloc::Func(name.to_string())));
    }

    /// Emit `li rd, <data address at offset>`.
    pub(crate) fn emit_li_data(&mut self, rd: u8, off: u64) {
        let idx = self.emit(Inst::new(Op::Li, rd, 0, 0, 0));
        self.buf.relocs.push((idx, Reloc::Data(off)));
    }

    pub(crate) fn push(&mut self, r: u8) {
        self.emit(Inst::new(Op::Addi, reg::SP, reg::SP, 0, -8));
        self.emit(Inst::new(Op::St, 0, reg::SP, r, 0));
    }

    pub(crate) fn pop(&mut self, r: u8) {
        self.emit(Inst::new(Op::Ld, r, reg::SP, 0, 0));
        self.emit(Inst::new(Op::Addi, reg::SP, reg::SP, 0, 8));
    }

    pub(crate) fn alloc_local(&mut self, ty: &Type) -> i64 {
        let size = ((ty.size().max(1) + 7) & !7) as i64;
        self.frame += size;
        self.frame
    }

    /// Allocate `n` contiguous 8-byte frame slots; returns the offset of
    /// the block such that slot `i` lives at `fp - offset + 8*i`.
    pub(crate) fn alloc_ctx(&mut self, n: usize) -> i64 {
        self.frame += (n as i64) * 8;
        self.frame
    }

    pub(crate) fn bind(&mut self, name: &str, b: Binding) {
        self.scopes.last_mut().unwrap().push((name.to_string(), b));
    }

    pub(crate) fn lookup(&self, name: &str) -> Option<&Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some((_, b)) = scope.iter().rev().find(|(n, _)| n == name) {
                return Some(b);
            }
        }
        None
    }

    pub(crate) fn err(&self, line: u32, msg: impl Into<String>) -> GenError {
        GenError { line, msg: msg.into() }
    }

    // ---- loads/stores with optional TSan instrumentation ----

    /// Load from address in `T0` into `T0`. `hook` says whether this is a
    /// potentially-shared access that TSan mode must instrument.
    fn emit_load(&mut self, ty: &Type, hook: bool) {
        if self.tsan && hook {
            self.push(T0);
            self.emit(Inst::new(Op::Add, reg::A0, T0, reg::ZERO, 0));
            self.emit_call_raw(if ty.size() == 1 { "__tsan_read1" } else { "__tsan_read8" });
            self.pop(T0);
        }
        let op = if ty.size() == 1 { Op::Lb } else { Op::Ld };
        self.emit(Inst::new(op, T0, T0, 0, 0));
    }

    /// Store `T0` to address in `T1`.
    fn emit_store(&mut self, ty: &Type, hook: bool) {
        if self.tsan && hook {
            self.push(T0);
            self.push(T1);
            self.emit(Inst::new(Op::Add, reg::A0, T1, reg::ZERO, 0));
            self.emit_call_raw(if ty.size() == 1 { "__tsan_write1" } else { "__tsan_write8" });
            self.pop(T1);
            self.pop(T0);
        }
        let op = if ty.size() == 1 { Op::Sb } else { Op::St };
        self.emit(Inst::new(op, 0, T1, T0, 0));
    }

    /// `jal ra, name` through a relocation.
    pub(crate) fn emit_call_raw(&mut self, name: &str) {
        let idx = self.emit(Inst::new(Op::Jal, reg::RA, 0, 0, 0));
        self.buf.relocs.push((idx, Reloc::Func(name.to_string())));
        self.cc.note_called(name);
    }

    // ---- expressions ----

    /// Evaluate `e`; result in `T0`. Returns the value's type.
    pub fn eval(&mut self, e: &Expr) -> GResult<Type> {
        match e {
            Expr::IntLit(v) => {
                self.emit(Inst::new(Op::Li, T0, 0, 0, *v));
                Ok(Type::Int)
            }
            Expr::FloatLit(v) => {
                self.emit(Inst::new(Op::Li, T0, 0, 0, v.to_bits() as i64));
                Ok(Type::Double)
            }
            Expr::CharLit(c) => {
                self.emit(Inst::new(Op::Li, T0, 0, 0, *c as i64));
                Ok(Type::Int)
            }
            Expr::StrLit(s) => {
                let off = self.cc.intern_string(s);
                self.emit_li_data(T0, off);
                Ok(Type::Ptr(Box::new(Type::Char)))
            }
            Expr::Var(name, line) => {
                let Some(b) = self.lookup(name).cloned().or_else(|| self.cc.global_binding(name))
                else {
                    // A bare function name evaluates to its address
                    // (used to pass outlined bodies to the runtime).
                    if self.cc.fn_sig(name).is_some() {
                        self.emit_li_func(T0, name);
                        return Ok(Type::Int);
                    }
                    return Err(self.err(*line, format!("unknown variable `{name}`")));
                };
                let ty = b.ty().clone();
                if let Type::Array(elem, _) = &ty {
                    // arrays decay: value = base address
                    self.gen_addr_of_binding(&b, *line)?;
                    return Ok(Type::Ptr(elem.clone()));
                }
                match &b {
                    Binding::Local { offset, ty } => {
                        let op = if ty.size() == 1 { Op::Lb } else { Op::Ld };
                        self.emit(Inst::new(op, T0, reg::FP, 0, -offset));
                    }
                    _ => {
                        self.gen_addr_of_binding(&b, *line)?;
                        self.emit_load(&ty, true);
                    }
                }
                Ok(ty.decayed())
            }
            Expr::Bin { op, lhs, rhs, line } => self.eval_bin(*op, lhs, rhs, *line),
            Expr::Un { op, x, line } => {
                let ty = self.eval(x)?;
                match op {
                    UnOp::Neg => {
                        if ty.is_double() {
                            self.emit(Inst::new(Op::Fneg, T0, T0, 0, 0));
                        } else {
                            self.emit(Inst::new(Op::Sub, T0, reg::ZERO, T0, 0));
                        }
                        Ok(ty)
                    }
                    UnOp::Not => {
                        if ty.is_double() {
                            return Err(self.err(*line, "`!` on double unsupported"));
                        }
                        self.emit(Inst::new(Op::Seq, T0, T0, reg::ZERO, 0));
                        Ok(Type::Int)
                    }
                    UnOp::BitNot => {
                        self.emit(Inst::new(Op::Xori, T0, T0, 0, -1));
                        Ok(Type::Int)
                    }
                }
            }
            Expr::Cond { cond, then, els, line } => {
                let l_else = self.new_label();
                let l_end = self.new_label();
                self.eval(cond)?;
                self.emit_branch(Inst::new(Op::Beq, 0, T0, reg::ZERO, 0), l_else);
                let t1 = self.eval(then)?;
                self.emit_branch(Inst::new(Op::Jal, reg::ZERO, 0, 0, 0), l_end);
                self.place_label(l_else);
                let t2 = self.eval(els)?;
                self.place_label(l_end);
                let _ = line;
                Ok(if t1.is_double() || t2.is_double() { Type::Double } else { t1 })
            }
            Expr::Assign { lhs, rhs, line } => {
                let lty = self.gen_lvalue(lhs)?;
                self.push(T0); // address
                let rty = self.eval(rhs)?;
                self.convert(&rty, &lty, *line)?;
                self.pop(T1);
                let hook = self.lvalue_is_shared(lhs);
                self.emit_store(&lty, hook);
                Ok(lty)
            }
            Expr::IncDec { target, inc, post, line } => {
                let ty = self.gen_lvalue(target)?;
                let delta: i64 = match &ty {
                    Type::Ptr(p) => p.size() as i64,
                    Type::Int | Type::Char => 1,
                    _ => return Err(self.err(*line, "++/-- needs an integer or pointer")),
                };
                let delta = if *inc { delta } else { -delta };
                self.push(T0);
                // load old
                let hook = self.lvalue_is_shared(target);
                self.emit_load(&ty, hook);
                self.push(T0); // old value
                self.emit(Inst::new(Op::Addi, T0, T0, 0, delta));
                self.pop(T2); // old
                self.pop(T1); // addr
                              // store new (T0)
                self.push(T2);
                self.emit_store(&ty, hook);
                self.pop(T2);
                if *post {
                    self.emit(Inst::new(Op::Add, T0, T2, reg::ZERO, 0));
                }
                Ok(ty)
            }
            Expr::Deref(p, line) => {
                let pty = self.eval(p)?;
                let inner = pty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| self.err(*line, "dereference of non-pointer"))?;
                self.emit_load(&inner, true);
                Ok(inner.decayed())
            }
            Expr::AddrOf(lv, _) => {
                let ty = self.gen_lvalue(lv)?;
                Ok(Type::Ptr(Box::new(ty)))
            }
            Expr::Index { base, index, line } => {
                let elem = self.gen_index_addr(base, index, *line)?;
                self.emit_load(&elem, true);
                Ok(elem.decayed())
            }
            Expr::Call { name, args, line } => self.eval_call(name, args, *line),
            Expr::Cast { ty, x, line } => {
                let from = self.eval(x)?;
                match (from.is_double(), ty.is_double()) {
                    (false, true) => {
                        self.emit(Inst::new(Op::Fcvtif, T0, T0, 0, 0));
                    }
                    (true, false) => {
                        self.emit(Inst::new(Op::Fcvtfi, T0, T0, 0, 0));
                    }
                    _ => {}
                }
                let _ = line;
                Ok(ty.decayed())
            }
            Expr::SizeofType(t) => {
                self.emit(Inst::new(Op::Li, T0, 0, 0, t.size() as i64));
                Ok(Type::Int)
            }
            Expr::CilkSpawn { line, .. } => {
                Err(self.err(*line, "cilk_spawn only supported as a statement or initializer"))
            }
        }
    }

    fn eval_bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, line: u32) -> GResult<Type> {
        // Short-circuit logical operators.
        if op == BinOp::LAnd || op == BinOp::LOr {
            let l_done = self.new_label();
            self.eval(lhs)?;
            self.emit(Inst::new(Op::Sne, T0, T0, reg::ZERO, 0));
            if op == BinOp::LAnd {
                self.emit_branch(Inst::new(Op::Beq, 0, T0, reg::ZERO, 0), l_done);
            } else {
                self.emit_branch(Inst::new(Op::Bne, 0, T0, reg::ZERO, 0), l_done);
            }
            self.eval(rhs)?;
            self.emit(Inst::new(Op::Sne, T0, T0, reg::ZERO, 0));
            self.place_label(l_done);
            return Ok(Type::Int);
        }

        let lty = self.eval(lhs)?;
        self.push(T0);
        let rty = self.eval(rhs)?;
        self.pop(T1); // lhs in T1, rhs in T0

        // Pointer difference: byte delta divided by element size.
        if op == BinOp::Sub && lty.is_pointer_like() && rty.is_pointer_like() {
            self.emit(Inst::new(Op::Sub, T0, T1, T0, 0));
            let scale = lty.pointee().map(|t| t.size()).unwrap_or(1).max(1) as i64;
            if scale > 1 {
                self.emit(Inst::new(Op::Li, T2, 0, 0, scale));
                self.emit(Inst::new(Op::Div, T0, T0, T2, 0));
            }
            return Ok(Type::Int);
        }
        // Pointer arithmetic.
        if let (Type::Ptr(p), false) = (&lty, rty.is_double()) {
            match op {
                BinOp::Add | BinOp::Sub => {
                    let scale = p.size() as i64;
                    if scale > 1 {
                        self.emit(Inst::new(Op::Li, T2, 0, 0, scale));
                        self.emit(Inst::new(Op::Mul, T0, T0, T2, 0));
                    }
                    let o = if op == BinOp::Add { Op::Add } else { Op::Sub };
                    self.emit(Inst::new(o, T0, T1, T0, 0));
                    return Ok(lty);
                }
                _ => {}
            }
        }
        if let (false, Type::Ptr(p)) = (lty.is_double(), &rty) {
            if op == BinOp::Add {
                let scale = p.size() as i64;
                if scale > 1 {
                    self.emit(Inst::new(Op::Li, T2, 0, 0, scale));
                    self.emit(Inst::new(Op::Mul, T1, T1, T2, 0));
                }
                self.emit(Inst::new(Op::Add, T0, T1, T0, 0));
                return Ok(rty);
            }
        }

        let float = lty.is_double() || rty.is_double();
        if float {
            if !lty.is_double() {
                self.emit(Inst::new(Op::Fcvtif, T1, T1, 0, 0));
            }
            if !rty.is_double() {
                self.emit(Inst::new(Op::Fcvtif, T0, T0, 0, 0));
            }
            let (o, swap, negate) = match op {
                BinOp::Add => (Op::Fadd, false, false),
                BinOp::Sub => (Op::Fsub, false, false),
                BinOp::Mul => (Op::Fmul, false, false),
                BinOp::Div => (Op::Fdiv, false, false),
                BinOp::Eq => (Op::Feq, false, false),
                BinOp::Ne => (Op::Feq, false, true),
                BinOp::Lt => (Op::Flt, false, false),
                BinOp::Le => (Op::Fle, false, false),
                BinOp::Gt => (Op::Flt, true, false),
                BinOp::Ge => (Op::Fle, true, false),
                _ => return Err(self.err(line, "bitwise/modulo ops on double")),
            };
            if swap {
                self.emit(Inst::new(o, T0, T0, T1, 0));
            } else {
                self.emit(Inst::new(o, T0, T1, T0, 0));
            }
            if negate {
                self.emit(Inst::new(Op::Seq, T0, T0, reg::ZERO, 0));
            }
            let cmp =
                matches!(op, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge);
            return Ok(if cmp { Type::Int } else { Type::Double });
        }

        let (o, swap) = match op {
            BinOp::Add => (Op::Add, false),
            BinOp::Sub => (Op::Sub, false),
            BinOp::Mul => (Op::Mul, false),
            BinOp::Div => (Op::Div, false),
            BinOp::Rem => (Op::Rem, false),
            BinOp::And => (Op::And, false),
            BinOp::Or => (Op::Or, false),
            BinOp::Xor => (Op::Xor, false),
            BinOp::Shl => (Op::Sll, false),
            BinOp::Shr => (Op::Sra, false),
            BinOp::Eq => (Op::Seq, false),
            BinOp::Ne => (Op::Sne, false),
            BinOp::Lt => (Op::Slt, false),
            BinOp::Le => (Op::Sle, false),
            BinOp::Gt => (Op::Slt, true),
            BinOp::Ge => (Op::Sle, true),
            BinOp::LAnd | BinOp::LOr => unreachable!(),
        };
        if swap {
            self.emit(Inst::new(o, T0, T0, T1, 0));
        } else {
            self.emit(Inst::new(o, T0, T1, T0, 0));
        }
        Ok(Type::Int)
    }

    /// Numeric conversion of the value in `T0`.
    fn convert(&mut self, from: &Type, to: &Type, _line: u32) -> GResult<()> {
        match (from.is_double(), to.is_double()) {
            (false, true) => {
                self.emit(Inst::new(Op::Fcvtif, T0, T0, 0, 0));
            }
            (true, false) if !matches!(to, Type::Ptr(_)) => {
                self.emit(Inst::new(Op::Fcvtfi, T0, T0, 0, 0));
            }
            _ => {}
        }
        Ok(())
    }

    /// Does writing through this lvalue touch potentially-shared memory
    /// (for TSan instrumentation)?
    fn lvalue_is_shared(&self, e: &Expr) -> bool {
        match e {
            Expr::Var(name, _) => match self.lookup(name) {
                Some(Binding::Local { .. }) => false,
                Some(_) => true,
                None => true, // global
            },
            _ => true,
        }
    }

    /// Compute the address of an lvalue into `T0`; returns the object type.
    pub fn gen_lvalue(&mut self, e: &Expr) -> GResult<Type> {
        match e {
            Expr::Var(name, line) => {
                let Some(b) = self.lookup(name).cloned().or_else(|| self.cc.global_binding(name))
                else {
                    // A bare function name evaluates to its address
                    // (used to pass outlined bodies to the runtime).
                    if self.cc.fn_sig(name).is_some() {
                        self.emit_li_func(T0, name);
                        return Ok(Type::Int);
                    }
                    return Err(self.err(*line, format!("unknown variable `{name}`")));
                };
                let ty = b.ty().clone();
                self.gen_addr_of_binding(&b, *line)?;
                Ok(ty)
            }
            Expr::Deref(p, line) => {
                let pty = self.eval(p)?;
                pty.pointee().cloned().ok_or_else(|| self.err(*line, "dereference of non-pointer"))
            }
            Expr::Index { base, index, line } => self.gen_index_addr(base, index, *line),
            Expr::Cast { x, .. } => self.gen_lvalue(x),
            other => Err(self.err(other.line(), "expression is not assignable")),
        }
    }

    fn gen_addr_of_binding(&mut self, b: &Binding, _line: u32) -> GResult<()> {
        match b {
            Binding::Local { offset, .. } => {
                self.emit(Inst::new(Op::Addi, T0, reg::FP, 0, -offset));
            }
            Binding::Global { off, .. } => {
                self.emit_li_data(T0, *off);
            }
            Binding::Tls { off, .. } => {
                self.emit(Inst::new(Op::Addi, T0, reg::TP, 0, *off as i64));
            }
            Binding::CapturedRef { slot, .. } => {
                // ctx pointer is the first parameter (local slot at fp-8).
                self.emit(Inst::new(Op::Ld, T0, reg::FP, 0, -8));
                self.emit(Inst::new(Op::Ld, T0, T0, 0, (*slot as i64) * 8));
            }
            Binding::CapturedVal { slot, .. } => {
                self.emit(Inst::new(Op::Ld, T0, reg::FP, 0, -8));
                self.emit(Inst::new(Op::Addi, T0, T0, 0, (*slot as i64) * 8));
            }
        }
        Ok(())
    }

    fn gen_index_addr(&mut self, base: &Expr, index: &Expr, line: u32) -> GResult<Type> {
        let bty = self.eval(base)?;
        let elem =
            bty.pointee().cloned().ok_or_else(|| self.err(line, "indexing a non-pointer"))?;
        self.push(T0);
        let ity = self.eval(index)?;
        if ity.is_double() {
            return Err(self.err(line, "array index must be an integer"));
        }
        let scale = elem.size() as i64;
        if scale > 1 {
            self.emit(Inst::new(Op::Li, T2, 0, 0, scale));
            self.emit(Inst::new(Op::Mul, T0, T0, T2, 0));
        }
        self.pop(T1);
        self.emit(Inst::new(Op::Add, T0, T1, T0, 0));
        Ok(elem)
    }

    fn eval_call(&mut self, name: &str, args: &[Expr], line: u32) -> GResult<Type> {
        // Compiler builtins.
        match name {
            "__sys" => {
                let Some(Expr::IntLit(n)) = args.first() else {
                    return Err(self.err(line, "__sys needs a literal syscall number first"));
                };
                let n = *n;
                let rest = &args[1..];
                if rest.len() > 6 {
                    return Err(self.err(line, "__sys takes at most 6 arguments"));
                }
                for a in rest {
                    self.eval(a)?;
                    self.push(T0);
                }
                for i in (0..rest.len()).rev() {
                    self.pop(reg::A0 + i as u8);
                }
                self.emit(Inst::new(Op::Sys, T0, 0, 0, n));
                return Ok(Type::Int);
            }
            "__clreq" => {
                if args.is_empty() || args.len() > 6 {
                    return Err(self.err(line, "__clreq takes 1..6 arguments"));
                }
                for a in args {
                    self.eval(a)?;
                    self.push(T0);
                }
                for i in (0..args.len()).rev() {
                    self.pop(reg::A0 + i as u8);
                }
                // zero unused request argument registers
                for i in args.len()..6 {
                    self.emit(Inst::new(Op::Li, reg::A0 + i as u8, 0, 0, 0));
                }
                self.emit(Inst::new(Op::Clreq, T0, 0, 0, 0));
                return Ok(Type::Int);
            }
            "__cas" => {
                if args.len() != 3 {
                    return Err(self.err(line, "__cas(p, expected, new)"));
                }
                self.eval(&args[0])?;
                self.push(T0);
                self.eval(&args[1])?;
                self.push(T0);
                self.eval(&args[2])?;
                self.emit(Inst::new(Op::Add, T2, T0, reg::ZERO, 0)); // new
                self.pop(T0); // expected
                self.pop(T1); // addr
                self.emit(Inst::new(Op::Cas, T0, T1, T2, 0));
                return Ok(Type::Int);
            }
            "__fetch_add" => {
                if args.len() != 2 {
                    return Err(self.err(line, "__fetch_add(p, v)"));
                }
                self.eval(&args[0])?;
                self.push(T0);
                self.eval(&args[1])?;
                self.emit(Inst::new(Op::Add, T2, T0, reg::ZERO, 0));
                self.pop(T1);
                self.emit(Inst::new(Op::Amoadd, T0, T1, T2, 0));
                return Ok(Type::Int);
            }
            "__icall0" | "__icall1" | "__icall2" => {
                // Indirect call: __icallN(fnptr, args...). Used by the
                // guest runtime to invoke outlined task bodies.
                let n = (name.as_bytes()[7] - b'0') as usize;
                if args.len() != n + 1 {
                    return Err(self.err(line, format!("{name} takes {} arguments", n + 1)));
                }
                for a in args {
                    self.eval(a)?;
                    self.push(T0);
                }
                for i in (0..n).rev() {
                    self.pop(reg::A0 + i as u8);
                }
                self.pop(T1);
                self.emit(Inst::new(Op::Jalr, reg::RA, T1, 0, 0));
                self.emit(Inst::new(Op::Add, T0, reg::A0, reg::ZERO, 0));
                return Ok(Type::Int);
            }
            "sqrt" | "fabs" => {
                if args.len() != 1 {
                    return Err(self.err(line, format!("{name}(x)")));
                }
                let t = self.eval(&args[0])?;
                if !t.is_double() {
                    self.emit(Inst::new(Op::Fcvtif, T0, T0, 0, 0));
                }
                let op = if name == "sqrt" { Op::Fsqrt } else { Op::Fabs };
                self.emit(Inst::new(op, T0, T0, 0, 0));
                return Ok(Type::Double);
            }
            _ => {}
        }

        let sig = self
            .cc
            .fn_sig(name)
            .ok_or_else(|| self.err(line, format!("unknown function `{name}`")))?;
        if args.len() > 8 {
            return Err(self.err(line, "calls support at most 8 arguments"));
        }
        if !sig.variadic && args.len() != sig.params.len() {
            return Err(self.err(
                line,
                format!("`{name}` expects {} arguments, got {}", sig.params.len(), args.len()),
            ));
        }
        if sig.variadic && args.len() > sig.params.len().max(6) {
            return Err(self.err(line, format!("too many arguments to variadic `{name}`")));
        }
        let pad_to = if sig.variadic { sig.params.len().min(8) } else { 0 };
        let ret = sig.ret.clone();
        let param_tys = sig.params.clone();
        let variadic_call = sig.variadic;
        for (i, a) in args.iter().enumerate() {
            let at = self.eval(a)?;
            // Variadic callees receive default-promoted values: doubles
            // stay doubles (read back by bit pattern via %f).
            if !variadic_call {
                if let Some(pt) = param_tys.get(i) {
                    self.convert(&at, pt, line)?;
                }
            }
            self.push(T0);
        }
        for i in (0..args.len()).rev() {
            self.pop(reg::A0 + i as u8);
        }
        // Variadic callees read a fixed register window; zero the unused part.
        for i in args.len()..pad_to {
            self.emit(Inst::new(Op::Li, reg::A0 + i as u8, 0, 0, 0));
        }
        self.emit_call_raw(name);
        self.emit(Inst::new(Op::Add, T0, reg::A0, reg::ZERO, 0));
        Ok(ret.decayed())
    }

    // ---- statements ----

    pub fn gen_stmt(&mut self, s: &Stmt) -> GResult<()> {
        match s {
            Stmt::Decl { ty, name, init, line } => {
                self.set_line(*line);
                let off = self.alloc_local(ty);
                self.bind(name, Binding::Local { offset: off, ty: ty.clone() });
                if let Some(e) = init {
                    if let Expr::CilkSpawn { call, line } = e {
                        self.gen_cilk_spawn(Some(name.clone()), call, *line)?;
                        return Ok(());
                    }
                    let et = self.eval(e)?;
                    self.convert(&et, ty, *line)?;
                    let op = if ty.size() == 1 { Op::Sb } else { Op::St };
                    self.emit(Inst::new(op, 0, reg::FP, T0, -off));
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.set_line(e.line());
                match e {
                    Expr::CilkSpawn { call, line } => self.gen_cilk_spawn(None, call, *line),
                    Expr::Assign { lhs, rhs, line } => {
                        if let Expr::CilkSpawn { call, .. } = rhs.as_ref() {
                            if let Expr::Var(n, _) = lhs.as_ref() {
                                return self.gen_cilk_spawn(Some(n.clone()), call, *line);
                            }
                            return Err(self.err(*line, "cilk_spawn result must go to a variable"));
                        }
                        self.eval(e)?;
                        Ok(())
                    }
                    _ => {
                        self.eval(e)?;
                        Ok(())
                    }
                }
            }
            Stmt::Block(stmts) => {
                self.scopes.push(Vec::new());
                for st in stmts {
                    self.gen_stmt(st)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::If { cond, then, els, line } => {
                self.set_line(*line);
                let l_else = self.new_label();
                let l_end = self.new_label();
                self.eval(cond)?;
                self.emit_branch(Inst::new(Op::Beq, 0, T0, reg::ZERO, 0), l_else);
                self.gen_stmt(then)?;
                self.emit_branch(Inst::new(Op::Jal, reg::ZERO, 0, 0, 0), l_end);
                self.place_label(l_else);
                if let Some(e) = els {
                    self.gen_stmt(e)?;
                }
                self.place_label(l_end);
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                self.set_line(*line);
                let l_head = self.new_label();
                let l_end = self.new_label();
                self.place_label(l_head);
                self.eval(cond)?;
                self.emit_branch(Inst::new(Op::Beq, 0, T0, reg::ZERO, 0), l_end);
                self.break_stack.push(l_end);
                self.continue_stack.push(l_head);
                self.gen_stmt(body)?;
                self.break_stack.pop();
                self.continue_stack.pop();
                self.emit_branch(Inst::new(Op::Jal, reg::ZERO, 0, 0, 0), l_head);
                self.place_label(l_end);
                Ok(())
            }
            Stmt::For { init, cond, step, body, line } => {
                self.set_line(*line);
                self.scopes.push(Vec::new());
                if let Some(i) = init {
                    self.gen_stmt(i)?;
                }
                let l_head = self.new_label();
                let l_step = self.new_label();
                let l_end = self.new_label();
                self.place_label(l_head);
                if let Some(c) = cond {
                    self.eval(c)?;
                    self.emit_branch(Inst::new(Op::Beq, 0, T0, reg::ZERO, 0), l_end);
                }
                self.break_stack.push(l_end);
                self.continue_stack.push(l_step);
                self.gen_stmt(body)?;
                self.break_stack.pop();
                self.continue_stack.pop();
                self.place_label(l_step);
                if let Some(st) = step {
                    self.eval(st)?;
                }
                self.emit_branch(Inst::new(Op::Jal, reg::ZERO, 0, 0, 0), l_head);
                self.place_label(l_end);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(e, line) => {
                self.set_line(*line);
                if let Some(e) = e {
                    let t = self.eval(e)?;
                    let rt = self.ret_ty.clone();
                    self.convert(&t, &rt, *line)?;
                    self.emit(Inst::new(Op::Add, reg::A0, T0, reg::ZERO, 0));
                } else {
                    self.emit(Inst::new(Op::Li, reg::A0, 0, 0, 0));
                }
                let rl = self.ret_label;
                self.emit_branch(Inst::new(Op::Jal, reg::ZERO, 0, 0, 0), rl);
                Ok(())
            }
            Stmt::Break(line) => {
                let l = *self
                    .break_stack
                    .last()
                    .ok_or_else(|| self.err(*line, "break outside loop"))?;
                self.emit_branch(Inst::new(Op::Jal, reg::ZERO, 0, 0, 0), l);
                Ok(())
            }
            Stmt::Continue(line) => {
                let l = *self
                    .continue_stack
                    .last()
                    .ok_or_else(|| self.err(*line, "continue outside loop"))?;
                self.emit_branch(Inst::new(Op::Jal, reg::ZERO, 0, 0, 0), l);
                Ok(())
            }
            Stmt::OmpParallel { .. }
            | Stmt::OmpSingle { .. }
            | Stmt::OmpMaster { .. }
            | Stmt::OmpCritical { .. }
            | Stmt::OmpTask { .. }
            | Stmt::OmpTaskwait(_)
            | Stmt::OmpTaskgroup { .. }
            | Stmt::OmpBarrier(_)
            | Stmt::OmpTaskloop { .. }
            | Stmt::CilkSync(_) => self.gen_omp(s),
        }
    }

    // OpenMP lowering lives in omp.rs (same impl block continued there).
}

#[cfg(test)]
mod tests {
    // End-to-end codegen behaviour is exercised in `crates/minicc/tests/`
    // and in the execution tests of `guest-rt`; unit tests here cover the
    // binding helpers.
    use super::*;

    #[test]
    fn binding_types() {
        let b = Binding::Local { offset: 8, ty: Type::Int };
        assert_eq!(b.ty(), &Type::Int);
        let b = Binding::CapturedVal { slot: 0, ty: Type::Ptr(Box::new(Type::Double)) };
        assert_eq!(b.ty().size(), 8);
    }
}
