//! Abstract syntax tree for minic, including the OpenMP/Cilk constructs
//! that the lowering in `codegen` outlines into runtime calls.

/// A minic type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Type {
    Void,
    /// 64-bit signed integer (`int` and `long` are both 64-bit here).
    Int,
    /// IEEE double.
    Double,
    /// 8-bit integer.
    Char,
    Ptr(Box<Type>),
    /// Fixed-size array (locals/globals only; decays to `Ptr` in rvalues).
    Array(Box<Type>, u64),
}

impl Type {
    /// Size in bytes when stored in memory.
    pub fn size(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Int | Type::Double | Type::Ptr(_) => 8,
            Type::Char => 1,
            Type::Array(e, n) => e.size() * n,
        }
    }

    pub fn is_double(&self) -> bool {
        matches!(self, Type::Double)
    }

    pub fn is_pointer_like(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(..))
    }

    /// Element type of a pointer or array.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// The rvalue type: arrays decay to pointers.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(e, _) => Type::Ptr(e.clone()),
            t => t.clone(),
        }
    }
}

/// Binary operators (after parsing; `&&`/`||` kept for short-circuit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LAnd,
    LOr,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// Expressions, each carrying the source line for diagnostics/debug info.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    CharLit(u8),
    /// Variable reference.
    Var(String, u32),
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    Un {
        op: UnOp,
        x: Box<Expr>,
        line: u32,
    },
    /// `cond ? a : b`
    Cond {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
        line: u32,
    },
    /// `lhs = rhs` (or compound `op=`, pre-expanded by the parser).
    Assign {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// Pre/post increment/decrement.
    IncDec {
        target: Box<Expr>,
        inc: bool,
        post: bool,
        line: u32,
    },
    /// `*p`
    Deref(Box<Expr>, u32),
    /// `&lv`
    AddrOf(Box<Expr>, u32),
    /// `a[i]`
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        line: u32,
    },
    Call {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    Cast {
        ty: Type,
        x: Box<Expr>,
        line: u32,
    },
    SizeofType(Type),
    /// `cilk_spawn f(args)` in expression position.
    CilkSpawn {
        call: Box<Expr>,
        line: u32,
    },
}

impl Expr {
    pub fn line(&self) -> u32 {
        match self {
            Expr::Var(_, l)
            | Expr::Bin { line: l, .. }
            | Expr::Un { line: l, .. }
            | Expr::Cond { line: l, .. }
            | Expr::Assign { line: l, .. }
            | Expr::IncDec { line: l, .. }
            | Expr::Deref(_, l)
            | Expr::AddrOf(_, l)
            | Expr::Index { line: l, .. }
            | Expr::Call { line: l, .. }
            | Expr::Cast { line: l, .. }
            | Expr::CilkSpawn { line: l, .. } => *l,
            _ => 0,
        }
    }
}

/// Dependence kinds in `depend(...)` clauses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    In,
    Out,
    Inout,
    Mutexinoutset,
    Inoutset,
}

/// One `depend(kind: items)` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Depend {
    pub kind: DepKind,
    /// Lvalue expressions; the dependence address is `&item`.
    pub items: Vec<Expr>,
}

/// Clauses of `#pragma omp task`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskClauses {
    pub depends: Vec<Depend>,
    pub shared: Vec<String>,
    pub firstprivate: Vec<String>,
    pub if_expr: Option<Expr>,
    pub final_expr: Option<Expr>,
    pub untied: bool,
    pub mergeable: bool,
    /// `detach(evt)`: the named variable receives the completion event
    /// handle; the task completes on `omp_fulfill_event(evt)`.
    pub detach: Option<String>,
}

/// Clauses of `#pragma omp taskloop`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskloopClauses {
    pub grainsize: Option<Expr>,
    pub num_tasks: Option<Expr>,
    /// `collapse(n)`; we honour n=1 exactly, n>1 by chunking the
    /// outermost loop (documented simplification).
    pub collapse: u32,
    pub shared: Vec<String>,
    pub nogroup: bool,
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Local declaration. `init` may be None.
    Decl {
        ty: Type,
        name: String,
        init: Option<Expr>,
        line: u32,
    },
    Expr(Expr),
    Block(Vec<Stmt>),
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
        line: u32,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
        line: u32,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
        line: u32,
    },
    Return(Option<Expr>, u32),
    Break(u32),
    Continue(u32),

    // --- OpenMP constructs (attached pragmas, lowered in codegen) ---
    OmpParallel {
        num_threads: Option<Expr>,
        body: Box<Stmt>,
        line: u32,
    },
    OmpSingle {
        nowait: bool,
        body: Box<Stmt>,
        line: u32,
    },
    OmpMaster {
        body: Box<Stmt>,
        line: u32,
    },
    OmpCritical {
        name: Option<String>,
        body: Box<Stmt>,
        line: u32,
    },
    OmpTask {
        clauses: TaskClauses,
        body: Box<Stmt>,
        line: u32,
    },
    OmpTaskwait(u32),
    OmpTaskgroup {
        body: Box<Stmt>,
        line: u32,
    },
    OmpBarrier(u32),
    /// `#pragma omp taskloop` on a canonical `for` loop.
    OmpTaskloop {
        clauses: TaskloopClauses,
        body: Box<Stmt>,
        line: u32,
    },
    /// `cilk_sync;`
    CilkSync(u32),
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    pub ty: Type,
    pub name: String,
}

/// A function definition or prototype.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    pub ret: Type,
    pub name: String,
    pub params: Vec<Param>,
    pub variadic: bool,
    /// None for prototypes.
    pub body: Option<Vec<Stmt>>,
    pub line: u32,
}

/// Initializer of a global.
#[derive(Clone, Debug, PartialEq)]
pub enum GlobalInit {
    None,
    Int(i64),
    Double(f64),
    Str(String),
}

/// A global variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    pub ty: Type,
    pub name: String,
    pub init: GlobalInit,
    /// `_Thread_local` (or listed in `#pragma omp threadprivate`).
    pub thread_local: bool,
    /// Specifically from `#pragma omp threadprivate` (some tools treat
    /// OpenMP threadprivate differently from C11 `_Thread_local`).
    pub threadprivate: bool,
    pub line: u32,
}

/// One parsed translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Unit {
    pub functions: Vec<Function>,
    pub globals: Vec<Global>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes_and_decay() {
        assert_eq!(Type::Int.size(), 8);
        assert_eq!(Type::Char.size(), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Char)).size(), 8);
        let arr = Type::Array(Box::new(Type::Double), 10);
        assert_eq!(arr.size(), 80);
        assert_eq!(arr.decayed(), Type::Ptr(Box::new(Type::Double)));
        assert_eq!(arr.pointee(), Some(&Type::Double));
        assert_eq!(Type::Int.decayed(), Type::Int);
    }
}
