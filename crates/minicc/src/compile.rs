//! Compiler driver: multi-TU compilation, global layout, code layout,
//! relocation and module assembly.
//!
//! `compile` accepts all translation units of a program at once (user
//! sources plus the guest runtime sources from `guest-rt`) and produces
//! one executable [`tga::module::Module`] — the multi-TU pass plays the
//! role of the linker. Each [`SourceFile`] carries its own `tsan` flag so
//! user code can be compile-time instrumented (the Archer model) while
//! the runtime stays uninstrumented — exactly the false-negative surface
//! the paper attributes to compile-time instrumentation.

use crate::ast::{GlobalInit, Type, Unit};
use crate::codegen::{Binding, FnGen};
use crate::parser::parse;
use std::collections::{HashMap, HashSet};
use tga::module::{LineInfo, Module, SymKind, Symbol, CODE_BASE, SECTION_ALIGN};
use tga::{reg, Inst, Op, INST_SIZE};

/// One input file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    pub name: String,
    pub text: String,
    /// Insert `__tsan_*` calls before potentially-shared accesses
    /// (compile-time instrumentation, the Archer/TaskSanitizer model).
    pub tsan: bool,
}

impl SourceFile {
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> SourceFile {
        SourceFile { name: name.into(), text: text.into(), tsan: false }
    }

    pub fn with_tsan(name: impl Into<String>, text: impl Into<String>) -> SourceFile {
        SourceFile { name: name.into(), text: text.into(), tsan: true }
    }
}

/// A compilation error, attributed to a file and line.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError {
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: error: {}", self.file, self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

/// An unresolved reference recorded during code generation.
#[derive(Clone, Debug, PartialEq)]
pub enum Reloc {
    /// Absolute address of a function.
    Func(String),
    /// `data_base + offset`.
    Data(u64),
    /// Absolute address of instruction `idx` in the same function.
    CodeLocal(usize),
}

/// A generated function body awaiting layout.
#[derive(Clone, Debug)]
pub struct FnBuf {
    pub name: String,
    pub file_id: u32,
    pub insts: Vec<Inst>,
    /// (instruction index, reloc) — patched into `imm` at layout.
    pub relocs: Vec<(usize, Reloc)>,
    /// (instruction index, source line) markers.
    pub lines: Vec<(usize, u32)>,
    /// (instruction index, label id) — resolved to `CodeLocal` relocs.
    pub label_refs: Vec<(usize, usize)>,
}

impl FnBuf {
    pub fn new(name: String, file_id: u32) -> FnBuf {
        FnBuf {
            name,
            file_id,
            insts: Vec::new(),
            relocs: Vec::new(),
            lines: Vec::new(),
            label_refs: Vec::new(),
        }
    }
}

/// Function signature visible to call sites.
#[derive(Clone, Debug)]
pub struct FnSig {
    pub ret: Type,
    pub params: Vec<Type>,
    pub variadic: bool,
    pub defined: bool,
}

struct GlobalSlot {
    off: u64,
    ty: Type,
    tls: bool,
    threadprivate: bool,
}

/// Shared compiler state across all function generations.
pub struct Compiler {
    pub fn_bufs: Vec<FnBuf>,
    fn_sigs: HashMap<String, FnSig>,
    globals: HashMap<String, GlobalSlot>,
    /// Initialized data image (globals first, then interned strings).
    data: Vec<u8>,
    tls_image: Vec<u8>,
    strings: HashMap<String, u64>,
    criticals: HashMap<String, u64>,
    called: HashSet<String>,
    outline_counter: usize,
    files: Vec<String>,
    /// (data offset of pointer-sized global) -> (data offset it points to);
    /// patched once `data_base` is known.
    data_ptr_fixups: Vec<(u64, u64)>,
}

impl Compiler {
    /// Look up a global as a codegen binding.
    pub fn global_binding(&self, name: &str) -> Option<Binding> {
        self.globals.get(name).map(|g| {
            if g.tls {
                Binding::Tls { off: g.off, ty: g.ty.clone() }
            } else {
                Binding::Global { off: g.off, ty: g.ty.clone() }
            }
        })
    }

    pub fn fn_sig(&self, name: &str) -> Option<&FnSig> {
        self.fn_sigs.get(name)
    }

    pub fn note_called(&mut self, name: &str) {
        self.called.insert(name.to_string());
    }

    /// Stable id for a named (or unnamed) critical section.
    pub fn critical_id(&mut self, name: Option<&str>) -> u64 {
        let key = name.unwrap_or("<unnamed>").to_string();
        let next = self.criticals.len() as u64;
        *self.criticals.entry(key).or_insert(next)
    }

    /// Fresh name for an outlined function.
    pub fn fresh_outlined(&mut self, parent: &str, kind: &str) -> String {
        self.outline_counter += 1;
        // Outlined names keep the user function as prefix so symbol-based
        // ignore-lists never confuse them with runtime internals.
        let base = parent.split('.').next().unwrap_or(parent);
        format!("{base}.{kind}.{}", self.outline_counter)
    }

    /// Intern a string literal in the data image; returns its offset.
    pub fn intern_string(&mut self, s: &str) -> u64 {
        if let Some(&off) = self.strings.get(s) {
            return off;
        }
        let off = self.data.len() as u64;
        self.data.extend_from_slice(s.as_bytes());
        self.data.push(0);
        // Keep everything 8-aligned for simplicity.
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        self.strings.insert(s.to_string(), off);
        off
    }
}

/// Compile and link a set of translation units into an executable module.
pub fn compile(files: &[SourceFile]) -> Result<Module, CompileError> {
    let mut units: Vec<(Unit, u32, bool)> = Vec::new();
    let mut cc = Compiler {
        fn_bufs: Vec::new(),
        fn_sigs: HashMap::new(),
        globals: HashMap::new(),
        data: Vec::new(),
        tls_image: Vec::new(),
        strings: HashMap::new(),
        criticals: HashMap::new(),
        called: HashSet::new(),
        outline_counter: 0,
        files: Vec::new(),
        data_ptr_fixups: Vec::new(),
    };

    for (i, f) in files.iter().enumerate() {
        let unit = parse(&f.text).map_err(|e| CompileError {
            file: f.name.clone(),
            line: e.line,
            msg: e.msg,
        })?;
        cc.files.push(f.name.clone());
        units.push((unit, i as u32, f.tsan));
    }

    // Pass 1: globals.
    for (unit, file_id, _) in &units {
        for g in &unit.globals {
            if cc.globals.contains_key(&g.name) {
                return Err(CompileError {
                    file: files[*file_id as usize].name.clone(),
                    line: g.line,
                    msg: format!("duplicate global `{}`", g.name),
                });
            }
            let size = (g.ty.size().max(1) + 7) & !7;
            let image = if g.thread_local { &mut cc.tls_image } else { &mut cc.data };
            let off = image.len() as u64;
            image.resize(image.len() + size as usize, 0);
            let err = |msg: &str| CompileError {
                file: files[*file_id as usize].name.clone(),
                line: g.line,
                msg: msg.to_string(),
            };
            match &g.init {
                GlobalInit::None => {}
                GlobalInit::Int(v) => {
                    let bytes =
                        if g.ty.size() == 1 { vec![*v as u8] } else { v.to_le_bytes().to_vec() };
                    let image = if g.thread_local { &mut cc.tls_image } else { &mut cc.data };
                    image[off as usize..off as usize + bytes.len()].copy_from_slice(&bytes);
                }
                GlobalInit::Double(v) => {
                    let image = if g.thread_local { &mut cc.tls_image } else { &mut cc.data };
                    image[off as usize..off as usize + 8]
                        .copy_from_slice(&v.to_bits().to_le_bytes());
                }
                GlobalInit::Str(s) => {
                    if g.thread_local {
                        return Err(err("string initializer for thread-local unsupported"));
                    }
                    let soff = cc.intern_string(s);
                    cc.data_ptr_fixups.push((off, soff));
                }
            }
            cc.globals.insert(
                g.name.clone(),
                GlobalSlot {
                    off,
                    ty: g.ty.clone(),
                    tls: g.thread_local,
                    threadprivate: g.threadprivate,
                },
            );
        }
    }

    // Pass 2: function signatures.
    for (unit, file_id, _) in &units {
        for f in &unit.functions {
            let sig = FnSig {
                ret: f.ret.clone(),
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
                variadic: f.variadic,
                defined: f.body.is_some(),
            };
            match cc.fn_sigs.get_mut(&f.name) {
                Some(existing) => {
                    if existing.defined && sig.defined {
                        return Err(CompileError {
                            file: files[*file_id as usize].name.clone(),
                            line: f.line,
                            msg: format!("duplicate definition of `{}`", f.name),
                        });
                    }
                    // The variadic flag is sticky across prototype and
                    // definition (libc declares `printf(char*, ...)` and
                    // defines it with an explicit register window).
                    let variadic = existing.variadic || sig.variadic;
                    if sig.defined {
                        *existing = sig;
                    }
                    existing.variadic = variadic;
                }
                None => {
                    cc.fn_sigs.insert(f.name.clone(), sig);
                }
            }
        }
    }

    // Pass 3: code generation.
    for (unit, file_id, tsan) in &units {
        for f in &unit.functions {
            let Some(body) = &f.body else { continue };
            FnGen::generate(
                &mut cc,
                &f.name,
                *file_id,
                *tsan,
                f.ret.clone(),
                &f.params,
                body,
                None,
                f.line,
            )
            .map_err(|e| CompileError {
                file: files[*file_id as usize].name.clone(),
                line: e.line,
                msg: e.msg,
            })?;
        }
    }

    // Pass 4: synthesize `_start`.
    if !cc.fn_sigs.get("main").is_some_and(|s| s.defined) {
        return Err(CompileError {
            file: "<link>".into(),
            line: 0,
            msg: "no `main` defined".into(),
        });
    }
    let mut start = FnBuf::new("_start".into(), 0);
    start.insts.push(Inst::new(Op::Add, reg::S1, reg::A0, reg::ZERO, 0));
    start.insts.push(Inst::new(Op::Add, reg::S1 + 1, reg::A1, reg::ZERO, 0));
    if cc.fn_sigs.get("__libc_init").is_some_and(|s| s.defined) {
        let idx = start.insts.len();
        start.insts.push(Inst::new(Op::Jal, reg::RA, 0, 0, 0));
        start.relocs.push((idx, Reloc::Func("__libc_init".into())));
    }
    start.insts.push(Inst::new(Op::Add, reg::A0, reg::S1, reg::ZERO, 0));
    start.insts.push(Inst::new(Op::Add, reg::A1, reg::S1 + 1, reg::ZERO, 0));
    let idx = start.insts.len();
    start.insts.push(Inst::new(Op::Jal, reg::RA, 0, 0, 0));
    start.relocs.push((idx, Reloc::Func("main".into())));
    start.insts.push(Inst::new(Op::Sys, reg::ZERO, 0, 0, grindcore_exit_num()));
    start.insts.push(Inst::new(Op::Halt, 0, 0, 0, 0));
    cc.fn_bufs.push(start);

    // Undefined-function check.
    for name in &cc.called {
        if !cc.fn_sigs.get(name).is_some_and(|s| s.defined) {
            return Err(CompileError {
                file: "<link>".into(),
                line: 0,
                msg: format!("undefined function `{name}` (missing runtime library?)"),
            });
        }
    }

    // Pass 5: layout + relocation.
    let mut fn_addr: HashMap<String, u64> = HashMap::new();
    let mut addr = CODE_BASE;
    for b in &cc.fn_bufs {
        fn_addr.insert(b.name.clone(), addr);
        addr += b.insts.len() as u64 * INST_SIZE;
    }
    let code_end = addr;
    let data_base = (code_end + SECTION_ALIGN - 1) & !(SECTION_ALIGN - 1);

    let mut module = Module::new();
    module.code_base = CODE_BASE;
    module.data_base = data_base;
    for (goff, soff) in &cc.data_ptr_fixups {
        let p = data_base + soff;
        cc.data[*goff as usize..*goff as usize + 8].copy_from_slice(&p.to_le_bytes());
    }
    module.data = cc.data;
    module.tls_template = cc.tls_image;
    module.entry = fn_addr["_start"];

    for b in &cc.fn_bufs {
        let base = fn_addr[&b.name];
        let mut insts = b.insts.clone();
        for (idx, r) in &b.relocs {
            let value = match r {
                Reloc::Func(name) => *fn_addr.get(name).ok_or_else(|| CompileError {
                    file: "<link>".into(),
                    line: 0,
                    msg: format!("undefined function `{name}`"),
                })?,
                Reloc::Data(off) => data_base + off,
                Reloc::CodeLocal(target) => base + *target as u64 * INST_SIZE,
            };
            insts[*idx].imm = value as i64;
        }
        module.symbols.push(Symbol {
            name: b.name.clone(),
            addr: base,
            size: insts.len() as u64 * INST_SIZE,
            kind: SymKind::Func,
        });
        for (iidx, line) in &b.lines {
            module.lines.push(LineInfo {
                addr: base + *iidx as u64 * INST_SIZE,
                file: b.file_id,
                line: *line,
            });
        }
        module.code.extend(insts);
    }
    for (name, g) in &cc.globals {
        module.symbols.push(Symbol {
            name: name.clone(),
            addr: if g.tls { g.off } else { data_base + g.off },
            size: g.ty.size().max(1),
            kind: if g.tls { SymKind::Tls } else { SymKind::Data },
        });
        if g.threadprivate {
            // marker symbol: tools can tell OpenMP threadprivate storage
            // apart from plain C11 thread-locals
            module.symbols.push(Symbol {
                name: format!("__omp_tp${name}"),
                addr: g.off,
                size: g.ty.size().max(1),
                kind: SymKind::Tls,
            });
        }
    }
    module.files = cc.files;
    module.finalize();
    Ok(module)
}

fn grindcore_exit_num() -> i64 {
    // Syscall numbers are defined by grindcore; 0 is EXIT. Kept as a
    // function so the contract is greppable from both sides.
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI_RT: &str = r#"
int main(void);
void exit_(int c) { __sys(0, c); }
"#;

    #[test]
    fn compiles_trivial_program() {
        let m = compile(&[
            SourceFile::new("rt.mc", MINI_RT),
            SourceFile::new("a.mc", "int main(void) { return 41 + 1; }"),
        ])
        .unwrap();
        assert!(m.symbol_by_name("main").is_some());
        assert!(m.symbol_by_name("_start").is_some());
        assert_eq!(m.entry, m.symbol_by_name("_start").unwrap().addr);
        assert!(m.code.len() > 8);
    }

    #[test]
    fn rejects_missing_main() {
        let e = compile(&[SourceFile::new("a.mc", "int foo(void) { return 1; }")]).unwrap_err();
        assert!(e.msg.contains("main"));
    }

    #[test]
    fn rejects_undefined_function() {
        let e = compile(&[SourceFile::new("a.mc", "int main(void) { return frobnicate(); }")])
            .unwrap_err();
        assert!(e.msg.contains("unknown function") || e.msg.contains("undefined function"), "{e}");
    }

    #[test]
    fn rejects_duplicate_definitions() {
        let e = compile(&[SourceFile::new(
            "a.mc",
            "int f(void){return 1;} int f(void){return 2;} int main(void){return f();}",
        )])
        .unwrap_err();
        assert!(e.msg.contains("duplicate definition"));
    }

    #[test]
    fn globals_are_laid_out_with_initializers() {
        let m = compile(&[SourceFile::new(
            "a.mc",
            "int g = 7;\ndouble d = 1.5;\nchar *s = \"hi\";\nint main(void){ return g; }",
        )])
        .unwrap();
        let g = m.symbol_by_name("g").unwrap();
        assert_eq!(g.kind, SymKind::Data);
        let off = (g.addr - m.data_base) as usize;
        assert_eq!(i64::from_le_bytes(m.data[off..off + 8].try_into().unwrap()), 7);
        let d = m.symbol_by_name("d").unwrap();
        let off = (d.addr - m.data_base) as usize;
        assert_eq!(
            f64::from_bits(u64::from_le_bytes(m.data[off..off + 8].try_into().unwrap())),
            1.5
        );
        // string pointer global points into the data image at "hi"
        let s = m.symbol_by_name("s").unwrap();
        let off = (s.addr - m.data_base) as usize;
        let p = u64::from_le_bytes(m.data[off..off + 8].try_into().unwrap());
        let soff = (p - m.data_base) as usize;
        assert_eq!(&m.data[soff..soff + 2], b"hi");
    }

    #[test]
    fn tls_globals_go_to_template() {
        let m = compile(&[SourceFile::new(
            "a.mc",
            "_Thread_local int t = 9;\nint main(void){ return t; }",
        )])
        .unwrap();
        let t = m.symbol_by_name("t").unwrap();
        assert_eq!(t.kind, SymKind::Tls);
        assert_eq!(
            i64::from_le_bytes(
                m.tls_template[t.addr as usize..t.addr as usize + 8].try_into().unwrap()
            ),
            9
        );
    }

    #[test]
    fn line_table_is_emitted() {
        let m = compile(&[SourceFile::new(
            "prog.c",
            "int main(void) {\n  int x = 1;\n  x = x + 1;\n  return x;\n}",
        )])
        .unwrap();
        let main = m.symbol_by_name("main").unwrap();
        let loc = m.line_for(main.addr).unwrap();
        assert_eq!(loc.file, "prog.c");
        assert_eq!(loc.line, 1);
        // some instruction in the middle should map to line 2 or 3
        let mid = m.lines.iter().find(|l| l.line >= 2 && l.line <= 3).expect("body lines present");
        assert!(mid.addr > main.addr);
    }
}
