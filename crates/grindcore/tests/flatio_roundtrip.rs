//! Property tests for the flat-superblock wire codec
//! (`grindcore::flatio`): encode→decode is the identity on random
//! blocks exercising every `FOp` variant and every side table, and
//! decoding is total (arbitrary bytes and truncations error cleanly,
//! never panic). The persistent code cache trusts this codec to
//! reproduce a compiled block bit-for-bit; the differential suite then
//! checks the end-to-end consequence (warm runs behave like cold ones).

use grindcore::flat::{FDirty, FExit, FMemCb, FOp, FTrap, FlatBlock};
use grindcore::flatio::{flat_from_bytes, flat_to_bytes};
use grindcore::mem::PageIc;
use proptest::prelude::*;
use vex_ir::{BinOp, DirtyCall, JumpKind, UnOp};

fn binop() -> impl Strategy<Value = BinOp> {
    (0u8..23).prop_map(|t| BinOp::from_wire_tag(t).expect("dense BinOp tags"))
}

fn unop() -> impl Strategy<Value = UnOp> {
    (0u8..7).prop_map(|t| UnOp::from_wire_tag(t).expect("dense UnOp tags"))
}

fn jumpkind() -> impl Strategy<Value = JumpKind> {
    prop_oneof![
        Just(JumpKind::Boring),
        any::<u64>().prop_map(|return_addr| JumpKind::Call { return_addr }),
        Just(JumpKind::Ret),
        Just(JumpKind::Halt),
    ]
}

fn dirtycall() -> impl Strategy<Value = DirtyCall> {
    prop_oneof![
        Just(DirtyCall::Syscall),
        Just(DirtyCall::ClientRequest),
        any::<bool>().prop_map(|write| DirtyCall::ToolMem { write }),
        any::<u32>().prop_map(|id| DirtyCall::ToolHelper { id }),
    ]
}

/// Build one `FOp` from a variant selector plus a pool of random
/// operands — a single flat constructor keeps all 32 variants covered
/// without a 32-arm `prop_oneof!`.
fn make_fop(tag: usize, x: (u32, u32, u32, u32, u32), r: (u8, u8), bop: BinOp, uop: UnOp) -> FOp {
    let (a, b, c, d, e) = x;
    let (r1, r2) = r;
    match tag {
        0 => FOp::Get { dst: a, reg: r1 },
        1 => FOp::Mov { dst: a, src: b },
        2 => FOp::Ld8 { dst: a, addr: b, ic: c },
        3 => FOp::Ld1 { dst: a, addr: b, ic: c },
        4 => FOp::Bin { dst: a, op: bop, a: b, b: c },
        5 => FOp::BinTrap { dst: a, op: bop, a: b, b: c, trap: d },
        6 => FOp::Un { dst: a, op: uop, x: b },
        7 => FOp::Ite { dst: a, c: b, t: c, e: d },
        8 => FOp::Put { reg: r1, src: a },
        9 => FOp::St8 { addr: a, val: b, ic: c },
        10 => FOp::St1 { addr: a, val: b, ic: c },
        11 => FOp::Cas { dst: a, addr: b, expected: c, new: d },
        12 => FOp::Amo { dst: a, addr: b, val: c },
        13 => FOp::Dirty { idx: a },
        14 => FOp::MemCb { idx: a },
        15 => FOp::Exit { guard: a, idx: b },
        16 => FOp::MovRR { rd: r1, rs: r2 },
        17 => FOp::BinRI { dst: a, op: bop, rs: r1, c: b },
        18 => FOp::BinRIP { rd: r1, op: bop, rs: r2, c: a },
        19 => FOp::BinTR { dst: a, op: bop, a: b, rb: r1 },
        20 => FOp::BinRR { dst: a, op: bop, ra: r1, rb: r2 },
        21 => FOp::BinRRP { rd: r1, op: bop, ra: r2, rb: r1 },
        22 => FOp::LdRO { dst: a, rs: r1, c: b, ic: c },
        23 => FOp::LdRP { rd: r1, rs: r2, c: a, ic: b },
        24 => FOp::StV { addr: a, vr: r1, ic: b },
        25 => FOp::StRV { rs: r1, c: a, val: b, ic: c },
        26 => FOp::StRR { rs: r1, c: a, vr: r2, ic: b },
        27 => FOp::BinP { rd: r1, op: bop, a, b },
        28 => FOp::LdO { dst: a, base: b, off: c, ic: d },
        29 => FOp::LdOP { rd: r1, base: a, off: b, ic: c },
        30 => FOp::LdP { rd: r1, addr: a, ic: b },
        _ => FOp::StO { base: a, off: b, val: c, ic: e },
    }
}

fn fop() -> impl Strategy<Value = FOp> {
    (
        0usize..32,
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u8>(), any::<u8>()),
        binop(),
        unop(),
    )
        .prop_map(|(tag, x, r, bop, uop)| make_fop(tag, x, r, bop, uop))
}

fn fdirty() -> impl Strategy<Value = FDirty> {
    (
        dirtycall(),
        prop::collection::vec(any::<u32>(), 0..4),
        (any::<bool>(), any::<u32>()),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(|(call, args, (has_dst, dst), pc, instrs)| FDirty {
            call,
            args: args.into_boxed_slice(),
            dst: has_dst.then_some(dst),
            pc,
            instrs,
        })
}

fn fmemcb() -> impl Strategy<Value = FMemCb> {
    (any::<u32>(), any::<u32>(), any::<bool>(), any::<u64>(), any::<u32>())
        .prop_map(|(addr, size, write, pc, instrs)| FMemCb { addr, size, write, pc, instrs })
}

fn fexit() -> impl Strategy<Value = FExit> {
    (any::<u64>(), jumpkind(), any::<u32>(), any::<u32>())
        .prop_map(|(target, kind, ord, instrs)| FExit { target, kind, ord, instrs })
}

fn ftrap() -> impl Strategy<Value = FTrap> {
    (any::<u64>(), any::<u32>()).prop_map(|(pc, instrs)| FTrap { pc, instrs })
}

fn flat_block() -> impl Strategy<Value = FlatBlock> {
    (
        (
            any::<u64>(),
            0u32..64,
            prop::collection::vec(fop(), 0..24),
            prop::collection::vec(any::<u64>(), 0..8),
            prop::collection::vec(fdirty(), 0..4),
            prop::collection::vec(fmemcb(), 0..4),
            prop::collection::vec(fexit(), 0..4),
            prop::collection::vec(ftrap(), 0..4),
        ),
        (any::<u32>(), jumpkind(), any::<u32>(), any::<u32>(), any::<bool>(), 0usize..101),
    )
        .prop_map(
            |(
                (base, n_temps, ops, consts, dirties, memcbs, exits, traps),
                (next, jumpkind, instrs_total, fall_ord, zero_temps, ic_pct),
            )| {
                // the codec requires n_ics <= n_ops (each load/store op
                // owns at most one inline cache)
                let n_ics = ops.len() * ic_pct / 100;
                FlatBlock {
                    base,
                    n_temps,
                    ops: ops.into_boxed_slice(),
                    consts: consts.into_boxed_slice(),
                    dirties: dirties.into_boxed_slice(),
                    memcbs: memcbs.into_boxed_slice(),
                    exits: exits.into_boxed_slice(),
                    traps: traps.into_boxed_slice(),
                    ics: (0..n_ics).map(|_| PageIc::new()).collect(),
                    next,
                    jumpkind,
                    instrs_total,
                    fall_ord,
                    zero_temps,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode→decode is the identity (inline caches come back fresh,
    /// which is what `PageIc::new()` produces — purely dynamic state).
    #[test]
    fn encode_decode_is_identity(block in flat_block()) {
        let bytes = flat_to_bytes(&block);
        let back = flat_from_bytes(&bytes).expect("own encoding decodes");
        prop_assert_eq!(format!("{:?}", back), format!("{:?}", block));
        // canonical: re-encoding the decoded block reproduces the bytes
        prop_assert_eq!(flat_to_bytes(&back), bytes);
    }

    /// Every strict prefix of a valid encoding is rejected cleanly.
    #[test]
    fn truncation_errors_cleanly(block in flat_block(), pct in 0usize..100) {
        let bytes = flat_to_bytes(&block);
        let cut = bytes.len() * pct / 100;
        prop_assert!(cut == bytes.len() || flat_from_bytes(&bytes[..cut]).is_err());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = flat_from_bytes(&bytes);
    }

    /// Flipping any single byte never panics: the decoder either rejects
    /// the mutation or yields a block that still re-encodes. (Integrity
    /// is the disk layer's per-record checksum's job — this pins the
    /// codec itself to stay total.)
    #[test]
    fn bit_flips_never_panic(block in flat_block(), pos in any::<usize>(), bit in 0u8..8) {
        let mut bytes = flat_to_bytes(&block);
        if !bytes.is_empty() {
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
            if let Ok(b) = flat_from_bytes(&bytes) {
                let _ = flat_to_bytes(&b);
            }
        }
    }
}
