//! Client-request ABI between the guest runtime and the tool.
//!
//! Valgrind client requests let the instrumented program forward
//! information to the tool (paper §II-B). Here the guest-side parallel
//! runtime (`libomp.mc`, compiled by minicc) executes `clreq`
//! instructions with a request code in `a0` and arguments in `a1..a5`;
//! `grindcore` routes them to [`crate::tool::Tool::client_request`].
//!
//! This module is the single source of truth for the request codes: the
//! minic runtime sources reference the same numeric values (checked by a
//! test in `guest-rt`).

/// A parallel region begins. args: `[nthreads]` → returns region id.
pub const PARALLEL_BEGIN: u64 = 0x1000;
/// A parallel region ends. args: `[region_id]`.
pub const PARALLEL_END: u64 = 0x1001;
/// A team thread starts its implicit task. args: `[region_id, index]`.
pub const IMPLICIT_TASK_BEGIN: u64 = 0x1002;
/// A team thread finishes its implicit task. args: `[region_id, index]`.
pub const IMPLICIT_TASK_END: u64 = 0x1003;

/// An explicit task is created. args: `[flags, creation_pc]` → task id.
/// `creation_pc` is the guest address of the task construct (for reports);
/// pass 0 to let the tool use the current pc.
pub const TASK_CREATE: u64 = 0x1010;
/// Register a dependence of a task. args: `[task_id, addr, len, kind]`
/// with `kind` one of the `DEP_*` constants.
pub const TASK_DEP: u64 = 0x1011;
/// A thread begins executing a task body. args: `[task_id]`.
pub const TASK_BEGIN: u64 = 0x1012;
/// A thread finished a task body. args: `[task_id]`.
pub const TASK_END: u64 = 0x1013;
/// The current task waits for its children. args: `[]`.
pub const TASKWAIT: u64 = 0x1014;
/// A detached task's completion event was fulfilled
/// (`omp_fulfill_event`). args: `[task_id]`. Accesses before the
/// fulfill happen-before everything waiting on the task.
pub const TASK_FULFILL: u64 = 0x101B;
/// A created task is handed to the scheduler (becomes runnable).
/// args: `[task_id]`. The creator's segment splits *here*, not at
/// TASK_CREATE: code between allocation and spawn (payload filling,
/// dependence registration) happens-before the child.
pub const TASK_SPAWN: u64 = 0x101A;
/// Taskgroup begin / end. args: `[]`.
pub const TASKGROUP_BEGIN: u64 = 0x1015;
pub const TASKGROUP_END: u64 = 0x1016;
/// Team barrier. args: `[region_id]`.
pub const BARRIER: u64 = 0x1017;
/// Named critical section. args: `[lock_id]`.
pub const CRITICAL_ENTER: u64 = 0x1018;
pub const CRITICAL_EXIT: u64 = 0x1019;

/// User annotation (paper §V-B): treat runtime-serialized (included)
/// tasks as semantically deferrable. args: `[enable]`.
pub const USER_DEFERRABLE: u64 = 0x1050;

/// Core request (handled by grindcore itself, never forwarded to the
/// tool): invalidate every translation overlapping `[addr, addr+len)`.
/// args: `[addr, len]`. The Valgrind `DISCARD_TRANSLATIONS` analog,
/// used after self-modifying or unmapped code.
pub const DISCARD_TRANSLATIONS: u64 = 0x1060;

/// Task flag bits passed to [`TASK_CREATE`].
pub mod task_flags {
    /// The runtime will execute the task immediately on the creating
    /// thread (undeferred), e.g. because of `if(0)`.
    pub const UNDEFERRED: u64 = 1 << 0;
    /// The task is *included*: executed immediately in the creating
    /// task's environment (LLVM does this for every task when running
    /// on a single thread — the behaviour behind the paper's
    /// single-thread experiments).
    pub const INCLUDED: u64 = 1 << 1;
    pub const FINAL: u64 = 1 << 2;
    pub const MERGEABLE: u64 = 1 << 3;
    pub const UNTIED: u64 = 1 << 4;
    /// The task has a `detach` clause: it completes only when its event
    /// is fulfilled, not when its body returns.
    pub const DETACHED: u64 = 1 << 5;
}

/// Dependence kinds for [`TASK_DEP`].
pub mod dep_kind {
    pub const IN: u64 = 0;
    pub const OUT: u64 = 1;
    pub const INOUT: u64 = 2;
    pub const MUTEXINOUTSET: u64 = 3;
    pub const INOUTSET: u64 = 4;
}

/// All request codes, for validation.
pub const ALL: &[u64] = &[
    PARALLEL_BEGIN,
    PARALLEL_END,
    IMPLICIT_TASK_BEGIN,
    IMPLICIT_TASK_END,
    TASK_CREATE,
    TASK_DEP,
    TASK_BEGIN,
    TASK_END,
    TASKWAIT,
    TASK_SPAWN,
    TASK_FULFILL,
    TASKGROUP_BEGIN,
    TASKGROUP_END,
    BARRIER,
    CRITICAL_ENTER,
    CRITICAL_EXIT,
    USER_DEFERRABLE,
    DISCARD_TRANSLATIONS,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let mut v = ALL.to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), ALL.len());
    }
}
