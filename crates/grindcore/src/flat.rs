//! Pre-flattened superblock form for the chained dispatcher.
//!
//! The reference engine (`--no-chaining`) walks the instrumented
//! [`IrBlock`] statement list directly: every guest instruction pays an
//! `IMark` dispatch and every operand pays a nested `Rhs` match. Since a
//! chained block is by definition steady-state hot, the chaining engine
//! compiles it once — at translation time — into this flat form:
//!
//! * `IMark`s disappear: the instruction counts a block contributes at
//!   every observable point (each dirty call, each exit) are computed
//!   statically and applied as a single add, and the faulting pc of
//!   every trap site is baked in as a constant;
//! * operands are one `u32` each — a tag bit selects the temp file or
//!   the block's constant pool — so ops pack ~3x denser than `Stmt`s
//!   and evaluate without matching an `Atom` enum;
//! * cold payloads (dirty-call argument lists, exit descriptors, trap
//!   pcs) live in side tables so the hot op array stays small.
//!
//! Semantics are bit-identical to the reference walk — same memory and
//! register effects, same tool-callback order and arguments, same
//! `instrs` at every dirty call and exit, same error pcs. The
//! differential test layer (`tests/chaining_differential.rs`) holds the
//! two engines to that.

use crate::mem::PageIc;
use vex_ir::{Atom, BinOp, DirtyCall, IrBlock, JumpKind, Rhs, Stmt, Ty, UnOp};

/// Operand tag bit: set → temp index, clear → constant-pool index.
pub const TMP_BIT: u32 = 0x8000_0000;

/// One flat op. Operands (`u32`) index the temp file or constant pool
/// (see [`TMP_BIT`]); `idx`/`trap` fields index the side tables.
#[derive(Clone, Debug)]
pub enum FOp {
    /// `tmps[dst] = regs[reg]`
    Get {
        dst: u32,
        reg: u8,
    },
    /// `tmps[dst] = src`
    Mov {
        dst: u32,
        src: u32,
    },
    /// 8-byte load; `ic` indexes [`FlatBlock::ics`].
    Ld8 {
        dst: u32,
        addr: u32,
        ic: u32,
    },
    /// 1-byte load (zero-extended).
    Ld1 {
        dst: u32,
        addr: u32,
        ic: u32,
    },
    /// Non-trapping binary op.
    Bin {
        dst: u32,
        op: BinOp,
        a: u32,
        b: u32,
    },
    /// Binary op that can fault (`DivS`/`RemS`); `trap` indexes
    /// [`FlatBlock::traps`] for the faulting pc.
    BinTrap {
        dst: u32,
        op: BinOp,
        a: u32,
        b: u32,
        trap: u32,
    },
    Un {
        dst: u32,
        op: UnOp,
        x: u32,
    },
    /// Branchless select.
    Ite {
        dst: u32,
        c: u32,
        t: u32,
        e: u32,
    },
    /// `regs[reg] = src`
    Put {
        reg: u8,
        src: u32,
    },
    /// 8-byte store; `ic` indexes [`FlatBlock::ics`].
    St8 {
        addr: u32,
        val: u32,
        ic: u32,
    },
    /// 1-byte store.
    St1 {
        addr: u32,
        val: u32,
        ic: u32,
    },
    /// Atomic compare-and-swap.
    Cas {
        dst: u32,
        addr: u32,
        expected: u32,
        new: u32,
    },
    /// Atomic fetch-and-add.
    Amo {
        dst: u32,
        addr: u32,
        val: u32,
    },
    /// Dirty helper call; `idx` indexes [`FlatBlock::dirties`].
    Dirty {
        idx: u32,
    },
    /// Tool memory-access callback; `idx` indexes [`FlatBlock::memcbs`].
    /// The hottest dirty call gets a dedicated op so the interpreter
    /// reads two operands straight from the side table instead of
    /// collecting an argument `Vec` per call.
    MemCb {
        idx: u32,
    },
    /// Guarded side exit; `idx` indexes [`FlatBlock::exits`].
    Exit {
        guard: u32,
        idx: u32,
    },

    // --- Fused ops, produced only by the peephole pass below. The
    // guest ISA's load/store/ALU instructions each lift to a 3-4 stmt
    // Get/Bin/Ld/Put chain whose intermediates are read exactly once;
    // fusing adjacent single-use pairs collapses each chain back to one
    // op, roughly halving dispatches per block. Every rule merges two
    // ADJACENT ops where the first writes only a temp read solely by
    // the second, so effects stay in program order.
    /// `regs[rd] = regs[rs]` (Get+Put).
    MovRR {
        rd: u8,
        rs: u8,
    },
    /// `tmps[dst] = op(regs[rs], consts[c])` (Get+Bin).
    BinRI {
        dst: u32,
        op: BinOp,
        rs: u8,
        c: u32,
    },
    /// `regs[rd] = op(regs[rs], consts[c])` (BinRI+Put) — e.g. `addi`.
    BinRIP {
        rd: u8,
        op: BinOp,
        rs: u8,
        c: u32,
    },
    /// `tmps[dst] = op(a, regs[rb])` (Get+Bin, register on the rhs).
    BinTR {
        dst: u32,
        op: BinOp,
        a: u32,
        rb: u8,
    },
    /// `tmps[dst] = op(regs[ra], regs[rb])` (Get+BinTR).
    BinRR {
        dst: u32,
        op: BinOp,
        ra: u8,
        rb: u8,
    },
    /// `regs[rd] = op(regs[ra], regs[rb])` (BinRR+Put) — reg-reg ALU.
    BinRRP {
        rd: u8,
        op: BinOp,
        ra: u8,
        rb: u8,
    },
    /// 8-byte load at `regs[rs] + consts[c]` into a temp.
    LdRO {
        dst: u32,
        rs: u8,
        c: u32,
        ic: u32,
    },
    /// `regs[rd] = load(regs[rs] + consts[c])` — a whole guest `ld`.
    LdRP {
        rd: u8,
        rs: u8,
        c: u32,
        ic: u32,
    },
    /// 8-byte store of `regs[vr]` at an operand address (Get+St8).
    StV {
        addr: u32,
        vr: u8,
        ic: u32,
    },
    /// 8-byte store of an operand at `regs[rs] + consts[c]`.
    StRV {
        rs: u8,
        c: u32,
        val: u32,
        ic: u32,
    },
    /// 8-byte store of `regs[vr]` at `regs[rs] + consts[c]` — a whole
    /// guest `st`.
    StRR {
        rs: u8,
        c: u32,
        vr: u8,
        ic: u32,
    },

    // Operand-based fused forms. After `iropt`'s register forwarding a
    // block reads each guest register once and every later use is a
    // shared temp, so the register-based forms above rarely apply; these
    // fuse the remaining `Bin`/`Ld`/`St`/`Put` chains over generic
    // operands instead.
    /// `regs[rd] = op(a, b)` (Bin+Put).
    BinP {
        rd: u8,
        op: BinOp,
        a: u32,
        b: u32,
    },
    /// `tmps[dst] = load(base + off)` (Add+Ld8).
    LdO {
        dst: u32,
        base: u32,
        off: u32,
        ic: u32,
    },
    /// `regs[rd] = load(base + off)` (LdO+Put).
    LdOP {
        rd: u8,
        base: u32,
        off: u32,
        ic: u32,
    },
    /// `regs[rd] = load(addr)` (Ld8+Put).
    LdP {
        rd: u8,
        addr: u32,
        ic: u32,
    },
    /// `store(base + off, val)` (Add+St8).
    StO {
        base: u32,
        off: u32,
        val: u32,
        ic: u32,
    },
}

/// Cold payload of a dirty call.
#[derive(Clone, Debug)]
pub struct FDirty {
    pub call: DirtyCall,
    pub args: Box<[u32]>,
    pub dst: Option<u32>,
    /// Guest pc of the instruction containing the call (the last
    /// `IMark` before it).
    pub pc: u64,
    /// Guest instructions retired when control reaches the call.
    pub instrs: u32,
}

/// Cold payload of a tool memory-access callback ([`FOp::MemCb`]).
/// Same accounting contract as [`FDirty`]: `pc` is the guest pc of the
/// access and `instrs` the retired count when the callback fires.
#[derive(Clone, Copy, Debug)]
pub struct FMemCb {
    pub addr: u32,
    pub size: u32,
    pub write: bool,
    pub pc: u64,
    pub instrs: u32,
}

/// Descriptor of a guarded side exit.
#[derive(Clone, Copy, Debug)]
pub struct FExit {
    pub target: u64,
    pub kind: JumpKind,
    /// Chain-link ordinal (side exits in statement order).
    pub ord: u32,
    /// Guest instructions retired when this exit is taken.
    pub instrs: u32,
}

/// Faulting-site payload of a [`FOp::BinTrap`].
#[derive(Clone, Copy, Debug)]
pub struct FTrap {
    pub pc: u64,
    pub instrs: u32,
}

/// A superblock compiled for the chained engine. Produced from the
/// *instrumented* IR, so tool callbacks are ordinary [`FOp::Dirty`] ops.
#[derive(Clone, Debug)]
pub struct FlatBlock {
    pub base: u64,
    pub n_temps: u32,
    pub ops: Box<[FOp]>,
    pub consts: Box<[u64]>,
    pub dirties: Box<[FDirty]>,
    pub memcbs: Box<[FMemCb]>,
    pub exits: Box<[FExit]>,
    pub traps: Box<[FTrap]>,
    /// Per-site inline caches of the block's load/store ops: each site
    /// remembers the page it touched last, so steady-state guest memory
    /// access skips the page-table probe entirely.
    pub ics: Box<[PageIc]>,
    /// Fallthrough target operand (constant or temp).
    pub next: u32,
    pub jumpkind: JumpKind,
    /// Guest instructions retired on the fallthrough path.
    pub instrs_total: u32,
    /// Chain-link ordinal of the fallthrough exit (== side-exit count).
    pub fall_ord: u32,
    /// True when some temp may be read before it is written (a defect
    /// [`vex_ir::sanity`] flags, but tolerated here): the executor must
    /// zero the temp file so such reads see 0, exactly as the reference
    /// walker's freshly zeroed buffer does. Sane blocks skip the memset.
    pub zero_temps: bool,
}

impl FlatBlock {
    /// True when the fallthrough target is known at translation time
    /// (chains through a link slot rather than the IBTC).
    pub fn next_is_const(&self) -> bool {
        self.next & TMP_BIT == 0
    }
}

fn operand(consts: &mut Vec<u64>, a: &Atom) -> u32 {
    match a {
        Atom::Const(c) => {
            consts.push(*c);
            (consts.len() - 1) as u32
        }
        Atom::Tmp(t) => t.0 | TMP_BIT,
    }
}

/// Compile an instrumented superblock into its flat form.
pub fn compile(ir: &IrBlock) -> FlatBlock {
    let mut ops = Vec::with_capacity(ir.stmts.len());
    let mut consts = Vec::new();
    let mut dirties = Vec::new();
    let mut memcbs = Vec::new();
    let mut exits = Vec::new();
    let mut traps = Vec::new();
    let mut ics: Vec<PageIc> = Vec::new();
    // Statically tracked interpreter state: the pc of the current guest
    // instruction and how many instructions have retired so far.
    let mut pc = ir.base;
    let mut instrs: u32 = 0;
    let mut ord: u32 = 0;

    for stmt in &ir.stmts {
        match stmt {
            Stmt::IMark { addr, .. } => {
                pc = *addr;
                instrs += 1;
            }
            Stmt::WrTmp { dst, rhs } => {
                let dst = dst.0;
                ops.push(match rhs {
                    Rhs::Atom(a) => FOp::Mov { dst, src: operand(&mut consts, a) },
                    Rhs::Get { reg } => FOp::Get { dst, reg: *reg },
                    Rhs::Load { ty, addr } => {
                        let addr = operand(&mut consts, addr);
                        ics.push(PageIc::new());
                        let ic = (ics.len() - 1) as u32;
                        match ty {
                            Ty::I8 => FOp::Ld1 { dst, addr, ic },
                            _ => FOp::Ld8 { dst, addr, ic },
                        }
                    }
                    Rhs::Binop { op, lhs, rhs } => {
                        let a = operand(&mut consts, lhs);
                        let b = operand(&mut consts, rhs);
                        if matches!(op, BinOp::DivS | BinOp::RemS) {
                            traps.push(FTrap { pc, instrs });
                            FOp::BinTrap { dst, op: *op, a, b, trap: (traps.len() - 1) as u32 }
                        } else {
                            FOp::Bin { dst, op: *op, a, b }
                        }
                    }
                    Rhs::Unop { op, x } => FOp::Un { dst, op: *op, x: operand(&mut consts, x) },
                    Rhs::Ite { cond, then, els } => FOp::Ite {
                        dst,
                        c: operand(&mut consts, cond),
                        t: operand(&mut consts, then),
                        e: operand(&mut consts, els),
                    },
                });
            }
            Stmt::Put { reg, src } => {
                ops.push(FOp::Put { reg: *reg, src: operand(&mut consts, src) });
            }
            Stmt::Store { ty, addr, val } => {
                let addr = operand(&mut consts, addr);
                let val = operand(&mut consts, val);
                ics.push(PageIc::new());
                let ic = (ics.len() - 1) as u32;
                ops.push(match ty {
                    Ty::I8 => FOp::St1 { addr, val, ic },
                    _ => FOp::St8 { addr, val, ic },
                });
            }
            Stmt::Cas { dst, addr, expected, new } => {
                ops.push(FOp::Cas {
                    dst: dst.0,
                    addr: operand(&mut consts, addr),
                    expected: operand(&mut consts, expected),
                    new: operand(&mut consts, new),
                });
            }
            Stmt::AtomicAdd { dst, addr, val } => {
                ops.push(FOp::Amo {
                    dst: dst.0,
                    addr: operand(&mut consts, addr),
                    val: operand(&mut consts, val),
                });
            }
            Stmt::Dirty { call, args, dst } => {
                if let (DirtyCall::ToolMem { write }, None, 2) = (call, dst, args.len()) {
                    memcbs.push(FMemCb {
                        addr: operand(&mut consts, &args[0]),
                        size: operand(&mut consts, &args[1]),
                        write: *write,
                        pc,
                        instrs,
                    });
                    ops.push(FOp::MemCb { idx: (memcbs.len() - 1) as u32 });
                } else {
                    dirties.push(FDirty {
                        call: *call,
                        args: args.iter().map(|a| operand(&mut consts, a)).collect(),
                        dst: dst.map(|d| d.0),
                        pc,
                        instrs,
                    });
                    ops.push(FOp::Dirty { idx: (dirties.len() - 1) as u32 });
                }
            }
            Stmt::Exit { guard, target, kind } => {
                exits.push(FExit { target: *target, kind: *kind, ord, instrs });
                ops.push(FOp::Exit {
                    guard: operand(&mut consts, guard),
                    idx: (exits.len() - 1) as u32,
                });
                ord += 1;
            }
        }
    }

    let next = operand(&mut consts, &ir.next);
    // `TG_NO_FUSE` bypasses peephole fusion for differential debugging
    // (compare against the unfused flat form, like `--no-chaining` does
    // for dispatch); `TG_FLAT_DEBUG` prints per-block op counts.
    let pre = ops.len();
    let ops = if std::env::var_os("TG_NO_FUSE").is_some() {
        ops
    } else {
        let _s = tg_obs::trace::host_span("fuse");
        fuse(ops, &mut consts, &dirties, &memcbs, next, ir.n_temps)
    };
    if std::env::var_os("TG_FLAT_DEBUG").is_some() {
        eprintln!("flat {:#x}: {} -> {} ops", ir.base, pre, ops.len());
    }
    let zero_temps = reads_undefined_temp(&ops, &dirties, &memcbs, next, ir.n_temps);
    FlatBlock {
        base: ir.base,
        n_temps: ir.n_temps,
        ops: ops.into_boxed_slice(),
        consts: consts.into_boxed_slice(),
        dirties: dirties.into_boxed_slice(),
        memcbs: memcbs.into_boxed_slice(),
        exits: exits.into_boxed_slice(),
        traps: traps.into_boxed_slice(),
        ics: ics.into_boxed_slice(),
        next,
        jumpkind: ir.jumpkind,
        instrs_total: instrs,
        fall_ord: ord,
        zero_temps,
    }
}

/// Temp-read counts over the whole block: ops' read operands, dirty
/// argument lists, mem-callback operands, and the fallthrough target. A
/// temp with exactly one read may have its defining op fused into the
/// reader — so a [`FOp::MemCb`]'s operands MUST be counted here, or a
/// temp read by both the callback and the actual load/store would look
/// single-use and fusion would destroy it before the callback ran.
fn use_counts(
    ops: &[FOp],
    dirties: &[FDirty],
    memcbs: &[FMemCb],
    next: u32,
    n_temps: u32,
) -> Vec<u32> {
    let mut uses = vec![0u32; n_temps as usize];
    let mut read = |o: u32| {
        if o & TMP_BIT != 0 {
            if let Some(n) = uses.get_mut((o & !TMP_BIT) as usize) {
                *n += 1;
            }
        }
    };
    for op in ops {
        match *op {
            FOp::Get { .. }
            | FOp::Dirty { .. }
            | FOp::MemCb { .. }
            | FOp::MovRR { .. }
            | FOp::BinRI { .. }
            | FOp::BinRIP { .. }
            | FOp::BinRR { .. }
            | FOp::BinRRP { .. }
            | FOp::LdRO { .. }
            | FOp::LdRP { .. }
            | FOp::StRR { .. } => {}
            FOp::Mov { src, .. } | FOp::Put { src, .. } => read(src),
            FOp::Ld8 { addr, .. } | FOp::Ld1 { addr, .. } => read(addr),
            FOp::Bin { a, b, .. } | FOp::BinTrap { a, b, .. } => {
                read(a);
                read(b);
            }
            FOp::Un { x, .. } => read(x),
            FOp::Ite { c, t, e, .. } => {
                read(c);
                read(t);
                read(e);
            }
            FOp::St8 { addr, val, .. } | FOp::St1 { addr, val, .. } => {
                read(addr);
                read(val);
            }
            FOp::Cas { addr, expected, new, .. } => {
                read(addr);
                read(expected);
                read(new);
            }
            FOp::Amo { addr, val, .. } => {
                read(addr);
                read(val);
            }
            FOp::Exit { guard, .. } => read(guard),
            FOp::BinTR { a, .. } => read(a),
            FOp::StV { addr, .. } => read(addr),
            FOp::StRV { val, .. } => read(val),
            FOp::BinP { a, b, .. } => {
                read(a);
                read(b);
            }
            FOp::LdO { base, off, .. } | FOp::LdOP { base, off, .. } => {
                read(base);
                read(off);
            }
            FOp::LdP { addr, .. } => read(addr),
            FOp::StO { base, off, val, .. } => {
                read(base);
                read(off);
                read(val);
            }
        }
    }
    for d in dirties {
        for &a in d.args.iter() {
            read(a);
        }
    }
    for m in memcbs {
        read(m.addr);
        read(m.size);
    }
    read(next);
    uses
}

/// Peephole fusion over adjacent op pairs, to fixpoint. A pair fuses
/// when the first op writes only a temp whose sole reader (block-wide)
/// is the second op; the merged op performs both effects at the second
/// op's position, which is sound because nothing sits between them and
/// the absorbed op had no effect beyond the dropped temp. Dirty calls,
/// exits, traps and atomics are never absorbed, so every observable
/// point keeps its exact pc/instruction accounting.
fn fuse(
    mut ops: Vec<FOp>,
    consts: &mut Vec<u64>,
    dirties: &[FDirty],
    memcbs: &[FMemCb],
    next: u32,
    n_temps: u32,
) -> Vec<FOp> {
    // Index of constant 0, for folding `Get` (an addressing mode with
    // zero displacement) into the reg+offset load/store forms.
    let mut c0 = None;
    let mut zero = |consts: &mut Vec<u64>| {
        *c0.get_or_insert_with(|| {
            consts.push(0);
            (consts.len() - 1) as u32
        })
    };
    loop {
        let uses = use_counts(&ops, dirties, memcbs, next, n_temps);
        // `dst` is only fusable if the next op is its one reader.
        let once = |t: u32| uses[t as usize] == 1;
        let tm = |t: u32| t | TMP_BIT;
        let mut out: Vec<FOp> = Vec::with_capacity(ops.len());
        let mut changed = false;
        let mut i = 0;
        while i < ops.len() {
            let fused = if i + 1 < ops.len() {
                match (&ops[i], &ops[i + 1]) {
                    (&FOp::Get { dst, reg }, b) if once(dst) => match *b {
                        FOp::Mov { dst: d2, src } if src == tm(dst) => {
                            Some(FOp::Get { dst: d2, reg })
                        }
                        FOp::Put { reg: rd, src } if src == tm(dst) => {
                            Some(FOp::MovRR { rd, rs: reg })
                        }
                        FOp::Bin { dst: d2, op, a, b } if a == tm(dst) && b & TMP_BIT == 0 => {
                            Some(FOp::BinRI { dst: d2, op, rs: reg, c: b })
                        }
                        FOp::Bin { dst: d2, op, a, b } if b == tm(dst) && a != tm(dst) => {
                            Some(FOp::BinTR { dst: d2, op, a, rb: reg })
                        }
                        FOp::BinTR { dst: d2, op, a, rb } if a == tm(dst) => {
                            Some(FOp::BinRR { dst: d2, op, ra: reg, rb })
                        }
                        FOp::Ld8 { dst: d2, addr, ic } if addr == tm(dst) => {
                            Some(FOp::LdRO { dst: d2, rs: reg, c: zero(consts), ic })
                        }
                        FOp::LdP { rd, addr, ic } if addr == tm(dst) => {
                            Some(FOp::LdRP { rd, rs: reg, c: zero(consts), ic })
                        }
                        FOp::St8 { addr, val, ic } if val == tm(dst) && addr != tm(dst) => {
                            Some(FOp::StV { addr, vr: reg, ic })
                        }
                        FOp::St8 { addr, val, ic } if addr == tm(dst) && val != tm(dst) => {
                            Some(FOp::StRV { rs: reg, c: zero(consts), val, ic })
                        }
                        FOp::StV { addr, vr, ic } if addr == tm(dst) => {
                            Some(FOp::StRR { rs: reg, c: zero(consts), vr, ic })
                        }
                        _ => None,
                    },
                    (&FOp::Mov { dst, src }, &FOp::Put { reg: rd, src: s2 })
                        if once(dst) && s2 == tm(dst) =>
                    {
                        Some(FOp::Put { reg: rd, src })
                    }
                    (&FOp::BinRI { dst, op, rs, c }, b) if once(dst) => match *b {
                        FOp::Put { reg: rd, src } if src == tm(dst) => {
                            Some(FOp::BinRIP { rd, op, rs, c })
                        }
                        FOp::Ld8 { dst: d2, addr, ic }
                            if addr == tm(dst) && matches!(op, BinOp::Add) =>
                        {
                            Some(FOp::LdRO { dst: d2, rs, c, ic })
                        }
                        FOp::LdP { rd, addr, ic }
                            if addr == tm(dst) && matches!(op, BinOp::Add) =>
                        {
                            Some(FOp::LdRP { rd, rs, c, ic })
                        }
                        FOp::St8 { addr, val, ic }
                            if addr == tm(dst) && val != tm(dst) && matches!(op, BinOp::Add) =>
                        {
                            Some(FOp::StRV { rs, c, val, ic })
                        }
                        FOp::StV { addr, vr, ic }
                            if addr == tm(dst) && matches!(op, BinOp::Add) =>
                        {
                            Some(FOp::StRR { rs, c, vr, ic })
                        }
                        _ => None,
                    },
                    (&FOp::BinRR { dst, op, ra, rb }, &FOp::Put { reg: rd, src })
                        if once(dst) && src == tm(dst) =>
                    {
                        Some(FOp::BinRRP { rd, op, ra, rb })
                    }
                    (&FOp::LdRO { dst, rs, c, ic }, &FOp::Put { reg: rd, src })
                        if once(dst) && src == tm(dst) =>
                    {
                        Some(FOp::LdRP { rd, rs, c, ic })
                    }
                    (&FOp::Bin { dst, op, a, b }, x) if once(dst) => match *x {
                        FOp::Put { reg: rd, src } if src == tm(dst) => {
                            Some(FOp::BinP { rd, op, a, b })
                        }
                        FOp::Ld8 { dst: d2, addr, ic }
                            if addr == tm(dst) && matches!(op, BinOp::Add) =>
                        {
                            Some(FOp::LdO { dst: d2, base: a, off: b, ic })
                        }
                        FOp::LdP { rd, addr, ic }
                            if addr == tm(dst) && matches!(op, BinOp::Add) =>
                        {
                            Some(FOp::LdOP { rd, base: a, off: b, ic })
                        }
                        FOp::St8 { addr, val, ic }
                            if addr == tm(dst) && val != tm(dst) && matches!(op, BinOp::Add) =>
                        {
                            Some(FOp::StO { base: a, off: b, val, ic })
                        }
                        _ => None,
                    },
                    (&FOp::Ld8 { dst, addr, ic }, &FOp::Put { reg: rd, src })
                        if once(dst) && src == tm(dst) =>
                    {
                        Some(FOp::LdP { rd, addr, ic })
                    }
                    (&FOp::LdO { dst, base, off, ic }, &FOp::Put { reg: rd, src })
                        if once(dst) && src == tm(dst) =>
                    {
                        Some(FOp::LdOP { rd, base, off, ic })
                    }
                    _ => None,
                }
            } else {
                None
            };
            match fused {
                Some(f) => {
                    out.push(f);
                    i += 2;
                    changed = true;
                }
                None => {
                    out.push(ops[i].clone());
                    i += 1;
                }
            }
        }
        ops = out;
        if !changed {
            return ops;
        }
    }
}

/// Def-before-use scan over the compiled ops (the sanity checker's
/// `UseBeforeDef` rule): returns true if any operand can read a temp no
/// earlier op defined, in which case the executor must zero the temp
/// file to match the reference walker's zeroed buffer.
fn reads_undefined_temp(
    ops: &[FOp],
    dirties: &[FDirty],
    memcbs: &[FMemCb],
    next: u32,
    n_temps: u32,
) -> bool {
    let mut defined = vec![false; n_temps as usize];
    let undef = |o: u32, d: &[bool]| {
        o & TMP_BIT != 0 && !d.get((o & !TMP_BIT) as usize).copied().unwrap_or(false)
    };
    let def = |t: u32, d: &mut [bool]| {
        if let Some(slot) = d.get_mut(t as usize) {
            *slot = true;
        }
    };
    for op in ops {
        match *op {
            FOp::Get { dst, .. } => def(dst, &mut defined),
            FOp::Mov { dst, src } => {
                if undef(src, &defined) {
                    return true;
                }
                def(dst, &mut defined);
            }
            FOp::Ld8 { dst, addr, .. } | FOp::Ld1 { dst, addr, .. } => {
                if undef(addr, &defined) {
                    return true;
                }
                def(dst, &mut defined);
            }
            FOp::Bin { dst, a, b, .. } | FOp::BinTrap { dst, a, b, .. } => {
                if undef(a, &defined) || undef(b, &defined) {
                    return true;
                }
                def(dst, &mut defined);
            }
            FOp::Un { dst, x, .. } => {
                if undef(x, &defined) {
                    return true;
                }
                def(dst, &mut defined);
            }
            FOp::Ite { dst, c, t, e } => {
                if undef(c, &defined) || undef(t, &defined) || undef(e, &defined) {
                    return true;
                }
                def(dst, &mut defined);
            }
            FOp::Put { src, .. } => {
                if undef(src, &defined) {
                    return true;
                }
            }
            FOp::St8 { addr, val, .. } | FOp::St1 { addr, val, .. } => {
                if undef(addr, &defined) || undef(val, &defined) {
                    return true;
                }
            }
            FOp::Cas { dst, addr, expected, new } => {
                if undef(addr, &defined) || undef(expected, &defined) || undef(new, &defined) {
                    return true;
                }
                def(dst, &mut defined);
            }
            FOp::Amo { dst, addr, val } => {
                if undef(addr, &defined) || undef(val, &defined) {
                    return true;
                }
                def(dst, &mut defined);
            }
            FOp::Dirty { idx } => {
                let d = &dirties[idx as usize];
                if d.args.iter().any(|&a| undef(a, &defined)) {
                    return true;
                }
                if let Some(t) = d.dst {
                    def(t, &mut defined);
                }
            }
            FOp::MemCb { idx } => {
                let m = &memcbs[idx as usize];
                if undef(m.addr, &defined) || undef(m.size, &defined) {
                    return true;
                }
            }
            FOp::Exit { guard, .. } => {
                if undef(guard, &defined) {
                    return true;
                }
            }
            FOp::MovRR { .. }
            | FOp::BinRIP { .. }
            | FOp::BinRRP { .. }
            | FOp::LdRP { .. }
            | FOp::StRR { .. } => {}
            FOp::BinRI { dst, .. } | FOp::BinRR { dst, .. } | FOp::LdRO { dst, .. } => {
                def(dst, &mut defined)
            }
            FOp::BinTR { dst, a, .. } => {
                if undef(a, &defined) {
                    return true;
                }
                def(dst, &mut defined);
            }
            FOp::StV { addr, .. } => {
                if undef(addr, &defined) {
                    return true;
                }
            }
            FOp::StRV { val, .. } => {
                if undef(val, &defined) {
                    return true;
                }
            }
            FOp::BinP { a, b, .. } => {
                if undef(a, &defined) || undef(b, &defined) {
                    return true;
                }
            }
            FOp::LdO { dst, base, off, .. } => {
                if undef(base, &defined) || undef(off, &defined) {
                    return true;
                }
                def(dst, &mut defined);
            }
            FOp::LdOP { base, off, .. } => {
                if undef(base, &defined) || undef(off, &defined) {
                    return true;
                }
            }
            FOp::LdP { addr, .. } => {
                if undef(addr, &defined) {
                    return true;
                }
            }
            FOp::StO { base, off, val, .. } => {
                if undef(base, &defined) || undef(off, &defined) || undef(val, &defined) {
                    return true;
                }
            }
        }
    }
    undef(next, &defined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_ir::Temp;

    #[test]
    fn compile_folds_imarks_and_numbers_exits() {
        let mut b = IrBlock::new(0x1000);
        b.n_temps = 2;
        b.stmts.push(Stmt::IMark { addr: 0x1000, len: 16 });
        b.stmts.push(Stmt::WrTmp { dst: Temp(0), rhs: Rhs::Get { reg: 3 } });
        b.stmts.push(Stmt::Exit {
            guard: Atom::Tmp(Temp(0)),
            target: 0x2000,
            kind: JumpKind::Boring,
        });
        b.stmts.push(Stmt::IMark { addr: 0x1010, len: 16 });
        b.stmts.push(Stmt::WrTmp {
            dst: Temp(1),
            rhs: Rhs::Binop { op: BinOp::DivS, lhs: Atom::Tmp(Temp(0)), rhs: Atom::Const(2) },
        });
        b.next = Atom::imm(0x1020);
        let f = compile(&b);
        assert_eq!(f.ops.len(), 3, "IMarks are folded away");
        assert_eq!(f.instrs_total, 2);
        assert_eq!(f.fall_ord, 1);
        assert!(f.next_is_const());
        assert_eq!(f.exits.len(), 1);
        assert_eq!(f.exits[0].ord, 0);
        assert_eq!(f.exits[0].instrs, 1, "exit taken after one instruction");
        assert_eq!(f.traps.len(), 1);
        assert_eq!(f.traps[0].pc, 0x1010, "trap pc is the second IMark");
        assert_eq!(f.traps[0].instrs, 2);
        // The DivS became a BinTrap, the Get a plain op with a temp dst.
        assert!(matches!(f.ops[2], FOp::BinTrap { .. }));
        assert!(matches!(f.ops[0], FOp::Get { dst: 0, reg: 3 }));
    }

    #[test]
    fn operand_encoding_separates_temps_and_consts() {
        let mut b = IrBlock::new(0x1000);
        b.n_temps = 1;
        b.stmts.push(Stmt::IMark { addr: 0x1000, len: 16 });
        b.stmts.push(Stmt::Put { reg: 1, src: Atom::Const(0xdead) });
        b.stmts.push(Stmt::Put { reg: 2, src: Atom::Tmp(Temp(0)) });
        b.next = Atom::Tmp(Temp(0));
        let f = compile(&b);
        assert!(!f.next_is_const(), "computed next chains through the IBTC");
        let FOp::Put { src: c, .. } = f.ops[0] else { panic!() };
        let FOp::Put { src: t, .. } = f.ops[1] else { panic!() };
        assert_eq!(c & TMP_BIT, 0);
        assert_eq!(f.consts[c as usize], 0xdead);
        assert_eq!(t, TMP_BIT, "temp 0 is the tag bit alone");
    }

    #[test]
    fn fusion_collapses_lifted_load_to_one_op() {
        // The lifter's `ld rd, off(fp)` shape: Get/Add/Load/Put with
        // every intermediate read exactly once. Fixpoint fusion must
        // collapse the whole chain to a single `LdRP`.
        let mut b = IrBlock::new(0x1000);
        b.n_temps = 3;
        b.stmts.push(Stmt::IMark { addr: 0x1000, len: 16 });
        b.stmts.push(Stmt::WrTmp { dst: Temp(0), rhs: Rhs::Get { reg: 3 } });
        b.stmts.push(Stmt::WrTmp {
            dst: Temp(1),
            rhs: Rhs::Binop {
                op: BinOp::Add,
                lhs: Atom::Tmp(Temp(0)),
                rhs: Atom::Const(-16i64 as u64),
            },
        });
        b.stmts.push(Stmt::WrTmp {
            dst: Temp(2),
            rhs: Rhs::Load { ty: Ty::I64, addr: Atom::Tmp(Temp(1)) },
        });
        b.stmts.push(Stmt::Put { reg: 13, src: Atom::Tmp(Temp(2)) });
        b.next = Atom::imm(0x1010);
        let f = compile(&b);
        assert_eq!(f.ops.len(), 1, "Get/Add/Load/Put fuse to one op: {:?}", f.ops);
        let FOp::LdRP { rd: 13, rs: 3, c, .. } = f.ops[0] else {
            panic!("expected LdRP, got {:?}", f.ops[0]);
        };
        assert_eq!(f.consts[c as usize], -16i64 as u64);
    }

    #[test]
    fn tool_mem_callbacks_compile_to_memcb_ops() {
        // An instrumented load: the address temp is read by BOTH the
        // callback and the load itself. The callback must become a
        // MemCb (no argument Vec at run time) and its operand reads
        // must keep the temp's use count at 2 so fusion cannot absorb
        // the defining op into the load and skip the callback.
        let mut b = IrBlock::new(0x1000);
        b.n_temps = 2;
        b.stmts.push(Stmt::IMark { addr: 0x1000, len: 16 });
        b.stmts.push(Stmt::WrTmp {
            dst: Temp(0),
            rhs: Rhs::Binop { op: BinOp::Add, lhs: Atom::Const(0x5000), rhs: Atom::Const(8) },
        });
        b.stmts.push(Stmt::Dirty {
            call: DirtyCall::ToolMem { write: false },
            args: vec![Atom::Tmp(Temp(0)), Atom::imm(8)],
            dst: None,
        });
        b.stmts.push(Stmt::WrTmp {
            dst: Temp(1),
            rhs: Rhs::Load { ty: Ty::I64, addr: Atom::Tmp(Temp(0)) },
        });
        b.next = Atom::imm(0x1010);
        let f = compile(&b);
        assert!(f.dirties.is_empty(), "ToolMem goes to the memcb table: {:?}", f.dirties);
        assert_eq!(f.memcbs.len(), 1);
        assert_eq!(f.memcbs[0].pc, 0x1000);
        assert_eq!(f.memcbs[0].instrs, 1);
        assert!(!f.memcbs[0].write);
        assert!(
            f.ops.iter().any(|o| matches!(o, FOp::MemCb { .. })),
            "callback survives fusion: {:?}",
            f.ops
        );
        assert!(
            f.ops.iter().any(|o| matches!(o, FOp::Bin { .. })),
            "the address def must NOT fuse past the callback: {:?}",
            f.ops
        );
    }

    #[test]
    fn fusion_handles_shared_base_temps() {
        // Post-`iropt` shape: one Get per register, the base temp shared
        // by a load and a store. The Get survives (two readers) but each
        // Add/Ld/Put and Add/St chain still fuses.
        let mut b = IrBlock::new(0x1000);
        b.n_temps = 4;
        b.stmts.push(Stmt::IMark { addr: 0x1000, len: 16 });
        b.stmts.push(Stmt::WrTmp { dst: Temp(0), rhs: Rhs::Get { reg: 3 } });
        b.stmts.push(Stmt::WrTmp {
            dst: Temp(1),
            rhs: Rhs::Binop {
                op: BinOp::Add,
                lhs: Atom::Tmp(Temp(0)),
                rhs: Atom::Const(-16i64 as u64),
            },
        });
        b.stmts.push(Stmt::WrTmp {
            dst: Temp(2),
            rhs: Rhs::Load { ty: Ty::I64, addr: Atom::Tmp(Temp(1)) },
        });
        b.stmts.push(Stmt::Put { reg: 13, src: Atom::Tmp(Temp(2)) });
        b.stmts.push(Stmt::IMark { addr: 0x1010, len: 16 });
        b.stmts.push(Stmt::WrTmp {
            dst: Temp(3),
            rhs: Rhs::Binop {
                op: BinOp::Add,
                lhs: Atom::Tmp(Temp(0)),
                rhs: Atom::Const(-24i64 as u64),
            },
        });
        b.stmts.push(Stmt::Store { ty: Ty::I64, addr: Atom::Tmp(Temp(3)), val: Atom::Const(7) });
        b.next = Atom::imm(0x1020);
        let f = compile(&b);
        assert_eq!(f.ops.len(), 3, "Get survives, both chains fuse: {:?}", f.ops);
        assert!(matches!(f.ops[0], FOp::Get { reg: 3, .. }));
        assert!(matches!(f.ops[1], FOp::LdOP { rd: 13, .. }), "got {:?}", f.ops[1]);
        assert!(matches!(f.ops[2], FOp::StO { .. }), "got {:?}", f.ops[2]);
    }
}
