//! The TGA → IR lifter: grindcore's "disassemble and resynthesize" front
//! end (paper §II-B: Valgrind performs just-in-time recompilation of code
//! blocks from binary programs to the VEX intermediate representation).
//!
//! [`lift_superblock`] decodes machine words starting at a guest address
//! and emits one [`IrBlock`] per superblock: a straight-line run of
//! instructions ending at the first control transfer (or a length cap).
//! Conditional branches become guarded side exits. The lifted block is
//! what tools instrument.

use tga::{reg, Inst, Op, INST_SIZE};
use vex_ir::{Atom, BinOp, DirtyCall, IrBlock, JumpKind, Rhs, Stmt, Temp, Ty, UnOp};

/// Maximum guest instructions per superblock.
pub const MAX_BLOCK_INSTS: usize = 64;

/// Lifting failure: the address does not decode to valid code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftError {
    pub addr: u64,
    pub msg: String,
}

impl std::fmt::Display for LiftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot lift code at {:#x}: {}", self.addr, self.msg)
    }
}

impl std::error::Error for LiftError {}

struct Lifter<'m> {
    module: &'m tga::module::Module,
    block: IrBlock,
}

impl<'m> Lifter<'m> {
    fn tmp(&mut self) -> Temp {
        self.block.new_temp()
    }

    fn push(&mut self, s: Stmt) {
        self.block.stmts.push(s);
    }

    /// Read a guest register into a temp (register 0 reads as constant 0).
    fn get(&mut self, r: u8) -> Atom {
        if r == reg::ZERO {
            return Atom::imm(0);
        }
        let t = self.tmp();
        self.push(Stmt::WrTmp { dst: t, rhs: Rhs::Get { reg: r } });
        t.into()
    }

    /// Write a guest register (writes to the zero register are dropped).
    fn put(&mut self, r: u8, v: Atom) {
        if r != reg::ZERO {
            self.push(Stmt::Put { reg: r, src: v });
        }
    }

    fn binop(&mut self, op: BinOp, lhs: Atom, rhs: Atom) -> Atom {
        let t = self.tmp();
        self.push(Stmt::WrTmp { dst: t, rhs: Rhs::Binop { op, lhs, rhs } });
        t.into()
    }

    fn unop(&mut self, op: UnOp, x: Atom) -> Atom {
        let t = self.tmp();
        self.push(Stmt::WrTmp { dst: t, rhs: Rhs::Unop { op, x } });
        t.into()
    }

    /// Effective address `rs1 + imm`.
    fn ea(&mut self, rs1: u8, imm: i64) -> Atom {
        let base = self.get(rs1);
        if imm == 0 {
            base
        } else {
            self.binop(BinOp::Add, base, Atom::imm(imm as u64))
        }
    }

    /// Lift one instruction at `pc`. Returns `true` if it ended the block.
    fn lift_inst(&mut self, inst: &Inst, pc: u64) -> bool {
        self.push(Stmt::IMark { addr: pc, len: INST_SIZE as u32 });
        let next_pc = pc + INST_SIZE;
        use Op::*;
        let reg_binop = |op: BinOp| op;
        match inst.op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Seq
            | Sne | Sle | Fadd | Fsub | Fmul | Fdiv | Feq | Flt | Fle => {
                let op = reg_binop(match inst.op {
                    Add => BinOp::Add,
                    Sub => BinOp::Sub,
                    Mul => BinOp::Mul,
                    Div => BinOp::DivS,
                    Rem => BinOp::RemS,
                    And => BinOp::And,
                    Or => BinOp::Or,
                    Xor => BinOp::Xor,
                    Sll => BinOp::Shl,
                    Srl => BinOp::ShrU,
                    Sra => BinOp::ShrS,
                    Slt => BinOp::CmpLtS,
                    Sltu => BinOp::CmpLtU,
                    Seq => BinOp::CmpEq,
                    Sne => BinOp::CmpNe,
                    Sle => BinOp::CmpLeS,
                    Fadd => BinOp::FAdd,
                    Fsub => BinOp::FSub,
                    Fmul => BinOp::FMul,
                    Fdiv => BinOp::FDiv,
                    Feq => BinOp::FCmpEq,
                    Flt => BinOp::FCmpLt,
                    Fle => BinOp::FCmpLe,
                    _ => unreachable!(),
                });
                let a = self.get(inst.rs1);
                let b = self.get(inst.rs2);
                let r = self.binop(op, a, b);
                self.put(inst.rd, r);
                false
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => {
                let op = match inst.op {
                    Addi => BinOp::Add,
                    Andi => BinOp::And,
                    Ori => BinOp::Or,
                    Xori => BinOp::Xor,
                    Slli => BinOp::Shl,
                    Srli => BinOp::ShrU,
                    Srai => BinOp::ShrS,
                    Slti => BinOp::CmpLtS,
                    _ => unreachable!(),
                };
                let a = self.get(inst.rs1);
                let r = self.binop(op, a, Atom::imm(inst.imm as u64));
                self.put(inst.rd, r);
                false
            }
            Li => {
                self.put(inst.rd, Atom::imm(inst.imm as u64));
                false
            }
            Fsqrt | Fneg | Fabs | Fcvtif | Fcvtfi => {
                let op = match inst.op {
                    Fsqrt => UnOp::FSqrt,
                    Fneg => UnOp::FNeg,
                    Fabs => UnOp::FAbs,
                    Fcvtif => UnOp::I2F,
                    Fcvtfi => UnOp::F2I,
                    _ => unreachable!(),
                };
                let a = self.get(inst.rs1);
                let r = self.unop(op, a);
                self.put(inst.rd, r);
                false
            }
            Ld | Lb => {
                let ty = if inst.op == Ld { Ty::I64 } else { Ty::I8 };
                let addr = self.ea(inst.rs1, inst.imm);
                let t = self.tmp();
                self.push(Stmt::WrTmp { dst: t, rhs: Rhs::Load { ty, addr } });
                self.put(inst.rd, t.into());
                false
            }
            St | Sb => {
                let ty = if inst.op == St { Ty::I64 } else { Ty::I8 };
                let addr = self.ea(inst.rs1, inst.imm);
                let val = self.get(inst.rs2);
                self.push(Stmt::Store { ty, addr, val });
                false
            }
            Jal => {
                self.put(inst.rd, Atom::imm(next_pc));
                self.block.next = Atom::imm(inst.imm as u64);
                self.block.jumpkind = if inst.rd == reg::RA {
                    JumpKind::Call { return_addr: next_pc }
                } else {
                    JumpKind::Boring
                };
                true
            }
            Jalr => {
                let target = self.ea(inst.rs1, inst.imm);
                self.put(inst.rd, Atom::imm(next_pc));
                self.block.next = target;
                self.block.jumpkind = if inst.rd == reg::RA {
                    JumpKind::Call { return_addr: next_pc }
                } else if inst.rs1 == reg::RA && inst.rd == reg::ZERO {
                    JumpKind::Ret
                } else {
                    JumpKind::Boring
                };
                true
            }
            Beq | Bne | Blt | Bge | Bltu => {
                let a = self.get(inst.rs1);
                let b = self.get(inst.rs2);
                let cond = match inst.op {
                    Beq => self.binop(BinOp::CmpEq, a, b),
                    Bne => self.binop(BinOp::CmpNe, a, b),
                    Blt => self.binop(BinOp::CmpLtS, a, b),
                    // rs1 >= rs2  ⇔  rs2 <= rs1
                    Bge => self.binop(BinOp::CmpLeS, b, a),
                    Bltu => self.binop(BinOp::CmpLtU, a, b),
                    _ => unreachable!(),
                };
                self.push(Stmt::Exit {
                    guard: cond,
                    target: inst.imm as u64,
                    kind: JumpKind::Boring,
                });
                self.block.next = Atom::imm(next_pc);
                self.block.jumpkind = JumpKind::Boring;
                true
            }
            Cas => {
                let addr = self.get(inst.rs1);
                let expected = self.get(inst.rd);
                let new = self.get(inst.rs2);
                let t = self.tmp();
                self.push(Stmt::Cas { dst: t, addr, expected, new });
                self.put(inst.rd, t.into());
                false
            }
            Amoadd => {
                let addr = self.get(inst.rs1);
                let val = self.get(inst.rs2);
                let t = self.tmp();
                self.push(Stmt::AtomicAdd { dst: t, addr, val });
                self.put(inst.rd, t.into());
                false
            }
            Sys => {
                let mut args = vec![Atom::imm(inst.imm as u64)];
                for r in [reg::A0, reg::A1, reg::A2, reg::A3, reg::A4, reg::A5] {
                    args.push(self.get(r));
                }
                let t = self.tmp();
                self.push(Stmt::Dirty { call: DirtyCall::Syscall, args, dst: Some(t) });
                self.put(inst.rd, t.into());
                self.block.next = Atom::imm(next_pc);
                self.block.jumpkind = JumpKind::Boring;
                true
            }
            Clreq => {
                let mut args = Vec::with_capacity(6);
                for r in [reg::A0, reg::A1, reg::A2, reg::A3, reg::A4, reg::A5] {
                    args.push(self.get(r));
                }
                let t = self.tmp();
                self.push(Stmt::Dirty { call: DirtyCall::ClientRequest, args, dst: Some(t) });
                self.put(inst.rd, t.into());
                self.block.next = Atom::imm(next_pc);
                self.block.jumpkind = JumpKind::Boring;
                true
            }
            Halt => {
                self.block.next = Atom::imm(0);
                self.block.jumpkind = JumpKind::Halt;
                true
            }
            Nop => false,
        }
    }
}

/// Lift the superblock starting at `base`.
pub fn lift_superblock(module: &tga::module::Module, base: u64) -> Result<IrBlock, LiftError> {
    let mut l = Lifter { module, block: IrBlock::new(base) };
    let mut pc = base;
    for i in 0..MAX_BLOCK_INSTS {
        let inst = l.module.fetch(pc).ok_or_else(|| LiftError {
            addr: pc,
            msg: if i == 0 {
                "not a code address".into()
            } else {
                "fell off the end of the text section".into()
            },
        })?;
        let ended = l.lift_inst(&inst, pc);
        pc += INST_SIZE;
        if ended {
            return Ok(l.block);
        }
    }
    // Length cap: fall through to the next instruction.
    l.block.next = Atom::imm(pc);
    l.block.jumpkind = JumpKind::Boring;
    Ok(l.block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tga::asm::assemble;
    use tga::module::{Module, CODE_BASE};
    use vex_ir::sanity;

    fn module_from(src: &str) -> Module {
        let (code, _) = assemble(src, CODE_BASE).unwrap();
        let mut m = Module::new();
        m.code = code;
        m.entry = CODE_BASE;
        m
    }

    #[test]
    fn lifts_straightline_block_until_branch() {
        let m = module_from(
            "li t0, 5\n addi t1, t0, 2\n st t1, 8(sp)\n ld t2, 8(sp)\n beq t1, t2, 0x0\n nop",
        );
        let b = lift_superblock(&m, CODE_BASE).unwrap();
        sanity::assert_sane(&b, "lifted");
        assert_eq!(b.guest_instrs(), 5, "block stops at the branch");
        assert!(matches!(b.jumpkind, JumpKind::Boring));
        assert_eq!(b.next, Atom::imm(CODE_BASE + 5 * INST_SIZE));
        assert!(b.stmts.iter().any(|s| matches!(s, Stmt::Exit { .. })));
    }

    #[test]
    fn call_and_ret_jumpkinds() {
        let m = module_from("jal ra, 0x10000\n");
        let b = lift_superblock(&m, CODE_BASE).unwrap();
        assert!(
            matches!(b.jumpkind, JumpKind::Call { return_addr } if return_addr == CODE_BASE + 16)
        );

        let m = module_from("jalr zero, ra, 0\n");
        let b = lift_superblock(&m, CODE_BASE).unwrap();
        assert!(matches!(b.jumpkind, JumpKind::Ret));

        let m = module_from("jalr ra, t0, 0\n");
        let b = lift_superblock(&m, CODE_BASE).unwrap();
        assert!(matches!(b.jumpkind, JumpKind::Call { .. }), "indirect call via jalr ra");
    }

    #[test]
    fn zero_register_semantics() {
        let m = module_from("add zero, t0, t1\n li zero, 7\n halt");
        let b = lift_superblock(&m, CODE_BASE).unwrap();
        sanity::assert_sane(&b, "lifted");
        // No Put to register 0 is ever emitted.
        assert!(!b.stmts.iter().any(|s| matches!(s, Stmt::Put { reg: 0, .. })));
        assert!(matches!(b.jumpkind, JumpKind::Halt));
    }

    #[test]
    fn syscall_and_clreq_end_blocks_and_pass_args() {
        let m = module_from("sys a0, 2\n nop");
        let b = lift_superblock(&m, CODE_BASE).unwrap();
        assert_eq!(b.guest_instrs(), 1);
        let dirty = b
            .stmts
            .iter()
            .find(|s| matches!(s, Stmt::Dirty { call: DirtyCall::Syscall, .. }))
            .unwrap();
        if let Stmt::Dirty { args, dst, .. } = dirty {
            assert_eq!(args.len(), 7, "syscall number + a0..a5");
            assert_eq!(args[0], Atom::imm(2));
            assert!(dst.is_some());
        }

        let m = module_from("clreq a0\n nop");
        let b = lift_superblock(&m, CODE_BASE).unwrap();
        assert!(b
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::Dirty { call: DirtyCall::ClientRequest, .. })));
    }

    #[test]
    fn cap_splits_long_blocks() {
        let src = "nop\n".repeat(MAX_BLOCK_INSTS + 10) + "halt";
        let m = module_from(&src);
        let b = lift_superblock(&m, CODE_BASE).unwrap();
        assert_eq!(b.guest_instrs(), MAX_BLOCK_INSTS);
        assert_eq!(b.next, Atom::imm(CODE_BASE + (MAX_BLOCK_INSTS as u64) * INST_SIZE));
    }

    #[test]
    fn lift_errors_on_bad_address() {
        let m = module_from("nop");
        let e = lift_superblock(&m, 0x3).unwrap_err();
        assert!(e.msg.contains("not a code address"));
        // Running off the end without a terminator is an error too.
        let e = lift_superblock(&m, CODE_BASE).unwrap_err();
        assert!(e.msg.contains("fell off"));
    }

    #[test]
    fn atomics_lift_with_expected_from_rd() {
        let m = module_from("cas t0, (a0), t1\n amoadd t2, (a0), t1\n halt");
        let b = lift_superblock(&m, CODE_BASE).unwrap();
        sanity::assert_sane(&b, "lifted atomics");
        assert!(b.stmts.iter().any(|s| matches!(s, Stmt::Cas { .. })));
        assert!(b.stmts.iter().any(|s| matches!(s, Stmt::AtomicAdd { .. })));
    }
}
