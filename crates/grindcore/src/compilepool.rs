//! The background compile pool: a bounded job queue served by N worker
//! threads, used to move host compilation (superblock fuse + flat
//! compile) off the dispatch thread.
//!
//! "Parallel Binary Code Analysis" (Meng et al.) shows per-block code
//! construction parallelizes across host cores with near-linear
//! speedup; Valgrind never exploits this because its dispatcher owns
//! translation. Here the dispatch thread stays the only *producer* and
//! the only *authority* over the translation cache's contents (insert,
//! evict, discard); workers are pure functions from job to result that
//! additionally *promote* already-inserted cache entries
//! ([`crate::tcache::TransCache::install_compiled`]). That split is what
//! keeps the tool-event stream and scheduler digest bit-identical to
//! the synchronous engine: nothing a worker does is observable to the
//! guest or the tool, only *when* dispatch switches a block from the
//! tree-walk fallback to the compiled form — and the two engines are
//! proven equivalent by the differential suite.
//!
//! The pool is generic over job and result so `tgrind warm` can reuse
//! it with a per-worker tool instance. The worker state is built *on*
//! the worker thread by the `make_worker` factory, so it may be `!Send`
//! (e.g. hold `Rc` internally) — only the factory itself crosses
//! threads.
//!
//! Backpressure: the job queue is bounded. [`CompilePool::try_send`]
//! returns the job back when the queue is full and the caller compiles
//! inline — guest progress never blocks on a full queue either.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Queue-depth telemetry shared between the senders and the workers.
struct Depth {
    cur: AtomicU64,
    peak: AtomicU64,
}

impl Depth {
    fn push(&self) {
        let d = self.cur.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(d, Ordering::Relaxed);
    }

    fn pop(&self) {
        self.cur.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A fixed set of worker threads draining a bounded job queue into an
/// unbounded result queue. See the module docs for the role split.
pub struct CompilePool<J: Send + 'static, R: Send + 'static> {
    /// Job sender; dropped on shutdown to stop the workers.
    tx: Option<SyncSender<J>>,
    results: Receiver<R>,
    workers: Vec<JoinHandle<()>>,
    depth: Arc<Depth>,
}

impl<J: Send + 'static, R: Send + 'static> CompilePool<J, R> {
    /// Spawn `n_workers` threads (min 1) named `<name>.worker<i>`,
    /// each running the closure built by `make_worker(i)` over every
    /// job it pulls. The queue holds at most `queue_cap` pending jobs.
    pub fn new<W, F>(n_workers: usize, queue_cap: usize, name: &str, make_worker: F) -> Self
    where
        W: FnMut(J) -> R,
        F: Fn(usize) -> W + Send + Sync + 'static,
    {
        let n = n_workers.max(1);
        let (tx, jobs) = std::sync::mpsc::sync_channel::<J>(queue_cap.max(1));
        let (out, results) = std::sync::mpsc::channel::<R>();
        let jobs = Arc::new(Mutex::new(jobs));
        let depth = Arc::new(Depth { cur: AtomicU64::new(0), peak: AtomicU64::new(0) });
        let make_worker = Arc::new(make_worker);
        let workers = (0..n)
            .map(|i| {
                let jobs = jobs.clone();
                let out = out.clone();
                let depth = depth.clone();
                let make_worker = make_worker.clone();
                let track = format!("{name}.worker{i}");
                std::thread::Builder::new()
                    .name(track.clone())
                    .spawn(move || {
                        if tg_obs::trace::enabled() {
                            tg_obs::trace::name_track(
                                tg_obs::trace::PID_HOST,
                                tg_obs::trace::host_tid(),
                                &track,
                            );
                        }
                        let mut work = make_worker(i);
                        loop {
                            // Hold the receiver lock only for the pull;
                            // the job itself runs unlocked so workers
                            // overlap.
                            let job = match jobs.lock().recv() {
                                Ok(j) => j,
                                Err(_) => break, // sender dropped: shutdown
                            };
                            depth.pop();
                            if out.send(work(job)).is_err() {
                                break; // pool dropped mid-run
                            }
                        }
                    })
                    .expect("spawn compile worker")
            })
            .collect();
        CompilePool { tx: Some(tx), results, workers, depth }
    }

    /// Enqueue a job without blocking. On a full queue the job is
    /// handed back for the caller to run inline.
    pub fn try_send(&self, job: J) -> Result<(), J> {
        // Count the job before it becomes visible to workers, so the
        // worker's decrement can never race ahead of the increment.
        self.depth.push();
        match self.tx.as_ref().expect("pool already shut down").try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(j)) | Err(TrySendError::Disconnected(j)) => {
                self.depth.pop();
                Err(j)
            }
        }
    }

    /// Results completed so far, without blocking.
    pub fn try_drain(&self) -> Vec<R> {
        let mut v = Vec::new();
        while let Ok(r) = self.results.try_recv() {
            v.push(r);
        }
        v
    }

    /// Jobs currently queued (excluding jobs being worked on).
    pub fn queue_depth(&self) -> u64 {
        self.depth.cur.load(Ordering::Relaxed)
    }

    /// High-water mark of the job queue over the pool's lifetime.
    pub fn queue_depth_peak(&self) -> u64 {
        self.depth.peak.load(Ordering::Relaxed)
    }

    /// Stop accepting jobs, wait for the workers to finish everything
    /// already queued, and return all remaining results.
    pub fn shutdown(mut self) -> Vec<R> {
        self.tx = None; // close the queue; workers drain then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let mut v = Vec::new();
        while let Ok(r) = self.results.try_recv() {
            v.push(r);
        }
        v
    }
}

impl<J: Send + 'static, R: Send + 'static> Drop for CompilePool<J, R> {
    fn drop(&mut self) {
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_round_trip_through_workers() {
        let pool: CompilePool<u64, u64> = CompilePool::new(3, 16, "test", |_i| |j: u64| j * 2);
        for j in 0..40u64 {
            let mut job = j;
            loop {
                match pool.try_send(job) {
                    Ok(()) => break,
                    Err(back) => {
                        job = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let mut got = pool.shutdown();
        got.sort_unstable();
        let want: Vec<u64> = (0..40).map(|j| j * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn full_queue_hands_the_job_back() {
        // A single worker blocked on its first job; capacity 1 fills.
        let gate = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let g = gate.clone();
        let pool: CompilePool<u64, u64> = CompilePool::new(1, 1, "test", move |_i| {
            let g = g.clone();
            move |j: u64| {
                while g.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
                j
            }
        });
        // First job is picked up by the worker (and parks on the gate);
        // then the queue itself (capacity 1) fills.
        let mut rejected = false;
        for j in 0..8u64 {
            if pool.try_send(j).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "a bounded queue with a parked worker must fill");
        assert!(pool.queue_depth_peak() >= 1);
        gate.store(1, Ordering::SeqCst);
        let got = pool.shutdown();
        assert!(!got.is_empty());
    }

    #[test]
    fn worker_state_is_built_on_the_worker_thread() {
        // The worker closure holds an Rc — a !Send type — proving the
        // factory pattern lets per-worker state stay thread-local.
        let pool: CompilePool<u64, u64> = CompilePool::new(2, 8, "test", |i| {
            let local = std::rc::Rc::new(i as u64);
            move |j: u64| j + *local
        });
        assert!(pool.try_send(100).is_ok());
        let got = pool.shutdown();
        assert_eq!(got.len(), 1);
        assert!(got[0] == 100 || got[0] == 101);
    }
}
