//! Persistent compiled-code cache interface.
//!
//! The VM sees the cache as a [`CodeCache`] trait object: on a tcache
//! miss it asks the cache for an already-compiled [`FlatBlock`]; after a
//! cold translation it hands the freshly compiled block back for
//! storage; SMC / `DISCARD_TRANSLATIONS` invalidation is forwarded so
//! stale entries can be dropped from disk. The concrete on-disk
//! implementation lives in `crates/tg-cache` — grindcore only defines
//! the boundary, which keeps the dependency arrow pointing outward.
//!
//! Static analysis facts ride the same channel as *opaque bytes*
//! ([`CodeCache::load_facts`] / [`CodeCache::store_facts`]): grindcore
//! never learns their schema, so `tga-analysis` stays a downstream
//! crate.

use std::cell::{RefCell, RefMut};
use std::fmt;
use std::rc::Rc;

use crate::flat::FlatBlock;

/// Counters a cache implementation maintains; folded into
/// [`crate::vm::Metrics`] at the end of a run and published as the
/// `cache.*` registry keys.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodeCacheStats {
    /// True when a cache is attached (drives the `== code cache:`
    /// summary line; absent caches keep the summary shape unchanged).
    pub enabled: bool,
    /// Lookups that returned a previously compiled block.
    pub hits: u64,
    /// Lookups that fell through to a cold translation.
    pub misses: u64,
    /// Payload bytes deserialized from disk on hits.
    pub bytes_loaded: u64,
    /// Payload bytes serialized for storage on misses.
    pub bytes_stored: u64,
    /// Wall-clock nanoseconds spent in [`CodeCache::load`].
    pub load_nanos: u64,
    /// Wall-clock nanoseconds spent in [`CodeCache::store`].
    pub store_nanos: u64,
    /// Cached entries dropped by [`CodeCache::invalidate_range`].
    pub invalidations: u64,
}

/// A deserialized cache entry, ready to install into the tcache.
pub struct CachedTranslation {
    /// The compiled flat superblock (instrumentation already applied).
    pub flat: FlatBlock,
    /// One past the last guest byte the block covers (the IR extent at
    /// compile time) — needed for SMC range invalidation in the tcache.
    pub end: u64,
    /// The tcache accounting size of the original translation.
    pub bytes: u64,
}

/// The VM-facing cache interface. One instance serves one run; the
/// implementation owns keying (binary hash, config fingerprint),
/// format versioning, and corruption handling — a corrupt or
/// mismatched entry must surface as a plain miss, never as an error.
pub trait CodeCache {
    /// Fetch the compiled block starting at guest `pc`, if present and
    /// valid. Implementations count a hit or miss per call.
    fn load(&mut self, pc: u64) -> Option<CachedTranslation>;

    /// Record a freshly compiled block for future runs. `end` and
    /// `bytes` are echoed back by [`CodeCache::load`].
    fn store(&mut self, pc: u64, end: u64, bytes: u64, flat: &FlatBlock);

    /// Guest code in `[lo, hi)` was overwritten or discarded; entries
    /// overlapping the range must not be served again and should be
    /// evicted from disk when the cache is flushed.
    fn invalidate_range(&mut self, lo: u64, hi: u64);

    /// Serialized static-analysis facts stored alongside the code, if
    /// any. Opaque to grindcore.
    fn load_facts(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Store serialized static-analysis facts alongside the code.
    fn store_facts(&mut self, _bytes: &[u8]) {}

    /// Counter snapshot for metrics publication.
    fn stats(&self) -> CodeCacheStats;
}

/// Shared, cloneable handle to a cache instance. The CLI keeps one
/// clone to flush the cache after the run; the VM keeps another to
/// consult during translation. Single-threaded by construction (the
/// dispatch loop owns translation), hence `Rc<RefCell<..>>`.
#[derive(Clone)]
pub struct CodeCacheHandle(Rc<RefCell<dyn CodeCache>>);

impl CodeCacheHandle {
    /// Wrap a concrete cache. Callers typically pass
    /// `Rc::new(RefCell::new(DiskCodeCache::open(..)?))` — unsized
    /// coercion handles the rest.
    pub fn new(inner: Rc<RefCell<dyn CodeCache>>) -> CodeCacheHandle {
        CodeCacheHandle(inner)
    }

    /// Mutable access to the underlying cache.
    pub fn borrow_mut(&self) -> RefMut<'_, dyn CodeCache> {
        self.0.borrow_mut()
    }

    /// Counter snapshot without holding a borrow across other calls.
    pub fn stats(&self) -> CodeCacheStats {
        self.0.borrow().stats()
    }
}

impl fmt::Debug for CodeCacheHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(f, "CodeCacheHandle(hits={}, misses={})", s.hits, s.misses)
    }
}
