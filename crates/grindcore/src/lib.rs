//! grindcore — a heavyweight dynamic binary instrumentation framework.
//!
//! This crate is the Rust analog of the Valgrind *core* that the paper's
//! Taskgrind tool plugs into: it loads TGA binaries, just-in-time lifts
//! superblocks to the `vex-ir` intermediate representation, lets the
//! active [`tool::Tool`] inject instrumentation, and emulates the result
//! while serializing guest threads under a big lock (one guest thread at
//! a time, switched at superblock boundaries).
//!
//! Services mirrored from Valgrind:
//! * **memory-access instrumentation** — [`tool::instrument_mem_accesses`]
//!   makes the address/size of every load, store and atomic available to
//!   tool callbacks;
//! * **client requests** — the guest `clreq` instruction forwards
//!   parallel-runtime events to the tool ([`creq`] defines the ABI);
//! * **function replacement** — tools hijack guest symbols such as
//!   `malloc`/`free` ([`tool::Tool::replacements`]);
//! * **debug information** — symbol and line lookup through the loaded
//!   [`tga::module::Module`], used for meaningful error reports;
//! * **a "no tools" fast path** — [`vm::ExecMode::Fast`] interprets
//!   instructions directly, giving the uninstrumented baseline that the
//!   overhead experiments (Table II, Fig. 4) compare against. Client
//!   requests and replacements still fire there, which is how the
//!   compile-time-instrumented Archer baseline runs "natively".

pub mod codecache;
pub mod compilepool;
pub mod creq;
pub mod flat;
pub mod flatio;
pub mod lift;
pub mod mem;
pub mod opt;
pub mod profile;
pub mod syscalls;
pub mod tcache;
pub mod tool;
pub mod vm;
pub mod wire;

pub use codecache::{CachedTranslation, CodeCache, CodeCacheHandle, CodeCacheStats};
pub use compilepool::CompilePool;
pub use tool::{BlockMeta, FnReplacement, SyncKind, Tool};
pub use vm::{
    AddrClass, CompileStats, ExecMode, Metrics, RunResult, SchedPolicy, ThreadStatus, Tid, Vm,
    VmConfig, VmCore, VmError, VmStats,
};
