//! Hand-rolled binary (de)serialization for compiled flat superblocks.
//!
//! The encoding is positional little-endian over [`crate::wire`]: every
//! [`FOp`] is a one-byte tag (numbered in declaration order, append-only)
//! followed by its fields, the side tables are length-prefixed, and the
//! per-site inline caches are stored as a bare count — [`PageIc`] state
//! is purely dynamic, so decoding recreates fresh (empty) caches.
//!
//! Decoding is total: any byte sequence either yields a structurally
//! valid [`FlatBlock`] or a [`WireError`]. Callers (the disk cache)
//! additionally checksum each record, so a decoded block is only ever
//! executed when the payload round-tripped bit-exactly.

use crate::flat::{FDirty, FExit, FMemCb, FOp, FTrap, FlatBlock};
use crate::mem::PageIc;
use crate::wire::{Dec, Enc, WireError, WireResult};
use vex_ir::{BinOp, DirtyCall, JumpKind, UnOp};

fn enc_jumpkind(e: &mut Enc, k: JumpKind) {
    match k {
        JumpKind::Boring => e.u8(0),
        JumpKind::Call { return_addr } => {
            e.u8(1);
            e.u64(return_addr);
        }
        JumpKind::Ret => e.u8(2),
        JumpKind::Halt => e.u8(3),
    }
}

fn dec_jumpkind(d: &mut Dec) -> WireResult<JumpKind> {
    Ok(match d.u8("jumpkind tag")? {
        0 => JumpKind::Boring,
        1 => JumpKind::Call { return_addr: d.u64("call return_addr")? },
        2 => JumpKind::Ret,
        3 => JumpKind::Halt,
        _ => return Err(WireError { what: "jumpkind tag" }),
    })
}

fn enc_dirtycall(e: &mut Enc, c: DirtyCall) {
    match c {
        DirtyCall::Syscall => e.u8(0),
        DirtyCall::ClientRequest => e.u8(1),
        DirtyCall::ToolMem { write } => {
            e.u8(2);
            e.bool(write);
        }
        DirtyCall::ToolHelper { id } => {
            e.u8(3);
            e.u32(id);
        }
    }
}

fn dec_dirtycall(d: &mut Dec) -> WireResult<DirtyCall> {
    Ok(match d.u8("dirtycall tag")? {
        0 => DirtyCall::Syscall,
        1 => DirtyCall::ClientRequest,
        2 => DirtyCall::ToolMem { write: d.bool("toolmem write")? },
        3 => DirtyCall::ToolHelper { id: d.u32("toolhelper id")? },
        _ => return Err(WireError { what: "dirtycall tag" }),
    })
}

fn dec_binop(d: &mut Dec) -> WireResult<BinOp> {
    BinOp::from_wire_tag(d.u8("binop tag")?).ok_or(WireError { what: "binop tag" })
}

fn dec_unop(d: &mut Dec) -> WireResult<UnOp> {
    UnOp::from_wire_tag(d.u8("unop tag")?).ok_or(WireError { what: "unop tag" })
}

fn enc_op(e: &mut Enc, op: &FOp) {
    match *op {
        FOp::Get { dst, reg } => {
            e.u8(0);
            e.u32(dst);
            e.u8(reg);
        }
        FOp::Mov { dst, src } => {
            e.u8(1);
            e.u32(dst);
            e.u32(src);
        }
        FOp::Ld8 { dst, addr, ic } => {
            e.u8(2);
            e.u32(dst);
            e.u32(addr);
            e.u32(ic);
        }
        FOp::Ld1 { dst, addr, ic } => {
            e.u8(3);
            e.u32(dst);
            e.u32(addr);
            e.u32(ic);
        }
        FOp::Bin { dst, op, a, b } => {
            e.u8(4);
            e.u32(dst);
            e.u8(op.wire_tag());
            e.u32(a);
            e.u32(b);
        }
        FOp::BinTrap { dst, op, a, b, trap } => {
            e.u8(5);
            e.u32(dst);
            e.u8(op.wire_tag());
            e.u32(a);
            e.u32(b);
            e.u32(trap);
        }
        FOp::Un { dst, op, x } => {
            e.u8(6);
            e.u32(dst);
            e.u8(op.wire_tag());
            e.u32(x);
        }
        FOp::Ite { dst, c, t, e: els } => {
            e.u8(7);
            e.u32(dst);
            e.u32(c);
            e.u32(t);
            e.u32(els);
        }
        FOp::Put { reg, src } => {
            e.u8(8);
            e.u8(reg);
            e.u32(src);
        }
        FOp::St8 { addr, val, ic } => {
            e.u8(9);
            e.u32(addr);
            e.u32(val);
            e.u32(ic);
        }
        FOp::St1 { addr, val, ic } => {
            e.u8(10);
            e.u32(addr);
            e.u32(val);
            e.u32(ic);
        }
        FOp::Cas { dst, addr, expected, new } => {
            e.u8(11);
            e.u32(dst);
            e.u32(addr);
            e.u32(expected);
            e.u32(new);
        }
        FOp::Amo { dst, addr, val } => {
            e.u8(12);
            e.u32(dst);
            e.u32(addr);
            e.u32(val);
        }
        FOp::Dirty { idx } => {
            e.u8(13);
            e.u32(idx);
        }
        FOp::MemCb { idx } => {
            e.u8(14);
            e.u32(idx);
        }
        FOp::Exit { guard, idx } => {
            e.u8(15);
            e.u32(guard);
            e.u32(idx);
        }
        FOp::MovRR { rd, rs } => {
            e.u8(16);
            e.u8(rd);
            e.u8(rs);
        }
        FOp::BinRI { dst, op, rs, c } => {
            e.u8(17);
            e.u32(dst);
            e.u8(op.wire_tag());
            e.u8(rs);
            e.u32(c);
        }
        FOp::BinRIP { rd, op, rs, c } => {
            e.u8(18);
            e.u8(rd);
            e.u8(op.wire_tag());
            e.u8(rs);
            e.u32(c);
        }
        FOp::BinTR { dst, op, a, rb } => {
            e.u8(19);
            e.u32(dst);
            e.u8(op.wire_tag());
            e.u32(a);
            e.u8(rb);
        }
        FOp::BinRR { dst, op, ra, rb } => {
            e.u8(20);
            e.u32(dst);
            e.u8(op.wire_tag());
            e.u8(ra);
            e.u8(rb);
        }
        FOp::BinRRP { rd, op, ra, rb } => {
            e.u8(21);
            e.u8(rd);
            e.u8(op.wire_tag());
            e.u8(ra);
            e.u8(rb);
        }
        FOp::LdRO { dst, rs, c, ic } => {
            e.u8(22);
            e.u32(dst);
            e.u8(rs);
            e.u32(c);
            e.u32(ic);
        }
        FOp::LdRP { rd, rs, c, ic } => {
            e.u8(23);
            e.u8(rd);
            e.u8(rs);
            e.u32(c);
            e.u32(ic);
        }
        FOp::StV { addr, vr, ic } => {
            e.u8(24);
            e.u32(addr);
            e.u8(vr);
            e.u32(ic);
        }
        FOp::StRV { rs, c, val, ic } => {
            e.u8(25);
            e.u8(rs);
            e.u32(c);
            e.u32(val);
            e.u32(ic);
        }
        FOp::StRR { rs, c, vr, ic } => {
            e.u8(26);
            e.u8(rs);
            e.u32(c);
            e.u8(vr);
            e.u32(ic);
        }
        FOp::BinP { rd, op, a, b } => {
            e.u8(27);
            e.u8(rd);
            e.u8(op.wire_tag());
            e.u32(a);
            e.u32(b);
        }
        FOp::LdO { dst, base, off, ic } => {
            e.u8(28);
            e.u32(dst);
            e.u32(base);
            e.u32(off);
            e.u32(ic);
        }
        FOp::LdOP { rd, base, off, ic } => {
            e.u8(29);
            e.u8(rd);
            e.u32(base);
            e.u32(off);
            e.u32(ic);
        }
        FOp::LdP { rd, addr, ic } => {
            e.u8(30);
            e.u8(rd);
            e.u32(addr);
            e.u32(ic);
        }
        FOp::StO { base, off, val, ic } => {
            e.u8(31);
            e.u32(base);
            e.u32(off);
            e.u32(val);
            e.u32(ic);
        }
    }
}

fn dec_op(d: &mut Dec) -> WireResult<FOp> {
    Ok(match d.u8("fop tag")? {
        0 => FOp::Get { dst: d.u32("get dst")?, reg: d.u8("get reg")? },
        1 => FOp::Mov { dst: d.u32("mov dst")?, src: d.u32("mov src")? },
        2 => FOp::Ld8 { dst: d.u32("ld8 dst")?, addr: d.u32("ld8 addr")?, ic: d.u32("ld8 ic")? },
        3 => FOp::Ld1 { dst: d.u32("ld1 dst")?, addr: d.u32("ld1 addr")?, ic: d.u32("ld1 ic")? },
        4 => FOp::Bin {
            dst: d.u32("bin dst")?,
            op: dec_binop(d)?,
            a: d.u32("bin a")?,
            b: d.u32("bin b")?,
        },
        5 => FOp::BinTrap {
            dst: d.u32("bintrap dst")?,
            op: dec_binop(d)?,
            a: d.u32("bintrap a")?,
            b: d.u32("bintrap b")?,
            trap: d.u32("bintrap trap")?,
        },
        6 => FOp::Un { dst: d.u32("un dst")?, op: dec_unop(d)?, x: d.u32("un x")? },
        7 => FOp::Ite {
            dst: d.u32("ite dst")?,
            c: d.u32("ite c")?,
            t: d.u32("ite t")?,
            e: d.u32("ite e")?,
        },
        8 => FOp::Put { reg: d.u8("put reg")?, src: d.u32("put src")? },
        9 => FOp::St8 { addr: d.u32("st8 addr")?, val: d.u32("st8 val")?, ic: d.u32("st8 ic")? },
        10 => FOp::St1 { addr: d.u32("st1 addr")?, val: d.u32("st1 val")?, ic: d.u32("st1 ic")? },
        11 => FOp::Cas {
            dst: d.u32("cas dst")?,
            addr: d.u32("cas addr")?,
            expected: d.u32("cas expected")?,
            new: d.u32("cas new")?,
        },
        12 => FOp::Amo { dst: d.u32("amo dst")?, addr: d.u32("amo addr")?, val: d.u32("amo val")? },
        13 => FOp::Dirty { idx: d.u32("dirty idx")? },
        14 => FOp::MemCb { idx: d.u32("memcb idx")? },
        15 => FOp::Exit { guard: d.u32("exit guard")?, idx: d.u32("exit idx")? },
        16 => FOp::MovRR { rd: d.u8("movrr rd")?, rs: d.u8("movrr rs")? },
        17 => FOp::BinRI {
            dst: d.u32("binri dst")?,
            op: dec_binop(d)?,
            rs: d.u8("binri rs")?,
            c: d.u32("binri c")?,
        },
        18 => FOp::BinRIP {
            rd: d.u8("binrip rd")?,
            op: dec_binop(d)?,
            rs: d.u8("binrip rs")?,
            c: d.u32("binrip c")?,
        },
        19 => FOp::BinTR {
            dst: d.u32("bintr dst")?,
            op: dec_binop(d)?,
            a: d.u32("bintr a")?,
            rb: d.u8("bintr rb")?,
        },
        20 => FOp::BinRR {
            dst: d.u32("binrr dst")?,
            op: dec_binop(d)?,
            ra: d.u8("binrr ra")?,
            rb: d.u8("binrr rb")?,
        },
        21 => FOp::BinRRP {
            rd: d.u8("binrrp rd")?,
            op: dec_binop(d)?,
            ra: d.u8("binrrp ra")?,
            rb: d.u8("binrrp rb")?,
        },
        22 => FOp::LdRO {
            dst: d.u32("ldro dst")?,
            rs: d.u8("ldro rs")?,
            c: d.u32("ldro c")?,
            ic: d.u32("ldro ic")?,
        },
        23 => FOp::LdRP {
            rd: d.u8("ldrp rd")?,
            rs: d.u8("ldrp rs")?,
            c: d.u32("ldrp c")?,
            ic: d.u32("ldrp ic")?,
        },
        24 => FOp::StV { addr: d.u32("stv addr")?, vr: d.u8("stv vr")?, ic: d.u32("stv ic")? },
        25 => FOp::StRV {
            rs: d.u8("strv rs")?,
            c: d.u32("strv c")?,
            val: d.u32("strv val")?,
            ic: d.u32("strv ic")?,
        },
        26 => FOp::StRR {
            rs: d.u8("strr rs")?,
            c: d.u32("strr c")?,
            vr: d.u8("strr vr")?,
            ic: d.u32("strr ic")?,
        },
        27 => FOp::BinP {
            rd: d.u8("binp rd")?,
            op: dec_binop(d)?,
            a: d.u32("binp a")?,
            b: d.u32("binp b")?,
        },
        28 => FOp::LdO {
            dst: d.u32("ldo dst")?,
            base: d.u32("ldo base")?,
            off: d.u32("ldo off")?,
            ic: d.u32("ldo ic")?,
        },
        29 => FOp::LdOP {
            rd: d.u8("ldop rd")?,
            base: d.u32("ldop base")?,
            off: d.u32("ldop off")?,
            ic: d.u32("ldop ic")?,
        },
        30 => FOp::LdP { rd: d.u8("ldp rd")?, addr: d.u32("ldp addr")?, ic: d.u32("ldp ic")? },
        31 => FOp::StO {
            base: d.u32("sto base")?,
            off: d.u32("sto off")?,
            val: d.u32("sto val")?,
            ic: d.u32("sto ic")?,
        },
        _ => return Err(WireError { what: "fop tag" }),
    })
}

/// Serialize a compiled flat superblock into `e`.
pub fn encode_flat(f: &FlatBlock, e: &mut Enc) {
    e.u64(f.base);
    e.u32(f.n_temps);
    e.seq(f.ops.len());
    for op in f.ops.iter() {
        enc_op(e, op);
    }
    e.seq(f.consts.len());
    for &c in f.consts.iter() {
        e.u64(c);
    }
    e.seq(f.dirties.len());
    for dcall in f.dirties.iter() {
        enc_dirtycall(e, dcall.call);
        e.seq(dcall.args.len());
        for &a in dcall.args.iter() {
            e.u32(a);
        }
        match dcall.dst {
            Some(dst) => {
                e.bool(true);
                e.u32(dst);
            }
            None => e.bool(false),
        }
        e.u64(dcall.pc);
        e.u32(dcall.instrs);
    }
    e.seq(f.memcbs.len());
    for m in f.memcbs.iter() {
        e.u32(m.addr);
        e.u32(m.size);
        e.bool(m.write);
        e.u64(m.pc);
        e.u32(m.instrs);
    }
    e.seq(f.exits.len());
    for x in f.exits.iter() {
        e.u64(x.target);
        enc_jumpkind(e, x.kind);
        e.u32(x.ord);
        e.u32(x.instrs);
    }
    e.seq(f.traps.len());
    for t in f.traps.iter() {
        e.u64(t.pc);
        e.u32(t.instrs);
    }
    // Inline caches carry no persistent state: only the site count is
    // stored, and decode rebuilds fresh (cold) caches.
    e.seq(f.ics.len());
    e.u32(f.next);
    enc_jumpkind(e, f.jumpkind);
    e.u32(f.instrs_total);
    e.u32(f.fall_ord);
    e.bool(f.zero_temps);
}

/// Deserialize a flat superblock encoded by [`encode_flat`].
pub fn decode_flat(d: &mut Dec) -> WireResult<FlatBlock> {
    let base = d.u64("flat base")?;
    let n_temps = d.u32("flat n_temps")?;
    let n_ops = d.seq(3, "flat ops len")?;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(dec_op(d)?);
    }
    let n_consts = d.seq(8, "flat consts len")?;
    let mut consts = Vec::with_capacity(n_consts);
    for _ in 0..n_consts {
        consts.push(d.u64("flat const")?);
    }
    let n_dirties = d.seq(18, "flat dirties len")?;
    let mut dirties = Vec::with_capacity(n_dirties);
    for _ in 0..n_dirties {
        let call = dec_dirtycall(d)?;
        let n_args = d.seq(4, "dirty args len")?;
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            args.push(d.u32("dirty arg")?);
        }
        let dst = if d.bool("dirty dst flag")? { Some(d.u32("dirty dst")?) } else { None };
        dirties.push(FDirty {
            call,
            args: args.into_boxed_slice(),
            dst,
            pc: d.u64("dirty pc")?,
            instrs: d.u32("dirty instrs")?,
        });
    }
    let n_memcbs = d.seq(21, "flat memcbs len")?;
    let mut memcbs = Vec::with_capacity(n_memcbs);
    for _ in 0..n_memcbs {
        memcbs.push(FMemCb {
            addr: d.u32("memcb addr")?,
            size: d.u32("memcb size")?,
            write: d.bool("memcb write")?,
            pc: d.u64("memcb pc")?,
            instrs: d.u32("memcb instrs")?,
        });
    }
    let n_exits = d.seq(17, "flat exits len")?;
    let mut exits = Vec::with_capacity(n_exits);
    for _ in 0..n_exits {
        exits.push(FExit {
            target: d.u64("exit target")?,
            kind: dec_jumpkind(d)?,
            ord: d.u32("exit ord")?,
            instrs: d.u32("exit instrs")?,
        });
    }
    let n_traps = d.seq(12, "flat traps len")?;
    let mut traps = Vec::with_capacity(n_traps);
    for _ in 0..n_traps {
        traps.push(FTrap { pc: d.u64("trap pc")?, instrs: d.u32("trap instrs")? });
    }
    // IC sites are a bare count (no payload bytes), so the generic
    // sequence guard cannot apply; every IC belongs to at most one op,
    // which bounds the count and keeps a corrupt value from allocating.
    let n_ics = d.u32("flat ics len")? as usize;
    if n_ics > n_ops {
        return Err(WireError { what: "flat ics len" });
    }
    let ics: Vec<PageIc> = (0..n_ics).map(|_| PageIc::new()).collect();
    Ok(FlatBlock {
        base,
        n_temps,
        ops: ops.into_boxed_slice(),
        consts: consts.into_boxed_slice(),
        dirties: dirties.into_boxed_slice(),
        memcbs: memcbs.into_boxed_slice(),
        exits: exits.into_boxed_slice(),
        traps: traps.into_boxed_slice(),
        ics: ics.into_boxed_slice(),
        next: d.u32("flat next")?,
        jumpkind: dec_jumpkind(d)?,
        instrs_total: d.u32("flat instrs_total")?,
        fall_ord: d.u32("flat fall_ord")?,
        zero_temps: d.bool("flat zero_temps")?,
    })
}

/// Convenience: encode a block into a fresh byte vector.
pub fn flat_to_bytes(f: &FlatBlock) -> Vec<u8> {
    let mut e = Enc::new();
    encode_flat(f, &mut e);
    e.into_inner()
}

/// Convenience: decode a block from a byte slice, requiring that every
/// byte is consumed (trailing garbage is an error).
pub fn flat_from_bytes(bytes: &[u8]) -> WireResult<FlatBlock> {
    let mut d = Dec::new(bytes);
    let f = decode_flat(&mut d)?;
    if !d.is_empty() {
        return Err(WireError { what: "trailing bytes after flat block" });
    }
    Ok(f)
}
