//! Guest syscall numbers.
//!
//! The `sys` instruction carries its syscall number in the immediate;
//! arguments are in `a0..a5` and the result lands in the instruction's
//! `rd`. These are the OS services grindcore provides to the guest —
//! the analog of the syscalls Valgrind intercepts and forwards.

/// Terminate the whole program. args: `[exit_code]`.
pub const EXIT: i64 = 0;
/// Write bytes to a stream. args: `[fd, buf, len]` → bytes written.
/// Only fd 1 (stdout) and 2 (stderr) are supported.
pub const WRITE: i64 = 1;
/// Grow the heap break. args: `[delta]` → previous break address.
pub const SBRK: i64 = 2;
/// Spawn a guest thread. args: `[entry, arg]` → new tid.
/// The thread starts at `entry` with `a0 = arg`, a fresh stack and a
/// fresh TLS block; returning from `entry` exits the thread.
pub const THREAD_CREATE: i64 = 3;
/// Exit the calling thread. args: `[]`.
pub const THREAD_EXIT: i64 = 4;
/// Block until thread `tid` exits. args: `[tid]`.
pub const THREAD_JOIN: i64 = 5;
/// Block while `mem64[addr] == expected`. args: `[addr, expected]`.
pub const FUTEX_WAIT: i64 = 6;
/// Wake up to `count` waiters on `addr`. args: `[addr, count]` → woken.
pub const FUTEX_WAKE: i64 = 7;
/// Yield the scheduler slot. args: `[]`.
pub const YIELD: i64 = 8;
/// Emulated clock: instructions executed so far. args: `[]` → count.
pub const CLOCK: i64 = 9;
/// Deterministic PRNG (seeded by `VmConfig::seed`). args: `[]` → u64.
pub const RAND: i64 = 10;
/// The configured worker-thread count (the `OMP_NUM_THREADS` analog).
/// args: `[]` → count.
pub const NTHREADS: i64 = 11;
