//! Sampling self-profiler: where does the executed-FOp budget go?
//!
//! Heavyweight DBI cost analysis needs per-guest-function attribution of
//! the work the engine actually performs (Valgrind's own optimization
//! work was driven by exactly this kind of self-measurement). A full
//! per-block tally would perturb the dispatch loop, so the profiler
//! samples: every [`SAMPLE_STRIDE`]-th executed superblock charges its op
//! count, scaled by the stride, to the block's base address. At the end
//! of the run the addresses are resolved through the module's symbol
//! table into a per-function budget, sorted descending.
//!
//! Off by default ([`crate::VmConfig::self_profile`]); when off the
//! dispatch loop pays one `Option` check per superblock.

use std::collections::HashMap;
use tga::module::Module;

/// Charge one superblock in every `SAMPLE_STRIDE` executions.
pub const SAMPLE_STRIDE: u32 = 64;

/// Accumulates sampled per-block op counts during a run.
#[derive(Debug, Default)]
pub struct SelfProfiler {
    tick: u32,
    /// Block base address → estimated ops executed from that block.
    by_block: HashMap<u64, u64>,
}

impl SelfProfiler {
    /// Fresh profiler with an empty tally.
    pub fn new() -> SelfProfiler {
        SelfProfiler::default()
    }

    /// Note one execution of the superblock at `base` containing `ops`
    /// operations. Cheap: one counter increment, and a hash insert on
    /// every 64th call.
    #[inline]
    pub fn note(&mut self, base: u64, ops: u64) {
        self.tick += 1;
        if self.tick >= SAMPLE_STRIDE {
            self.tick = 0;
            *self.by_block.entry(base).or_insert(0) += ops * SAMPLE_STRIDE as u64;
        }
    }

    /// Resolve the sampled block tallies to guest function names via the
    /// module symbol table, merging blocks of the same function. Returns
    /// `(function, estimated ops)` sorted by descending budget, ties
    /// broken by name for determinism.
    pub fn resolve(&self, module: &Module) -> Vec<(String, u64)> {
        let mut by_fn: HashMap<String, u64> = HashMap::new();
        for (&base, &ops) in &self.by_block {
            let name = module
                .find_func(base)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| format!("{base:#x}"));
            *by_fn.entry(name).or_insert(0) += ops;
        }
        let mut v: Vec<(String, u64)> = by_fn.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_stride_executions() {
        let mut p = SelfProfiler::new();
        for _ in 0..SAMPLE_STRIDE * 3 {
            p.note(0x100, 10);
        }
        assert_eq!(p.by_block.get(&0x100), Some(&(10 * 64 * 3)));
        // One short of the next sample point: nothing charged yet.
        for _ in 0..SAMPLE_STRIDE - 1 {
            p.note(0x200, 5);
        }
        assert!(!p.by_block.contains_key(&0x200));
    }
}
