//! The virtual machine: guest threads, big-lock scheduling, the IR
//! interpreter (heavyweight DBI mode) and a direct instruction
//! interpreter ("native" mode used as the no-tool / compile-time-
//! instrumentation baseline).
//!
//! Like Valgrind, grindcore serializes guest threads: exactly one guest
//! thread executes at any moment and thread switches happen only at
//! superblock boundaries, after a quantum expires or when a thread
//! blocks. This is the property that makes heavyweight DBI of parallel
//! programs subtle (paper §IV-A): scheduling under the tool differs from
//! native scheduling, and the runtime's own scheduling state is guest
//! memory like any other.

use crate::compilepool::CompilePool;
use crate::flat::{FDirty, FMemCb, FOp, FlatBlock, TMP_BIT};
use crate::lift::lift_superblock;
use crate::mem::GuestMemory;
use crate::syscalls;
use crate::tcache::{CacheRef, TransCache};
use crate::tool::{pattern_matches, BlockMeta, Tool};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use tga::module::{Module, SymKind};
use tga::{reg, Op, INST_SIZE};
use vex_ir::{eval_binop, eval_unop, Atom, DirtyCall, IrBlock, JumpKind, Rhs, Stmt, Ty};

/// Guest thread identifier (index into [`VmCore::threads`]).
pub type Tid = usize;

/// Returning to this address exits the thread (set as the initial `ra`).
pub const EXIT_SENTINEL: u64 = 0xFFFF_FFFF_0000_0000;
/// Top of the first thread's stack; later stacks are placed below.
pub const STACK_TOP: u64 = 0x7f00_0000_0000;
/// Unmapped guard gap between thread stacks.
pub const STACK_GUARD: u64 = 0x10_0000;
/// Where program arguments (argv) are materialized.
pub const ARGV_BASE: u64 = 0x6000_0000_0000;

/// Thread scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Deterministic round-robin (the default; tests rely on it).
    RoundRobin,
    /// Seeded random choice of the next runnable thread, for exploring
    /// schedules.
    Random,
}

/// Execution mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Direct instruction interpretation — the "no tools" baseline.
    /// Client requests and function replacements still fire, so
    /// compile-time-instrumented tools (the Archer analog) run here.
    Fast,
    /// Full heavyweight DBI: lift → instrument → emulate.
    Dbi,
}

/// VM configuration.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Value of the `NTHREADS` syscall (the `OMP_NUM_THREADS` analog).
    pub nthreads: u64,
    /// Seed for the guest-visible PRNG and the random scheduler.
    pub seed: u64,
    /// Scheduling quantum, in superblocks (DBI) — scaled ×16 for Fast.
    pub quantum: u64,
    /// Abort with an error after this many guest instructions.
    pub max_instrs: u64,
    /// Per-thread stack size in bytes.
    pub stack_size: u64,
    pub sched: SchedPolicy,
    /// Run the `iropt`-style optimization pass on lifted blocks before
    /// instrumentation (Valgrind's pipeline order).
    pub optimize_ir: bool,
    /// Chain translated superblocks so steady-state dispatch skips the
    /// translation-cache hash probe (Valgrind's block chaining). The
    /// `--no-chaining` escape hatch clears this; results must be
    /// bit-identical either way.
    pub chaining: bool,
    /// Capacity of the bounded translation cache, in superblocks.
    /// Evictions use an LRU-clock sweep and unchain the victim.
    pub cache_blocks: usize,
    /// Background compile workers (chained engine only). 0 = compile
    /// synchronously on the dispatch thread, the classic Valgrind
    /// pipeline. With N > 0, translation-cache misses enqueue the
    /// instrumented IR on a bounded queue and dispatch immediately runs
    /// the block through the tree-walk reference engine until the
    /// worker promotes it to the compiled flat form — guest progress
    /// never blocks on host compilation. Results are bit-identical
    /// either way (the differential suite proves it): compilation is a
    /// pure function of guest code, and the two engines are themselves
    /// proven equivalent.
    pub compile_threads: usize,
    /// Translation-cache shards. 0 = auto: 1 shard when compiling
    /// synchronously (exactly the historical single-lock behavior), 8
    /// when a compile pool is active so workers install blocks while
    /// dispatch probes without contention.
    pub cache_shards: usize,
    /// Sample executed-op budget per guest function (the tg-obs
    /// self-profiler); results land in [`Metrics::profile`]. One
    /// `Option` check per superblock when off.
    pub self_profile: bool,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            nthreads: 1,
            seed: 42,
            quantum: 64,
            max_instrs: 2_000_000_000,
            stack_size: 1 << 20,
            sched: SchedPolicy::RoundRobin,
            optimize_ir: true,
            chaining: true,
            cache_blocks: 4096,
            compile_threads: 0,
            cache_shards: 0,
            self_profile: false,
        }
    }
}

/// Why a thread is not currently runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadStatus {
    Runnable,
    /// Parked on a futex word.
    FutexWait(u64),
    /// Waiting for another thread to exit.
    Joining(Tid),
    Exited,
}

/// One guest thread.
#[derive(Clone, Debug)]
pub struct ThreadState {
    pub tid: Tid,
    pub regs: [u64; tga::NUM_REGS],
    pub pc: u64,
    pub status: ThreadStatus,
    /// Base address of this thread's TLS block.
    pub tls_base: u64,
    /// Size of the TLS block.
    pub tls_size: u64,
    /// Generation counter of the TLS block (bumped if it were ever
    /// reallocated; recorded by Taskgrind's DTV suppression, §IV-C).
    pub tls_gen: u64,
    pub stack_low: u64,
    pub stack_high: u64,
    /// Shadow call stack of return addresses (innermost last).
    pub shadow_stack: Vec<u64>,
}

impl ThreadState {
    pub fn reg(&self, r: u8) -> u64 {
        self.regs[r as usize]
    }
}

/// Classification of a guest address, as used by Taskgrind's
/// false-positive suppression layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddrClass {
    Code,
    /// Static data or BSS.
    Data,
    /// The sbrk-managed heap.
    Heap,
    /// Within the stack reservation of the given thread.
    Stack(Tid),
    /// Within the TLS block of the given thread.
    Tls(Tid),
    Other,
}

/// Dispatch-loop telemetry (DBI mode): how blocks reached execution and
/// what the bounded translation cache did to keep them there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Dispatches served by a chain link or IBTC entry (no hash probe).
    pub chain_hits: u64,
    /// Direct exit→successor links patched into cached blocks.
    pub chain_links: u64,
    /// Indirect transfers served by the indirect-branch target cache.
    pub ibtc_hits: u64,
    /// IBTC entries written.
    pub ibtc_fills: u64,
    /// Translation-cache hash probes (the slow dispatch path).
    pub probes: u64,
    /// Blocks evicted by the LRU-clock sweep (capacity pressure).
    pub evictions: u64,
    /// Chain links severed by eviction or invalidation.
    pub unchains: u64,
    /// Blocks invalidated by `DISCARD_TRANSLATIONS` or self-modifying
    /// code, as opposed to capacity evictions.
    pub discarded_blocks: u64,
    /// `DISCARD_TRANSLATIONS` client requests handled by the core.
    pub discard_requests: u64,
}

/// Background compile-pool telemetry (all zero when compiling
/// synchronously, i.e. [`VmConfig::compile_threads`] = 0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Worker threads the pool ran with (0 = synchronous engine).
    pub workers: u64,
    /// Superblocks handed to the background queue.
    pub queued: u64,
    /// Compiles run inline on the dispatch thread because the queue
    /// was full (backpressure never blocks the guest).
    pub inline_compiles: u64,
    /// Blocks executed through the tree-walk fallback while their
    /// compile was still in flight — the measure of how much guest
    /// progress overlapped host compilation.
    pub fallback_executions: u64,
    /// High-water mark of the compile queue.
    pub queue_depth_peak: u64,
    /// Worker compiles promoted into the translation cache.
    pub installed: u64,
    /// Worker compiles dropped because the block was evicted or
    /// discarded (SMC) before the result landed.
    pub stale: u64,
}

impl CompileStats {
    /// Publish every compile-pool counter into `reg` under `compile.*`.
    pub fn publish(&self, reg: &mut tg_obs::Registry) {
        reg.set_u64("compile.workers", self.workers);
        reg.set_u64("compile.queued", self.queued);
        reg.set_u64("compile.inline", self.inline_compiles);
        reg.set_u64("compile.fallback_executions", self.fallback_executions);
        reg.set_u64("compile.queue_depth", self.queue_depth_peak);
        reg.set_u64("compile.installed", self.installed);
        reg.set_u64("compile.stale", self.stale);
    }
}

/// Execution counters, reported in every [`RunResult`].
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Guest instructions executed.
    pub instrs: u64,
    /// Superblocks executed (DBI mode).
    pub blocks: u64,
    /// Superblocks translated (cache misses).
    pub translations: u64,
    /// Approximate bytes held by the translation cache (instrumented IR).
    pub translation_bytes: u64,
    /// Scheduler slices granted.
    pub switches: u64,
    pub syscalls: u64,
    pub client_requests: u64,
    pub replaced_calls: u64,
    pub threads_created: u64,
    /// Resident guest memory at end of run (monotonic, so also the peak).
    pub guest_footprint: u64,
    /// Host bytes the tool reported for its own structures.
    pub tool_bytes: u64,
    /// Dispatch-loop telemetry (chaining, probes, evictions).
    pub dispatch: VmStats,
    /// Background compile-pool telemetry (zeros when synchronous).
    pub compile: CompileStats,
    /// FNV-1a digest folded over every scheduler slice grant — two runs
    /// scheduled identically have equal digests. Used by the chaining
    /// determinism tests.
    pub sched_digest: u64,
    /// Self-profiler output: `(guest function, estimated executed ops)`
    /// sorted descending. Empty unless [`VmConfig::self_profile`] is set.
    pub profile: Vec<(String, u64)>,
    /// Persistent code-cache counters, all zero (and `enabled` false)
    /// unless a cache was attached via [`Vm::set_code_cache`].
    pub cache: crate::codecache::CodeCacheStats,
}

impl VmStats {
    /// Publish every dispatch-loop counter into `reg` under `dispatch.*`.
    pub fn publish(&self, reg: &mut tg_obs::Registry) {
        reg.set_u64("dispatch.chain_hits", self.chain_hits);
        reg.set_u64("dispatch.chain_links", self.chain_links);
        reg.set_u64("dispatch.ibtc_hits", self.ibtc_hits);
        reg.set_u64("dispatch.ibtc_fills", self.ibtc_fills);
        reg.set_u64("dispatch.probes", self.probes);
        reg.set_u64("dispatch.evictions", self.evictions);
        reg.set_u64("dispatch.unchains", self.unchains);
        reg.set_u64("dispatch.discarded_blocks", self.discarded_blocks);
        reg.set_u64("dispatch.discard_requests", self.discard_requests);
    }
}

impl Metrics {
    /// Publish every execution counter into `reg`: `vm.*` for the core
    /// counters, `dispatch.*` for the dispatch loop, and
    /// `profile.<function>` for the self-profiler budget (when enabled).
    pub fn publish(&self, reg: &mut tg_obs::Registry) {
        reg.set_u64("vm.instrs", self.instrs);
        reg.set_u64("vm.blocks", self.blocks);
        reg.set_u64("vm.translations", self.translations);
        reg.set_u64("vm.translation_bytes", self.translation_bytes);
        reg.set_u64("vm.switches", self.switches);
        reg.set_u64("vm.syscalls", self.syscalls);
        reg.set_u64("vm.client_requests", self.client_requests);
        reg.set_u64("vm.replaced_calls", self.replaced_calls);
        reg.set_u64("vm.threads_created", self.threads_created);
        reg.set_u64("vm.guest_footprint", self.guest_footprint);
        reg.set_u64("vm.tool_bytes", self.tool_bytes);
        reg.set_u64("vm.sched_digest", self.sched_digest);
        self.dispatch.publish(reg);
        self.compile.publish(reg);
        reg.set_bool("cache.enabled", self.cache.enabled);
        reg.set_u64("cache.hits", self.cache.hits);
        reg.set_u64("cache.misses", self.cache.misses);
        reg.set_u64("cache.bytes", self.cache.bytes_loaded + self.cache.bytes_stored);
        reg.set_u64("cache.bytes_loaded", self.cache.bytes_loaded);
        reg.set_u64("cache.bytes_stored", self.cache.bytes_stored);
        reg.set_f64("cache.load_ms", self.cache.load_nanos as f64 / 1e6);
        reg.set_f64("cache.store_ms", self.cache.store_nanos as f64 / 1e6);
        reg.set_u64("cache.invalidations", self.cache.invalidations);
        for (name, ops) in &self.profile {
            reg.set_u64(&format!("profile.{name}"), *ops);
        }
    }
}

/// Fold one value into the scheduler digest (FNV-1a over LE bytes).
fn fold_digest(digest: u64, v: u64) -> u64 {
    let mut d = if digest == 0 { 0xcbf2_9ce4_8422_2325 } else { digest };
    for b in v.to_le_bytes() {
        d = (d ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    d
}

/// A guest fault (bad opcode, division by zero, budget exhausted, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmError {
    pub tid: Tid,
    pub pc: u64,
    pub msg: String,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "guest fault on thread {} at {:#x}: {}", self.tid, self.pc, self.msg)
    }
}

impl std::error::Error for VmError {}

/// Outcome of a program run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Exit code if the program called `exit`; `None` when every thread
    /// simply finished (treated as exit 0), or on deadlock/error.
    pub exit_code: Option<i64>,
    pub stdout: Vec<u8>,
    /// All remaining threads were blocked — the scheduler gave up.
    pub deadlock: bool,
    pub error: Option<VmError>,
    pub metrics: Metrics,
}

impl RunResult {
    /// Stdout as UTF-8 (lossy).
    pub fn stdout_str(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// True when the program ran to completion without fault or deadlock.
    pub fn ok(&self) -> bool {
        self.error.is_none() && !self.deadlock
    }
}

/// The machine state visible to tools during callbacks.
pub struct VmCore {
    pub mem: GuestMemory,
    pub module: Arc<Module>,
    pub threads: Vec<ThreadState>,
    /// Current heap break.
    pub brk: u64,
    pub stdout: Vec<u8>,
    pub metrics: Metrics,
    pub config: VmConfig,
    rng: StdRng,
    futex: HashMap<u64, VecDeque<Tid>>,
    exit_code: Option<i64>,
    heap_start: u64,
}

impl VmCore {
    fn new(module: Module, config: VmConfig) -> VmCore {
        let module = Arc::new(module);
        let mut mem = GuestMemory::new();
        // Load the image: code is fetched from the module directly, but
        // we also mirror it into memory so data reads of code addresses
        // behave; data and TLS templates are copied.
        for (i, inst) in module.code.iter().enumerate() {
            mem.write(module.code_base + i as u64 * INST_SIZE, &inst.encode());
        }
        mem.write(module.data_base, &module.data);
        let heap_start = module.heap_start();
        let mut core = VmCore {
            mem,
            module,
            threads: Vec::new(),
            brk: heap_start,
            stdout: Vec::new(),
            metrics: Metrics::default(),
            config: VmConfig { seed: config.seed, ..config.clone() },
            rng: StdRng::seed_from_u64(config.seed),
            futex: HashMap::new(),
            exit_code: None,
            heap_start,
        };
        let entry = core.module.entry;
        core.spawn_thread(entry, 0);
        core
    }

    /// Create a guest thread starting at `entry` with `a0 = arg`.
    pub fn spawn_thread(&mut self, entry: u64, arg: u64) -> Tid {
        let tid = self.threads.len();
        let stack_high = STACK_TOP - tid as u64 * (self.config.stack_size + STACK_GUARD);
        let stack_low = stack_high - self.config.stack_size;
        let tls_size = self.module.tls_size().max(8);
        let tls_base = self.alloc_raw(tls_size);
        let template = self.module.tls_template.clone();
        self.mem.write(tls_base, &template);
        let mut regs = [0u64; tga::NUM_REGS];
        regs[reg::SP as usize] = stack_high;
        regs[reg::FP as usize] = stack_high;
        regs[reg::RA as usize] = EXIT_SENTINEL;
        regs[reg::TP as usize] = tls_base;
        regs[reg::A0 as usize] = arg;
        self.threads.push(ThreadState {
            tid,
            regs,
            pc: entry,
            status: ThreadStatus::Runnable,
            tls_base,
            tls_size,
            tls_gen: 0,
            stack_low,
            stack_high,
            shadow_stack: Vec::new(),
        });
        self.metrics.threads_created += 1;
        tid
    }

    /// Bump-allocate raw guest memory outside the guest allocator
    /// (used for TLS blocks and by tools replacing `malloc`).
    pub fn alloc_raw(&mut self, size: u64) -> u64 {
        let addr = (self.brk + 15) & !15;
        self.brk = addr + size;
        addr
    }

    /// Grow the heap break by `delta`, returning the old break.
    pub fn sbrk(&mut self, delta: u64) -> u64 {
        let old = self.brk;
        self.brk = self.brk.wrapping_add(delta);
        old
    }

    /// Write program arguments and point `a0`/`a1` of the main thread at
    /// them (C convention: `main(argc, argv)`).
    pub fn setup_args(&mut self, prog_name: &str, args: &[&str]) {
        let all: Vec<&str> = std::iter::once(prog_name).chain(args.iter().copied()).collect();
        let ptrs_at = ARGV_BASE;
        let mut str_at = ARGV_BASE + (all.len() as u64 + 1) * 8;
        for (i, a) in all.iter().enumerate() {
            self.mem.write_u64(ptrs_at + i as u64 * 8, str_at);
            self.mem.write(str_at, a.as_bytes());
            self.mem.write_u8(str_at + a.len() as u64, 0);
            str_at += a.len() as u64 + 1;
        }
        self.mem.write_u64(ptrs_at + all.len() as u64 * 8, 0);
        self.threads[0].regs[reg::A0 as usize] = all.len() as u64;
        self.threads[0].regs[reg::A1 as usize] = ptrs_at;
    }

    /// Classify an address for suppression logic.
    pub fn classify_addr(&self, addr: u64) -> AddrClass {
        if addr >= self.module.code_base && addr < self.module.code_end() {
            return AddrClass::Code;
        }
        if addr >= self.module.data_base && addr < self.module.data_end() {
            return AddrClass::Data;
        }
        for t in &self.threads {
            if addr >= t.stack_low && addr < t.stack_high {
                return AddrClass::Stack(t.tid);
            }
            if addr >= t.tls_base && addr < t.tls_base + t.tls_size {
                return AddrClass::Tls(t.tid);
            }
        }
        if addr >= self.heap_start && addr < self.brk {
            return AddrClass::Heap;
        }
        AddrClass::Other
    }

    /// The shadow call stack of a thread, innermost frame first,
    /// with the thread's current pc prepended.
    pub fn stack_trace(&self, tid: Tid) -> Vec<u64> {
        let t = &self.threads[tid];
        let mut v = Vec::with_capacity(t.shadow_stack.len() + 1);
        v.push(t.pc);
        v.extend(t.shadow_stack.iter().rev());
        v
    }

    /// "func (file:line)" for an address, best effort.
    pub fn symbolize(&self, addr: u64) -> String {
        let func = self
            .module
            .find_func(addr)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| "???".to_string());
        match self.module.line_for(addr) {
            Some(loc) => format!("{func} ({loc})"),
            None => format!("{func} ({addr:#x})"),
        }
    }

    /// Deterministic guest-visible randomness.
    pub fn guest_rand(&mut self) -> u64 {
        self.rng.random()
    }

    fn wake_joiners(&mut self, exited: Tid) {
        for t in &mut self.threads {
            if t.status == ThreadStatus::Joining(exited) {
                t.status = ThreadStatus::Runnable;
            }
        }
    }
}

/// Where the previous superblock handed control, so the dispatcher can
/// chain the edge once the successor translation is known.
#[derive(Clone, Copy, Debug)]
enum Pending {
    /// No chainable edge (thread start, redirect, halt, discard).
    None,
    /// A direct transfer: exit ordinal `exit` of cached block `from`
    /// (side exits in statement order, fallthrough last).
    Link { from: CacheRef, exit: u32 },
    /// An indirect transfer (`Ret`/computed jump) from the block based
    /// at `site`; chained through the IBTC keyed on (site, target).
    Ibtc { site: u64 },
}

/// A unit of work for the background compile pool: the instrumented IR
/// of one superblock, already inserted into the translation cache as an
/// IR-only entry (insert-before-send: the worker's promotion must find
/// it). `epoch` stamps the discard counter at enqueue time so stale
/// results never reach the persistent code cache.
struct CompileJob {
    ir: Arc<IrBlock>,
    end: u64,
    bytes: u64,
    epoch: u64,
}

/// A finished background compile, drained by the dispatch thread.
struct CompileDone {
    base: u64,
    end: u64,
    bytes: u64,
    flat: Arc<FlatBlock>,
    /// Whether the worker promoted the block into the translation
    /// cache (false when eviction or a discard beat it there).
    installed: bool,
    epoch: u64,
}

/// The full VM: core state + the active tool + the translation cache.
pub struct Vm {
    pub core: VmCore,
    pub tool: Box<dyn Tool>,
    /// Shared with the compile workers, which promote IR-only entries
    /// to their compiled form concurrently with dispatch probes.
    tcache: Arc<TransCache>,
    redirects: HashMap<u64, u32>,
    tmp_buf: Vec<u64>,
    yield_requested: bool,
    /// Guest code range, for the self-modifying-code store check.
    code_lo: u64,
    code_hi: u64,
    /// Sampling self-profiler ([`VmConfig::self_profile`]).
    profiler: Option<crate::profile::SelfProfiler>,
    /// Persistent compiled-code cache, consulted on translation-cache
    /// misses (chained engine only). See [`crate::codecache`].
    code_cache: Option<crate::codecache::CodeCacheHandle>,
    /// Background compile pool ([`VmConfig::compile_threads`] > 0 and
    /// chaining on); taken and drained at the end of the run.
    compile_pool: Option<CompilePool<CompileJob, CompileDone>>,
    /// Monotonic discard counter plus the ranges discarded under an
    /// active pool: a worker result whose enqueue epoch predates an
    /// overlapping discard must not be persisted to the code cache
    /// (it would resurrect dead code on the next warm run).
    discard_epoch: u64,
    discard_log: Vec<(u64, u64, u64)>,
}

impl Vm {
    /// Build a VM for `module` driven by `tool`.
    pub fn new(module: Module, tool: Box<dyn Tool>, config: VmConfig) -> Vm {
        let mut redirects = HashMap::new();
        for r in tool.replacements() {
            for sym in module.symbols.iter().filter(|s| s.kind == SymKind::Func) {
                if pattern_matches(&r.pattern, &sym.name) {
                    redirects.insert(sym.addr, r.id);
                }
            }
        }
        let code_lo = module.code_base;
        let code_hi = module.code_end();
        let profiler = config.self_profile.then(crate::profile::SelfProfiler::new);
        // The pool only helps the chained engine (the reference engine
        // never compiles flat blocks); 0 workers = synchronous.
        let n_workers = if config.chaining { config.compile_threads } else { 0 };
        let n_shards = match config.cache_shards {
            0 if n_workers > 0 => 8,
            0 => 1,
            n => n,
        };
        let tcache = Arc::new(TransCache::with_shards(config.cache_blocks, n_shards));
        let compile_pool = (n_workers > 0).then(|| {
            let tc = tcache.clone();
            CompilePool::new(n_workers, n_workers * 8, "compile", move |_i| {
                let tc = tc.clone();
                move |job: CompileJob| {
                    let base = job.ir.base;
                    let _s = if tg_obs::trace::enabled() {
                        tg_obs::trace::host_span_args("compile", vec![("pc", base)])
                    } else {
                        tg_obs::trace::SpanGuard::inactive()
                    };
                    let flat = Arc::new(crate::flat::compile(&job.ir));
                    let installed = tc.install_compiled(&job.ir, flat.clone());
                    CompileDone {
                        base,
                        end: job.end,
                        bytes: job.bytes,
                        flat,
                        installed,
                        epoch: job.epoch,
                    }
                }
            })
        });
        let mut vm = Vm {
            core: VmCore::new(module, config),
            tool,
            tcache,
            redirects,
            tmp_buf: Vec::new(),
            yield_requested: false,
            code_lo,
            code_hi,
            profiler,
            code_cache: None,
            compile_pool,
            discard_epoch: 0,
            discard_log: Vec::new(),
        };
        vm.core.metrics.compile.workers = n_workers as u64;
        vm
    }

    /// Attach a persistent compiled-code cache. Only the chained engine
    /// consults it (the reference engine and fast mode never install
    /// foreign flat blocks); attach before [`Vm::run`].
    pub fn set_code_cache(&mut self, cache: crate::codecache::CodeCacheHandle) {
        self.code_cache = Some(cache);
    }

    /// Number of translations currently resident in the bounded cache.
    pub fn cached_blocks(&self) -> usize {
        self.tcache.len()
    }

    /// Run the program to completion.
    pub fn run(&mut self, mode: ExecMode, args: &[&str]) -> RunResult {
        self.core.setup_args("guest", args);
        let mut deadlock = false;
        let mut error: Option<VmError> = None;
        let mut current: Tid = 0;

        loop {
            let Some(tid) = self.pick_next(current) else {
                // No runnable thread: either everything exited, or the
                // remaining threads are blocked → deadlock.
                deadlock = self.core.threads.iter().any(|t| t.status != ThreadStatus::Exited);
                break;
            };
            current = tid;
            self.core.metrics.switches += 1;
            self.core.metrics.sched_digest =
                fold_digest(self.core.metrics.sched_digest, tid as u64);
            let slice = match mode {
                ExecMode::Dbi => self.core.config.quantum,
                ExecMode::Fast => self.core.config.quantum * 16,
            };
            let _slice_span = if tg_obs::trace::enabled() {
                tg_obs::trace::host_span_args("slice", vec![("tid", tid as u64)])
            } else {
                tg_obs::trace::SpanGuard::inactive()
            };
            let step = match mode {
                ExecMode::Dbi => self.run_slice_dbi(tid, slice),
                ExecMode::Fast => self.run_slice_fast(tid, slice),
            };
            if let Err(e) = step {
                error = Some(e);
                break;
            }
            if self.core.exit_code.is_some() {
                break;
            }
        }

        // Retire the compile pool before snapshotting the code-cache
        // stats: in-flight results may still be persisted below.
        if let Some(pool) = self.compile_pool.take() {
            self.core.metrics.compile.queue_depth_peak = pool.queue_depth_peak();
            for d in pool.shutdown() {
                self.finish_compile(d);
            }
        }
        self.core.metrics.guest_footprint = self.core.mem.footprint();
        if let Some(c) = &self.code_cache {
            self.core.metrics.cache = c.stats();
        }
        if let Some(p) = &self.profiler {
            self.core.metrics.profile = p.resolve(&self.core.module);
        }
        self.tool.program_end(&mut self.core);
        self.core.metrics.tool_bytes = self.tool.tool_bytes();
        RunResult {
            exit_code: self.core.exit_code,
            stdout: std::mem::take(&mut self.core.stdout),
            deadlock,
            error,
            metrics: self.core.metrics.clone(),
        }
    }

    fn budget_error(&self, tid: Tid) -> VmError {
        VmError {
            tid,
            pc: self.core.threads[tid].pc,
            msg: format!("instruction budget exhausted ({})", self.core.config.max_instrs),
        }
    }

    /// One scheduler slice in DBI mode, routed to the engine the config
    /// selects. Both engines make the same per-iteration scheduling
    /// checks in the same order and produce bit-identical guest state,
    /// metrics and tool-callback streams; the differential test layer
    /// enforces this.
    fn run_slice_dbi(&mut self, tid: Tid, slice: u64) -> Result<(), VmError> {
        if self.core.config.chaining {
            self.run_slice_dbi_chained(tid, slice)
        } else {
            self.run_slice_dbi_ref(tid, slice)
        }
    }

    /// The production dispatch loop: superblock chaining over flat
    /// compiled blocks.
    ///
    /// The fast path is a *chain hit*: the previous block's taken exit
    /// (or the IBTC, for indirect transfers) already names the successor
    /// translation, so dispatch validates a generation-checked handle
    /// and runs — no redirect probe, no cache probe. Chain hits may skip
    /// the redirect check because redirected entry points are never
    /// translated (the redirect probe precedes translation on the slow
    /// path), so no cached block — hence no link target — is one.
    fn run_slice_dbi_chained(&mut self, tid: Tid, slice: u64) -> Result<(), VmError> {
        // Chain state is slice-local: a transfer interrupted by a thread
        // switch re-enters through the slow path, exactly like Valgrind
        // re-entering the dispatcher.
        let mut pending = Pending::None;
        for _ in 0..slice {
            if self.core.threads[tid].status != ThreadStatus::Runnable {
                break;
            }
            if self.core.exit_code.is_some() {
                break;
            }
            if self.core.metrics.instrs > self.core.config.max_instrs {
                return Err(self.budget_error(tid));
            }
            let pc = self.core.threads[tid].pc;
            if pc == EXIT_SENTINEL {
                self.thread_exit(tid);
                break;
            }

            // Chain-hit fast path. Only promoted (compiled) blocks can
            // be served here: `follow` and the IBTC hand out the flat
            // form or miss, so a link never *serves* a block whose
            // background compile is still in flight.
            let dispatched: Option<(CacheRef, Arc<FlatBlock>)> = match pending {
                Pending::Link { from, exit } => self.tcache.follow(from, exit, pc),
                Pending::Ibtc { site } => {
                    let hit = self
                        .tcache
                        .ibtc_lookup(site, pc)
                        .and_then(|p| Some((p, self.tcache.take_flat_for(p, pc)?)));
                    if hit.is_some() {
                        self.core.metrics.dispatch.ibtc_hits += 1;
                    }
                    hit
                }
                Pending::None => None,
            };

            match dispatched {
                Some((cur, block)) => {
                    self.core.metrics.dispatch.chain_hits += 1;
                    pending = self.exec_flat(tid, cur, &block)?;
                }
                None => {
                    // Slow path: redirect probe, then cache probe /
                    // translation, then patch the edge that got us here.
                    if let Some(&id) = self.redirects.get(&pc) {
                        self.handle_redirect(tid, id);
                        pending = Pending::None;
                        continue;
                    }
                    let cur = self.lookup_or_translate(pc)?;
                    match pending {
                        Pending::Link { from, exit } => {
                            if self.tcache.link(from, exit, cur) {
                                self.core.metrics.dispatch.chain_links += 1;
                            }
                        }
                        Pending::Ibtc { site } => {
                            self.tcache.ibtc_insert(site, pc, cur);
                            self.core.metrics.dispatch.ibtc_fills += 1;
                        }
                        Pending::None => {}
                    }
                    match self.tcache.take_flat_for(cur, pc) {
                        Some(block) => pending = self.exec_flat(tid, cur, &block)?,
                        None => {
                            // Compile still in flight: tree-walk the
                            // instrumented IR instead of waiting. The
                            // reference engine is bit-identical to the
                            // flat engine, so which one runs the block
                            // is unobservable to tool and guest.
                            self.core.metrics.compile.fallback_executions += 1;
                            let ir = self.tcache.ir_of(cur);
                            self.exec_block(tid, &ir)?;
                            pending = Pending::None;
                        }
                    }
                }
            }
            if self.yield_requested {
                self.yield_requested = false;
                break;
            }
        }
        Ok(())
    }

    /// The reference dispatch loop (`--no-chaining`): redirect probe and
    /// translation-cache hash probe on every block, tree-walk execution
    /// of the instrumented IR. This is the engine the differential tests
    /// trust; the chained engine must match it bit for bit.
    fn run_slice_dbi_ref(&mut self, tid: Tid, slice: u64) -> Result<(), VmError> {
        for _ in 0..slice {
            if self.core.threads[tid].status != ThreadStatus::Runnable {
                break;
            }
            if self.core.exit_code.is_some() {
                break;
            }
            if self.core.metrics.instrs > self.core.config.max_instrs {
                return Err(self.budget_error(tid));
            }
            let pc = self.core.threads[tid].pc;
            if pc == EXIT_SENTINEL {
                self.thread_exit(tid);
                break;
            }
            if let Some(&id) = self.redirects.get(&pc) {
                self.handle_redirect(tid, id);
                continue;
            }
            let cur = self.lookup_or_translate(pc)?;
            let block = self.tcache.ir_of(cur);
            self.exec_block(tid, &block)?;
            if self.yield_requested {
                self.yield_requested = false;
                break;
            }
        }
        Ok(())
    }

    /// One scheduler slice in Fast (direct interpretation) mode.
    fn run_slice_fast(&mut self, tid: Tid, slice: u64) -> Result<(), VmError> {
        for _ in 0..slice {
            if self.core.threads[tid].status != ThreadStatus::Runnable {
                break;
            }
            if self.core.exit_code.is_some() {
                break;
            }
            if self.core.metrics.instrs > self.core.config.max_instrs {
                return Err(self.budget_error(tid));
            }
            let pc = self.core.threads[tid].pc;
            if pc == EXIT_SENTINEL {
                self.thread_exit(tid);
                break;
            }
            if let Some(&id) = self.redirects.get(&pc) {
                self.handle_redirect(tid, id);
                continue;
            }
            self.exec_inst(tid)?;
            if self.yield_requested {
                self.yield_requested = false;
                break;
            }
        }
        Ok(())
    }

    fn pick_next(&mut self, current: Tid) -> Option<Tid> {
        let n = self.core.threads.len();
        let runnable: Vec<Tid> =
            (0..n).filter(|&t| self.core.threads[t].status == ThreadStatus::Runnable).collect();
        if runnable.is_empty() {
            return None;
        }
        match self.core.config.sched {
            SchedPolicy::RoundRobin => {
                // First runnable strictly after `current`, wrapping.
                (1..=n)
                    .map(|d| (current + d) % n)
                    .find(|&t| self.core.threads[t].status == ThreadStatus::Runnable)
            }
            SchedPolicy::Random => {
                let i = self.core.rng.random_range(0..runnable.len());
                Some(runnable[i])
            }
        }
    }

    fn thread_exit(&mut self, tid: Tid) {
        self.core.threads[tid].status = ThreadStatus::Exited;
        self.core.wake_joiners(tid);
        self.tool.thread_exited(&mut self.core, tid);
    }

    fn handle_redirect(&mut self, tid: Tid, id: u32) {
        self.core.metrics.replaced_calls += 1;
        let t = &self.core.threads[tid];
        let ra = t.reg(reg::RA);
        let mut args = [0u64; 8];
        for (i, a) in args.iter_mut().enumerate() {
            *a = t.regs[reg::A0 as usize + i];
        }
        let ret = self.tool.replaced_call(&mut self.core, tid, id, args);
        let t = &mut self.core.threads[tid];
        t.regs[reg::A0 as usize] = ret;
        t.pc = ra;
        t.shadow_stack.pop();
    }

    /// Slow dispatch path: probe the translation cache, translating on
    /// a miss (and possibly evicting to stay within capacity). Under the
    /// chained engine the flat compiled form is produced here too, once
    /// per translation.
    fn lookup_or_translate(&mut self, pc: u64) -> Result<CacheRef, VmError> {
        self.core.metrics.dispatch.probes += 1;
        if self.compile_pool.is_some() {
            self.drain_completions();
        }
        if let Some(r) = self.tcache.lookup(pc) {
            return Ok(r);
        }
        // Persistent code cache: a hit installs the previously compiled
        // flat block directly (no lift/instrument/compile). Chain links
        // are never persisted — they re-resolve through the normal
        // runtime chaining protocol. Chained engine only: the reference
        // engine executes IR, which the cache does not store.
        if self.core.config.chaining {
            if let Some(cache) = &self.code_cache {
                if let Some(ct) = cache.borrow_mut().load(pc) {
                    self.core.metrics.translation_bytes += ct.bytes;
                    let (r, ev) = self.tcache.insert_flat(Arc::new(ct.flat), ct.end, ct.bytes);
                    self.core.metrics.dispatch.evictions += ev.evicted;
                    self.core.metrics.dispatch.unchains += ev.unchained;
                    self.core.metrics.translation_bytes =
                        self.core.metrics.translation_bytes.saturating_sub(ev.bytes);
                    return Ok(r);
                }
            }
        }
        let _translate_span = if tg_obs::trace::enabled() {
            tg_obs::trace::host_span_args("translate", vec![("pc", pc)])
        } else {
            tg_obs::trace::SpanGuard::inactive()
        };
        let block = {
            let _s = tg_obs::trace::host_span("lift");
            lift_superblock(&self.core.module, pc).map_err(|e| VmError {
                tid: 0,
                pc,
                msg: e.to_string(),
            })?
        };
        let block = if self.core.config.optimize_ir {
            let _s = tg_obs::trace::host_span("iropt");
            crate::opt::optimize(block)
        } else {
            block
        };
        let meta = BlockMeta {
            base: pc,
            fn_symbol: self.core.module.find_func(pc).map(|s| s.name.clone()),
        };
        let block = {
            let _s = tg_obs::trace::host_span("instrument");
            self.tool.instrument(block, &meta)
        };
        if cfg!(debug_assertions) {
            vex_ir::sanity::assert_sane(&block, self.tool.name());
        }
        // Synchronous chained engine: compile here, on the dispatch
        // thread. Async engine: insert the IR-only entry first, then
        // enqueue — the worker's promotion must find the entry.
        let asynchronous = self.compile_pool.is_some();
        let flat = (self.core.config.chaining && !asynchronous).then(|| {
            let _s = tg_obs::trace::host_span("compile");
            Arc::new(crate::flat::compile(&block))
        });
        let bytes = 64 + block.stmts.len() as u64 * 48;
        let (_, end) = block.extent();
        if let (Some(cache), Some(fb)) = (&self.code_cache, &flat) {
            cache.borrow_mut().store(pc, end, bytes, fb);
        }
        self.core.metrics.translations += 1;
        self.core.metrics.translation_bytes += bytes;
        let ir = Arc::new(block);
        let (r, ev) = self.tcache.insert(ir.clone(), flat, bytes);
        self.core.metrics.dispatch.evictions += ev.evicted;
        self.core.metrics.dispatch.unchains += ev.unchained;
        self.core.metrics.translation_bytes =
            self.core.metrics.translation_bytes.saturating_sub(ev.bytes);
        if self.core.config.chaining && asynchronous {
            let job = CompileJob { ir, end, bytes, epoch: self.discard_epoch };
            match self.compile_pool.as_ref().expect("pool checked above").try_send(job) {
                Ok(()) => self.core.metrics.compile.queued += 1,
                Err(job) => {
                    // Queue full: compile inline, exactly like the
                    // synchronous engine — backpressure never stalls
                    // the guest behind a channel.
                    self.core.metrics.compile.inline_compiles += 1;
                    let fb = Arc::new(crate::flat::compile(&job.ir));
                    if self.tcache.install_compiled(&job.ir, fb.clone()) {
                        self.core.metrics.compile.installed += 1;
                        if let Some(cache) = &self.code_cache {
                            cache.borrow_mut().store(pc, end, bytes, &fb);
                        }
                    }
                }
            }
        }
        Ok(r)
    }

    /// Fold finished background compiles into the metrics and the
    /// persistent code cache. Called on the slow dispatch path (cheap:
    /// one `try_recv` when nothing is pending) and at end of run.
    fn drain_completions(&mut self) {
        let done = match &self.compile_pool {
            Some(pool) => pool.try_drain(),
            None => return,
        };
        for d in done {
            self.finish_compile(d);
        }
    }

    fn finish_compile(&mut self, d: CompileDone) {
        if !d.installed {
            self.core.metrics.compile.stale += 1;
            return;
        }
        self.core.metrics.compile.installed += 1;
        // Persist only when no discard overlapped this block after the
        // job was enqueued: a later store would resurrect invalidated
        // code on the next warm run.
        let discarded =
            self.discard_log.iter().any(|&(lo, hi, e)| e > d.epoch && lo < d.end && hi > d.base);
        if !discarded {
            if let Some(cache) = &self.code_cache {
                cache.borrow_mut().store(d.base, d.end, d.bytes, &d.flat);
            }
        }
    }

    /// Invalidate every translation overlapping `[lo, hi)`, unchaining
    /// the victims across every shard. Safe mid-block: execution holds
    /// its own `Arc` and every later chain patch is generation-
    /// validated. In-flight background compiles of discarded blocks are
    /// dropped on arrival: promotion requires the exact pre-discard
    /// `Arc<IrBlock>`, and the epoch log blocks their disk store.
    pub fn discard_translations(&mut self, lo: u64, hi: u64) {
        self.discard_epoch += 1;
        if self.compile_pool.is_some() && self.code_cache.is_some() {
            self.discard_log.push((lo, hi, self.discard_epoch));
        }
        if let Some(cache) = &self.code_cache {
            cache.borrow_mut().invalidate_range(lo, hi);
        }
        let ev = self.tcache.discard_range(lo, hi);
        self.core.metrics.dispatch.discarded_blocks += ev.evicted;
        self.core.metrics.dispatch.unchains += ev.unchained;
        self.core.metrics.translation_bytes =
            self.core.metrics.translation_bytes.saturating_sub(ev.bytes);
    }

    /// Route a client request: core requests are handled here (and never
    /// forwarded), everything else goes to the tool.
    fn handle_client_request(&mut self, tid: Tid, code: u64, args: [u64; 5]) -> u64 {
        self.core.metrics.client_requests += 1;
        if code == crate::creq::DISCARD_TRANSLATIONS {
            self.core.metrics.dispatch.discard_requests += 1;
            self.discard_translations(args[0], args[0].saturating_add(args[1]));
            return 0;
        }
        let _creq_span = if tg_obs::trace::enabled() {
            tg_obs::trace::host_span_args("tool creq", vec![("code", code), ("tid", tid as u64)])
        } else {
            tg_obs::trace::SpanGuard::inactive()
        };
        let ret = self.tool.client_request(&mut self.core, tid, code, args);
        if let Some(kind) = crate::tool::SyncKind::from_creq(code) {
            let seq = self.core.metrics.client_requests;
            self.tool.sync_point(&mut self.core, tid, kind, seq);
        }
        ret
    }

    /// Execute one flat-compiled superblock (chained engine), returning
    /// the chainable edge it left on. Must match [`Self::exec_block`]
    /// bit for bit: same guest effects, same tool-callback order and
    /// arguments, same `instrs` at every observable point (dirty calls,
    /// traps, exits), same error pcs.
    fn exec_flat(
        &mut self,
        tid: Tid,
        cur: CacheRef,
        fb: &Arc<FlatBlock>,
    ) -> Result<Pending, VmError> {
        self.core.metrics.blocks += 1;
        if let Some(p) = self.profiler.as_mut() {
            p.note(fb.base, fb.ops.len() as u64);
        }
        let mut tmps = std::mem::take(&mut self.tmp_buf);
        // Every temp is written before it is read (the compile-time scan
        // behind `zero_temps` proved it), so the buffer's stale contents
        // are unobservable and the per-block memset can be skipped.
        if fb.zero_temps {
            tmps.clear();
            tmps.resize(fb.n_temps as usize, 0);
        } else if tmps.len() < fb.n_temps as usize {
            tmps.resize(fb.n_temps as usize, 0);
        }
        let consts = &fb.consts;
        // Instructions credited so far. The reference walker counts one
        // per IMark as it passes; here every observable point carries
        // its precomputed count and we credit the delta, so external
        // increments (if a tool ever made any) are preserved.
        let mut counted: u32 = 0;

        macro_rules! fv {
            ($x:expr) => {{
                let x = $x;
                if x & TMP_BIT != 0 {
                    tmps[(x & !TMP_BIT) as usize]
                } else {
                    consts[x as usize]
                }
            }};
        }

        let mut taken: Option<crate::flat::FExit> = None;
        'body: for op in fb.ops.iter() {
            match *op {
                FOp::Get { dst, reg } => {
                    tmps[dst as usize] = self.core.threads[tid].regs[reg as usize];
                }
                FOp::Mov { dst, src } => tmps[dst as usize] = fv!(src),
                FOp::Ld8 { dst, addr, ic } => {
                    let a = fv!(addr);
                    tmps[dst as usize] = self.core.mem.read_u64_ic(a, &fb.ics[ic as usize]);
                }
                FOp::Ld1 { dst, addr, ic } => {
                    let a = fv!(addr);
                    tmps[dst as usize] = self.core.mem.read_u8_ic(a, &fb.ics[ic as usize]) as u64;
                }
                FOp::Bin { dst, op, a, b } => {
                    let (a, b) = (fv!(a), fv!(b));
                    tmps[dst as usize] = eval_binop(op, a, b).expect("non-trapping binop trapped");
                }
                FOp::BinTrap { dst, op, a, b, trap } => {
                    let (a, b) = (fv!(a), fv!(b));
                    match eval_binop(op, a, b) {
                        Some(v) => tmps[dst as usize] = v,
                        None => {
                            let t = fb.traps[trap as usize];
                            self.core.metrics.instrs += (t.instrs - counted) as u64;
                            return Err(VmError { tid, pc: t.pc, msg: "division by zero".into() });
                        }
                    }
                }
                FOp::Un { dst, op, x } => tmps[dst as usize] = eval_unop(op, fv!(x)),
                FOp::Ite { dst, c, t, e } => {
                    tmps[dst as usize] = if fv!(c) != 0 { fv!(t) } else { fv!(e) };
                }
                FOp::Put { reg, src } => {
                    let v = fv!(src);
                    self.core.threads[tid].regs[reg as usize] = v;
                }
                FOp::St8 { addr, val, ic } => {
                    let a = fv!(addr);
                    let v = fv!(val);
                    self.core.mem.write_u64_ic(a, v, &fb.ics[ic as usize]);
                    if a < self.code_hi && a.saturating_add(8) > self.code_lo {
                        self.discard_translations(a, a.saturating_add(8));
                    }
                }
                FOp::St1 { addr, val, ic } => {
                    let a = fv!(addr);
                    let v = fv!(val);
                    self.core.mem.write_u8_ic(a, v as u8, &fb.ics[ic as usize]);
                    if a < self.code_hi && a.saturating_add(1) > self.code_lo {
                        self.discard_translations(a, a.saturating_add(1));
                    }
                }
                FOp::Cas { dst, addr, expected, new } => {
                    let a = fv!(addr);
                    let old = self.core.mem.read_u64(a);
                    if old == fv!(expected) {
                        let n = fv!(new);
                        self.core.mem.write_u64(a, n);
                    }
                    tmps[dst as usize] = old;
                }
                FOp::Amo { dst, addr, val } => {
                    let a = fv!(addr);
                    let old = self.core.mem.read_u64(a);
                    let v = fv!(val);
                    self.core.mem.write_u64(a, old.wrapping_add(v));
                    tmps[dst as usize] = old;
                }
                FOp::Dirty { idx } => {
                    let FDirty { call, ref args, dst, pc, instrs } = fb.dirties[idx as usize];
                    let vals: Vec<u64> = args.iter().map(|&a| fv!(a)).collect();
                    self.core.metrics.instrs += (instrs - counted) as u64;
                    counted = instrs;
                    let ret = match call {
                        DirtyCall::Syscall => {
                            let mut a6 = [0u64; 6];
                            a6.copy_from_slice(&vals[1..7]);
                            self.do_syscall(tid, vals[0] as i64, a6, pc)?
                        }
                        DirtyCall::ClientRequest => {
                            let mut a5 = [0u64; 5];
                            a5.copy_from_slice(&vals[1..6]);
                            self.handle_client_request(tid, vals[0], a5)
                        }
                        DirtyCall::ToolMem { write } => {
                            self.tool.mem_access(&mut self.core, tid, vals[0], vals[1], write, pc);
                            0
                        }
                        DirtyCall::ToolHelper { id } => {
                            self.tool.tool_helper(&mut self.core, tid, id, &vals)
                        }
                    };
                    if let Some(d) = dst {
                        tmps[d as usize] = ret;
                    }
                }
                FOp::MemCb { idx } => {
                    let FMemCb { addr, size, write, pc, instrs } = fb.memcbs[idx as usize];
                    let a = fv!(addr);
                    let s = fv!(size);
                    self.core.metrics.instrs += (instrs - counted) as u64;
                    counted = instrs;
                    self.tool.mem_access(&mut self.core, tid, a, s, write, pc);
                }
                FOp::Exit { guard, idx } => {
                    if fv!(guard) != 0 {
                        taken = Some(fb.exits[idx as usize]);
                        break 'body;
                    }
                }
                FOp::MovRR { rd, rs } => {
                    let v = self.core.threads[tid].regs[rs as usize];
                    self.core.threads[tid].regs[rd as usize] = v;
                }
                FOp::BinRI { dst, op, rs, c } => {
                    let a = self.core.threads[tid].regs[rs as usize];
                    tmps[dst as usize] =
                        eval_binop(op, a, consts[c as usize]).expect("non-trapping binop trapped");
                }
                FOp::BinRIP { rd, op, rs, c } => {
                    let a = self.core.threads[tid].regs[rs as usize];
                    self.core.threads[tid].regs[rd as usize] =
                        eval_binop(op, a, consts[c as usize]).expect("non-trapping binop trapped");
                }
                FOp::BinTR { dst, op, a, rb } => {
                    let b = self.core.threads[tid].regs[rb as usize];
                    tmps[dst as usize] =
                        eval_binop(op, fv!(a), b).expect("non-trapping binop trapped");
                }
                FOp::BinRR { dst, op, ra, rb } => {
                    let regs = &self.core.threads[tid].regs;
                    let (a, b) = (regs[ra as usize], regs[rb as usize]);
                    tmps[dst as usize] = eval_binop(op, a, b).expect("non-trapping binop trapped");
                }
                FOp::BinRRP { rd, op, ra, rb } => {
                    let regs = &mut self.core.threads[tid].regs;
                    let (a, b) = (regs[ra as usize], regs[rb as usize]);
                    regs[rd as usize] = eval_binop(op, a, b).expect("non-trapping binop trapped");
                }
                FOp::LdRO { dst, rs, c, ic } => {
                    let a =
                        self.core.threads[tid].regs[rs as usize].wrapping_add(consts[c as usize]);
                    tmps[dst as usize] = self.core.mem.read_u64_ic(a, &fb.ics[ic as usize]);
                }
                FOp::LdRP { rd, rs, c, ic } => {
                    let a =
                        self.core.threads[tid].regs[rs as usize].wrapping_add(consts[c as usize]);
                    let v = self.core.mem.read_u64_ic(a, &fb.ics[ic as usize]);
                    self.core.threads[tid].regs[rd as usize] = v;
                }
                FOp::StV { addr, vr, ic } => {
                    let a = fv!(addr);
                    let v = self.core.threads[tid].regs[vr as usize];
                    self.core.mem.write_u64_ic(a, v, &fb.ics[ic as usize]);
                    if a < self.code_hi && a.saturating_add(8) > self.code_lo {
                        self.discard_translations(a, a.saturating_add(8));
                    }
                }
                FOp::StRV { rs, c, val, ic } => {
                    let a =
                        self.core.threads[tid].regs[rs as usize].wrapping_add(consts[c as usize]);
                    let v = fv!(val);
                    self.core.mem.write_u64_ic(a, v, &fb.ics[ic as usize]);
                    if a < self.code_hi && a.saturating_add(8) > self.code_lo {
                        self.discard_translations(a, a.saturating_add(8));
                    }
                }
                FOp::StRR { rs, c, vr, ic } => {
                    let regs = &self.core.threads[tid].regs;
                    let a = regs[rs as usize].wrapping_add(consts[c as usize]);
                    let v = regs[vr as usize];
                    self.core.mem.write_u64_ic(a, v, &fb.ics[ic as usize]);
                    if a < self.code_hi && a.saturating_add(8) > self.code_lo {
                        self.discard_translations(a, a.saturating_add(8));
                    }
                }
                FOp::BinP { rd, op, a, b } => {
                    let (a, b) = (fv!(a), fv!(b));
                    self.core.threads[tid].regs[rd as usize] =
                        eval_binop(op, a, b).expect("non-trapping binop trapped");
                }
                FOp::LdO { dst, base, off, ic } => {
                    let a = fv!(base).wrapping_add(fv!(off));
                    tmps[dst as usize] = self.core.mem.read_u64_ic(a, &fb.ics[ic as usize]);
                }
                FOp::LdOP { rd, base, off, ic } => {
                    let a = fv!(base).wrapping_add(fv!(off));
                    let v = self.core.mem.read_u64_ic(a, &fb.ics[ic as usize]);
                    self.core.threads[tid].regs[rd as usize] = v;
                }
                FOp::LdP { rd, addr, ic } => {
                    let a = fv!(addr);
                    let v = self.core.mem.read_u64_ic(a, &fb.ics[ic as usize]);
                    self.core.threads[tid].regs[rd as usize] = v;
                }
                FOp::StO { base, off, val, ic } => {
                    let a = fv!(base).wrapping_add(fv!(off));
                    let v = fv!(val);
                    self.core.mem.write_u64_ic(a, v, &fb.ics[ic as usize]);
                    if a < self.code_hi && a.saturating_add(8) > self.code_lo {
                        self.discard_translations(a, a.saturating_add(8));
                    }
                }
            }
        }

        // Determine the transfer and the chainable edge it constitutes:
        // direct (constant-target) transfers chain through the exit's
        // link slot, indirect ones through the IBTC, halts not at all.
        let (next, kind, pending) = match taken {
            Some(e) => {
                self.core.metrics.instrs += (e.instrs - counted) as u64;
                let p = if matches!(e.kind, JumpKind::Halt) {
                    Pending::None
                } else {
                    Pending::Link { from: cur, exit: e.ord }
                };
                (e.target, e.kind, p)
            }
            None => {
                self.core.metrics.instrs += (fb.instrs_total - counted) as u64;
                let k = fb.jumpkind;
                let p = if matches!(k, JumpKind::Halt) {
                    Pending::None
                } else if fb.next_is_const() {
                    Pending::Link { from: cur, exit: fb.fall_ord }
                } else {
                    Pending::Ibtc { site: fb.base }
                };
                (fv!(fb.next), k, p)
            }
        };
        self.finish_jump(tid, next, kind);
        self.tmp_buf = tmps;
        Ok(pending)
    }

    /// Execute one instrumented superblock by walking its IR statement
    /// list — the reference engine's executor.
    fn exec_block(&mut self, tid: Tid, block: &Arc<IrBlock>) -> Result<(), VmError> {
        let pc = block.base;
        self.core.metrics.blocks += 1;
        if let Some(p) = self.profiler.as_mut() {
            p.note(block.base, block.stmts.len() as u64);
        }
        let mut tmps = std::mem::take(&mut self.tmp_buf);
        tmps.clear();
        tmps.resize(block.n_temps as usize, 0);

        let err = |tid: Tid, pc: u64, msg: String| VmError { tid, pc, msg };
        let mut last_pc = pc;
        let mut taken_exit: Option<(u64, JumpKind)> = None;

        macro_rules! ev {
            ($a:expr) => {
                match $a {
                    Atom::Const(c) => *c,
                    Atom::Tmp(t) => tmps[t.0 as usize],
                }
            };
        }

        for stmt in &block.stmts {
            match stmt {
                Stmt::IMark { addr, .. } => {
                    last_pc = *addr;
                    self.core.metrics.instrs += 1;
                }
                Stmt::WrTmp { dst, rhs } => {
                    let v = match rhs {
                        Rhs::Atom(a) => ev!(a),
                        Rhs::Get { reg } => self.core.threads[tid].regs[*reg as usize],
                        Rhs::Load { ty, addr } => {
                            let a = ev!(addr);
                            match ty {
                                Ty::I8 => self.core.mem.read_u8(a) as u64,
                                _ => self.core.mem.read_u64(a),
                            }
                        }
                        Rhs::Binop { op, lhs, rhs } => {
                            let (a, b) = (ev!(lhs), ev!(rhs));
                            eval_binop(*op, a, b)
                                .ok_or_else(|| err(tid, last_pc, "division by zero".into()))?
                        }
                        Rhs::Unop { op, x } => eval_unop(*op, ev!(x)),
                        Rhs::Ite { cond, then, els } => {
                            if ev!(cond) != 0 {
                                ev!(then)
                            } else {
                                ev!(els)
                            }
                        }
                    };
                    tmps[dst.0 as usize] = v;
                }
                Stmt::Put { reg: r, src } => {
                    let v = ev!(src);
                    self.core.threads[tid].regs[*r as usize] = v;
                }
                Stmt::Store { ty, addr, val } => {
                    let a = ev!(addr);
                    let v = ev!(val);
                    let len = match ty {
                        Ty::I8 => {
                            self.core.mem.write_u8(a, v as u8);
                            1
                        }
                        _ => {
                            self.core.mem.write_u64(a, v);
                            8
                        }
                    };
                    // Self-modifying code: a store into the code image
                    // invalidates any translation it overlaps.
                    if a < self.code_hi && a.saturating_add(len) > self.code_lo {
                        self.discard_translations(a, a.saturating_add(len));
                    }
                }
                Stmt::Cas { dst, addr, expected, new } => {
                    let a = ev!(addr);
                    let old = self.core.mem.read_u64(a);
                    if old == ev!(expected) {
                        let n = ev!(new);
                        self.core.mem.write_u64(a, n);
                    }
                    tmps[dst.0 as usize] = old;
                }
                Stmt::AtomicAdd { dst, addr, val } => {
                    let a = ev!(addr);
                    let old = self.core.mem.read_u64(a);
                    let v = ev!(val);
                    self.core.mem.write_u64(a, old.wrapping_add(v));
                    tmps[dst.0 as usize] = old;
                }
                Stmt::Dirty { call, args, dst } => {
                    let vals: Vec<u64> = args.iter().map(|a| ev!(a)).collect();
                    let ret = match call {
                        DirtyCall::Syscall => {
                            let mut a6 = [0u64; 6];
                            a6.copy_from_slice(&vals[1..7]);
                            self.do_syscall(tid, vals[0] as i64, a6, last_pc)?
                        }
                        DirtyCall::ClientRequest => {
                            let mut a5 = [0u64; 5];
                            a5.copy_from_slice(&vals[1..6]);
                            self.handle_client_request(tid, vals[0], a5)
                        }
                        DirtyCall::ToolMem { write } => {
                            self.tool.mem_access(
                                &mut self.core,
                                tid,
                                vals[0],
                                vals[1],
                                *write,
                                last_pc,
                            );
                            0
                        }
                        DirtyCall::ToolHelper { id } => {
                            self.tool.tool_helper(&mut self.core, tid, *id, &vals)
                        }
                    };
                    if let Some(d) = dst {
                        tmps[d.0 as usize] = ret;
                    }
                }
                Stmt::Exit { guard, target, kind } => {
                    if ev!(guard) != 0 {
                        taken_exit = Some((*target, *kind));
                        break;
                    }
                }
            }
        }

        let (next, kind) = match taken_exit {
            Some((t, k)) => (t, k),
            None => (ev!(&block.next), block.jumpkind),
        };
        self.finish_jump(tid, next, kind);
        self.tmp_buf = tmps;
        Ok(())
    }

    fn finish_jump(&mut self, tid: Tid, next: u64, kind: JumpKind) {
        match kind {
            JumpKind::Halt => {
                self.thread_exit(tid);
            }
            JumpKind::Call { return_addr } => {
                let t = &mut self.core.threads[tid];
                t.pc = next;
                if t.shadow_stack.len() < (1 << 20) {
                    t.shadow_stack.push(return_addr);
                }
            }
            JumpKind::Ret => {
                let t = &mut self.core.threads[tid];
                t.pc = next;
                t.shadow_stack.pop();
            }
            JumpKind::Boring => {
                self.core.threads[tid].pc = next;
            }
        }
    }

    /// Execute one instruction directly (Fast mode).
    fn exec_inst(&mut self, tid: Tid) -> Result<(), VmError> {
        let pc = self.core.threads[tid].pc;
        let inst = self.core.module.fetch(pc).ok_or_else(|| VmError {
            tid,
            pc,
            msg: "not a code address".into(),
        })?;
        self.core.metrics.instrs += 1;
        let next_pc = pc + INST_SIZE;

        let rs1 = self.core.threads[tid].reg(inst.rs1);
        let rs2 = self.core.threads[tid].reg(inst.rs2);
        let rd_in = self.core.threads[tid].reg(inst.rd);
        let imm = inst.imm;
        let wr = |core: &mut VmCore, r: u8, v: u64| {
            if r != reg::ZERO {
                core.threads[tid].regs[r as usize] = v;
            }
        };

        use Op::*;
        let simple_bin = |op: vex_ir::BinOp| eval_binop(op, rs1, rs2);
        let imm_bin = |op: vex_ir::BinOp| eval_binop(op, rs1, imm as u64);
        let div0 = || VmError { tid, pc, msg: "division by zero".into() };

        let mut new_pc = next_pc;
        match inst.op {
            Add => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::Add).unwrap()),
            Sub => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::Sub).unwrap()),
            Mul => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::Mul).unwrap()),
            Div => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::DivS).ok_or_else(div0)?),
            Rem => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::RemS).ok_or_else(div0)?),
            And => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::And).unwrap()),
            Or => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::Or).unwrap()),
            Xor => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::Xor).unwrap()),
            Sll => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::Shl).unwrap()),
            Srl => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::ShrU).unwrap()),
            Sra => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::ShrS).unwrap()),
            Slt => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::CmpLtS).unwrap()),
            Sltu => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::CmpLtU).unwrap()),
            Seq => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::CmpEq).unwrap()),
            Sne => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::CmpNe).unwrap()),
            Sle => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::CmpLeS).unwrap()),
            Fadd => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::FAdd).unwrap()),
            Fsub => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::FSub).unwrap()),
            Fmul => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::FMul).unwrap()),
            Fdiv => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::FDiv).unwrap()),
            Feq => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::FCmpEq).unwrap()),
            Flt => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::FCmpLt).unwrap()),
            Fle => wr(&mut self.core, inst.rd, simple_bin(vex_ir::BinOp::FCmpLe).unwrap()),
            Addi => wr(&mut self.core, inst.rd, imm_bin(vex_ir::BinOp::Add).unwrap()),
            Andi => wr(&mut self.core, inst.rd, imm_bin(vex_ir::BinOp::And).unwrap()),
            Ori => wr(&mut self.core, inst.rd, imm_bin(vex_ir::BinOp::Or).unwrap()),
            Xori => wr(&mut self.core, inst.rd, imm_bin(vex_ir::BinOp::Xor).unwrap()),
            Slli => wr(&mut self.core, inst.rd, imm_bin(vex_ir::BinOp::Shl).unwrap()),
            Srli => wr(&mut self.core, inst.rd, imm_bin(vex_ir::BinOp::ShrU).unwrap()),
            Srai => wr(&mut self.core, inst.rd, imm_bin(vex_ir::BinOp::ShrS).unwrap()),
            Slti => wr(&mut self.core, inst.rd, imm_bin(vex_ir::BinOp::CmpLtS).unwrap()),
            Li => wr(&mut self.core, inst.rd, imm as u64),
            Fsqrt => wr(&mut self.core, inst.rd, eval_unop(vex_ir::UnOp::FSqrt, rs1)),
            Fneg => wr(&mut self.core, inst.rd, eval_unop(vex_ir::UnOp::FNeg, rs1)),
            Fabs => wr(&mut self.core, inst.rd, eval_unop(vex_ir::UnOp::FAbs, rs1)),
            Fcvtif => wr(&mut self.core, inst.rd, eval_unop(vex_ir::UnOp::I2F, rs1)),
            Fcvtfi => wr(&mut self.core, inst.rd, eval_unop(vex_ir::UnOp::F2I, rs1)),
            Ld => {
                let v = self.core.mem.read_u64(rs1.wrapping_add(imm as u64));
                wr(&mut self.core, inst.rd, v);
            }
            Lb => {
                let v = self.core.mem.read_u8(rs1.wrapping_add(imm as u64)) as u64;
                wr(&mut self.core, inst.rd, v);
            }
            St => self.core.mem.write_u64(rs1.wrapping_add(imm as u64), rs2),
            Sb => self.core.mem.write_u8(rs1.wrapping_add(imm as u64), rs2 as u8),
            Jal => {
                wr(&mut self.core, inst.rd, next_pc);
                new_pc = imm as u64;
                if inst.rd == reg::RA {
                    let t = &mut self.core.threads[tid];
                    if t.shadow_stack.len() < (1 << 20) {
                        t.shadow_stack.push(next_pc);
                    }
                }
            }
            Jalr => {
                wr(&mut self.core, inst.rd, next_pc);
                new_pc = rs1.wrapping_add(imm as u64);
                let t = &mut self.core.threads[tid];
                if inst.rd == reg::RA {
                    if t.shadow_stack.len() < (1 << 20) {
                        t.shadow_stack.push(next_pc);
                    }
                } else if inst.rs1 == reg::RA && inst.rd == reg::ZERO {
                    t.shadow_stack.pop();
                }
            }
            Beq => {
                if rs1 == rs2 {
                    new_pc = imm as u64;
                }
            }
            Bne => {
                if rs1 != rs2 {
                    new_pc = imm as u64;
                }
            }
            Blt => {
                if (rs1 as i64) < (rs2 as i64) {
                    new_pc = imm as u64;
                }
            }
            Bge => {
                if (rs1 as i64) >= (rs2 as i64) {
                    new_pc = imm as u64;
                }
            }
            Bltu => {
                if rs1 < rs2 {
                    new_pc = imm as u64;
                }
            }
            Cas => {
                let old = self.core.mem.read_u64(rs1);
                if old == rd_in {
                    self.core.mem.write_u64(rs1, rs2);
                }
                wr(&mut self.core, inst.rd, old);
            }
            Amoadd => {
                let old = self.core.mem.read_u64(rs1);
                self.core.mem.write_u64(rs1, old.wrapping_add(rs2));
                wr(&mut self.core, inst.rd, old);
            }
            Sys => {
                let t = &self.core.threads[tid];
                let mut a6 = [0u64; 6];
                for (i, a) in a6.iter_mut().enumerate() {
                    *a = t.regs[reg::A0 as usize + i];
                }
                let ret = self.do_syscall(tid, imm, a6, pc)?;
                wr(&mut self.core, inst.rd, ret);
            }
            Clreq => {
                let t = &self.core.threads[tid];
                let code = t.reg(reg::A0);
                let mut a5 = [0u64; 5];
                for (i, a) in a5.iter_mut().enumerate() {
                    *a = t.regs[reg::A1 as usize + i];
                }
                let ret = self.handle_client_request(tid, code, a5);
                wr(&mut self.core, inst.rd, ret);
            }
            Halt => {
                self.thread_exit(tid);
                return Ok(());
            }
            Nop => {}
        }
        if self.core.threads[tid].status != ThreadStatus::Exited {
            self.core.threads[tid].pc = new_pc;
        }
        Ok(())
    }

    fn do_syscall(&mut self, tid: Tid, num: i64, args: [u64; 6], pc: u64) -> Result<u64, VmError> {
        self.core.metrics.syscalls += 1;
        match num {
            syscalls::EXIT => {
                self.core.exit_code = Some(args[0] as i64);
                Ok(0)
            }
            syscalls::WRITE => {
                let (fd, buf, len) = (args[0], args[1], args[2]);
                if fd == 1 || fd == 2 {
                    let mut bytes = vec![0u8; len as usize];
                    self.core.mem.read(buf, &mut bytes);
                    self.core.stdout.extend_from_slice(&bytes);
                    Ok(len)
                } else {
                    Ok(0)
                }
            }
            syscalls::SBRK => Ok(self.core.sbrk(args[0])),
            syscalls::THREAD_CREATE => {
                let child = self.core.spawn_thread(args[0], args[1]);
                self.tool.thread_created(&mut self.core, tid, child);
                Ok(child as u64)
            }
            syscalls::THREAD_EXIT => {
                self.thread_exit(tid);
                Ok(0)
            }
            syscalls::THREAD_JOIN => {
                let target = args[0] as usize;
                if target >= self.core.threads.len() {
                    return Err(VmError { tid, pc, msg: format!("join of bad tid {target}") });
                }
                if self.core.threads[target].status != ThreadStatus::Exited {
                    self.core.threads[tid].status = ThreadStatus::Joining(target);
                }
                Ok(0)
            }
            syscalls::FUTEX_WAIT => {
                let (addr, expected) = (args[0], args[1]);
                if self.core.mem.read_u64(addr) == expected {
                    self.core.threads[tid].status = ThreadStatus::FutexWait(addr);
                    self.core.futex.entry(addr).or_default().push_back(tid);
                    Ok(0)
                } else {
                    Ok(1)
                }
            }
            syscalls::FUTEX_WAKE => {
                let (addr, count) = (args[0], args[1]);
                let mut woken = 0u64;
                if let Some(q) = self.core.futex.get_mut(&addr) {
                    while woken < count {
                        let Some(w) = q.pop_front() else { break };
                        if self.core.threads[w].status == ThreadStatus::FutexWait(addr) {
                            self.core.threads[w].status = ThreadStatus::Runnable;
                            woken += 1;
                        }
                    }
                }
                Ok(woken)
            }
            syscalls::YIELD => {
                self.yield_requested = true;
                Ok(0)
            }
            syscalls::CLOCK => Ok(self.core.metrics.instrs),
            syscalls::RAND => Ok(self.core.guest_rand()),
            syscalls::NTHREADS => Ok(self.core.config.nthreads),
            n => Err(VmError { tid, pc, msg: format!("unknown syscall {n}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{CountTool, NulTool};
    use tga::asm::assemble;
    use tga::module::{Module, Symbol, CODE_BASE};

    fn build(src: &str) -> Module {
        let (code, labels) = assemble(src, CODE_BASE).unwrap();
        let mut m = Module::new();
        let code_len = code.len() as u64 * INST_SIZE;
        m.code = code;
        m.data_base = (CODE_BASE + code_len + 0xfff) & !0xfff;
        m.entry = labels.get("_start").copied().unwrap_or(CODE_BASE);
        for (name, addr) in &labels {
            m.symbols.push(Symbol {
                name: name.clone(),
                addr: *addr,
                size: code_len - (addr - CODE_BASE),
                kind: SymKind::Func,
            });
        }
        m.finalize();
        m
    }

    fn run_both(src: &str, args: &[&str]) -> (RunResult, RunResult) {
        let m = build(src);
        let fast =
            Vm::new(m.clone(), Box::new(NulTool), VmConfig::default()).run(ExecMode::Fast, args);
        let dbi = Vm::new(m, Box::new(NulTool), VmConfig::default()).run(ExecMode::Dbi, args);
        (fast, dbi)
    }

    const HELLO: &str = "
        _start:
            li  a0, 1        ; fd
            li  a1, 0x600000000000
            ld  a1, 0(a1)    ; argv[0] -> 'guest'
            li  a2, 5
            sys zero, 1      ; write
            li  a0, 7
            sys zero, 0      ; exit(7)
            halt
    ";

    #[test]
    fn hello_world_fast_and_dbi_agree() {
        let (fast, dbi) = run_both(HELLO, &[]);
        assert_eq!(fast.exit_code, Some(7));
        assert_eq!(dbi.exit_code, Some(7));
        assert_eq!(fast.stdout_str(), "guest");
        assert_eq!(dbi.stdout_str(), "guest");
        assert!(fast.ok() && dbi.ok());
        assert_eq!(fast.metrics.instrs, dbi.metrics.instrs);
    }

    #[test]
    fn loop_computation_matches_between_modes() {
        // sum 1..=100 into a0, exit with it (mod 256 semantics irrelevant here)
        let src = "
            _start:
                li t0, 0      ; i
                li t1, 0      ; sum
            loop:
                addi t0, t0, 1
                add  t1, t1, t0
                li   t2, 100
                blt  t0, t2, loop
                add  a0, t1, zero
                sys  zero, 0
                halt
        ";
        let (fast, dbi) = run_both(src, &[]);
        assert_eq!(fast.exit_code, Some(5050));
        assert_eq!(dbi.exit_code, Some(5050));
    }

    #[test]
    fn sbrk_and_memory() {
        let src = "
            _start:
                li  a0, 64
                sys t0, 2        ; sbrk(64) -> old brk
                li  t1, 123
                st  t1, 0(t0)
                ld  t2, 0(t0)
                add a0, t2, zero
                sys zero, 0
                halt
        ";
        let (fast, dbi) = run_both(src, &[]);
        assert_eq!(fast.exit_code, Some(123));
        assert_eq!(dbi.exit_code, Some(123));
    }

    #[test]
    fn threads_and_join() {
        // Child writes 55 to a fixed heap address; parent joins then reads.
        let src = "
            _start:
                li  a0, 4096
                sys s1, 2         ; s1 = heap block
                li  a0, child
                add a1, s1, zero
                sys s2, 3         ; thread_create(child, s1) -> tid
                add a0, s2, zero
                sys zero, 5       ; join
                ld  a0, 0(s1)
                sys zero, 0
                halt
            child:
                li  t0, 55
                st  t0, 0(a0)
                sys zero, 4       ; thread_exit
                halt
        ";
        let (fast, dbi) = run_both(src, &[]);
        assert_eq!(fast.exit_code, Some(55), "{:?}", fast.error);
        assert_eq!(dbi.exit_code, Some(55), "{:?}", dbi.error);
        assert_eq!(fast.metrics.threads_created, 2);
    }

    #[test]
    fn futex_wait_wake() {
        // Parent waits on a flag; child sets it and wakes.
        let src = "
            _start:
                li  a0, 64
                sys s1, 2
                li  a0, child
                add a1, s1, zero
                sys zero, 3
            wait:
                ld  t0, 0(s1)
                li  t1, 1
                beq t0, t1, done
                add a0, s1, zero
                li  a1, 0
                sys zero, 6      ; futex_wait(s1, 0)
                jal zero, wait
            done:
                li  a0, 99
                sys zero, 0
                halt
            child:
                li  t0, 1
                st  t0, 0(a0)
                li  a1, 10
                sys zero, 7      ; futex_wake(a0, 10)
                sys zero, 4
                halt
        ";
        let (fast, dbi) = run_both(src, &[]);
        assert_eq!(fast.exit_code, Some(99), "{:?}", fast);
        assert_eq!(dbi.exit_code, Some(99), "{:?}", dbi);
    }

    #[test]
    fn deadlock_detected() {
        let src = "
            _start:
                li a0, 0x50000
                li a1, 0
                sys zero, 6      ; futex_wait on a word equal to 0 -> blocks forever
                halt
        ";
        let (fast, dbi) = run_both(src, &[]);
        assert!(fast.deadlock);
        assert!(dbi.deadlock);
    }

    #[test]
    fn division_by_zero_faults() {
        let src = "
            _start:
                li t0, 1
                li t1, 0
                div t2, t0, t1
                halt
        ";
        let (fast, dbi) = run_both(src, &[]);
        assert!(fast.error.as_ref().unwrap().msg.contains("division"));
        assert!(dbi.error.as_ref().unwrap().msg.contains("division"));
    }

    #[test]
    fn count_tool_sees_accesses_only_in_dbi_mode() {
        let src = "
            _start:
                li  a0, 64
                sys t0, 2
                li  t1, 5
                st  t1, 0(t0)
                ld  t2, 0(t0)
                st  t2, 8(t0)
                sys zero, 0
                halt
        ";
        let m = build(src);
        let mut vm = Vm::new(m, Box::new(CountTool::default()), VmConfig::default());
        let res = vm.run(ExecMode::Dbi, &[]);
        assert!(res.ok());
        // Downcast-free check via metrics: translations happened and the
        // program ran; detailed counts verified through a fresh VM below.
        assert!(res.metrics.translations > 0);
    }

    #[test]
    fn atomics_work_in_both_modes() {
        let src = "
            _start:
                li  a0, 64
                sys s1, 2
                li  t0, 0        ; expected
                li  t1, 7        ; new
                add t2, t0, zero
                cas t2, (s1), t1 ; t2 = old(0), mem=7
                ld  t3, 0(s1)
                li  t4, 3
                amoadd t5, (s1), t4   ; t5 = 7, mem = 10
                ld  t6, 0(s1)
                add a0, t6, zero      ; 10
                sys zero, 0
                halt
        ";
        let (fast, dbi) = run_both(src, &[]);
        assert_eq!(fast.exit_code, Some(10));
        assert_eq!(dbi.exit_code, Some(10));
    }

    #[test]
    fn shadow_stack_tracks_calls() {
        let src = "
            _start:
                jal ra, f
                li  a0, 0
                sys zero, 0
                halt
            f:
                addi sp, sp, -16
                st   ra, 0(sp)
                jal  ra, g
                ld   ra, 0(sp)
                addi sp, sp, 16
                jalr zero, ra, 0
            g:
                jalr zero, ra, 0
        ";
        let (fast, dbi) = run_both(src, &[]);
        assert!(fast.ok() && fast.exit_code == Some(0));
        assert!(dbi.ok() && dbi.exit_code == Some(0));
    }

    #[test]
    fn classify_addresses() {
        let m = build(HELLO);
        let mut vm = Vm::new(m, Box::new(NulTool), VmConfig::default());
        let res = vm.run(ExecMode::Fast, &[]);
        assert!(res.ok());
        let core = &vm.core;
        assert_eq!(core.classify_addr(CODE_BASE), AddrClass::Code);
        let sp = STACK_TOP - 8;
        assert_eq!(core.classify_addr(sp), AddrClass::Stack(0));
        let tls = core.threads[0].tls_base;
        assert_eq!(core.classify_addr(tls), AddrClass::Tls(0));
    }

    #[test]
    fn instruction_budget_enforced() {
        let src = "_start: jal zero, _start";
        let m = build(src);
        let cfg = VmConfig { max_instrs: 10_000, ..Default::default() };
        let res = Vm::new(m, Box::new(NulTool), cfg).run(ExecMode::Fast, &[]);
        assert!(res.error.unwrap().msg.contains("budget"));
    }

    #[test]
    fn random_scheduler_is_seed_deterministic() {
        let src = "
            _start:
                li a0, child
                li a1, 0
                sys zero, 3
                li a0, child
                li a1, 0
                sys zero, 3
                sys zero, 4
                halt
            child:
                li t0, 100
            spin:
                addi t0, t0, -1
                bne  t0, zero, spin
                sys zero, 4
                halt
        ";
        let m = build(src);
        let run = |seed| {
            let cfg =
                VmConfig { seed, sched: SchedPolicy::Random, quantum: 4, ..Default::default() };
            Vm::new(m.clone(), Box::new(NulTool), cfg).run(ExecMode::Fast, &[]).metrics.switches
        };
        assert_eq!(run(1), run(1), "same seed, same schedule");
    }
}
