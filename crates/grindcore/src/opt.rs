//! IR optimization — grindcore's analog of VEX's `iropt`.
//!
//! The `-O0`-style guest code the compiler emits is dense with
//! `Get`/`Put` traffic and literal arithmetic; Valgrind runs a
//! tree-building/redundancy pass before handing blocks to the tool.
//! This pass performs, in one forward walk:
//!
//! * **copy propagation** — `t = atom` definitions are substituted into
//!   later uses and dropped;
//! * **register forwarding** — a `Get` of a register whose block-local
//!   value is known (from a previous `Put` or `Get`) becomes that value;
//!   `Put`s are never removed, so the architectural state at every side
//!   exit and at block end stays exact;
//! * **constant folding** — binops/unops over constants are evaluated
//!   (division by a constant zero is left in place to preserve the
//!   guest trap).
//!
//! Memory operations, atomics and dirty calls are never touched, so
//! tool instrumentation sees exactly the same access stream — only the
//! scaffolding around it shrinks. Runs *before* instrumentation, like
//! Valgrind's pipeline.

use vex_ir::{eval_binop, eval_unop, Atom, BinOp, IrBlock, Rhs, Stmt};

/// Optimize a lifted block. Semantics-preserving by construction (see
/// the module docs); verified by the differential test suite.
pub fn optimize(mut block: IrBlock) -> IrBlock {
    let n = block.n_temps as usize;
    // substitution for temps that turned out to be pure copies/constants
    let mut subst: Vec<Option<Atom>> = vec![None; n];
    // block-local known register contents
    let mut regs: [Option<Atom>; tga::NUM_REGS] = [None; tga::NUM_REGS];

    let resolve = |a: &Atom, subst: &[Option<Atom>]| -> Atom {
        match a {
            Atom::Tmp(t) => subst[t.0 as usize].unwrap_or(*a),
            c => *c,
        }
    };

    let mut out: Vec<Stmt> = Vec::with_capacity(block.stmts.len());
    for stmt in block.stmts.drain(..) {
        match stmt {
            Stmt::IMark { .. } => out.push(stmt),
            Stmt::WrTmp { dst, rhs } => {
                let rhs = match rhs {
                    Rhs::Atom(a) => Rhs::Atom(resolve(&a, &subst)),
                    Rhs::Get { reg } => Rhs::Get { reg },
                    Rhs::Load { ty, addr } => Rhs::Load { ty, addr: resolve(&addr, &subst) },
                    Rhs::Binop { op, lhs, rhs } => {
                        Rhs::Binop { op, lhs: resolve(&lhs, &subst), rhs: resolve(&rhs, &subst) }
                    }
                    Rhs::Unop { op, x } => Rhs::Unop { op, x: resolve(&x, &subst) },
                    Rhs::Ite { cond, then, els } => Rhs::Ite {
                        cond: resolve(&cond, &subst),
                        then: resolve(&then, &subst),
                        els: resolve(&els, &subst),
                    },
                };
                match rhs {
                    // pure copy: substitute, drop the definition
                    Rhs::Atom(a) => subst[dst.0 as usize] = Some(a),
                    // register with known content: forward it
                    Rhs::Get { reg } => {
                        if let Some(a) = regs[reg as usize] {
                            subst[dst.0 as usize] = Some(a);
                        } else {
                            regs[reg as usize] = Some(Atom::Tmp(dst));
                            out.push(Stmt::WrTmp { dst, rhs: Rhs::Get { reg } });
                        }
                    }
                    // constant folding
                    Rhs::Binop { op, lhs: Atom::Const(a), rhs: Atom::Const(b) } => {
                        let div0 = matches!(op, BinOp::DivS | BinOp::RemS) && b == 0;
                        match (div0, eval_binop(op, a, b)) {
                            (false, Some(v)) => subst[dst.0 as usize] = Some(Atom::Const(v)),
                            _ => out.push(Stmt::WrTmp {
                                dst,
                                rhs: Rhs::Binop { op, lhs: Atom::Const(a), rhs: Atom::Const(b) },
                            }),
                        }
                    }
                    Rhs::Unop { op, x: Atom::Const(x) } => {
                        subst[dst.0 as usize] = Some(Atom::Const(eval_unop(op, x)));
                    }
                    Rhs::Ite { cond: Atom::Const(c), then, els } => {
                        subst[dst.0 as usize] = Some(if c != 0 { then } else { els });
                    }
                    other => out.push(Stmt::WrTmp { dst, rhs: other }),
                }
            }
            Stmt::Put { reg, src } => {
                let src = resolve(&src, &subst);
                regs[reg as usize] = Some(src);
                out.push(Stmt::Put { reg, src });
            }
            Stmt::Store { ty, addr, val } => out.push(Stmt::Store {
                ty,
                addr: resolve(&addr, &subst),
                val: resolve(&val, &subst),
            }),
            Stmt::Cas { dst, addr, expected, new } => out.push(Stmt::Cas {
                dst,
                addr: resolve(&addr, &subst),
                expected: resolve(&expected, &subst),
                new: resolve(&new, &subst),
            }),
            Stmt::AtomicAdd { dst, addr, val } => out.push(Stmt::AtomicAdd {
                dst,
                addr: resolve(&addr, &subst),
                val: resolve(&val, &subst),
            }),
            Stmt::Dirty { call, args, dst } => out.push(Stmt::Dirty {
                call,
                args: args.iter().map(|a| resolve(a, &subst)).collect(),
                dst,
            }),
            Stmt::Exit { guard, target, kind } => {
                let guard = resolve(&guard, &subst);
                // a statically-false side exit disappears
                if guard != Atom::Const(0) {
                    out.push(Stmt::Exit { guard, target, kind });
                }
            }
        }
    }
    block.stmts = out;
    block.next = resolve(&block.next, &subst);
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift::lift_superblock;
    use tga::asm::assemble;
    use tga::module::{Module, CODE_BASE};
    use vex_ir::sanity;

    fn lift(src: &str) -> IrBlock {
        let (code, _) = assemble(src, CODE_BASE).unwrap();
        let mut m = Module::new();
        m.code = code;
        lift_superblock(&m, CODE_BASE).unwrap()
    }

    fn count_kind(b: &IrBlock, pred: fn(&Stmt) -> bool) -> usize {
        b.stmts.iter().filter(|s| pred(s)).count()
    }

    #[test]
    fn redundant_gets_are_forwarded() {
        // five instructions all reading sp: one Get survives
        let b =
            lift("addi t0, sp, -8\n addi t1, sp, -16\n addi t2, sp, -24\n add t3, sp, t0\n halt");
        let o = optimize(b.clone());
        sanity::assert_sane(&o, "optimized");
        let gets =
            |b: &IrBlock| count_kind(b, |s| matches!(s, Stmt::WrTmp { rhs: Rhs::Get { .. }, .. }));
        assert!(gets(&b) >= 5);
        assert_eq!(gets(&o), 1, "{}", vex_ir::pretty::block_to_string(&o));
    }

    #[test]
    fn constants_fold_through_li_chains() {
        let b = lift("li t0, 6\n li t1, 7\n mul t2, t0, t1\n addi t2, t2, 0\n halt");
        let o = optimize(b);
        sanity::assert_sane(&o, "optimized");
        // the final Put of t2 must receive the folded 42
        let put42 = o.stmts.iter().any(|s| matches!(s, Stmt::Put { src: Atom::Const(42), .. }));
        assert!(put42, "{}", vex_ir::pretty::block_to_string(&o));
        // no Binop statements survive
        assert_eq!(count_kind(&o, |s| matches!(s, Stmt::WrTmp { rhs: Rhs::Binop { .. }, .. })), 0);
    }

    #[test]
    fn division_by_constant_zero_is_preserved() {
        let b = lift("li t0, 5\n li t1, 0\n div t2, t0, t1\n halt");
        let o = optimize(b);
        assert_eq!(
            count_kind(&o, |s| matches!(s, Stmt::WrTmp { rhs: Rhs::Binop { .. }, .. })),
            1,
            "the trapping division must survive"
        );
    }

    #[test]
    fn puts_are_never_removed() {
        let b = lift("li a0, 1\n li a0, 2\n li a0, 3\n halt");
        let o = optimize(b);
        assert_eq!(count_kind(&o, |s| matches!(s, Stmt::Put { .. })), 3);
    }

    #[test]
    fn memory_operations_untouched() {
        let b =
            lift("ld t0, 8(sp)\n st t0, 16(sp)\n cas t1, (a0), t2\n amoadd t3, (a0), t2\n halt");
        let o = optimize(b.clone());
        sanity::assert_sane(&o, "optimized");
        let loads =
            |b: &IrBlock| count_kind(b, |s| matches!(s, Stmt::WrTmp { rhs: Rhs::Load { .. }, .. }));
        let stores = |b: &IrBlock| count_kind(b, |s| matches!(s, Stmt::Store { .. }));
        assert_eq!(loads(&b), loads(&o));
        assert_eq!(stores(&b), stores(&o));
        assert_eq!(count_kind(&o, |s| matches!(s, Stmt::Cas { .. })), 1);
        assert_eq!(count_kind(&o, |s| matches!(s, Stmt::AtomicAdd { .. })), 1);
    }

    #[test]
    fn statically_dead_exits_disappear_and_taken_branches_fold() {
        // beq t0, t0 with equal constants folds the guard to 1
        let b = lift("li t0, 4\n li t1, 4\n bne t0, t1, 0x0\n nop");
        let o = optimize(b);
        assert_eq!(count_kind(&o, |s| matches!(s, Stmt::Exit { .. })), 0, "4 != 4 never taken");
        let b = lift("li t0, 4\n li t1, 4\n beq t0, t1, 0x9990\n nop");
        let o = optimize(b);
        // guard folded to constant 1: exit survives (always taken)
        assert!(o.stmts.iter().any(|s| matches!(s, Stmt::Exit { guard: Atom::Const(1), .. })));
    }

    #[test]
    fn put_then_get_forwards_across() {
        let b = lift("li a0, 9\n add t0, a0, zero\n add t1, a0, t0\n halt");
        let o = optimize(b);
        sanity::assert_sane(&o, "optimized");
        // a0's content (9) is known: no Get of a0 remains and the adds fold
        assert_eq!(
            count_kind(&o, |s| matches!(s, Stmt::WrTmp { rhs: Rhs::Get { .. }, .. })),
            0,
            "{}",
            vex_ir::pretty::block_to_string(&o)
        );
        assert!(o.stmts.iter().any(|s| matches!(s, Stmt::Put { src: Atom::Const(18), .. })));
    }
}
