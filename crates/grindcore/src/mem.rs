//! Sparse paged guest memory.
//!
//! The guest sees a flat 64-bit address space; we back it with 4 KiB
//! pages allocated on first touch. Reads of untouched memory return
//! zeroes without allocating, so large sparse layouts (stacks near the
//! top of the address space, code near the bottom) cost only what is
//! actually used. `footprint` reports resident bytes for the memory
//! columns of Table II / Fig. 4.

use std::collections::HashMap;

const PAGE_BITS: u64 = 12;
/// Guest page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_BITS;
const OFF_MASK: u64 = PAGE_SIZE - 1;

/// Sparse paged guest address space.
#[derive(Default)]
pub struct GuestMemory {
    pages: HashMap<u64, Box<[u8]>>,
}

impl GuestMemory {
    pub fn new() -> GuestMemory {
        GuestMemory::default()
    }

    /// Resident bytes (allocated pages × page size).
    pub fn footprint(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    fn page_mut(&mut self, pno: u64) -> &mut [u8] {
        self.pages.entry(pno).or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Read `dst.len()` bytes from `addr`, crossing pages as needed.
    pub fn read(&self, mut addr: u64, dst: &mut [u8]) {
        let mut done = 0usize;
        while done < dst.len() {
            let pno = addr >> PAGE_BITS;
            let off = (addr & OFF_MASK) as usize;
            let n = usize::min(dst.len() - done, PAGE_SIZE as usize - off);
            match self.pages.get(&pno) {
                Some(p) => dst[done..done + n].copy_from_slice(&p[off..off + n]),
                None => dst[done..done + n].fill(0),
            }
            done += n;
            addr = addr.wrapping_add(n as u64);
        }
    }

    /// Write `src` starting at `addr`, crossing pages as needed.
    pub fn write(&mut self, mut addr: u64, src: &[u8]) {
        let mut done = 0usize;
        while done < src.len() {
            let pno = addr >> PAGE_BITS;
            let off = (addr & OFF_MASK) as usize;
            let n = usize::min(src.len() - done, PAGE_SIZE as usize - off);
            self.page_mut(pno)[off..off + n].copy_from_slice(&src[done..done + n]);
            done += n;
            addr = addr.wrapping_add(n as u64);
        }
    }

    /// Read a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let mut b = [0u8; 1];
        self.read(addr, &mut b);
        b[0]
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.write(addr, &[v]);
    }

    /// Read a NUL-terminated string (capped at `max` bytes).
    pub fn read_cstr(&self, addr: u64, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..max as u64 {
            let b = self.read_u8(addr + i);
            if b == 0 {
                break;
            }
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = GuestMemory::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.footprint(), 0, "reads must not allocate");
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = GuestMemory::new();
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
        m.write_u8(0x1000, 0xff);
        assert_eq!(m.read_u64(0x1000) & 0xff, 0xff);
        assert_eq!(m.footprint(), PAGE_SIZE);
    }

    #[test]
    fn cross_page_access() {
        let mut m = GuestMemory::new();
        let addr = PAGE_SIZE - 3; // straddles the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.footprint(), 2 * PAGE_SIZE);
        let mut big = vec![0xabu8; 3 * PAGE_SIZE as usize];
        m.write(0x10_0000 - 1, &big);
        let mut back = vec![0u8; big.len()];
        m.read(0x10_0000 - 1, &mut back);
        big.copy_from_slice(&back);
        assert!(big.iter().all(|&b| b == 0xab));
    }

    #[test]
    fn sparse_layout_is_cheap() {
        let mut m = GuestMemory::new();
        m.write_u64(0x1_0000, 1); // "code"
        m.write_u64(0x7fff_0000_0000, 2); // "stack"
        assert_eq!(m.footprint(), 2 * PAGE_SIZE);
    }

    #[test]
    fn cstr_reads() {
        let mut m = GuestMemory::new();
        m.write(0x100, b"hello\0world");
        assert_eq!(m.read_cstr(0x100, 64), b"hello");
        assert_eq!(m.read_cstr(0x100, 3), b"hel", "cap respected");
        assert_eq!(m.read_cstr(0x500, 8), b"", "unmapped reads as empty");
    }
}
