//! Sparse paged guest memory.
//!
//! The guest sees a flat 64-bit address space; we back it with 4 KiB
//! pages allocated on first touch. Reads of untouched memory return
//! zeroes without allocating, so large sparse layouts (stacks near the
//! top of the address space, code near the bottom) cost only what is
//! actually used. `footprint` reports resident bytes for the memory
//! columns of Table II / Fig. 4.
//!
//! Layout: pages live in an append-only arena (`Vec<Box<[u8]>>`) and a
//! hash map translates page number → arena index. Pages are never
//! freed, so an arena index is stable for the life of the VM — which
//! makes the one-entry *lookaside* sound: the last page touched is
//! remembered as `(pno, index)` and revalidated by a single compare,
//! turning the hash probe into the uncommon path. Guest accesses are
//! strongly page-local (stack frames, linear array walks), so this is
//! where most of the interpreter's memory time goes.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

const PAGE_BITS: u64 = 12;
/// Guest page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_BITS;
const OFF_MASK: u64 = PAGE_SIZE - 1;
/// No guest address maps to this page number (pno is a 52-bit value),
/// so it marks the lookaside as empty.
const NO_PAGE: u64 = u64::MAX;

/// Multiplicative hasher for page numbers. Every lookaside miss probes
/// the page table, so the default SipHash is pure overhead here: keys
/// are page numbers we control, not attacker-supplied data.
#[derive(Default)]
pub struct PnoHasher(u64);

impl Hasher for PnoHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type PageMap = HashMap<u64, u32, BuildHasherDefault<PnoHasher>>;

/// A per-site inline cache: the page the site resolved to last time, as
/// `(pno, arena index)`. The flat compiler allocates one per load/store
/// op, so a site that walks an array and a site that touches the stack
/// each keep their own page hot instead of thrashing the global
/// lookaside. Stable arena indices make a filled entry valid forever.
///
/// The pair is packed into one `AtomicU64` (`pno << 16 | index`, with
/// `u64::MAX` as the empty sentinel) so the flat block that owns the
/// site is `Send + Sync` and can be compiled off-thread and shared
/// through the sharded translation cache. Relaxed ordering suffices:
/// the value is a pure hint revalidated by the `pno` compare, and only
/// the dispatch thread executes the block, so there is never a racing
/// writer whose update we could observe half-applied (a single 64-bit
/// store is atomic regardless).
pub struct PageIc {
    slot: AtomicU64,
}

/// Packed-entry capacity: page numbers of cacheable sites must fit in
/// 48 bits (guest addresses stay below 2^47, so every real page does)
/// and arena indices in 16 bits. Out-of-range resolutions simply stay
/// uncached — the IC is a hint, the page-map probe is the slow path.
const IC_PNO_LIMIT: u64 = 1 << 48;
const IC_IDX_LIMIT: u32 = 1 << 16;
const IC_EMPTY: u64 = u64::MAX;

impl PageIc {
    pub fn new() -> PageIc {
        PageIc { slot: AtomicU64::new(IC_EMPTY) }
    }

    /// The cached `(pno, arena index)` pair, if any.
    #[inline]
    fn get(&self) -> Option<(u64, u32)> {
        let v = self.slot.load(Ordering::Relaxed);
        if v == IC_EMPTY {
            None
        } else {
            Some((v >> 16, (v & 0xffff) as u32))
        }
    }

    /// Cache a resolution; silently dropped when it does not pack.
    #[inline]
    fn set(&self, pno: u64, idx: u32) {
        if pno < IC_PNO_LIMIT && idx < IC_IDX_LIMIT {
            self.slot.store(pno << 16 | idx as u64, Ordering::Relaxed);
        }
    }
}

impl Default for PageIc {
    fn default() -> PageIc {
        PageIc::new()
    }
}

impl Clone for PageIc {
    /// Cloning resets the cache: a copied block re-warms its own sites.
    fn clone(&self) -> PageIc {
        PageIc::new()
    }
}

impl std::fmt::Debug for PageIc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.get() {
            None => write!(f, "PageIc(empty)"),
            Some((p, i)) => write!(f, "PageIc({p:#x}→{i})"),
        }
    }
}

/// Sparse paged guest address space.
pub struct GuestMemory {
    /// Page number → arena index.
    map: PageMap,
    /// The pages themselves; append-only, indices never move.
    arena: Vec<Box<[u8]>>,
    /// Last page resolved: `(pno, arena index)`. A `Cell` so read paths
    /// can refresh it through `&self`; the VM is single-threaded.
    last: Cell<(u64, u32)>,
}

impl Default for GuestMemory {
    fn default() -> GuestMemory {
        GuestMemory { map: PageMap::default(), arena: Vec::new(), last: Cell::new((NO_PAGE, 0)) }
    }
}

impl GuestMemory {
    pub fn new() -> GuestMemory {
        GuestMemory::default()
    }

    /// Resident bytes (allocated pages × page size).
    pub fn footprint(&self) -> u64 {
        self.arena.len() as u64 * PAGE_SIZE
    }

    /// Arena index of `pno`, if the page exists. Refreshes the lookaside.
    #[inline]
    fn page_index(&self, pno: u64) -> Option<u32> {
        let (lp, li) = self.last.get();
        if lp == pno {
            return Some(li);
        }
        let i = *self.map.get(&pno)?;
        self.last.set((pno, i));
        Some(i)
    }

    /// Arena index of `pno`, allocating the page on first touch.
    #[inline]
    fn page_index_mut(&mut self, pno: u64) -> u32 {
        let (lp, li) = self.last.get();
        if lp == pno {
            return li;
        }
        let arena = &mut self.arena;
        let i = *self.map.entry(pno).or_insert_with(|| {
            arena.push(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            (arena.len() - 1) as u32
        });
        self.last.set((pno, i));
        i
    }

    /// Read `dst.len()` bytes from `addr`, crossing pages as needed.
    pub fn read(&self, mut addr: u64, dst: &mut [u8]) {
        let mut done = 0usize;
        while done < dst.len() {
            let pno = addr >> PAGE_BITS;
            let off = (addr & OFF_MASK) as usize;
            let n = usize::min(dst.len() - done, PAGE_SIZE as usize - off);
            match self.page_index(pno) {
                Some(i) => {
                    dst[done..done + n].copy_from_slice(&self.arena[i as usize][off..off + n])
                }
                None => dst[done..done + n].fill(0),
            }
            done += n;
            addr = addr.wrapping_add(n as u64);
        }
    }

    /// Write `src` starting at `addr`, crossing pages as needed.
    pub fn write(&mut self, mut addr: u64, src: &[u8]) {
        let mut done = 0usize;
        while done < src.len() {
            let pno = addr >> PAGE_BITS;
            let off = (addr & OFF_MASK) as usize;
            let n = usize::min(src.len() - done, PAGE_SIZE as usize - off);
            let i = self.page_index_mut(pno);
            self.arena[i as usize][off..off + n].copy_from_slice(&src[done..done + n]);
            done += n;
            addr = addr.wrapping_add(n as u64);
        }
    }

    /// Read a little-endian u64. Fast path: the access stays within one
    /// page, which is every aligned access and nearly every real one.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr & OFF_MASK) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            return match self.page_index(addr >> PAGE_BITS) {
                Some(i) => {
                    u64::from_le_bytes(self.arena[i as usize][off..off + 8].try_into().unwrap())
                }
                None => 0,
            };
        }
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian u64 (single-page fast path as for reads).
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        let off = (addr & OFF_MASK) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            let i = self.page_index_mut(addr >> PAGE_BITS);
            self.arena[i as usize][off..off + 8].copy_from_slice(&v.to_le_bytes());
            return;
        }
        self.write(addr, &v.to_le_bytes());
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page_index(addr >> PAGE_BITS) {
            Some(i) => self.arena[i as usize][(addr & OFF_MASK) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let i = self.page_index_mut(addr >> PAGE_BITS);
        self.arena[i as usize][(addr & OFF_MASK) as usize] = v;
    }

    /// [`Self::read_u64`] through a per-site inline cache.
    #[inline]
    pub fn read_u64_ic(&self, addr: u64, ic: &PageIc) -> u64 {
        let off = (addr & OFF_MASK) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            let pno = addr >> PAGE_BITS;
            let i = match ic.get() {
                Some((p, i)) if p == pno => i,
                _ => match self.map.get(&pno) {
                    Some(&i) => {
                        ic.set(pno, i);
                        i
                    }
                    None => return 0,
                },
            };
            return u64::from_le_bytes(self.arena[i as usize][off..off + 8].try_into().unwrap());
        }
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// [`Self::write_u64`] through a per-site inline cache.
    #[inline]
    pub fn write_u64_ic(&mut self, addr: u64, v: u64, ic: &PageIc) {
        let off = (addr & OFF_MASK) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            let pno = addr >> PAGE_BITS;
            let i = match ic.get() {
                Some((p, i)) if p == pno => i,
                _ => {
                    let i = self.page_index_mut(pno);
                    ic.set(pno, i);
                    i
                }
            };
            self.arena[i as usize][off..off + 8].copy_from_slice(&v.to_le_bytes());
            return;
        }
        self.write(addr, &v.to_le_bytes());
    }

    /// [`Self::read_u8`] through a per-site inline cache.
    #[inline]
    pub fn read_u8_ic(&self, addr: u64, ic: &PageIc) -> u8 {
        let pno = addr >> PAGE_BITS;
        let i = match ic.get() {
            Some((p, i)) if p == pno => i,
            _ => match self.map.get(&pno) {
                Some(&i) => {
                    ic.set(pno, i);
                    i
                }
                None => return 0,
            },
        };
        self.arena[i as usize][(addr & OFF_MASK) as usize]
    }

    /// [`Self::write_u8`] through a per-site inline cache.
    #[inline]
    pub fn write_u8_ic(&mut self, addr: u64, v: u8, ic: &PageIc) {
        let pno = addr >> PAGE_BITS;
        let i = match ic.get() {
            Some((p, i)) if p == pno => i,
            _ => {
                let i = self.page_index_mut(pno);
                ic.set(pno, i);
                i
            }
        };
        self.arena[i as usize][(addr & OFF_MASK) as usize] = v;
    }

    /// Read a NUL-terminated string (capped at `max` bytes).
    pub fn read_cstr(&self, addr: u64, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..max as u64 {
            let b = self.read_u8(addr + i);
            if b == 0 {
                break;
            }
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = GuestMemory::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.footprint(), 0, "reads must not allocate");
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = GuestMemory::new();
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
        m.write_u8(0x1000, 0xff);
        assert_eq!(m.read_u64(0x1000) & 0xff, 0xff);
        assert_eq!(m.footprint(), PAGE_SIZE);
    }

    #[test]
    fn cross_page_access() {
        let mut m = GuestMemory::new();
        let addr = PAGE_SIZE - 3; // straddles the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.footprint(), 2 * PAGE_SIZE);
        let mut big = vec![0xabu8; 3 * PAGE_SIZE as usize];
        m.write(0x10_0000 - 1, &big);
        let mut back = vec![0u8; big.len()];
        m.read(0x10_0000 - 1, &mut back);
        big.copy_from_slice(&back);
        assert!(big.iter().all(|&b| b == 0xab));
    }

    #[test]
    fn sparse_layout_is_cheap() {
        let mut m = GuestMemory::new();
        m.write_u64(0x1_0000, 1); // "code"
        m.write_u64(0x7fff_0000_0000, 2); // "stack"
        assert_eq!(m.footprint(), 2 * PAGE_SIZE);
    }

    #[test]
    fn lookaside_tracks_page_switches() {
        let mut m = GuestMemory::new();
        m.write_u64(0x1000, 1);
        m.write_u64(0x9000, 2);
        // Alternate between the two pages: every access revalidates the
        // lookaside, so stale hits would return the wrong page's data.
        for _ in 0..4 {
            assert_eq!(m.read_u64(0x1000), 1);
            assert_eq!(m.read_u64(0x9000), 2);
            assert_eq!(m.read_u64(0x5000), 0, "untouched page stays zero");
        }
        m.write_u64(0x5000, 3); // allocates; lookaside now points at it
        assert_eq!(m.read_u64(0x5000), 3);
        assert_eq!(m.read_u64(0x1000), 1);
    }

    #[test]
    fn cstr_reads() {
        let mut m = GuestMemory::new();
        m.write(0x100, b"hello\0world");
        assert_eq!(m.read_cstr(0x100, 64), b"hello");
        assert_eq!(m.read_cstr(0x100, 3), b"hel", "cap respected");
        assert_eq!(m.read_cstr(0x500, 8), b"", "unmapped reads as empty");
    }
}
