//! The tool plugin API — grindcore's analog of Valgrind's tool interface.
//!
//! A *tool* (paper §II-B: "a Valgrind tool includes the Valgrind core and
//! a plugin") customizes the framework in four ways:
//!
//! 1. **IR instrumentation**: [`Tool::instrument`] receives each freshly
//!    lifted superblock and may inject statements — typically
//!    [`vex_ir::DirtyCall::ToolMem`] callbacks observing loads/stores
//!    (see [`instrument_mem_accesses`]).
//! 2. **Client requests**: the guest runtime forwards parallel-model
//!    events via `clreq`; they arrive at [`Tool::client_request`].
//! 3. **Function replacement**: [`Tool::replacements`] names guest
//!    symbols to hijack (e.g. `malloc`, `free`); calls to them run
//!    [`Tool::replaced_call`] on the host instead of guest code.
//! 4. **Lifecycle hooks**: thread creation/exit and program end.

use crate::vm::{Tid, VmCore};
use vex_ir::{Atom, DirtyCall, IrBlock, Rhs, Stmt};

/// Information about a block being instrumented.
#[derive(Clone, Debug)]
pub struct BlockMeta {
    /// Guest address of the block's first instruction.
    pub base: u64,
    /// Name of the enclosing function symbol, if known.
    pub fn_symbol: Option<String>,
}

/// A request to replace a guest function with a host callback.
#[derive(Clone, Debug)]
pub struct FnReplacement {
    /// Glob-ish pattern matched against function symbol names
    /// (`*` matches any suffix; otherwise exact match).
    pub pattern: String,
    /// Tool-chosen id passed back to [`Tool::replaced_call`].
    pub id: u32,
}

/// Match a replacement pattern against a symbol name.
pub fn pattern_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => pattern == name,
    }
}

/// Classification of a synchronization client request, delivered to
/// [`Tool::sync_point`] after the request itself has been handled.
///
/// The VM is single-threaded: guest threads interleave under one
/// deterministic scheduler, so these events arrive in a total order.
/// Together with the monotonic sequence number passed alongside, that is
/// enough ordering information for a tool to maintain an online
/// happens-before frontier (e.g. to retire analysis state for program
/// regions that can no longer race with the future) without any global
/// state of its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncKind {
    ParallelBegin,
    ParallelEnd,
    ImplicitTaskBegin,
    ImplicitTaskEnd,
    TaskCreate,
    TaskSpawn,
    TaskBegin,
    TaskEnd,
    Taskwait,
    TaskgroupBegin,
    TaskgroupEnd,
    Barrier,
    CriticalEnter,
    CriticalExit,
    TaskFulfill,
}

impl SyncKind {
    /// Map a client-request code to its sync classification, if it is a
    /// synchronization event at all.
    pub fn from_creq(code: u64) -> Option<SyncKind> {
        use crate::creq::*;
        Some(match code {
            PARALLEL_BEGIN => SyncKind::ParallelBegin,
            PARALLEL_END => SyncKind::ParallelEnd,
            IMPLICIT_TASK_BEGIN => SyncKind::ImplicitTaskBegin,
            IMPLICIT_TASK_END => SyncKind::ImplicitTaskEnd,
            TASK_CREATE => SyncKind::TaskCreate,
            TASK_SPAWN => SyncKind::TaskSpawn,
            TASK_BEGIN => SyncKind::TaskBegin,
            TASK_END => SyncKind::TaskEnd,
            TASKWAIT => SyncKind::Taskwait,
            TASKGROUP_BEGIN => SyncKind::TaskgroupBegin,
            TASKGROUP_END => SyncKind::TaskgroupEnd,
            BARRIER => SyncKind::Barrier,
            CRITICAL_ENTER => SyncKind::CriticalEnter,
            CRITICAL_EXIT => SyncKind::CriticalExit,
            TASK_FULFILL => SyncKind::TaskFulfill,
            _ => return None,
        })
    }

    /// Short stable label for this sync event, used by trace output (the
    /// tg-obs guest track) and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            SyncKind::ParallelBegin => "parallel begin",
            SyncKind::ParallelEnd => "parallel end",
            SyncKind::ImplicitTaskBegin => "implicit task begin",
            SyncKind::ImplicitTaskEnd => "implicit task end",
            SyncKind::TaskCreate => "task create",
            SyncKind::TaskSpawn => "task spawn",
            SyncKind::TaskBegin => "task begin",
            SyncKind::TaskEnd => "task end",
            SyncKind::Taskwait => "taskwait",
            SyncKind::TaskgroupBegin => "taskgroup begin",
            SyncKind::TaskgroupEnd => "taskgroup end",
            SyncKind::Barrier => "barrier",
            SyncKind::CriticalEnter => "critical enter",
            SyncKind::CriticalExit => "critical exit",
            SyncKind::TaskFulfill => "task fulfill",
        }
    }

    /// True for events after which a segment that was running can have
    /// closed: these are the natural points to recompute a retirement
    /// frontier.
    pub fn closes_segments(self) -> bool {
        matches!(
            self,
            SyncKind::ParallelEnd
                | SyncKind::ImplicitTaskEnd
                | SyncKind::TaskEnd
                | SyncKind::Taskwait
                | SyncKind::TaskgroupEnd
                | SyncKind::Barrier
                | SyncKind::CriticalEnter
                | SyncKind::CriticalExit
                | SyncKind::TaskFulfill
        )
    }
}

/// The tool plugin trait. All hooks have no-op defaults so simple tools
/// implement only what they need.
#[allow(unused_variables)]
pub trait Tool {
    /// Tool name, for diagnostics.
    fn name(&self) -> &'static str;

    /// Rewrite a freshly lifted superblock. The result is cached: this
    /// runs once per translated block, not once per execution — exactly
    /// Valgrind's cost model.
    fn instrument(&mut self, block: IrBlock, meta: &BlockMeta) -> IrBlock {
        block
    }

    /// A `ToolMem` dirty call fired: the guest is about to access
    /// `[addr, addr+size)`. `pc` is the guest instruction address.
    fn mem_access(
        &mut self,
        core: &mut VmCore,
        tid: Tid,
        addr: u64,
        size: u64,
        write: bool,
        pc: u64,
    ) {
    }

    /// A custom `ToolHelper { id }` dirty call fired.
    fn tool_helper(&mut self, core: &mut VmCore, tid: Tid, id: u32, args: &[u64]) -> u64 {
        0
    }

    /// A client request from the guest. Return value lands in the
    /// request's destination register.
    fn client_request(&mut self, core: &mut VmCore, tid: Tid, code: u64, args: [u64; 5]) -> u64 {
        0
    }

    /// A synchronization client request completed. Fired immediately
    /// after [`Tool::client_request`] for requests whose code classifies
    /// as a [`SyncKind`]; `seq` is the global (cross-thread) client-
    /// request sequence number, monotonically increasing in the VM's
    /// deterministic event order. Tools that analyze online use this to
    /// advance their retirement frontier at exactly the points where
    /// happens-before edges form.
    fn sync_point(&mut self, core: &mut VmCore, tid: Tid, kind: SyncKind, seq: u64) {}

    /// Guest functions this tool wants to replace.
    fn replacements(&self) -> Vec<FnReplacement> {
        Vec::new()
    }

    /// A replaced function was called. `args` are `a0..a7`; the return
    /// value lands in `a0`.
    fn replaced_call(&mut self, core: &mut VmCore, tid: Tid, id: u32, args: [u64; 8]) -> u64 {
        0
    }

    /// A new guest thread exists (fired on the creating thread).
    fn thread_created(&mut self, core: &mut VmCore, parent: Tid, child: Tid) {}

    /// A guest thread exited.
    fn thread_exited(&mut self, core: &mut VmCore, tid: Tid) {}

    /// The program finished (or was stopped); last chance to analyze.
    fn program_end(&mut self, core: &mut VmCore) {}

    /// Bytes of host memory the tool's data structures occupy, for the
    /// memory-overhead accounting of Table II.
    fn tool_bytes(&self) -> u64 {
        0
    }
}

/// The no-op tool ("nulgrind"): pure translation/emulation overhead.
#[derive(Default)]
pub struct NulTool;

impl Tool for NulTool {
    fn name(&self) -> &'static str {
        "nulgrind"
    }
}

/// A lackey-style counting tool: instruments every access and counts.
/// Used in tests and in the DBI-overhead ablation bench.
#[derive(Default)]
pub struct CountTool {
    pub reads: u64,
    pub writes: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl Tool for CountTool {
    fn name(&self) -> &'static str {
        "countgrind"
    }

    fn instrument(&mut self, block: IrBlock, _meta: &BlockMeta) -> IrBlock {
        instrument_mem_accesses(block)
    }

    fn mem_access(
        &mut self,
        _core: &mut VmCore,
        _tid: Tid,
        _addr: u64,
        size: u64,
        write: bool,
        _pc: u64,
    ) {
        if write {
            self.writes += 1;
            self.write_bytes += size;
        } else {
            self.reads += 1;
            self.read_bytes += size;
        }
    }
}

/// Standard instrumentation pass: insert a `ToolMem` dirty call before
/// every guest load, store and atomic. Atomics get both a read and a
/// write callback, matching how Valgrind tools see `IRCAS`.
///
/// Because the IR is flat, the address operand of each access is always
/// an atom already defined earlier in the block, so insertion is purely
/// positional.
pub fn instrument_mem_accesses(block: IrBlock) -> IrBlock {
    instrument_mem_accesses_filtered(block, &mut |_, _| true)
}

/// Like [`instrument_mem_accesses`], but consults `keep(pc, write)`
/// before inserting each callback, where `pc` is the guest address of
/// the enclosing instruction (from the preceding `IMark`). Accesses for
/// which `keep` returns `false` execute uninstrumented. Atomics are
/// always instrumented regardless of the filter: they are
/// synchronization by definition, so no static analysis may prune them.
pub fn instrument_mem_accesses_filtered(
    mut block: IrBlock,
    keep: &mut dyn FnMut(u64, bool) -> bool,
) -> IrBlock {
    let mut out: Vec<Stmt> = Vec::with_capacity(block.stmts.len() * 2);
    let mut pc = block.base;
    for s in block.stmts.drain(..) {
        match &s {
            Stmt::IMark { addr, .. } => {
                pc = *addr;
                out.push(s);
            }
            Stmt::WrTmp { rhs: Rhs::Load { ty, addr }, .. } => {
                if keep(pc, false) {
                    out.push(mem_cb(false, *addr, ty.size()));
                }
                out.push(s);
            }
            Stmt::Store { ty, addr, .. } => {
                if keep(pc, true) {
                    out.push(mem_cb(true, *addr, ty.size()));
                }
                out.push(s);
            }
            Stmt::Cas { addr, .. } | Stmt::AtomicAdd { addr, .. } => {
                out.push(mem_cb(false, *addr, 8));
                out.push(mem_cb(true, *addr, 8));
                out.push(s);
            }
            _ => out.push(s),
        }
    }
    block.stmts = out;
    block
}

fn mem_cb(write: bool, addr: Atom, size: u64) -> Stmt {
    Stmt::Dirty { call: DirtyCall::ToolMem { write }, args: vec![addr, Atom::imm(size)], dst: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_ir::{sanity, Atom, BinOp, IrBlock, JumpKind, Rhs, Stmt, Ty};

    fn block_with_accesses() -> IrBlock {
        let mut b = IrBlock::new(0x1000);
        let t0 = b.new_temp();
        let t1 = b.new_temp();
        let t2 = b.new_temp();
        b.stmts.push(Stmt::IMark { addr: 0x1000, len: 16 });
        b.stmts.push(Stmt::WrTmp { dst: t0, rhs: Rhs::Get { reg: 2 } });
        b.stmts.push(Stmt::WrTmp { dst: t1, rhs: Rhs::Load { ty: Ty::I64, addr: t0.into() } });
        b.stmts.push(Stmt::WrTmp {
            dst: t2,
            rhs: Rhs::Binop { op: BinOp::Add, lhs: t1.into(), rhs: Atom::imm(1) },
        });
        b.stmts.push(Stmt::Store { ty: Ty::I64, addr: t0.into(), val: t2.into() });
        b.next = Atom::imm(0x1010);
        b.jumpkind = JumpKind::Boring;
        b
    }

    #[test]
    fn instrumentation_inserts_callbacks_in_order() {
        let b = instrument_mem_accesses(block_with_accesses());
        sanity::assert_sane(&b, "instrumented");
        let kinds: Vec<String> = b
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Dirty { call: DirtyCall::ToolMem { write }, .. } => {
                    Some(if *write { "w".into() } else { "r".into() })
                }
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec!["r", "w"]);
        // Callback precedes its access.
        let pos_cb = b
            .stmts
            .iter()
            .position(|s| {
                matches!(s, Stmt::Dirty { call: DirtyCall::ToolMem { write: false }, .. })
            })
            .unwrap();
        let pos_load = b
            .stmts
            .iter()
            .position(|s| matches!(s, Stmt::WrTmp { rhs: Rhs::Load { .. }, .. }))
            .unwrap();
        assert!(pos_cb < pos_load);
    }

    #[test]
    fn atomics_get_read_and_write_callbacks() {
        let mut b = IrBlock::new(0);
        let t0 = b.new_temp();
        b.stmts.push(Stmt::Cas {
            dst: t0,
            addr: Atom::imm(0x2000),
            expected: Atom::imm(0),
            new: Atom::imm(1),
        });
        let b = instrument_mem_accesses(b);
        sanity::assert_sane(&b, "instrumented cas");
        let n_cbs = b
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Dirty { call: DirtyCall::ToolMem { .. }, .. }))
            .count();
        assert_eq!(n_cbs, 2);
    }

    #[test]
    fn filtered_instrumentation_skips_pruned_pcs_but_not_atomics() {
        let mut b = block_with_accesses();
        // Give the store its own instruction, plus a trailing atomic.
        b.stmts.push(Stmt::IMark { addr: 0x1010, len: 16 });
        let t_cas = b.new_temp();
        b.stmts.push(Stmt::Cas {
            dst: t_cas,
            addr: Atom::imm(0x2000),
            expected: Atom::imm(0),
            new: Atom::imm(1),
        });
        let mut asked = Vec::new();
        let b = instrument_mem_accesses_filtered(b, &mut |pc, write| {
            asked.push((pc, write));
            false // prune everything prunable
        });
        sanity::assert_sane(&b, "filtered");
        // Load and store callbacks are gone; the atomic keeps both.
        let kinds: Vec<bool> = b
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Dirty { call: DirtyCall::ToolMem { write }, .. } => Some(*write),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![false, true]);
        // The filter saw the load and store at their IMark pc, and was
        // never consulted for the atomic.
        assert_eq!(asked, vec![(0x1000, false), (0x1000, true)]);
    }

    #[test]
    fn pattern_matching() {
        assert!(pattern_matches("malloc", "malloc"));
        assert!(!pattern_matches("malloc", "mallocx"));
        assert!(pattern_matches("__kmp*", "__kmp_task_alloc"));
        assert!(pattern_matches("*", "anything"));
        assert!(!pattern_matches("__kmp*", "kmp_x"));
    }
}
