//! The bounded, sharded translation cache and superblock-chaining state.
//!
//! Valgrind keeps translated superblocks in a fixed-size code cache and
//! *chains* them: once a block's exit has resolved to another cached
//! translation, the exit jumps there directly instead of going back
//! through the dispatcher's hash lookup (Cabecinhas et al., "Optimizing
//! Binary Code Produced by Valgrind"). This module reproduces that
//! machinery for the IR interpreter:
//!
//! * translations live in a slab of capacity-bounded **slots**; a
//!   [`CacheRef`] (shard + slot + generation) names one and can be
//!   validated in O(1) even after the slot was recycled;
//! * each cached block carries one **chain-link** per exit (side exits
//!   in order, fallthrough last) plus the reverse *pred* edges needed to
//!   **unchain** it when either endpoint dies;
//! * indirect transfers (returns, computed jumps) go through a small
//!   direct-mapped **indirect-branch target cache** keyed on
//!   `(site, target)`, validated by generation so stale entries miss
//!   instead of dangling;
//! * eviction is **LRU-clock per shard**: every dispatch sets the
//!   block's reference bit, the clock hand sweeps bits clear and evicts
//!   the first unreferenced block, unchaining it from all neighbours;
//! * [`TransCache::discard_range`] invalidates every translation
//!   overlapping a guest address range — the self-modifying-code /
//!   `DISCARD_TRANSLATIONS` client-request path. Invalidation walks
//!   every shard.
//!
//! # Sharding and the compile pool
//!
//! The cache is split into N **shards** by a multiplicative hash of the
//! block's base pc, each shard behind its own mutex with its own slot
//! slab, clock hand, and IBTC. The dispatch thread probes and the
//! background compile workers ([`crate::compilepool`]) install finished
//! flat forms concurrently, each touching exactly one shard lock at a
//! time. Lock discipline: **no path ever holds two shard locks**.
//! Cross-shard operations (following a chain link, severing edges of an
//! evicted block) lock shards strictly one after another and re-validate
//! generations after every re-acquisition, so a block that died between
//! two steps simply misses. Workers never insert or evict — they only
//! *promote* an existing IR-only entry to its compiled form via
//! [`TransCache::install_compiled`], and only when the entry still holds
//! the exact `Arc<IrBlock>` the job was compiled from (pointer identity),
//! so a block discarded and re-lifted in the meantime can never be
//! served a stale compile.
//!
//! The invariant the chaining protocol maintains: **a link, pred edge,
//! or IBTC entry never outlives its target unvalidated.** Links and pred
//! edges are eagerly cleared on eviction (deferred shard-by-shard for
//! cross-shard edges, with generation re-validation); IBTC entries are
//! lazily invalidated by the generation check.

use crate::flat::FlatBlock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use vex_ir::IrBlock;

/// Number of entries in each shard's indirect-branch target cache
/// (power of two).
const IBTC_ENTRIES: usize = 1024;

/// A validated handle to a cached translation: shard + slot index plus
/// the generation the slot had when the handle was issued. A handle is
/// live iff the slot is occupied and the generations match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheRef {
    pub shard: u32,
    pub slot: u32,
    pub gen: u32,
}

/// Counters produced by eviction/invalidation, folded into
/// [`crate::vm::VmStats`] by the VM.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvictStats {
    /// Blocks removed from the cache.
    pub evicted: u64,
    /// Chain links (incoming or outgoing) severed.
    pub unchained: u64,
    /// Approximate bytes released.
    pub bytes: u64,
}

/// The form a probe found for a pc: the flat compiled block (chained
/// dispatch), or — while a background compile is still in flight — the
/// instrumented IR for the tree-walk fallback.
pub enum CachedForm {
    /// Compiled flat form: executable by the chained engine.
    Flat(Arc<FlatBlock>),
    /// IR only: the compile worker has not promoted this block yet (or
    /// the reference engine inserted it). Run it through the tree-walk.
    Ir(Arc<IrBlock>),
}

struct CachedBlock {
    /// The instrumented IR, absent only for blocks installed straight
    /// from the persistent code cache (which stores the flat form only;
    /// the chained engine never consults the IR).
    ir: Option<Arc<IrBlock>>,
    /// Flat compiled form. Present from birth under the synchronous
    /// chained engine; filled in later by [`TransCache::install_compiled`]
    /// under the async compile pool; never present under the reference
    /// engine.
    flat: Option<Arc<FlatBlock>>,
    base: u64,
    /// One past the last guest byte the block's instructions cover.
    end: u64,
    /// Per-exit successor links: side exits in statement order, the
    /// fallthrough exit last. Targets may live in any shard.
    links: Box<[Option<CacheRef>]>,
    /// Reverse edges: (pred handle, pred exit ordinal) of every link
    /// that points at this block. Needed to unchain on eviction; the
    /// full handle (not just a slot) so a recycled pred slot can never
    /// have a survivor's link severed by mistake.
    preds: Vec<(CacheRef, u32)>,
    /// LRU-clock reference bit, set on every dispatch to this block.
    referenced: bool,
    /// Approximate host bytes of the translation.
    bytes: u64,
}

#[derive(Clone, Copy)]
struct IbtcEntry {
    site: u64,
    target: u64,
    dst: CacheRef,
}

/// One shard: an independent slot slab with its own clock and IBTC.
struct Shard {
    slots: Vec<Option<CachedBlock>>,
    /// Per-slot generation, bumped on eviction; survives slot recycling.
    gens: Vec<u32>,
    /// Dispatcher lookup: guest base pc → slot.
    map: HashMap<u64, u32>,
    free: Vec<u32>,
    len: usize,
    hand: usize,
    ibtc: Vec<Option<IbtcEntry>>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            slots: Vec::new(),
            gens: Vec::new(),
            map: HashMap::new(),
            free: Vec::new(),
            len: 0,
            hand: 0,
            ibtc: vec![None; IBTC_ENTRIES],
        }
    }

    fn is_live(&self, r: CacheRef) -> bool {
        let i = r.slot as usize;
        i < self.slots.len() && self.gens[i] == r.gen && self.slots[i].is_some()
    }

    fn alloc_slot(&mut self) -> u32 {
        self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.gens.push(0);
            (self.slots.len() - 1) as u32
        })
    }
}

/// Cross-shard edge fixups collected while a shard lock was held,
/// applied one shard lock at a time after release.
#[derive(Default)]
struct Deferred {
    /// `(pred, exit, victim)`: clear `pred.links[exit]` if it still
    /// points at `victim`.
    preds: Vec<(CacheRef, u32, CacheRef)>,
    /// `(target, victim)`: drop `victim`'s pred edges from `target`.
    succs: Vec<(CacheRef, CacheRef)>,
}

/// The sharded translation cache. All methods take `&self`; each shard
/// is independently locked, so the dispatch thread and the compile
/// workers operate concurrently without a global lock.
pub struct TransCache {
    shards: Box<[Mutex<Shard>]>,
    /// Per-shard slot capacity (total capacity divided up, min 2).
    shard_capacity: usize,
}

impl TransCache {
    /// A single-shard cache holding at most `capacity` blocks — the
    /// synchronous engine's configuration, byte-for-byte the historical
    /// eviction behavior.
    pub fn new(capacity: usize) -> TransCache {
        TransCache::with_shards(capacity, 1)
    }

    /// A cache of `n_shards` shards (min 1) sharing `capacity` slots as
    /// evenly as the ceiling division allows (each shard keeps at least
    /// 2 so the per-shard clock always has a victim).
    pub fn with_shards(capacity: usize, n_shards: usize) -> TransCache {
        let n = n_shards.max(1);
        let shard_capacity = (capacity.max(2)).div_ceil(n).max(2);
        TransCache { shards: (0..n).map(|_| Mutex::new(Shard::new())).collect(), shard_capacity }
    }

    /// Which shard `pc` lives in.
    #[inline]
    fn shard_of(&self, pc: u64) -> u32 {
        if self.shards.len() == 1 {
            return 0;
        }
        let h = pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h % self.shards.len() as u64) as u32
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Resident blocks across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity (sum of per-shard capacities).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Is the handle still valid (occupied slot, matching generation)?
    pub fn is_live(&self, r: CacheRef) -> bool {
        match self.shards.get(r.shard as usize) {
            Some(s) => s.lock().is_live(r),
            None => false,
        }
    }

    /// Dispatcher probe: find the translation for `pc` and mark it
    /// recently used.
    pub fn lookup(&self, pc: u64) -> Option<CacheRef> {
        let shard = self.shard_of(pc);
        let mut s = self.shards[shard as usize].lock();
        let slot = *s.map.get(&pc)?;
        let gen = s.gens[slot as usize];
        let b = s.slots[slot as usize].as_mut().expect("map points at empty slot");
        b.referenced = true;
        Some(CacheRef { shard, slot, gen })
    }

    /// Probe returning the executable form too: the flat block when the
    /// translation is compiled, the IR when a background compile is
    /// still pending (or the reference engine inserted it). Marks the
    /// block recently used.
    pub fn probe(&self, pc: u64) -> Option<(CacheRef, CachedForm)> {
        let shard = self.shard_of(pc);
        let mut s = self.shards[shard as usize].lock();
        let slot = *s.map.get(&pc)?;
        let gen = s.gens[slot as usize];
        let b = s.slots[slot as usize].as_mut().expect("map points at empty slot");
        b.referenced = true;
        let form = match &b.flat {
            Some(f) => CachedForm::Flat(f.clone()),
            None => CachedForm::Ir(b.ir.clone().expect("cached block with neither IR nor flat")),
        };
        Some((CacheRef { shard, slot, gen }, form))
    }

    /// Chain-hit path: validate `r` against `pc` and hand out the IR
    /// without touching the hash map. Returns `None` when the handle is
    /// stale (evicted/discarded) or resolves to a different block.
    pub fn take_for(&self, r: CacheRef, pc: u64) -> Option<Arc<IrBlock>> {
        let mut s = self.shards.get(r.shard as usize)?.lock();
        if !s.is_live(r) {
            return None;
        }
        let b = s.slots[r.slot as usize].as_mut().unwrap();
        if b.base != pc {
            return None;
        }
        b.referenced = true;
        b.ir.clone()
    }

    /// [`Self::take_for`] for the chained engine: hands out the flat
    /// compiled form instead of the IR.
    pub fn take_flat_for(&self, r: CacheRef, pc: u64) -> Option<Arc<FlatBlock>> {
        let mut s = self.shards.get(r.shard as usize)?.lock();
        if !s.is_live(r) {
            return None;
        }
        let b = s.slots[r.slot as usize].as_mut().unwrap();
        if b.base != pc {
            return None;
        }
        b.referenced = true;
        b.flat.clone()
    }

    /// The IR of a handle known to be live (fresh from `lookup`/`insert`).
    /// Panics for blocks installed from the persistent code cache, which
    /// carry no IR — only the reference engine calls this, and the code
    /// cache is chaining-gated, so the two never meet.
    pub fn ir_of(&self, r: CacheRef) -> Arc<IrBlock> {
        self.shards[r.shard as usize].lock().slots[r.slot as usize]
            .as_ref()
            .expect("stale CacheRef")
            .ir
            .clone()
            .expect("block installed from the code cache has no IR")
    }

    /// The flat form of a live handle; panics if the block was inserted
    /// without one (i.e. by the reference engine).
    pub fn flat_of(&self, r: CacheRef) -> Arc<FlatBlock> {
        self.shards[r.shard as usize].lock().slots[r.slot as usize]
            .as_ref()
            .expect("stale CacheRef")
            .flat
            .clone()
            .expect("block cached without a flat form")
    }

    /// Number of link slots (side exits + fallthrough) of a live block.
    pub fn n_exits(&self, r: CacheRef) -> u32 {
        self.shards[r.shard as usize].lock().slots[r.slot as usize]
            .as_ref()
            .expect("stale CacheRef")
            .links
            .len() as u32
    }

    /// Insert a fresh translation, evicting one block of its shard if
    /// that shard is at capacity. `flat` carries the chained engine's
    /// compiled form (None under the reference engine, and under the
    /// async compile pool until the worker promotes the block).
    pub fn insert(
        &self,
        ir: Arc<IrBlock>,
        flat: Option<Arc<FlatBlock>>,
        bytes: u64,
    ) -> (CacheRef, EvictStats) {
        let n_links = ir.side_exit_count() + 1;
        let (base, end) = ir.extent();
        self.insert_block(CachedBlock {
            ir: Some(ir),
            flat,
            base,
            end,
            links: vec![None; n_links].into_boxed_slice(),
            preds: Vec::new(),
            referenced: true,
            bytes,
        })
    }

    /// Insert a translation loaded from the persistent code cache: only
    /// the flat compiled form exists (no IR). Chain links start empty
    /// and are re-resolved by the normal runtime chaining protocol; the
    /// link count mirrors `insert`'s `side_exit_count() + 1` via the
    /// flat block's exit table.
    pub fn insert_flat(
        &self,
        flat: Arc<FlatBlock>,
        end: u64,
        bytes: u64,
    ) -> (CacheRef, EvictStats) {
        let n_links = flat.exits.len() + 1;
        let base = flat.base;
        self.insert_block(CachedBlock {
            ir: None,
            flat: Some(flat),
            base,
            end,
            links: vec![None; n_links].into_boxed_slice(),
            preds: Vec::new(),
            referenced: true,
            bytes,
        })
    }

    fn insert_block(&self, b: CachedBlock) -> (CacheRef, EvictStats) {
        let shard = self.shard_of(b.base);
        let mut ev = EvictStats::default();
        let mut deferred = Deferred::default();
        let r = {
            let mut s = self.shards[shard as usize].lock();
            if s.len >= self.shard_capacity {
                Self::evict_one(shard, &mut s, &mut ev, &mut deferred);
            }
            let slot = s.alloc_slot();
            s.map.insert(b.base, slot);
            s.slots[slot as usize] = Some(b);
            s.len += 1;
            CacheRef { shard, slot, gen: s.gens[slot as usize] }
        };
        self.apply_deferred(deferred, &mut ev);
        (r, ev)
    }

    /// Promote an IR-only entry to its compiled flat form — the compile
    /// worker's install path. Succeeds only when the entry for the IR's
    /// base pc still holds *this exact* `Arc<IrBlock>` (pointer
    /// identity): a block discarded (SMC) and re-lifted in the meantime
    /// holds a different allocation, so the stale compile is dropped.
    /// Returns whether the flat form was installed.
    pub fn install_compiled(&self, ir: &Arc<IrBlock>, flat: Arc<FlatBlock>) -> bool {
        let base = ir.extent().0;
        let shard = self.shard_of(base);
        let mut s = self.shards[shard as usize].lock();
        let Some(&slot) = s.map.get(&base) else { return false };
        let b = s.slots[slot as usize].as_mut().expect("map points at empty slot");
        match &b.ir {
            Some(cur) if Arc::ptr_eq(cur, ir) && b.flat.is_none() => {
                b.flat = Some(flat);
                true
            }
            _ => false,
        }
    }

    /// The whole chain-hit fast path in one pass: follow the link for
    /// exit `exit` of `from` to a live block based at `pc`, marking it
    /// recently used. Hands out the flat form (chained engine only).
    /// Two shard locks taken strictly in sequence, never together; the
    /// target's generation re-validates after the handoff.
    #[inline]
    pub fn follow(&self, from: CacheRef, exit: u32, pc: u64) -> Option<(CacheRef, Arc<FlatBlock>)> {
        let l = {
            let s = self.shards.get(from.shard as usize)?.lock();
            let fi = from.slot as usize;
            if fi >= s.slots.len() || s.gens[fi] != from.gen {
                return None;
            }
            (*s.slots[fi].as_ref()?.links.get(exit as usize)?)?
        };
        let mut s = self.shards.get(l.shard as usize)?.lock();
        if !s.is_live(l) {
            return None;
        }
        let b = s.slots[l.slot as usize].as_mut().unwrap();
        if b.base != pc {
            return None;
        }
        b.referenced = true;
        Some((l, b.flat.clone()?))
    }

    /// The existing chain link for exit `exit` of `from`, if both ends
    /// are still live.
    pub fn link_of(&self, from: CacheRef, exit: u32) -> Option<CacheRef> {
        let l = {
            let s = self.shards.get(from.shard as usize)?.lock();
            if !s.is_live(from) {
                return None;
            }
            (*s.slots[from.slot as usize].as_ref().unwrap().links.get(exit as usize)?)?
        };
        if self.is_live(l) {
            Some(l)
        } else {
            None
        }
    }

    /// Patch exit `exit` of `from` to jump directly to `to`. Returns
    /// `false` when either handle is stale or the link already exists.
    pub fn link(&self, from: CacheRef, exit: u32, to: CacheRef) -> bool {
        // Only the dispatch thread links (workers just promote), so the
        // sequence of single-shard critical sections below cannot
        // interleave with an eviction; generations are still checked at
        // every step so a stale handle simply fails.
        if !self.is_live(to) {
            return false;
        }
        let old = {
            let mut s = self.shards[from.shard as usize].lock();
            if !s.is_live(from) {
                return false;
            }
            let fb = s.slots[from.slot as usize].as_mut().unwrap();
            let Some(slot_ref) = fb.links.get_mut(exit as usize) else { return false };
            match *slot_ref {
                Some(old) if old == to => return false,
                old => {
                    *slot_ref = Some(to);
                    old
                }
            }
        };
        // Re-link: drop the stale pred edge from the old target.
        if let Some(old) = old {
            let mut s = self.shards[old.shard as usize].lock();
            if s.is_live(old) {
                let ob = s.slots[old.slot as usize].as_mut().unwrap();
                ob.preds.retain(|&(p, e)| !(p == from && e == exit));
            }
        }
        let mut s = self.shards[to.shard as usize].lock();
        if s.is_live(to) {
            s.slots[to.slot as usize].as_mut().unwrap().preds.push((from, exit));
        }
        true
    }

    fn ibtc_index(site: u64, target: u64) -> usize {
        let h = (site ^ target.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 54) as usize & (IBTC_ENTRIES - 1)
    }

    /// Look up an indirect transfer `(site, target)`; stale entries miss.
    /// The entry lives in the *target's* shard, so its destination block
    /// validates under the same lock.
    pub fn ibtc_lookup(&self, site: u64, target: u64) -> Option<CacheRef> {
        let shard = self.shard_of(target);
        let s = self.shards[shard as usize].lock();
        let e = s.ibtc[Self::ibtc_index(site, target)]?;
        if e.site != site || e.target != target || e.dst.shard != shard || !s.is_live(e.dst) {
            return None;
        }
        if s.slots[e.dst.slot as usize].as_ref().unwrap().base != target {
            return None;
        }
        Some(e.dst)
    }

    /// Fill (or overwrite) the IBTC entry for `(site, target)`.
    pub fn ibtc_insert(&self, site: u64, target: u64, dst: CacheRef) {
        let shard = self.shard_of(target);
        let mut s = self.shards[shard as usize].lock();
        s.ibtc[Self::ibtc_index(site, target)] = Some(IbtcEntry { site, target, dst });
    }

    /// Clock sweep of one shard (its lock held by the caller).
    fn evict_one(shard: u32, s: &mut Shard, ev: &mut EvictStats, deferred: &mut Deferred) {
        let n = s.slots.len();
        if n == 0 {
            return;
        }
        // Clock: first full sweep gives every block a second chance by
        // clearing its reference bit; by the end of the second sweep an
        // unreferenced victim must exist.
        let mut steps = 0;
        while steps <= 2 * n {
            let i = s.hand;
            s.hand = (s.hand + 1) % n;
            steps += 1;
            if let Some(b) = s.slots[i].as_mut() {
                if b.referenced {
                    b.referenced = false;
                } else {
                    Self::evict_slot(shard, s, i as u32, ev, deferred);
                    return;
                }
            }
        }
        // Unreachable: 2n steps clear every bit; kept as a hard stop.
        unreachable!("clock sweep found no victim");
    }

    /// Remove one block of `s` (lock held), severing same-shard chain
    /// links inline and queueing cross-shard ones on `deferred`.
    fn evict_slot(shard: u32, s: &mut Shard, slot: u32, ev: &mut EvictStats, d: &mut Deferred) {
        let b = s.slots[slot as usize].take().expect("evicting empty slot");
        if tg_obs::trace::enabled() {
            tg_obs::trace::instant(
                "evict",
                tg_obs::trace::PID_HOST,
                tg_obs::trace::host_tid(),
                vec![("base", b.base), ("resident", s.len as u64 - 1)],
            );
        }
        s.map.remove(&b.base);
        let gen = s.gens[slot as usize].wrapping_add(1);
        s.gens[slot as usize] = gen;
        s.free.push(slot);
        s.len -= 1;
        ev.evicted += 1;
        ev.bytes += b.bytes;
        let victim = CacheRef { shard, slot, gen: gen.wrapping_sub(1) };
        // Incoming links: predecessors must stop jumping here.
        for &(p, exit) in &b.preds {
            if p.shard == shard {
                if s.is_live(p) {
                    let pb = s.slots[p.slot as usize].as_mut().unwrap();
                    if let Some(l) = pb.links.get_mut(exit as usize) {
                        if matches!(*l, Some(r) if r == victim) {
                            *l = None;
                            ev.unchained += 1;
                        }
                    }
                }
            } else {
                d.preds.push((p, exit, victim));
            }
        }
        // Outgoing links: targets must forget this predecessor.
        for l in b.links.iter().flatten() {
            if l.shard == shard {
                if s.is_live(*l) {
                    let tb = s.slots[l.slot as usize].as_mut().unwrap();
                    tb.preds.retain(|&(p, _)| p != victim);
                    ev.unchained += 1;
                }
            } else {
                d.succs.push((*l, victim));
            }
        }
    }

    /// Apply cross-shard edge fixups, one shard lock at a time.
    fn apply_deferred(&self, d: Deferred, ev: &mut EvictStats) {
        for (p, exit, victim) in d.preds {
            let mut s = self.shards[p.shard as usize].lock();
            if s.is_live(p) {
                let pb = s.slots[p.slot as usize].as_mut().unwrap();
                if let Some(l) = pb.links.get_mut(exit as usize) {
                    if matches!(*l, Some(r) if r == victim) {
                        *l = None;
                        ev.unchained += 1;
                    }
                }
            }
        }
        for (t, victim) in d.succs {
            let mut s = self.shards[t.shard as usize].lock();
            if s.is_live(t) {
                let tb = s.slots[t.slot as usize].as_mut().unwrap();
                tb.preds.retain(|&(p, _)| p != victim);
                ev.unchained += 1;
            }
        }
    }

    /// Invalidate every translation overlapping `[lo, hi)` — the
    /// self-modifying-code / `DISCARD_TRANSLATIONS` path. Walks every
    /// shard; each shard's victims are evicted under its own lock, with
    /// cross-shard unchaining applied between shards.
    pub fn discard_range(&self, lo: u64, hi: u64) -> EvictStats {
        let mut ev = EvictStats::default();
        if lo >= hi {
            return ev;
        }
        for shard in 0..self.shards.len() as u32 {
            let mut deferred = Deferred::default();
            {
                let mut s = self.shards[shard as usize].lock();
                let victims: Vec<u32> = s
                    .slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, sl)| {
                        let b = sl.as_ref()?;
                        (b.base < hi && b.end > lo).then_some(i as u32)
                    })
                    .collect();
                for v in victims {
                    Self::evict_slot(shard, &mut s, v, &mut ev, &mut deferred);
                }
            }
            self.apply_deferred(deferred, &mut ev);
        }
        ev
    }

    /// Drop everything (used by tests; keeps generations monotonic).
    pub fn clear(&self) -> EvictStats {
        let mut ev = EvictStats::default();
        for shard in 0..self.shards.len() as u32 {
            let mut deferred = Deferred::default();
            {
                let mut s = self.shards[shard as usize].lock();
                let victims: Vec<u32> =
                    (0..s.slots.len() as u32).filter(|&i| s.slots[i as usize].is_some()).collect();
                for v in victims {
                    Self::evict_slot(shard, &mut s, v, &mut ev, &mut deferred);
                }
                for e in s.ibtc.iter_mut() {
                    *e = None;
                }
            }
            self.apply_deferred(deferred, &mut ev);
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_ir::{Atom, IrBlock, JumpKind, Stmt};

    fn block(base: u64, n_side: usize) -> Arc<IrBlock> {
        let mut b = IrBlock::new(base);
        b.stmts.push(Stmt::IMark { addr: base, len: 16 });
        for i in 0..n_side {
            b.stmts.push(Stmt::Exit {
                guard: Atom::Const(0),
                target: base + 0x100 * (i as u64 + 1),
                kind: JumpKind::Boring,
            });
        }
        b.next = Atom::imm(base + 16);
        Arc::new(b)
    }

    #[test]
    fn insert_lookup_and_generation_validation() {
        let c = TransCache::new(4);
        let (r, _) = c.insert(block(0x1000, 0), None, 64);
        assert_eq!(c.lookup(0x1000), Some(r));
        assert_eq!(c.lookup(0x2000), None);
        assert!(c.take_for(r, 0x1000).is_some());
        assert!(c.take_for(r, 0x1010).is_none(), "wrong pc must miss");
        let stale = CacheRef { gen: r.gen.wrapping_add(1), ..r };
        assert!(c.take_for(stale, 0x1000).is_none(), "wrong generation must miss");
    }

    #[test]
    fn capacity_bound_holds_and_eviction_unchains() {
        let c = TransCache::new(2);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        let (b, _) = c.insert(block(0x2000, 0), None, 64);
        assert!(c.link(a, 0, b), "fallthrough link a→b");
        assert_eq!(c.link_of(a, 0), Some(b));
        // Third insert evicts one of a/b (clock order) and must unchain.
        let (_d, ev) = c.insert(block(0x3000, 0), None, 64);
        assert_eq!(c.len(), 2);
        assert_eq!(ev.evicted, 1);
        assert!(ev.unchained >= 1, "the a→b link had to be severed");
        // Whichever end survived, the link is gone.
        assert_eq!(c.link_of(a, 0), None);
    }

    #[test]
    fn relink_replaces_pred_edge() {
        let c = TransCache::new(8);
        let (a, _) = c.insert(block(0x1000, 1), None, 64);
        let (b, _) = c.insert(block(0x2000, 0), None, 64);
        let (d, _) = c.insert(block(0x3000, 0), None, 64);
        assert!(c.link(a, 1, b));
        assert!(c.link(a, 1, d), "re-link to a new target");
        assert!(!c.link(a, 1, d), "idempotent");
        assert_eq!(c.link_of(a, 1), Some(d));
        // Evicting the old target must not clear the new link.
        let ev = c.discard_range(0x2000, 0x2001);
        assert_eq!(ev.evicted, 1);
        assert_eq!(c.link_of(a, 1), Some(d));
    }

    #[test]
    fn self_link_survives_and_dies_with_the_block() {
        let c = TransCache::new(4);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        assert!(c.link(a, 0, a), "tight loop: block chains to itself");
        assert_eq!(c.link_of(a, 0), Some(a));
        let ev = c.discard_range(0x1000, 0x1010);
        assert_eq!(ev.evicted, 1);
        assert_eq!(c.lookup(0x1000), None);
    }

    #[test]
    fn discard_range_hits_overlapping_blocks_only() {
        let c = TransCache::new(8);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        let (b, _) = c.insert(block(0x2000, 0), None, 64);
        let ev = c.discard_range(0x1008, 0x1009);
        assert_eq!(ev.evicted, 1);
        assert!(!c.is_live(a));
        assert!(c.is_live(b));
        assert_eq!(c.discard_range(0, 0).evicted, 0, "empty range is a no-op");
    }

    #[test]
    fn ibtc_round_trip_and_staleness() {
        let c = TransCache::new(4);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        c.ibtc_insert(0x5000, 0x1000, a);
        assert_eq!(c.ibtc_lookup(0x5000, 0x1000), Some(a));
        assert_eq!(c.ibtc_lookup(0x5000, 0x1010), None);
        c.clear();
        assert_eq!(c.ibtc_lookup(0x5000, 0x1000), None, "stale entry must miss");
        // Slot recycled by a different block: the old entry still misses.
        let (_b, _) = c.insert(block(0x9000, 0), None, 64);
        assert_eq!(c.ibtc_lookup(0x5000, 0x1000), None);
    }

    #[test]
    fn clock_eviction_prefers_unreferenced_blocks() {
        let c = TransCache::new(3);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        let (_b, _) = c.insert(block(0x2000, 0), None, 64);
        let (_d, _) = c.insert(block(0x3000, 0), None, 64);
        // Sweep 1 clears all bits; touch `a` again so it survives.
        let (_e, ev) = c.insert(block(0x4000, 0), None, 64);
        assert_eq!(ev.evicted, 1);
        assert!(c.is_live(a) || c.lookup(0x1000).is_none());
        // Re-touch a; everyone else untouched → next eviction spares a.
        if c.lookup(0x1000).is_some() {
            let (_f, _) = c.insert(block(0x5000, 0), None, 64);
            let (_g, _) = c.insert(block(0x6000, 0), None, 64);
            assert!(c.len() <= 3);
        }
    }

    /// Drive enough distinct bases through a 4-shard cache that at
    /// least two shards are populated, then check cross-shard links
    /// sever correctly on eviction from either end.
    #[test]
    fn cross_shard_links_unchain_from_both_ends() {
        let c = TransCache::with_shards(64, 4);
        // Find two bases living in different shards.
        let refs: Vec<(u64, CacheRef)> = (0..32u64)
            .map(|i| {
                let base = 0x1000 + i * 0x100;
                (base, c.insert(block(base, 0), None, 64).0)
            })
            .collect();
        let (&(ba, a), &(bb, b)) = {
            let first = &refs[0];
            let other = refs
                .iter()
                .find(|(_, r)| r.shard != first.1.shard)
                .expect("32 bases must span >1 of 4 shards");
            (first, other)
        };
        assert_ne!(a.shard, b.shard);
        assert!(c.link(a, 0, b), "cross-shard link installs");
        assert_eq!(c.link_of(a, 0), Some(b));

        // Evict the target: the pred's link must be severed.
        let ev = c.discard_range(bb, bb + 1);
        assert_eq!(ev.evicted, 1);
        assert!(ev.unchained >= 1, "cross-shard unchain on target death");
        assert_eq!(c.link_of(a, 0), None);

        // Rebuild the target, link the other way, kill the *source*.
        let (b2, _) = c.insert(block(bb, 0), None, 64);
        assert!(c.link(b2, 0, a));
        let ev = c.discard_range(bb, bb + 1);
        assert_eq!(ev.evicted, 1);
        // `a` must no longer carry a pred edge from the dead source: a
        // fresh block recycling the source slot must not be able to
        // sever links it never made. (Exercised indirectly: discarding
        // `a` now must not try to unchain a stale pred.)
        let ev = c.discard_range(ba, ba + 1);
        assert_eq!(ev.evicted, 1);
    }

    /// The worker install path: promotion fills the flat form exactly
    /// once, and only while the entry still holds the same IR Arc.
    #[test]
    fn install_compiled_promotes_only_matching_ir() {
        let c = TransCache::with_shards(16, 2);
        let ir = block(0x1000, 0);
        let (r, _) = c.insert(ir.clone(), None, 64);
        assert!(c.take_flat_for(r, 0x1000).is_none(), "not compiled yet");

        let flat = Arc::new(crate::flat::compile(&ir));
        assert!(c.install_compiled(&ir, flat.clone()), "first install succeeds");
        assert!(!c.install_compiled(&ir, flat.clone()), "second install is a no-op");
        assert!(c.take_flat_for(r, 0x1000).is_some(), "promoted block serves its flat form");

        // Discard + re-lift: the old job's IR is a different allocation,
        // so its (now stale) compile must be dropped.
        c.discard_range(0x1000, 0x1010);
        let ir2 = block(0x1000, 0);
        let (r2, _) = c.insert(ir2.clone(), None, 64);
        assert!(!c.install_compiled(&ir, flat), "stale IR must not promote");
        assert!(c.take_flat_for(r2, 0x1000).is_none());
    }
}
