//! The bounded translation cache and superblock-chaining state.
//!
//! Valgrind keeps translated superblocks in a fixed-size code cache and
//! *chains* them: once a block's exit has resolved to another cached
//! translation, the exit jumps there directly instead of going back
//! through the dispatcher's hash lookup (Cabecinhas et al., "Optimizing
//! Binary Code Produced by Valgrind"). This module reproduces that
//! machinery for the IR interpreter:
//!
//! * translations live in a slab of capacity-bounded **slots**; a
//!   [`CacheRef`] (slot + generation) names one and can be validated in
//!   O(1) even after the slot was recycled;
//! * each cached block carries one **chain-link** per exit (side exits
//!   in order, fallthrough last) plus the reverse *pred* edges needed to
//!   **unchain** it when either endpoint dies;
//! * indirect transfers (returns, computed jumps) go through a small
//!   direct-mapped **indirect-branch target cache** keyed on
//!   `(site, target)`, validated by generation so stale entries miss
//!   instead of dangling;
//! * eviction is **LRU-clock**: every dispatch sets the block's
//!   reference bit, the clock hand sweeps bits clear and evicts the
//!   first unreferenced block, unchaining it from all neighbours;
//! * [`TransCache::discard_range`] invalidates every translation
//!   overlapping a guest address range — the self-modifying-code /
//!   `DISCARD_TRANSLATIONS` client-request path.
//!
//! The invariant the chaining protocol maintains: **a link, pred edge,
//! or IBTC entry never outlives its target unvalidated.** Links and pred
//! edges are eagerly cleared on eviction; IBTC entries are lazily
//! invalidated by the generation check.

use crate::flat::FlatBlock;
use std::collections::HashMap;
use std::rc::Rc;
use vex_ir::IrBlock;

/// Number of entries in the indirect-branch target cache (power of two).
const IBTC_ENTRIES: usize = 1024;

/// A validated handle to a cached translation: slot index plus the
/// generation the slot had when the handle was issued. A handle is live
/// iff the slot is occupied and the generations match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheRef {
    pub slot: u32,
    pub gen: u32,
}

/// Counters produced by eviction/invalidation, folded into
/// [`crate::vm::VmStats`] by the VM.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvictStats {
    /// Blocks removed from the cache.
    pub evicted: u64,
    /// Chain links (incoming or outgoing) severed.
    pub unchained: u64,
    /// Approximate bytes released.
    pub bytes: u64,
}

struct CachedBlock {
    /// The instrumented IR, absent only for blocks installed straight
    /// from the persistent code cache (which stores the flat form only;
    /// the chained engine never consults the IR).
    ir: Option<Rc<IrBlock>>,
    /// Flat compiled form, present iff the VM runs the chained engine
    /// (compiled at translation time, executed on every dispatch).
    flat: Option<Rc<FlatBlock>>,
    base: u64,
    /// One past the last guest byte the block's instructions cover.
    end: u64,
    /// Per-exit successor links: side exits in statement order, the
    /// fallthrough exit last.
    links: Box<[Option<CacheRef>]>,
    /// Reverse edges: (pred slot, pred exit ordinal) of every link that
    /// points at this block. Needed to unchain on eviction.
    preds: Vec<(u32, u32)>,
    /// LRU-clock reference bit, set on every dispatch to this block.
    referenced: bool,
    /// Approximate host bytes of the translation.
    bytes: u64,
}

#[derive(Clone, Copy)]
struct IbtcEntry {
    site: u64,
    target: u64,
    dst: CacheRef,
}

pub struct TransCache {
    slots: Vec<Option<CachedBlock>>,
    /// Per-slot generation, bumped on eviction; survives slot recycling.
    gens: Vec<u32>,
    /// Dispatcher lookup: guest base pc → slot.
    map: HashMap<u64, u32>,
    free: Vec<u32>,
    capacity: usize,
    len: usize,
    hand: usize,
    ibtc: Vec<Option<IbtcEntry>>,
}

impl TransCache {
    pub fn new(capacity: usize) -> TransCache {
        TransCache {
            slots: Vec::new(),
            gens: Vec::new(),
            map: HashMap::new(),
            free: Vec::new(),
            capacity: capacity.max(2),
            len: 0,
            hand: 0,
            ibtc: vec![None; IBTC_ENTRIES],
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn is_live(&self, r: CacheRef) -> bool {
        let i = r.slot as usize;
        i < self.slots.len() && self.gens[i] == r.gen && self.slots[i].is_some()
    }

    /// Dispatcher probe: find the translation for `pc` and mark it
    /// recently used.
    pub fn lookup(&mut self, pc: u64) -> Option<CacheRef> {
        let slot = *self.map.get(&pc)?;
        let b = self.slots[slot as usize].as_mut().expect("map points at empty slot");
        b.referenced = true;
        Some(CacheRef { slot, gen: self.gens[slot as usize] })
    }

    /// Chain-hit path: validate `r` against `pc` and hand out the IR
    /// without touching the hash map. Returns `None` when the handle is
    /// stale (evicted/discarded) or resolves to a different block.
    pub fn take_for(&mut self, r: CacheRef, pc: u64) -> Option<Rc<IrBlock>> {
        if !self.is_live(r) {
            return None;
        }
        let b = self.slots[r.slot as usize].as_mut().unwrap();
        if b.base != pc {
            return None;
        }
        b.referenced = true;
        b.ir.clone()
    }

    /// [`Self::take_for`] for the chained engine: hands out the flat
    /// compiled form instead of the IR.
    pub fn take_flat_for(&mut self, r: CacheRef, pc: u64) -> Option<Rc<FlatBlock>> {
        if !self.is_live(r) {
            return None;
        }
        let b = self.slots[r.slot as usize].as_mut().unwrap();
        if b.base != pc {
            return None;
        }
        b.referenced = true;
        b.flat.clone()
    }

    /// The IR of a handle known to be live (fresh from `lookup`/`insert`).
    /// Panics for blocks installed from the persistent code cache, which
    /// carry no IR — only the reference engine calls this, and the code
    /// cache is chaining-gated, so the two never meet.
    pub fn ir_of(&self, r: CacheRef) -> Rc<IrBlock> {
        self.slots[r.slot as usize]
            .as_ref()
            .expect("stale CacheRef")
            .ir
            .clone()
            .expect("block installed from the code cache has no IR")
    }

    /// The flat form of a live handle; panics if the block was inserted
    /// without one (i.e. by the reference engine).
    pub fn flat_of(&self, r: CacheRef) -> Rc<FlatBlock> {
        self.slots[r.slot as usize]
            .as_ref()
            .expect("stale CacheRef")
            .flat
            .clone()
            .expect("block cached without a flat form")
    }

    /// Number of link slots (side exits + fallthrough) of a live block.
    pub fn n_exits(&self, r: CacheRef) -> u32 {
        self.slots[r.slot as usize].as_ref().expect("stale CacheRef").links.len() as u32
    }

    /// Insert a fresh translation, evicting one block if at capacity.
    /// `flat` carries the chained engine's compiled form (None under
    /// the reference engine).
    pub fn insert(
        &mut self,
        ir: Rc<IrBlock>,
        flat: Option<Rc<FlatBlock>>,
        bytes: u64,
    ) -> (CacheRef, EvictStats) {
        let mut ev = EvictStats::default();
        if self.len >= self.capacity {
            self.evict_one(&mut ev);
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.gens.push(0);
            (self.slots.len() - 1) as u32
        });
        let n_links = ir.side_exit_count() + 1;
        let (base, end) = ir.extent();
        self.map.insert(base, slot);
        self.slots[slot as usize] = Some(CachedBlock {
            ir: Some(ir),
            flat,
            base,
            end,
            links: vec![None; n_links].into_boxed_slice(),
            preds: Vec::new(),
            referenced: true,
            bytes,
        });
        self.len += 1;
        (CacheRef { slot, gen: self.gens[slot as usize] }, ev)
    }

    /// Insert a translation loaded from the persistent code cache: only
    /// the flat compiled form exists (no IR). Chain links start empty
    /// and are re-resolved by the normal runtime chaining protocol; the
    /// link count mirrors `insert`'s `side_exit_count() + 1` via the
    /// flat block's exit table.
    pub fn insert_flat(
        &mut self,
        flat: Rc<FlatBlock>,
        end: u64,
        bytes: u64,
    ) -> (CacheRef, EvictStats) {
        let mut ev = EvictStats::default();
        if self.len >= self.capacity {
            self.evict_one(&mut ev);
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.gens.push(0);
            (self.slots.len() - 1) as u32
        });
        let n_links = flat.exits.len() + 1;
        let base = flat.base;
        self.map.insert(base, slot);
        self.slots[slot as usize] = Some(CachedBlock {
            ir: None,
            flat: Some(flat),
            base,
            end,
            links: vec![None; n_links].into_boxed_slice(),
            preds: Vec::new(),
            referenced: true,
            bytes,
        });
        self.len += 1;
        (CacheRef { slot, gen: self.gens[slot as usize] }, ev)
    }

    /// The whole chain-hit fast path in one pass: follow the link for
    /// exit `exit` of `from` to a live block based at `pc`, marking it
    /// recently used. One validation walk — no hash probe anywhere.
    /// Hands out the flat form (chained engine only).
    #[inline]
    pub fn follow(
        &mut self,
        from: CacheRef,
        exit: u32,
        pc: u64,
    ) -> Option<(CacheRef, Rc<FlatBlock>)> {
        let fi = from.slot as usize;
        if fi >= self.slots.len() || self.gens[fi] != from.gen {
            return None;
        }
        let l = (*self.slots[fi].as_ref()?.links.get(exit as usize)?)?;
        let ti = l.slot as usize;
        if self.gens[ti] != l.gen {
            return None;
        }
        let b = self.slots[ti].as_mut()?;
        if b.base != pc {
            return None;
        }
        b.referenced = true;
        Some((l, b.flat.clone()?))
    }

    /// The existing chain link for exit `exit` of `from`, if both ends
    /// are still live.
    pub fn link_of(&self, from: CacheRef, exit: u32) -> Option<CacheRef> {
        if !self.is_live(from) {
            return None;
        }
        let l = (*self.slots[from.slot as usize].as_ref().unwrap().links.get(exit as usize)?)?;
        if self.is_live(l) {
            Some(l)
        } else {
            None
        }
    }

    /// Patch exit `exit` of `from` to jump directly to `to`. Returns
    /// `false` when either handle is stale or the link already exists.
    pub fn link(&mut self, from: CacheRef, exit: u32, to: CacheRef) -> bool {
        if !self.is_live(from) || !self.is_live(to) {
            return false;
        }
        {
            let fb = self.slots[from.slot as usize].as_mut().unwrap();
            let Some(slot_ref) = fb.links.get_mut(exit as usize) else { return false };
            match *slot_ref {
                Some(old) if old == to => return false,
                Some(old) => {
                    *slot_ref = Some(to);
                    // Re-link: drop the stale pred edge from the old target.
                    if let Some(ob) = self.slots[old.slot as usize].as_mut() {
                        ob.preds.retain(|&(p, e)| !(p == from.slot && e == exit));
                    }
                }
                None => *slot_ref = Some(to),
            }
        }
        self.slots[to.slot as usize].as_mut().unwrap().preds.push((from.slot, exit));
        true
    }

    fn ibtc_index(site: u64, target: u64) -> usize {
        let h = (site ^ target.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 54) as usize & (IBTC_ENTRIES - 1)
    }

    /// Look up an indirect transfer `(site, target)`; stale entries miss.
    pub fn ibtc_lookup(&mut self, site: u64, target: u64) -> Option<CacheRef> {
        let e = self.ibtc[Self::ibtc_index(site, target)]?;
        if e.site != site || e.target != target || !self.is_live(e.dst) {
            return None;
        }
        if self.slots[e.dst.slot as usize].as_ref().unwrap().base != target {
            return None;
        }
        Some(e.dst)
    }

    /// Fill (or overwrite) the IBTC entry for `(site, target)`.
    pub fn ibtc_insert(&mut self, site: u64, target: u64, dst: CacheRef) {
        self.ibtc[Self::ibtc_index(site, target)] = Some(IbtcEntry { site, target, dst });
    }

    fn evict_one(&mut self, ev: &mut EvictStats) {
        let n = self.slots.len();
        if n == 0 {
            return;
        }
        // Clock: first full sweep gives every block a second chance by
        // clearing its reference bit; by the end of the second sweep an
        // unreferenced victim must exist.
        let mut steps = 0;
        while steps <= 2 * n {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            steps += 1;
            if let Some(b) = self.slots[i].as_mut() {
                if b.referenced {
                    b.referenced = false;
                } else {
                    self.evict_slot(i as u32, ev);
                    return;
                }
            }
        }
        // Unreachable: 2n steps clear every bit; kept as a hard stop.
        unreachable!("clock sweep found no victim");
    }

    /// Remove one block, severing every chain link in or out of it.
    fn evict_slot(&mut self, slot: u32, ev: &mut EvictStats) {
        let b = self.slots[slot as usize].take().expect("evicting empty slot");
        if tg_obs::trace::enabled() {
            tg_obs::trace::instant(
                "evict",
                tg_obs::trace::PID_HOST,
                tg_obs::trace::host_tid(),
                vec![("base", b.base), ("resident", self.len as u64 - 1)],
            );
        }
        self.map.remove(&b.base);
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        self.free.push(slot);
        self.len -= 1;
        ev.evicted += 1;
        ev.bytes += b.bytes;
        // Incoming links: predecessors must stop jumping here.
        for &(p, exit) in &b.preds {
            if let Some(pb) = self.slots[p as usize].as_mut() {
                if let Some(l) = pb.links.get_mut(exit as usize) {
                    if matches!(*l, Some(r) if r.slot == slot) {
                        *l = None;
                        ev.unchained += 1;
                    }
                }
            }
        }
        // Outgoing links: targets must forget this predecessor.
        for l in b.links.iter().flatten() {
            if let Some(tb) = self.slots[l.slot as usize].as_mut() {
                tb.preds.retain(|&(p, _)| p != slot);
                ev.unchained += 1;
            }
        }
    }

    /// Invalidate every translation overlapping `[lo, hi)` — the
    /// self-modifying-code / `DISCARD_TRANSLATIONS` path.
    pub fn discard_range(&mut self, lo: u64, hi: u64) -> EvictStats {
        let mut ev = EvictStats::default();
        if lo >= hi {
            return ev;
        }
        let victims: Vec<u32> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let b = s.as_ref()?;
                (b.base < hi && b.end > lo).then_some(i as u32)
            })
            .collect();
        for v in victims {
            self.evict_slot(v, &mut ev);
        }
        ev
    }

    /// Drop everything (used by tests; keeps generations monotonic).
    pub fn clear(&mut self) -> EvictStats {
        self.discard_range(0, u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_ir::{Atom, IrBlock, JumpKind, Stmt};

    fn block(base: u64, n_side: usize) -> Rc<IrBlock> {
        let mut b = IrBlock::new(base);
        b.stmts.push(Stmt::IMark { addr: base, len: 16 });
        for i in 0..n_side {
            b.stmts.push(Stmt::Exit {
                guard: Atom::Const(0),
                target: base + 0x100 * (i as u64 + 1),
                kind: JumpKind::Boring,
            });
        }
        b.next = Atom::imm(base + 16);
        Rc::new(b)
    }

    #[test]
    fn insert_lookup_and_generation_validation() {
        let mut c = TransCache::new(4);
        let (r, _) = c.insert(block(0x1000, 0), None, 64);
        assert_eq!(c.lookup(0x1000), Some(r));
        assert_eq!(c.lookup(0x2000), None);
        assert!(c.take_for(r, 0x1000).is_some());
        assert!(c.take_for(r, 0x1010).is_none(), "wrong pc must miss");
        let stale = CacheRef { slot: r.slot, gen: r.gen.wrapping_add(1) };
        assert!(c.take_for(stale, 0x1000).is_none(), "wrong generation must miss");
    }

    #[test]
    fn capacity_bound_holds_and_eviction_unchains() {
        let mut c = TransCache::new(2);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        let (b, _) = c.insert(block(0x2000, 0), None, 64);
        assert!(c.link(a, 0, b), "fallthrough link a→b");
        assert_eq!(c.link_of(a, 0), Some(b));
        // Third insert evicts one of a/b (clock order) and must unchain.
        let (_d, ev) = c.insert(block(0x3000, 0), None, 64);
        assert_eq!(c.len(), 2);
        assert_eq!(ev.evicted, 1);
        assert!(ev.unchained >= 1, "the a→b link had to be severed");
        // Whichever end survived, the link is gone.
        assert_eq!(c.link_of(a, 0), None);
    }

    #[test]
    fn relink_replaces_pred_edge() {
        let mut c = TransCache::new(8);
        let (a, _) = c.insert(block(0x1000, 1), None, 64);
        let (b, _) = c.insert(block(0x2000, 0), None, 64);
        let (d, _) = c.insert(block(0x3000, 0), None, 64);
        assert!(c.link(a, 1, b));
        assert!(c.link(a, 1, d), "re-link to a new target");
        assert!(!c.link(a, 1, d), "idempotent");
        assert_eq!(c.link_of(a, 1), Some(d));
        // Evicting the old target must not clear the new link.
        let mut ev = EvictStats::default();
        c.evict_slot(b.slot, &mut ev);
        assert_eq!(c.link_of(a, 1), Some(d));
    }

    #[test]
    fn self_link_survives_and_dies_with_the_block() {
        let mut c = TransCache::new(4);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        assert!(c.link(a, 0, a), "tight loop: block chains to itself");
        assert_eq!(c.link_of(a, 0), Some(a));
        let ev = c.discard_range(0x1000, 0x1010);
        assert_eq!(ev.evicted, 1);
        assert_eq!(c.lookup(0x1000), None);
    }

    #[test]
    fn discard_range_hits_overlapping_blocks_only() {
        let mut c = TransCache::new(8);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        let (b, _) = c.insert(block(0x2000, 0), None, 64);
        let ev = c.discard_range(0x1008, 0x1009);
        assert_eq!(ev.evicted, 1);
        assert!(!c.is_live(a));
        assert!(c.is_live(b));
        assert_eq!(c.discard_range(0, 0).evicted, 0, "empty range is a no-op");
    }

    #[test]
    fn ibtc_round_trip_and_staleness() {
        let mut c = TransCache::new(4);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        c.ibtc_insert(0x5000, 0x1000, a);
        assert_eq!(c.ibtc_lookup(0x5000, 0x1000), Some(a));
        assert_eq!(c.ibtc_lookup(0x5000, 0x1010), None);
        c.clear();
        assert_eq!(c.ibtc_lookup(0x5000, 0x1000), None, "stale entry must miss");
        // Slot recycled by a different block: the old entry still misses.
        let (_b, _) = c.insert(block(0x9000, 0), None, 64);
        assert_eq!(c.ibtc_lookup(0x5000, 0x1000), None);
    }

    #[test]
    fn clock_eviction_prefers_unreferenced_blocks() {
        let mut c = TransCache::new(3);
        let (a, _) = c.insert(block(0x1000, 0), None, 64);
        let (_b, _) = c.insert(block(0x2000, 0), None, 64);
        let (_d, _) = c.insert(block(0x3000, 0), None, 64);
        // Sweep 1 clears all bits; touch `a` again so it survives.
        let (_e, ev) = c.insert(block(0x4000, 0), None, 64);
        assert_eq!(ev.evicted, 1);
        assert!(c.is_live(a) || c.lookup(0x1000).is_none());
        // Re-touch a; everyone else untouched → next eviction spares a.
        if c.lookup(0x1000).is_some() {
            let (_f, _) = c.insert(block(0x5000, 0), None, 64);
            let (_g, _) = c.insert(block(0x6000, 0), None, 64);
            assert!(c.len() <= 3);
        }
    }
}
