//! Minimal hand-rolled binary (de)serialization primitives.
//!
//! The workspace's `serde` is a no-op shim (offline build), so every
//! on-disk format is written by hand against these two types: [`Enc`]
//! appends little-endian fields to a growable buffer, [`Dec`] reads them
//! back with bounds checks on every access. Decoding is *total*: any
//! input — truncated, bit-flipped, or adversarial — produces either a
//! value or a [`WireError`], never a panic and never an unbounded
//! allocation (sequence counts are validated against the bytes that
//! remain before any `Vec` is reserved).

/// A decode failure: what field was being read when the input ran out
/// or contained an invalid tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Static description of the offending field.
    pub what: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire data: {}", self.what)
    }
}

impl std::error::Error for WireError {}

/// Convenience alias for decode results.
pub type WireResult<T> = Result<T, WireError>;

/// Little-endian append-only encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty buffer.
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    /// Consume the encoder, yielding the bytes written so far.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Raw bytes, no length prefix (caller writes its own).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// A `u32` element count for a sequence about to be written.
    pub fn seq(&mut self, n: usize) {
        self.u32(n as u32);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.seq(s.len());
        self.raw(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a borrowed byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &'static str) -> WireResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &'static str) -> WireResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, what: &'static str) -> WireResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn bool(&mut self, what: &'static str) -> WireResult<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError { what }),
        }
    }

    /// A sequence count written by [`Enc::seq`], validated against the
    /// bytes remaining: each element needs at least `min_elem` bytes, so
    /// a corrupted count can never trigger a huge allocation.
    pub fn seq(&mut self, min_elem: usize, what: &'static str) -> WireResult<usize> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(WireError { what });
        }
        Ok(n)
    }

    /// Length-prefixed UTF-8 string written by [`Enc::str`].
    pub fn str(&mut self, what: &'static str) -> WireResult<String> {
        let n = self.seq(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError { what })
    }
}

/// FNV-1a over a byte slice — the per-record checksum of every on-disk
/// format in the workspace. 32-bit: cheap, and corruption detection
/// (not cryptography) is the goal.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

/// FNV-1a (64-bit) folded over a byte slice, seeded by `seed` — used to
/// build content hashes and config fingerprints incrementally.
pub fn fold64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 { 0xcbf2_9ce4_8422_2325 } else { seed };
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut e = Enc::new();
        e.u8(0xab);
        e.u32(0xdead_beef);
        e.u64(0x0123_4567_89ab_cdef);
        e.bool(true);
        e.str("hello");
        let buf = e.into_inner();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8("a").unwrap(), 0xab);
        assert_eq!(d.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(d.u64("c").unwrap(), 0x0123_4567_89ab_cdef);
        assert!(d.bool("d").unwrap());
        assert_eq!(d.str("e").unwrap(), "hello");
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let mut e = Enc::new();
        e.u64(42);
        let buf = e.into_inner();
        for cut in 0..buf.len() {
            let mut d = Dec::new(&buf[..cut]);
            assert!(d.u64("x").is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn absurd_sequence_counts_are_rejected() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // claims 4 billion elements
        let buf = e.into_inner();
        let mut d = Dec::new(&buf);
        assert!(d.seq(8, "seq").is_err());
    }

    #[test]
    fn bad_bool_is_rejected() {
        let mut d = Dec::new(&[7]);
        assert!(d.bool("b").is_err());
    }
}
