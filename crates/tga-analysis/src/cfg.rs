//! Whole-program CFG and call-graph recovery from decoded instructions.
//!
//! Function discovery is seeded by the symbol table (`SymKind::Func`);
//! each function's instruction range is split into basic blocks at
//! branch targets and after every block-ending instruction, then
//! intra-procedural successor edges and inter-procedural call edges are
//! derived from the terminator semantics of the TGA ISA (`Op`
//! documentation in `tga`). Indirect jumps/calls (`jalr` through a
//! non-`ra` register) contribute no static edge; functions whose
//! address is materialised by a `li` (outlined task bodies handed to
//! the runtime) are treated as address-taken roots for reachability.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tga::module::{Module, SymKind};
use tga::{reg, Inst, Op, INST_SIZE};

/// A recovered basic block. `end` is exclusive.
#[derive(Clone, Debug)]
pub struct Block {
    /// First instruction address.
    pub start: u64,
    /// One past the last instruction address.
    pub end: u64,
    /// Intra-procedural successors (fallthrough and branch targets).
    pub succs: Vec<u64>,
    /// Direct call targets of the terminator (`jal` with `rd = ra`).
    pub calls: Vec<u64>,
    /// Terminates in a return (`jalr zero, ra, 0`).
    pub is_ret: bool,
    /// Terminates in an indirect jump or call we cannot resolve.
    pub has_indirect: bool,
}

/// One recovered function: a symbol plus its basic blocks.
#[derive(Clone, Debug)]
pub struct FuncCfg {
    /// Symbol name.
    pub name: String,
    /// Instruction range `[lo, hi)` covered by the function.
    pub lo: u64,
    /// Exclusive end of the function's instruction range.
    pub hi: u64,
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u64, Block>,
}

impl FuncCfg {
    /// Does `addr` fall inside this function's instruction range?
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.lo && addr < self.hi
    }
}

/// Aggregate counts printed by `lint`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CfgStats {
    /// Recovered functions.
    pub functions: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Intra-procedural successor edges.
    pub edges: usize,
    /// Direct call edges.
    pub call_edges: usize,
    /// Blocks ending in an unresolved indirect jump or call.
    pub indirect_exits: usize,
    /// Functions unreachable from the entry point.
    pub unreachable_functions: usize,
}

/// The recovered whole-program CFG.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Recovered functions, sorted by entry address.
    pub funcs: Vec<FuncCfg>,
    /// Functions whose address appears as a `li` immediate somewhere in
    /// the code (potential indirect-call targets).
    pub address_taken: BTreeSet<u64>,
    /// Indices into `funcs` not reachable from the entry point or any
    /// address-taken function.
    pub unreachable: Vec<usize>,
    /// Aggregate counts for the lint report.
    pub stats: CfgStats,
}

impl Cfg {
    /// Index of the function covering `addr`, if any.
    pub fn func_at(&self, addr: u64) -> Option<usize> {
        self.funcs.iter().position(|f| f.contains(addr))
    }
}

/// Branch-target of a conditional branch or direct jump, if the
/// instruction has one that is statically known.
fn direct_target(inst: &Inst) -> Option<u64> {
    match inst.op {
        Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Jal => Some(inst.imm as u64),
        _ => None,
    }
}

/// Every basic-block start address in the module, deduplicated and
/// sorted — the precompilation work-list for `tgrind warm`. Superblock
/// lifting may start at any of these (plus dynamic continuation points
/// the static CFG cannot know, which warm runs simply compile cold).
pub fn block_starts(module: &Module) -> Vec<u64> {
    let cfg = recover(module);
    let mut starts: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for f in &cfg.funcs {
        starts.extend(f.blocks.keys().copied());
    }
    starts.into_iter().collect()
}

/// Recover the CFG of every `Func` symbol in the module.
pub fn recover(module: &Module) -> Cfg {
    let mut fsyms: Vec<_> = module.symbols.iter().filter(|s| s.kind == SymKind::Func).collect();
    fsyms.sort_by_key(|s| s.addr);

    let code_end = module.code_end();
    let mut funcs = Vec::with_capacity(fsyms.len());
    for (i, sym) in fsyms.iter().enumerate() {
        let next = fsyms.get(i + 1).map(|s| s.addr).unwrap_or(code_end);
        let hi = if sym.size > 0 { (sym.addr + sym.size).min(next) } else { next };
        if sym.addr >= hi {
            continue; // zero-sized or overlapping symbol
        }
        funcs.push(build_func(module, &sym.name, sym.addr, hi));
    }

    // Address-taken functions: any `li` immediate that names a function
    // entry point (minicc emits these for outlined bodies passed to the
    // runtime's task-creation entry points).
    let entries: BTreeSet<u64> = funcs.iter().map(|f| f.lo).collect();
    let mut address_taken = BTreeSet::new();
    let mut pc = module.code_base;
    while pc < code_end {
        if let Some(inst) = module.fetch(pc) {
            if inst.op == Op::Li && entries.contains(&(inst.imm as u64)) {
                address_taken.insert(inst.imm as u64);
            }
        }
        pc += INST_SIZE;
    }

    let unreachable = compute_unreachable(&funcs, &address_taken, module.entry);

    let mut stats = CfgStats {
        functions: funcs.len(),
        unreachable_functions: unreachable.len(),
        ..Default::default()
    };
    for f in &funcs {
        stats.blocks += f.blocks.len();
        for b in f.blocks.values() {
            stats.edges += b.succs.len();
            stats.call_edges += b.calls.len();
            stats.indirect_exits += b.has_indirect as usize;
        }
    }

    Cfg { funcs, address_taken, unreachable, stats }
}

fn build_func(module: &Module, name: &str, lo: u64, hi: u64) -> FuncCfg {
    // Pass 1: leaders = function entry, branch targets inside the
    // function, and the instruction after every block terminator.
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    leaders.insert(lo);
    let mut pc = lo;
    while pc < hi {
        if let Some(inst) = module.fetch(pc) {
            if inst.op.ends_block() {
                if pc + INST_SIZE < hi {
                    leaders.insert(pc + INST_SIZE);
                }
                if let Some(t) = direct_target(&inst) {
                    // `jal ra` targets another function; everything else
                    // with an in-range target splits a block here.
                    let is_call = inst.op == Op::Jal && inst.rd == reg::RA;
                    if !is_call && t >= lo && t < hi {
                        leaders.insert(t);
                    }
                }
            }
        }
        pc += INST_SIZE;
    }

    // Pass 2: walk each leader forward to its terminator and record
    // successor/call edges.
    let mut blocks = BTreeMap::new();
    let leader_list: Vec<u64> = leaders.iter().copied().collect();
    for &start in &leader_list {
        let end;
        let mut succs = Vec::new();
        let mut calls = Vec::new();
        let mut is_ret = false;
        let mut has_indirect = false;
        let mut pc = start;
        loop {
            let Some(inst) = module.fetch(pc) else {
                end = pc;
                break;
            };
            let next = pc + INST_SIZE;
            if inst.op.ends_block() {
                end = next;
                match inst.op {
                    Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu => {
                        let t = inst.imm as u64;
                        if t >= lo && t < hi {
                            succs.push(t);
                        }
                        if next < hi {
                            succs.push(next);
                        }
                    }
                    Op::Jal => {
                        let t = inst.imm as u64;
                        if inst.rd == reg::RA {
                            calls.push(t);
                            if next < hi {
                                succs.push(next); // returns to the call site
                            }
                        } else if t >= lo && t < hi {
                            succs.push(t); // local jump (loops, gotos)
                        } else {
                            calls.push(t); // tail transfer to another function
                        }
                    }
                    Op::Jalr => {
                        if inst.rs1 == reg::RA && inst.rd == reg::ZERO {
                            is_ret = true;
                        } else {
                            has_indirect = true;
                            if inst.rd == reg::RA && next < hi {
                                succs.push(next); // indirect call returns
                            }
                        }
                    }
                    Op::Sys | Op::Clreq if next < hi => succs.push(next),
                    _ => {} // Halt: no successors
                }
                break;
            }
            if next >= hi || leaders.contains(&next) {
                end = next;
                if next < hi {
                    succs.push(next); // fallthrough into the next block
                }
                break;
            }
            pc = next;
        }
        blocks.insert(start, Block { start, end, succs, calls, is_ret, has_indirect });
    }

    FuncCfg { name: name.to_string(), lo, hi, blocks }
}

fn compute_unreachable(funcs: &[FuncCfg], address_taken: &BTreeSet<u64>, entry: u64) -> Vec<usize> {
    let idx_of = |addr: u64| funcs.iter().position(|f| f.contains(addr));
    let mut seen = vec![false; funcs.len()];
    let mut queue = VecDeque::new();
    let push = |addr: u64, seen: &mut Vec<bool>, queue: &mut VecDeque<usize>| {
        if let Some(i) = idx_of(addr) {
            if !seen[i] {
                seen[i] = true;
                queue.push_back(i);
            }
        }
    };
    push(entry, &mut seen, &mut queue);
    for &a in address_taken {
        push(a, &mut seen, &mut queue);
    }
    while let Some(i) = queue.pop_front() {
        for b in funcs[i].blocks.values() {
            for &c in &b.calls {
                push(c, &mut seen, &mut queue);
            }
        }
    }
    (0..funcs.len()).filter(|&i| !seen[i]).collect()
}
