//! Abstract interpretation of lifted superblocks: stack-slot escape
//! analysis, stack-pointer delta checking, and read-only classification
//! of globals.
//!
//! Every basic-block leader of every recovered function is lifted with
//! `grindcore`'s superblock lifter and interpreted over a tiny abstract
//! domain: a value is a known constant, a known offset from the
//! block-entry `sp` or `fp`, or unknown. Because a leader is analysed
//! with no knowledge of its callers or predecessors, any frame address
//! that *leaves* the abstract state — stored outside a transient
//! push/save slot, resident in a scratch register or an untracked stack
//! slot at a block boundary, or passed to a syscall/client request —
//! is treated as an escape of that slot. The resulting facts are a
//! *meet* over every context containing an instruction: an access is
//! only classified thread-private if every lifted context proves it so.
//!
//! Soundness rests on the target's codegen discipline (which minicc and
//! the guest runtime follow): `sp`-based stores are only operand-stack
//! pushes and prologue link saves, locals are addressed `fp`-relative,
//! and stack addresses are never laundered through arithmetic the
//! domain cannot follow (any such arithmetic poisons the whole frame).
//! Like the dynamic stack suppression of §IV-D, the classification
//! assumes no cross-thread use-after-return of stack addresses.

use crate::cfg::Cfg;
use grindcore::lift::{lift_superblock, MAX_BLOCK_INSTS};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tga::module::{Module, SymKind};
use tga::{reg, NUM_REGS};
use vex_ir::{Atom, BinOp, IrBlock, JumpKind, Rhs, Stmt, UnOp};

/// Which stack anchor an abstract offset is relative to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum BaseReg {
    /// Block-entry stack pointer.
    Sp,
    /// Block-entry frame pointer.
    Fp,
}

/// The abstract value domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AbsVal {
    Const(u64),
    /// A stack address: `base + off`. `via_sp` marks a value obtained
    /// by reading `sp` directly (plus a constant) — the only way
    /// operand-stack pushes and prologue saves address memory.
    Stack {
        base: BaseReg,
        off: i64,
        via_sp: bool,
    },
    Other,
}

use AbsVal::{Const, Other, Stack};

/// Per-function dataflow verdicts.
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// Canonical `fp`-relative offsets whose address escapes the frame.
    pub escaped: BTreeSet<i64>,
    /// A frame address flowed somewhere the domain cannot follow; no
    /// access of this function's frame may be treated as private.
    pub poisoned: bool,
    /// One representative escape site per offset: `(offset, pc)`.
    pub escape_sites: Vec<(i64, u64)>,
    /// Return sites whose reconstructed `sp` does not restore the
    /// caller's stack pointer: `(pc, description)`.
    pub ret_mismatches: Vec<u64>,
}

/// A read-only classified global.
#[derive(Clone, Debug)]
pub struct RoRange {
    pub name: String,
    pub lo: u64,
    pub hi: u64,
}

/// How one lifted context saw one guest memory access.
#[derive(Clone, Copy, Debug)]
enum AccessKind {
    /// Frame slot at a known canonical `fp`-relative offset.
    StackCanon(i64),
    /// Stack slot with no canonical offset (operand-stack pushes and
    /// link saves reached relative to a mid-function `sp`).
    StackAnon,
    /// A direct absolute access of `size` bytes.
    ConstAddr { addr: u64, size: u64, write: bool },
    /// Untracked address, or an atomic (never filtered).
    Unknown,
}

#[derive(Clone, Copy, Debug)]
struct AccessRec {
    pc: u64,
    func: usize,
    kind: AccessKind,
}

/// Aggregated dataflow output.
#[derive(Clone, Debug, Default)]
pub struct Dataflow {
    /// Parallel to `cfg.funcs`.
    pub fn_facts: Vec<FnFacts>,
    /// Globals never written and never address-taken.
    pub ro: Vec<RoRange>,
    /// Guest pcs of loads/stores proven thread-private or read-only in
    /// every context that contains them.
    pub safe_pcs: BTreeSet<u64>,
    /// Stores with a constant target inside the text section.
    pub code_writes: Vec<(u64, u64)>,
    /// Total distinct access pcs seen by the analysis.
    pub access_pcs: usize,
}

struct DataSym {
    name: String,
    lo: u64,
    hi: u64,
}

/// Global (module-level) accumulators shared across contexts.
struct GlobalAcc {
    data_syms: Vec<DataSym>,
    /// Indices into `data_syms` with a direct constant-address store.
    written: BTreeSet<usize>,
    /// Indices whose address was stored, passed, or live at a boundary.
    addr_escaped: BTreeSet<usize>,
    code_writes: Vec<(u64, u64)>,
    records: Vec<AccessRec>,
    data_lo: u64,
    data_hi: u64,
    code_lo: u64,
    code_hi: u64,
}

impl GlobalAcc {
    fn sym_of(&self, addr: u64) -> Option<usize> {
        self.data_syms.iter().position(|s| addr >= s.lo && addr < s.hi)
    }

    fn addr_escape(&mut self, addr: u64) {
        if let Some(i) = self.sym_of(addr) {
            self.addr_escaped.insert(i);
        }
    }

    fn in_data(&self, addr: u64) -> bool {
        addr >= self.data_lo && addr < self.data_hi
    }
}

/// Abstract machine state while interpreting one lifted superblock.
struct BlockState {
    tmps: Vec<AbsVal>,
    regs: [AbsVal; NUM_REGS],
    /// Tracked stack slots, keyed by `(base, off)`.
    mem: HashMap<(BaseReg, i64), AbsVal>,
}

impl BlockState {
    fn new(n_temps: u32) -> BlockState {
        let mut regs = [Other; NUM_REGS];
        regs[reg::ZERO as usize] = Const(0);
        regs[reg::SP as usize] = Stack { base: BaseReg::Sp, off: 0, via_sp: false };
        regs[reg::FP as usize] = Stack { base: BaseReg::Fp, off: 0, via_sp: false };
        BlockState { tmps: vec![Other; n_temps as usize], regs, mem: HashMap::new() }
    }

    fn atom(&self, a: &Atom) -> AbsVal {
        match a {
            Atom::Const(c) => Const(*c),
            Atom::Tmp(t) => self.tmps[t.0 as usize],
        }
    }

    /// Canonical `fp`-relative offset of a stack value, if expressible
    /// in the current context (directly `fp`-based, or `sp`-based in a
    /// block that derived `fp` from the same anchor).
    fn canonical(&self, base: BaseReg, off: i64) -> Option<i64> {
        match base {
            BaseReg::Fp => Some(off),
            BaseReg::Sp => match self.regs[reg::FP as usize] {
                Stack { base: BaseReg::Sp, off: fp_off, .. } => Some(off - fp_off),
                _ => None,
            },
        }
    }
}

/// Interpreter for one lifted context of one function.
struct Interp<'a> {
    st: BlockState,
    facts: &'a mut FnFacts,
    glob: &'a mut GlobalAcc,
    func: usize,
    /// Function range, for recognising tail transfers out of it.
    flo: u64,
    fhi: u64,
    cur_pc: u64,
}

impl Interp<'_> {
    /// A frame address left the abstract state: record the escape (or
    /// poison the frame when the slot cannot be named).
    fn escape_stack(&mut self, base: BaseReg, off: i64) {
        match self.st.canonical(base, off) {
            Some(c) => {
                if self.facts.escaped.insert(c) {
                    self.facts.escape_sites.push((c, self.cur_pc));
                }
            }
            None => self.facts.poisoned = true,
        }
    }

    /// Apply the boundary rules for a value that flows out of the block
    /// (register or tracked slot at a block exit, dirty-call argument,
    /// store payload).
    fn escape_value(&mut self, v: AbsVal) {
        match v {
            Stack { base, off, .. } => self.escape_stack(base, off),
            Const(c) if self.glob.in_data(c) => self.glob.addr_escape(c),
            _ => {}
        }
    }

    /// Addresses resident in tracked stack slots when control may leave
    /// the block escape: the continuation is analysed from scratch and
    /// would reload them as unknown values, so a later copy-out could
    /// not be seen.
    fn flush_mem(&mut self) {
        let residues: Vec<AbsVal> = self.st.mem.values().copied().collect();
        for v in residues {
            self.escape_value(v);
        }
    }

    /// Escape addresses in a register range (calling-convention rules:
    /// a callee observes `a0..a7`, a caller observes `a0`, and a
    /// cap-split or indirect continuation observes everything).
    fn flush_regs(&mut self, lo: u8, hi: u8) {
        for r in lo..=hi {
            if r == reg::SP || r == reg::FP {
                continue;
            }
            self.escape_value(self.st.regs[r as usize]);
        }
    }

    fn record(&mut self, kind: AccessKind) {
        self.glob.records.push(AccessRec { pc: self.cur_pc, func: self.func, kind });
    }

    fn classify_addr(&self, a: AbsVal, size: u64, write: bool) -> AccessKind {
        match a {
            Stack { base, off, .. } => match self.st.canonical(base, off) {
                Some(c) => AccessKind::StackCanon(c),
                None => AccessKind::StackAnon,
            },
            Const(addr) => AccessKind::ConstAddr { addr, size, write },
            Other => AccessKind::Unknown,
        }
    }

    fn binop(&mut self, op: BinOp, l: AbsVal, r: AbsVal) -> AbsVal {
        use BinOp::*;
        match (op, l, r) {
            (_, Const(a), Const(b)) => fold_const(op, a, b),
            (Add, Stack { base, off, via_sp }, Const(c))
            | (Add, Const(c), Stack { base, off, via_sp }) => {
                Stack { base, off: off.wrapping_add(c as i64), via_sp }
            }
            (Sub, Stack { base, off, via_sp }, Const(c)) => {
                Stack { base, off: off.wrapping_sub(c as i64), via_sp }
            }
            (Sub, Stack { base: b1, off: o1, .. }, Stack { base: b2, off: o2, .. }) if b1 == b2 => {
                Const(o1.wrapping_sub(o2) as u64)
            }
            (CmpEq | CmpNe | CmpLtS | CmpLeS | CmpLtU, _, _) => Other,
            (_, Stack { .. }, _) | (_, _, Stack { .. }) => {
                // Frame address flowing through arithmetic the domain
                // cannot invert: give up on the whole frame.
                self.facts.poisoned = true;
                Other
            }
            _ => Other,
        }
    }

    fn unop(&mut self, op: UnOp, x: AbsVal) -> AbsVal {
        match (op, x) {
            (UnOp::Neg, Const(c)) => Const(c.wrapping_neg()),
            (UnOp::Not, Const(c)) => Const(!c),
            (_, Stack { .. }) => {
                self.facts.poisoned = true;
                Other
            }
            _ => Other,
        }
    }

    fn run(&mut self, block: &IrBlock) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::IMark { addr, .. } => self.cur_pc = *addr,
                Stmt::WrTmp { dst, rhs } => {
                    let v = match rhs {
                        Rhs::Atom(a) => self.st.atom(a),
                        Rhs::Get { reg: r } => {
                            let v = self.st.regs[*r as usize];
                            // `via_sp` is a property of the read, not of
                            // the value: only a direct `sp` read can
                            // address a push/save slot.
                            match v {
                                Stack { base, off, .. } => {
                                    Stack { base, off, via_sp: *r == reg::SP }
                                }
                                other => other,
                            }
                        }
                        Rhs::Load { ty, addr } => {
                            let a = self.st.atom(addr);
                            let kind = self.classify_addr(a, ty.size(), false);
                            self.record(kind);
                            match a {
                                Stack { base, off, .. } => {
                                    self.st.mem.get(&(base, off)).copied().unwrap_or(Other)
                                }
                                _ => Other,
                            }
                        }
                        Rhs::Binop { op, lhs, rhs } => {
                            let (l, r) = (self.st.atom(lhs), self.st.atom(rhs));
                            self.binop(*op, l, r)
                        }
                        Rhs::Unop { op, x } => {
                            let x = self.st.atom(x);
                            self.unop(*op, x)
                        }
                        Rhs::Ite { cond: _, then, els } => {
                            let (t, e) = (self.st.atom(then), self.st.atom(els));
                            if t == e {
                                t
                            } else {
                                if matches!(t, Stack { .. }) || matches!(e, Stack { .. }) {
                                    self.facts.poisoned = true;
                                }
                                Other
                            }
                        }
                    };
                    self.st.tmps[dst.0 as usize] = v;
                }
                Stmt::Put { reg: r, src } => {
                    if *r != reg::ZERO {
                        self.st.regs[*r as usize] = self.st.atom(src);
                    }
                }
                Stmt::Store { ty, addr, val } => {
                    let a = self.st.atom(addr);
                    let v = self.st.atom(val);
                    let kind = self.classify_addr(a, ty.size(), true);
                    self.record(kind);
                    // A global's address stored anywhere (even pushed)
                    // may be loaded back in a context that cannot track
                    // it: the symbol can no longer be called read-only.
                    if let Const(c) = v {
                        if self.glob.in_data(c) {
                            self.glob.addr_escape(c);
                        }
                    }
                    match a {
                        Stack { base, off, via_sp } => {
                            // A frame address stored into anything but a
                            // transient push/save slot may be reloaded
                            // later as an untracked value and copied
                            // out: that is an escape of the payload.
                            if !via_sp {
                                if let Stack { base: pb, off: po, .. } = v {
                                    self.escape_stack(pb, po);
                                }
                            }
                            self.st.mem.insert((base, off), v);
                        }
                        Const(c) => {
                            if let Stack { base: pb, off: po, .. } = v {
                                self.escape_stack(pb, po);
                            }
                            if c >= self.glob.code_lo && c < self.glob.code_hi {
                                self.glob.code_writes.push((self.cur_pc, c));
                            }
                            if let Some(i) = self.glob.sym_of(c) {
                                self.glob.written.insert(i);
                            }
                            self.st.mem.clear();
                        }
                        Other => {
                            if let Stack { base: pb, off: po, .. } = v {
                                self.escape_stack(pb, po);
                            }
                            // Unknown target may alias any tracked slot.
                            self.st.mem.clear();
                        }
                    }
                }
                Stmt::Cas { addr, expected, new, .. } => {
                    let _ = self.st.atom(addr);
                    self.record(AccessKind::Unknown); // atomics stay instrumented
                    self.escape_value(self.st.atom(expected));
                    self.escape_value(self.st.atom(new));
                    self.st.mem.clear();
                }
                Stmt::AtomicAdd { addr, val, .. } => {
                    let _ = self.st.atom(addr);
                    self.record(AccessKind::Unknown);
                    self.escape_value(self.st.atom(val));
                    self.st.mem.clear();
                }
                Stmt::Dirty { args, dst, .. } => {
                    let vals: Vec<AbsVal> = args.iter().map(|a| self.st.atom(a)).collect();
                    for v in vals {
                        self.escape_value(v);
                    }
                    if let Some(d) = dst {
                        self.st.tmps[d.0 as usize] = Other;
                    }
                }
                Stmt::Exit { .. } => {
                    // Control may leave here for another leader that is
                    // analysed from scratch: pushed addresses still on
                    // the operand stack become untrackable there, and so
                    // does an expression result carried in `t0` (the one
                    // register minicc keeps live across joins).
                    self.flush_mem();
                    self.escape_value(self.st.regs[reg::T0 as usize]);
                }
            }
        }
        self.flush_mem();
        match block.jumpkind {
            JumpKind::Call { .. } => {
                // The callee observes the argument registers.
                self.flush_regs(reg::A0, reg::A7);
            }
            JumpKind::Ret => {
                // The caller observes the return value.
                self.flush_regs(reg::A0, reg::A0);
                // A return must restore the caller's stack pointer:
                // either the block-entry `sp` (whole-function context)
                // or `fp + 16` (epilogue context; `fp` = entry-sp − 16).
                let ok = matches!(
                    self.st.regs[reg::SP as usize],
                    Stack { base: BaseReg::Sp, off: 0, .. }
                        | Stack { base: BaseReg::Fp, off: 16, .. }
                );
                if !ok {
                    self.facts.ret_mismatches.push(self.cur_pc);
                }
            }
            JumpKind::Halt => {}
            JumpKind::Boring => match block.next {
                Atom::Const(t) if t >= self.flo && t < self.fhi => {
                    // Intra-function transfer. If the lifter hit its
                    // instruction cap the continuation is plain
                    // straight-line code that may use any register the
                    // codegen assumed was still live.
                    if block.guest_instrs() >= MAX_BLOCK_INSTS {
                        self.flush_regs(0, NUM_REGS as u8 - 1);
                    } else {
                        // A branch-free transfer only carries the
                        // expression result in `t0` (e.g. the address
                        // selected by a ternary flowing into its join
                        // block, where it is reloaded as unknown).
                        self.escape_value(self.st.regs[reg::T0 as usize]);
                    }
                }
                Atom::Const(_) => {
                    // Tail transfer into another function: treat its
                    // register visibility like a call.
                    self.flush_regs(reg::A0, reg::A7);
                }
                Atom::Tmp(_) => {
                    // Indirect jump: the continuation is unknown.
                    self.flush_regs(0, NUM_REGS as u8 - 1);
                }
            },
        }
    }
}

fn fold_const(op: BinOp, a: u64, b: u64) -> AbsVal {
    use BinOp::*;
    match op {
        Add => Const(a.wrapping_add(b)),
        Sub => Const(a.wrapping_sub(b)),
        Mul => Const(a.wrapping_mul(b)),
        And => Const(a & b),
        Or => Const(a | b),
        Xor => Const(a ^ b),
        Shl => Const(a.wrapping_shl(b as u32)),
        ShrU => Const(a.wrapping_shr(b as u32)),
        CmpEq => Const((a == b) as u64),
        CmpNe => Const((a != b) as u64),
        CmpLtS => Const(((a as i64) < (b as i64)) as u64),
        CmpLeS => Const(((a as i64) <= (b as i64)) as u64),
        CmpLtU => Const((a < b) as u64),
        _ => Other,
    }
}

fn data_symbols(module: &Module) -> Vec<DataSym> {
    let mut syms: Vec<_> = module.symbols.iter().filter(|s| s.kind == SymKind::Data).collect();
    syms.sort_by_key(|s| s.addr);
    let data_end = module.data_end();
    (0..syms.len())
        .map(|i| {
            let next = syms.get(i + 1).map(|s| s.addr).unwrap_or(data_end);
            let hi = if syms[i].size > 0 {
                (syms[i].addr + syms[i].size).min(next.max(syms[i].addr))
            } else {
                next
            };
            DataSym { name: syms[i].name.clone(), lo: syms[i].addr, hi: hi.max(syms[i].addr) }
        })
        .collect()
}

/// Run the dataflow passes over every lifted context of every function.
pub fn run(module: &Module, cfg: &Cfg) -> Dataflow {
    let mut glob = GlobalAcc {
        data_syms: data_symbols(module),
        written: BTreeSet::new(),
        addr_escaped: BTreeSet::new(),
        code_writes: Vec::new(),
        records: Vec::new(),
        data_lo: module.data_base,
        data_hi: module.data_end(),
        code_lo: module.code_base,
        code_hi: module.code_end(),
    };
    let mut fn_facts: Vec<FnFacts> = vec![FnFacts::default(); cfg.funcs.len()];

    for (fi, f) in cfg.funcs.iter().enumerate() {
        for &leader in f.blocks.keys() {
            let Ok(block) = lift_superblock(module, leader) else {
                fn_facts[fi].poisoned = true;
                continue;
            };
            let mut interp = Interp {
                st: BlockState::new(block.n_temps),
                facts: &mut fn_facts[fi],
                glob: &mut glob,
                func: fi,
                flo: f.lo,
                fhi: f.hi,
                cur_pc: leader,
            };
            interp.run(&block);
        }
    }

    let ro: Vec<RoRange> = glob
        .data_syms
        .iter()
        .enumerate()
        .filter(|(i, s)| !glob.written.contains(i) && !glob.addr_escaped.contains(i) && s.hi > s.lo)
        .map(|(_, s)| RoRange { name: s.name.clone(), lo: s.lo, hi: s.hi })
        .collect();

    // Meet across contexts: a pc is safe only if every record agrees.
    let mut per_pc: BTreeMap<u64, bool> = BTreeMap::new();
    for r in &glob.records {
        let safe = match r.kind {
            AccessKind::StackCanon(off) => {
                !fn_facts[r.func].poisoned && !fn_facts[r.func].escaped.contains(&off)
            }
            AccessKind::StackAnon => !fn_facts[r.func].poisoned,
            AccessKind::ConstAddr { addr, size, write } => {
                !write && ro.iter().any(|s| addr >= s.lo && addr + size <= s.hi)
            }
            AccessKind::Unknown => false,
        };
        per_pc.entry(r.pc).and_modify(|s| *s &= safe).or_insert(safe);
    }
    let access_pcs = per_pc.len();
    let safe_pcs: BTreeSet<u64> =
        per_pc.into_iter().filter_map(|(pc, safe)| safe.then_some(pc)).collect();

    Dataflow { fn_facts, ro, safe_pcs, code_writes: glob.code_writes, access_pcs }
}
