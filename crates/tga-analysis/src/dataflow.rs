//! Abstract interpretation of lifted superblocks: stack-slot escape
//! analysis, stack-pointer delta checking, and read-only / init-only
//! classification of globals — interprocedural since the summary pass
//! of [`crate::summaries`] landed.
//!
//! Every basic-block leader of every recovered function is lifted with
//! `grindcore`'s superblock lifter and interpreted over a tiny abstract
//! domain: a value is a known constant, a known offset from the
//! block-entry `sp` or `fp`, one of the eight incoming argument
//! registers (`AbsVal::Param` — function-entry contexts only), or
//! unknown. Because a leader is analysed with no knowledge of its
//! callers or predecessors, any frame address that *leaves* the
//! abstract state — stored outside a transient push/save slot, resident
//! in a scratch register or an untracked stack slot at a block
//! boundary, or passed to a syscall/client request — is treated as an
//! escape of that slot. The resulting facts are a *meet* over every
//! context containing an instruction: an access is only classified
//! thread-private if every lifted context proves it so.
//!
//! Calls are no longer black holes. Functions are processed bottom-up
//! over the call-graph SCC condensation; at a direct call site the
//! callee's [`FnSummary`] decides which argument registers actually
//! capture the pointers they hold. A callee that merely *dereferences*
//! a pointer argument keeps the pointee's classification: the callee
//! runs on the caller's thread, so its accesses (recorded under
//! `AccessKind::Unknown`) are same-thread and the dynamic stack/TLS
//! suppressions of Algorithm 1 cover them. Only a callee that stores
//! the pointer, passes it onward to something untracked, or hands it to
//! a syscall/client request (task payloads!) forces the escape.
//!
//! On top of read-only globals, the pass classifies **init-only**
//! globals: symbols whose every (direct or summarized) write happens in
//! a basic block that provably runs before the program's first
//! `THREAD_CREATE` syscall ([`crate::summaries::spawn_reachability`]),
//! and whose address never escapes. All their writes are mutually
//! ordered on the initial thread and happen-before every spawn, so no
//! access to them can ever race and recording is skipped. This is the
//! classification that finally prunes the per-iteration reloads of
//! LULESH's global array pointers.
//!
//! Soundness rests on the target's codegen discipline (which minicc and
//! the guest runtime follow): `sp`-based stores are only operand-stack
//! pushes and prologue link saves, locals are addressed `fp`-relative,
//! and stack addresses are never laundered through arithmetic the
//! domain cannot follow (any such arithmetic poisons the whole frame;
//! a *global* address laundered the same way marks the symbol
//! address-escaped). Like the dynamic stack suppression of §IV-D, the
//! classification assumes no cross-thread use-after-return of stack
//! addresses.

use crate::cfg::Cfg;
use crate::summaries::{self, FnSummary, Summaries};
use grindcore::lift::{lift_superblock, MAX_BLOCK_INSTS};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tga::module::{Module, SymKind};
use tga::{reg, INST_SIZE, NUM_REGS};
use vex_ir::{Atom, BinOp, IrBlock, JumpKind, Rhs, Stmt, UnOp};

/// Which stack anchor an abstract offset is relative to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum BaseReg {
    /// Block-entry stack pointer.
    Sp,
    /// Block-entry frame pointer.
    Fp,
}

/// The abstract value domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AbsVal {
    Const(u64),
    /// A stack address: `base + off`. `via_sp` marks a value obtained
    /// by reading `sp` directly (plus a constant) — the only way
    /// operand-stack pushes and prologue saves address memory.
    Stack {
        base: BaseReg,
        off: i64,
        via_sp: bool,
    },
    /// The value of argument register `a{i}` at function entry (or a
    /// constant offset from it — for escape purposes a derived pointer
    /// captures the same object). Lives only in contexts seeded at a
    /// function entry and in trusted spill-slot reloads.
    Param(u8),
    Other,
}

use AbsVal::{Const, Other, Param, Stack};

/// Per-function dataflow verdicts.
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// Canonical `fp`-relative offsets whose address escapes the frame.
    pub escaped: BTreeSet<i64>,
    /// A frame address flowed somewhere the domain cannot follow; no
    /// access of this function's frame may be treated as private.
    pub poisoned: bool,
    /// One representative escape site per offset: `(offset, pc)`.
    pub escape_sites: Vec<(i64, u64)>,
    /// Return sites whose reconstructed `sp` does not restore the
    /// caller's stack pointer.
    pub ret_mismatches: Vec<u64>,
}

/// A classified global range (read-only or init-only).
#[derive(Clone, Debug)]
pub struct RoRange {
    /// Symbol name.
    pub name: String,
    /// Inclusive start address.
    pub lo: u64,
    /// Exclusive end address.
    pub hi: u64,
}

/// How one lifted context saw one guest memory access.
#[derive(Clone, Copy, Debug)]
enum AccessKind {
    /// Frame slot at a known canonical `fp`-relative offset.
    StackCanon(i64),
    /// Stack slot with no canonical offset (operand-stack pushes and
    /// link saves reached relative to a mid-function `sp`).
    StackAnon,
    /// A direct absolute access of `size` bytes.
    ConstAddr { addr: u64, size: u64, write: bool },
    /// Untracked address, or an atomic (never filtered).
    Unknown,
}

#[derive(Clone, Copy, Debug)]
struct AccessRec {
    pc: u64,
    func: usize,
    kind: AccessKind,
}

/// Aggregated dataflow output.
#[derive(Clone, Debug, Default)]
pub struct Dataflow {
    /// Parallel to `cfg.funcs`.
    pub fn_facts: Vec<FnFacts>,
    /// Globals never written and never address-taken.
    pub ro: Vec<RoRange>,
    /// Globals whose writes all happen before the first thread spawn
    /// and whose address never escapes (see module docs).
    pub init_only: Vec<RoRange>,
    /// Guest pcs of loads/stores proven thread-private, read-only or
    /// init-only in every context that contains them.
    pub safe_pcs: BTreeSet<u64>,
    /// Stores with a constant target inside the text section.
    pub code_writes: Vec<(u64, u64)>,
    /// Total distinct access pcs seen by the analysis.
    pub access_pcs: usize,
    /// Every distinct access pc (the keys behind `access_pcs`).
    pub all_access_pcs: Vec<u64>,
    /// Abstract first-argument value per direct call site: `Some(c)`
    /// when `a0` is the same known constant in every lifted context
    /// containing the call, `None` otherwise. Consumed by the lockset
    /// pass to resolve lock identities.
    pub call_args: BTreeMap<u64, Option<u64>>,
    /// Per-function effect summaries (kept for diagnostics and tests).
    pub summaries: Summaries,
}

struct DataSym {
    name: String,
    lo: u64,
    hi: u64,
}

/// Merged abstract `a0` at a call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CallArg {
    Known(u64),
    Many,
}

/// Global (module-level) accumulators shared across contexts.
struct GlobalAcc {
    data_syms: Vec<DataSym>,
    /// Indices into `data_syms` with a direct constant-address store.
    written: BTreeSet<usize>,
    /// Indices whose address was stored, passed, or live at a boundary.
    addr_escaped: BTreeSet<usize>,
    /// `(data_sym index, pc)` of every known write, for the init-only
    /// pre-spawn check.
    write_sites: Vec<(usize, u64)>,
    code_writes: Vec<(u64, u64)>,
    records: Vec<AccessRec>,
    call_args: BTreeMap<u64, CallArg>,
    data_lo: u64,
    data_hi: u64,
    code_lo: u64,
    code_hi: u64,
    /// Probe (phase-1) interpretation: suppress all module-level
    /// accumulation, which the conservative pre-pass would pollute.
    muted: bool,
}

impl GlobalAcc {
    fn sym_of(&self, addr: u64) -> Option<usize> {
        self.data_syms.iter().position(|s| addr >= s.lo && addr < s.hi)
    }

    fn addr_escape(&mut self, addr: u64) {
        if self.muted {
            return;
        }
        if let Some(i) = self.sym_of(addr) {
            self.addr_escaped.insert(i);
        }
    }

    /// A write of global memory at `addr` performed at `pc` (directly,
    /// atomically, or through a summarized callee).
    fn write_global(&mut self, addr: u64, pc: u64) {
        if self.muted {
            return;
        }
        if let Some(i) = self.sym_of(addr) {
            self.written.insert(i);
            self.write_sites.push((i, pc));
        }
    }

    fn code_write(&mut self, pc: u64, target: u64) {
        if !self.muted {
            self.code_writes.push((pc, target));
        }
    }

    fn note_call_arg(&mut self, pc: u64, a0: AbsVal) {
        if self.muted {
            return;
        }
        let merged = match a0 {
            Const(c) => CallArg::Known(c),
            _ => CallArg::Many,
        };
        self.call_args
            .entry(pc)
            .and_modify(|e| {
                if *e != merged {
                    *e = CallArg::Many;
                }
            })
            .or_insert(merged);
    }

    fn in_data(&self, addr: u64) -> bool {
        addr >= self.data_lo && addr < self.data_hi
    }
}

/// Abstract machine state while interpreting one lifted superblock.
struct BlockState {
    tmps: Vec<AbsVal>,
    regs: [AbsVal; NUM_REGS],
    /// Tracked stack slots, keyed by `(base, off)`.
    mem: HashMap<(BaseReg, i64), AbsVal>,
}

impl BlockState {
    fn new(n_temps: u32, seed_params: bool) -> BlockState {
        let mut regs = [Other; NUM_REGS];
        regs[reg::ZERO as usize] = Const(0);
        regs[reg::SP as usize] = Stack { base: BaseReg::Sp, off: 0, via_sp: false };
        regs[reg::FP as usize] = Stack { base: BaseReg::Fp, off: 0, via_sp: false };
        if seed_params {
            for i in 0..8u8 {
                regs[(reg::A0 + i) as usize] = Param(i);
            }
        }
        BlockState { tmps: vec![Other; n_temps as usize], regs, mem: HashMap::new() }
    }

    fn atom(&self, a: &Atom) -> AbsVal {
        match a {
            Atom::Const(c) => Const(*c),
            Atom::Tmp(t) => self.tmps[t.0 as usize],
        }
    }

    /// Canonical `fp`-relative offset of a stack value, if expressible
    /// in the current context (directly `fp`-based, or `sp`-based in a
    /// block that derived `fp` from the same anchor).
    fn canonical(&self, base: BaseReg, off: i64) -> Option<i64> {
        match base {
            BaseReg::Fp => Some(off),
            BaseReg::Sp => match self.regs[reg::FP as usize] {
                Stack { base: BaseReg::Sp, off: fp_off, .. } => Some(off - fp_off),
                _ => None,
            },
        }
    }
}

/// Phase-1 (probe) collection: parameter spill slots and how often each
/// canonical frame slot is stored, keyed by distinct store pc so
/// overlapping lifted contexts do not double-count.
#[derive(Default)]
struct Probe {
    /// Distinct non-transient store pcs per canonical offset.
    counts: BTreeMap<i64, BTreeSet<u64>>,
    /// Param index → (canonical offset, pc) of its prologue spill.
    spill: BTreeMap<u8, (i64, u64)>,
    /// A store the probe could not attribute to a canonical slot
    /// (wild `sp`-laundered target, stack atomic): trust nothing.
    wild: bool,
}

/// Interpreter for one lifted context of one function.
/// Live tracked slots carried across a direct call, keyed by the
/// continuation leader and re-based to its coordinates.
type BridgeMap = BTreeMap<u64, Vec<((BaseReg, i64), AbsVal)>>;

struct Interp<'a> {
    st: BlockState,
    facts: &'a mut FnFacts,
    glob: &'a mut GlobalAcc,
    func: usize,
    /// Function range, for recognising tail transfers out of it.
    flo: u64,
    fhi: u64,
    /// End of the function's entry basic block: spill-slot candidates
    /// are only accepted below it (the entry block dominates the whole
    /// function, so a trusted reload is always preceded by its spill).
    entry_block_end: u64,
    cur_pc: u64,
    /// Callee summaries (bottom-up: everything below this function's
    /// SCC is final; same-SCC entries read as widened).
    summaries: &'a Summaries,
    /// The summary being accumulated for this function.
    summary: &'a mut FnSummary,
    /// Canonical offset → param index of slots whose reloads may be
    /// trusted to still hold the spilled argument register.
    trusted: &'a BTreeMap<i64, u8>,
    /// Present in phase 1 only.
    probe: Option<&'a mut Probe>,
    /// Call-bridging gate: `Some(escaped)` in phase 2 when the probe
    /// pass finished unpoisoned, so its frame-escape set is complete.
    /// Slots in the set are never carried across a call.
    bridge_escapes: Option<&'a BTreeSet<i64>>,
    /// Leaders with exactly one intra-procedural predecessor edge —
    /// the only continuations a call may seed.
    single_pred: &'a BTreeSet<u64>,
    /// Live tracked slots carried across a direct call, keyed by the
    /// continuation leader and re-based to its coordinates.
    bridge_out: &'a mut BridgeMap,
    /// The function's basic blocks, for recognising whether a capped
    /// lift's continuation is a real leader or plain straight-line code.
    fblocks: &'a BTreeMap<u64, crate::cfg::Block>,
    /// Set when the lifter's instruction cap split a straight-line run:
    /// the caller must continue interpreting at this pc with the whole
    /// state carried over (same runtime path, no other context covers
    /// it).
    chain_to: Option<u64>,
}

impl Interp<'_> {
    /// A frame address left the abstract state: record the escape (or
    /// poison the frame when the slot cannot be named).
    fn escape_stack(&mut self, base: BaseReg, off: i64) {
        match self.st.canonical(base, off) {
            Some(c) => {
                if self.facts.escaped.insert(c) {
                    self.facts.escape_sites.push((c, self.cur_pc));
                }
            }
            None => self.facts.poisoned = true,
        }
    }

    /// A parameter pointer flowed somewhere untracked: assume it is
    /// captured, read and written.
    fn taint_param(&mut self, i: u8) {
        self.summary.taint(i, true, true, true);
    }

    /// Apply the boundary rules for a value that flows out of the block
    /// (register or tracked slot at a block exit, dirty-call argument,
    /// store payload).
    fn escape_value(&mut self, v: AbsVal) {
        match v {
            Stack { base, off, .. } => self.escape_stack(base, off),
            Const(c) if self.glob.in_data(c) => self.glob.addr_escape(c),
            Param(i) => self.taint_param(i),
            _ => {}
        }
    }

    /// A constant that might be a data address was consumed by
    /// arithmetic the domain cannot invert: the symbol's address is
    /// loose from here on (the result may be dereferenced as `Other`).
    fn launder_const(&mut self, v: AbsVal) {
        if let Const(c) = v {
            if self.glob.in_data(c) {
                self.glob.addr_escape(c);
            }
        }
    }

    /// Addresses resident in tracked stack slots when control may leave
    /// the block escape: the continuation is analysed from scratch and
    /// would reload them as unknown values, so a later copy-out could
    /// not be seen. Two exemptions keep this precise:
    ///
    /// * A `Param` resting in its own trusted (or candidate) spill slot
    ///   — the continuation reloads it as the same `Param`.
    /// * Slots **below the current stack pointer** — popped operand-
    ///   stack pushes. The codegen discipline (see the module docs)
    ///   never reloads memory below `sp`, so a dead push slot's residue
    ///   is unreachable and need not escape.
    fn flush_mem(&mut self) {
        let sp_now = match self.st.regs[reg::SP as usize] {
            Stack { base, off, .. } => Some((base, off)),
            _ => None,
        };
        let entries: Vec<((BaseReg, i64), AbsVal)> =
            self.st.mem.iter().map(|(k, v)| (*k, *v)).collect();
        for ((base, off), v) in entries {
            if let Some((sb, so)) = sp_now {
                if base == sb && off < so {
                    continue; // dead: below the live stack pointer
                }
            }
            if let Param(i) = v {
                let canon = self.st.canonical(base, off);
                let home = match &self.probe {
                    Some(p) => p.spill.get(&i).map(|&(o, _)| o),
                    None => self.trusted.iter().find(|&(_, &pi)| pi == i).map(|(&o, _)| o),
                };
                if canon.is_some() && canon == home {
                    continue;
                }
            }
            self.escape_value(v);
        }
    }

    /// A store through an unknown pointer (or an atomic with an unknown
    /// address) may overwrite any tracked slot. The residues must
    /// escape *before* the slots are forgotten: a silently dropped live
    /// value could be reloaded as `Other` and copied out unseen.
    fn clobber_mem(&mut self) {
        self.flush_mem();
        self.st.mem.clear();
    }

    /// Carry live tracked slots across a direct call into its
    /// continuation superblock instead of escaping their residues.
    ///
    /// The assignment codegen pushes the destination address before
    /// evaluating the rhs, so a call in the rhs (`p = malloc(..)`,
    /// `n = atoi(..)`) would otherwise address-escape the destination
    /// global — or frame slot — at every such site. Bridging a slot is
    /// sound exactly when the callee cannot hold a pointer to it:
    ///
    /// * its address never escapes the frame (per the probe pass,
    ///   whose escape set is complete because it finished unpoisoned),
    /// * no frame address with callee write or escape effects is
    ///   passed as an argument (an argument pointer admits writes at
    ///   arbitrary offsets from it, memset-style), and
    /// * the continuation has the call as its only predecessor, so
    ///   the seeded state cannot describe any other path.
    ///
    /// Everything not bridged stays in `mem` for the ordinary
    /// `flush_mem` escape that follows.
    fn bridge_call(&mut self, target: u64) {
        let Some(escaped) = self.bridge_escapes else { return };
        let cont = self.cur_pc + INST_SIZE;
        if cont <= self.flo || cont >= self.fhi || !self.single_pred.contains(&cont) {
            return;
        }
        let s = self.summaries.for_target(target);
        for i in 0..8u8 {
            let bit = 1u8 << i;
            if matches!(self.st.regs[(reg::A0 + i) as usize], Stack { .. })
                && (s.escapes & bit != 0 || s.writes & bit != 0)
            {
                return; // callee may write through a frame pointer
            }
        }
        let fp_now = self.st.regs[reg::FP as usize];
        let sp_now = self.st.regs[reg::SP as usize];
        let rebase = |base: BaseReg, off: i64| -> Option<(BaseReg, i64)> {
            if let Stack { base: fb, off: fo, .. } = fp_now {
                if base == fb {
                    return Some((BaseReg::Fp, off - fo));
                }
            }
            if let Stack { base: sb, off: so, .. } = sp_now {
                if base == sb {
                    return Some((BaseReg::Sp, off - so));
                }
            }
            None
        };
        let entries: Vec<((BaseReg, i64), AbsVal)> =
            self.st.mem.iter().map(|(k, v)| (*k, *v)).collect();
        let mut bridged: Vec<((BaseReg, i64), AbsVal)> = Vec::new();
        for ((base, off), v) in entries {
            if let Stack { base: sb, off: so, .. } = sp_now {
                if base == sb && off < so {
                    continue; // dead push slot: unreachable either way
                }
            }
            // The probe's escape set names canonical (fp-relative)
            // slots in the frame's reserved area. A slot that cannot be
            // canonicalized here is `sp`-anchored in a non-entry
            // context, i.e. an operand push/save slot below that area:
            // the codegen discipline only ever materialises such an
            // address as a transient `sp` read, so no escaped pointer
            // can reach it and it may always be carried.
            if let Some(c) = self.st.canonical(base, off) {
                if escaped.contains(&c) {
                    continue; // leave for flush_mem
                }
            }
            let Some(key) = rebase(base, off) else { continue };
            let nv = match v {
                Const(_) => v,
                Stack { base: vb, off: vo, .. } => match rebase(vb, vo) {
                    // Re-based values are no longer direct `sp` reads.
                    Some((nb, no)) => Stack { base: nb, off: no, via_sp: false },
                    None => continue,
                },
                Param(_) | Other => continue, // home-slot logic / no info
            };
            self.st.mem.remove(&(base, off));
            bridged.push((key, nv));
        }
        if bridged.is_empty() {
            return;
        }
        let mut conflicts: Vec<AbsVal> = Vec::new();
        {
            let slot = self.bridge_out.entry(cont).or_default();
            for (k, v) in bridged {
                match slot.iter().position(|(k2, _)| *k2 == k) {
                    Some(i) if slot[i].1 == v => {}
                    Some(i) => {
                        // Two contexts over the same call disagree:
                        // neither value may seed the continuation.
                        let (_, old) = slot.remove(i);
                        conflicts.push(old);
                        conflicts.push(v);
                    }
                    None => slot.push((k, v)),
                }
            }
        }
        for v in conflicts {
            self.escape_value(v);
        }
    }

    /// Escape addresses in a register range (calling-convention rules:
    /// a caller observes `a0`, and a cap-split or indirect continuation
    /// observes everything).
    fn flush_regs(&mut self, lo: u8, hi: u8) {
        for r in lo..=hi {
            if r == reg::SP || r == reg::FP {
                continue;
            }
            self.escape_value(self.st.regs[r as usize]);
        }
    }

    /// Apply calling-convention effects of a direct call or tail
    /// transfer to `target`, consulting the callee's summary instead of
    /// unconditionally escaping every argument register.
    fn call_transfer(&mut self, target: Option<u64>) {
        self.glob.note_call_arg(self.cur_pc, self.st.regs[reg::A0 as usize]);
        let Some(t) = target else {
            self.flush_regs(reg::A0, reg::A7);
            return;
        };
        let s = self.summaries.for_target(t);
        for i in 0..8u8 {
            let bit = 1u8 << i;
            let (esc, wr, rd) = (s.escapes & bit != 0, s.writes & bit != 0, s.reads & bit != 0);
            match self.st.regs[(reg::A0 + i) as usize] {
                Stack { base, off, .. } => {
                    if esc {
                        self.escape_stack(base, off);
                    } else if wr {
                        // A same-thread write through the slot's address:
                        // counts against spill-slot trust, not escape.
                        if let (Some(p), Some(c)) =
                            (self.probe.as_deref_mut(), self.st.canonical(base, off))
                        {
                            p.counts.entry(c).or_default().insert(self.cur_pc);
                        }
                    }
                }
                Const(c) if self.glob.in_data(c) => {
                    if esc {
                        self.glob.addr_escape(c);
                    } else if wr {
                        self.glob.write_global(c, self.cur_pc);
                    }
                }
                Param(j) => {
                    if esc {
                        self.taint_param(j);
                    } else {
                        self.summary.taint(j, false, wr, rd);
                    }
                }
                _ => {}
            }
        }
    }

    fn record(&mut self, kind: AccessKind) {
        if self.glob.muted {
            return;
        }
        self.glob.records.push(AccessRec { pc: self.cur_pc, func: self.func, kind });
    }

    fn classify_addr(&self, a: AbsVal, size: u64, write: bool) -> AccessKind {
        match a {
            Stack { base, off, .. } => match self.st.canonical(base, off) {
                Some(c) => AccessKind::StackCanon(c),
                None => AccessKind::StackAnon,
            },
            Const(addr) => AccessKind::ConstAddr { addr, size, write },
            Param(_) | Other => AccessKind::Unknown,
        }
    }

    fn binop(&mut self, op: BinOp, l: AbsVal, r: AbsVal) -> AbsVal {
        use BinOp::*;
        match (op, l, r) {
            (_, Const(a), Const(b)) => fold_const(op, a, b),
            (Add, Stack { base, off, via_sp }, Const(c))
            | (Add, Const(c), Stack { base, off, via_sp }) => {
                Stack { base, off: off.wrapping_add(c as i64), via_sp }
            }
            (Sub, Stack { base, off, via_sp }, Const(c)) => {
                Stack { base, off: off.wrapping_sub(c as i64), via_sp }
            }
            (Sub, Stack { base: b1, off: o1, .. }, Stack { base: b2, off: o2, .. }) if b1 == b2 => {
                Const(o1.wrapping_sub(o2) as u64)
            }
            // A derived pointer into the same argument still captures
            // the same object.
            (Add | Sub, Param(i), Const(_)) | (Add, Const(_), Param(i)) => Param(i),
            (CmpEq | CmpNe | CmpLtS | CmpLeS | CmpLtU, _, _) => Other,
            (_, Stack { .. }, _) | (_, _, Stack { .. }) => {
                // Frame address flowing through arithmetic the domain
                // cannot invert: give up on the whole frame. A data
                // address on the other side is laundered with it.
                self.facts.poisoned = true;
                self.launder_const(l);
                self.launder_const(r);
                Other
            }
            _ => {
                // Untracked result: any data address or parameter
                // pointer consumed here is loose.
                self.launder_const(l);
                self.launder_const(r);
                if let Param(i) = l {
                    self.taint_param(i);
                }
                if let Param(i) = r {
                    self.taint_param(i);
                }
                Other
            }
        }
    }

    fn unop(&mut self, op: UnOp, x: AbsVal) -> AbsVal {
        match (op, x) {
            (UnOp::Neg, Const(c)) => Const(c.wrapping_neg()),
            (UnOp::Not, Const(c)) => Const(!c),
            (_, Stack { .. }) => {
                self.facts.poisoned = true;
                Other
            }
            (_, Param(i)) => {
                self.taint_param(i);
                Other
            }
            _ => Other,
        }
    }

    /// Count a store to a canonical frame slot for spill-slot trust
    /// (phase 1), and register a prologue param spill candidate.
    fn probe_stack_store(&mut self, base: BaseReg, off: i64, via_sp: bool, val: AbsVal) {
        let canon = self.st.canonical(base, off);
        let pc = self.cur_pc;
        let in_entry_block = pc < self.entry_block_end;
        let Some(p) = self.probe.as_deref_mut() else { return };
        if via_sp {
            return; // transient pushes/link saves follow the sp discipline
        }
        match canon {
            Some(c) => {
                p.counts.entry(c).or_default().insert(pc);
                if in_entry_block {
                    if let Param(i) = val {
                        p.spill.entry(i).or_insert((c, pc));
                    }
                }
            }
            None => p.wild = true,
        }
    }

    fn run(&mut self, block: &IrBlock) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::IMark { addr, .. } => self.cur_pc = *addr,
                Stmt::WrTmp { dst, rhs } => {
                    let v = match rhs {
                        Rhs::Atom(a) => self.st.atom(a),
                        Rhs::Get { reg: r } => {
                            let v = self.st.regs[*r as usize];
                            // `via_sp` is a property of the read, not of
                            // the value: only a direct `sp` read can
                            // address a push/save slot.
                            match v {
                                Stack { base, off, .. } => {
                                    Stack { base, off, via_sp: *r == reg::SP }
                                }
                                other => other,
                            }
                        }
                        Rhs::Load { ty, addr } => {
                            let a = self.st.atom(addr);
                            let kind = self.classify_addr(a, ty.size(), false);
                            self.record(kind);
                            if let Param(i) = a {
                                self.summary.taint(i, false, false, true);
                            }
                            match a {
                                Stack { base, off, .. } => {
                                    match self.st.mem.get(&(base, off)) {
                                        Some(v) => *v,
                                        // A reload from a trusted spill
                                        // slot still holds the argument.
                                        None => match self
                                            .st
                                            .canonical(base, off)
                                            .and_then(|c| self.trusted.get(&c))
                                        {
                                            Some(&i) => Param(i),
                                            None => Other,
                                        },
                                    }
                                }
                                _ => Other,
                            }
                        }
                        Rhs::Binop { op, lhs, rhs } => {
                            let (l, r) = (self.st.atom(lhs), self.st.atom(rhs));
                            self.binop(*op, l, r)
                        }
                        Rhs::Unop { op, x } => {
                            let x = self.st.atom(x);
                            self.unop(*op, x)
                        }
                        Rhs::Ite { cond: _, then, els } => {
                            let (t, e) = (self.st.atom(then), self.st.atom(els));
                            if t == e {
                                t
                            } else {
                                if matches!(t, Stack { .. }) || matches!(e, Stack { .. }) {
                                    self.facts.poisoned = true;
                                }
                                self.launder_const(t);
                                self.launder_const(e);
                                if let Param(i) = t {
                                    self.taint_param(i);
                                }
                                if let Param(i) = e {
                                    self.taint_param(i);
                                }
                                Other
                            }
                        }
                    };
                    self.st.tmps[dst.0 as usize] = v;
                }
                Stmt::Put { reg: r, src } => {
                    if *r != reg::ZERO {
                        self.st.regs[*r as usize] = self.st.atom(src);
                    }
                }
                Stmt::Store { ty, addr, val } => {
                    let a = self.st.atom(addr);
                    let v = self.st.atom(val);
                    let kind = self.classify_addr(a, ty.size(), true);
                    self.record(kind);
                    match a {
                        Stack { base, off, via_sp } => {
                            self.probe_stack_store(base, off, via_sp, v);
                            // A frame or global address stored into
                            // anything but a transient push/save slot may
                            // be reloaded later as an untracked value and
                            // copied out: that is an escape of the
                            // payload. A push slot is tracked in `mem`
                            // and its residue escapes at `flush_mem` if
                            // still live, so the assignment codegen's
                            // address push (`&g` pushed while the rhs is
                            // evaluated) does not by itself escape `g`.
                            if !via_sp {
                                if let Stack { base: pb, off: po, .. } = v {
                                    self.escape_stack(pb, po);
                                }
                                self.launder_const(v);
                            }
                            self.st.mem.insert((base, off), v);
                        }
                        Const(c) => {
                            if let Stack { base: pb, off: po, .. } = v {
                                self.escape_stack(pb, po);
                            }
                            if let Param(i) = v {
                                self.taint_param(i);
                            }
                            self.launder_const(v);
                            if c >= self.glob.code_lo && c < self.glob.code_hi {
                                self.glob.code_write(self.cur_pc, c);
                            }
                            self.glob.write_global(c, self.cur_pc);
                            // A constant data/code address cannot alias
                            // the guest stack: tracked slots survive.
                        }
                        Param(i) => {
                            // Store through an argument pointer: a write
                            // effect on the pointee; the payload leaves
                            // the trackable world. Arguments are formed
                            // before this activation's frame exists, so
                            // they cannot alias tracked slots.
                            self.summary.taint(i, false, true, false);
                            if let Stack { base: pb, off: po, .. } = v {
                                self.escape_stack(pb, po);
                            }
                            if let Param(j) = v {
                                self.taint_param(j);
                            }
                            self.launder_const(v);
                        }
                        Other => {
                            if let Stack { base: pb, off: po, .. } = v {
                                self.escape_stack(pb, po);
                            }
                            if let Param(j) = v {
                                self.taint_param(j);
                            }
                            self.launder_const(v);
                            // Unknown target may alias any tracked slot:
                            // escape live residues, then forget them.
                            self.clobber_mem();
                        }
                    }
                }
                Stmt::Cas { addr, expected, new, .. } => {
                    let a = self.st.atom(addr);
                    self.record(AccessKind::Unknown); // atomics stay instrumented
                    match a {
                        Const(c) => self.glob.write_global(c, self.cur_pc),
                        Param(i) => self.summary.taint(i, false, true, true),
                        Stack { .. } => {
                            if let Some(p) = self.probe.as_deref_mut() {
                                p.wild = true;
                            }
                        }
                        Other => {}
                    }
                    self.escape_value(self.st.atom(expected));
                    self.escape_value(self.st.atom(new));
                    self.clobber_mem();
                }
                Stmt::AtomicAdd { addr, val, .. } => {
                    let a = self.st.atom(addr);
                    self.record(AccessKind::Unknown);
                    match a {
                        Const(c) => self.glob.write_global(c, self.cur_pc),
                        Param(i) => self.summary.taint(i, false, true, true),
                        Stack { .. } => {
                            if let Some(p) = self.probe.as_deref_mut() {
                                p.wild = true;
                            }
                        }
                        Other => {}
                    }
                    self.escape_value(self.st.atom(val));
                    self.clobber_mem();
                }
                Stmt::Dirty { args, dst, .. } => {
                    let vals: Vec<AbsVal> = args.iter().map(|a| self.st.atom(a)).collect();
                    for v in vals {
                        self.escape_value(v);
                    }
                    if let Some(d) = dst {
                        self.st.tmps[d.0 as usize] = Other;
                    }
                }
                Stmt::Exit { .. } => {
                    // Control may leave here for another leader that is
                    // analysed from scratch: pushed addresses still on
                    // the operand stack become untrackable there, and so
                    // does an expression result carried in `t0` (the one
                    // register minicc keeps live across joins).
                    self.flush_mem();
                    self.escape_value(self.st.regs[reg::T0 as usize]);
                }
            }
        }
        // A lifter cap in the middle of a straight-line run (the
        // continuation is not a leader, so no branch can reach it and
        // no other context interprets it) is not a control transfer at
        // all: carry the whole state instead of flushing anything.
        if let (JumpKind::Boring, Atom::Const(t)) = (block.jumpkind, block.next) {
            if t >= self.flo
                && t < self.fhi
                && block.guest_instrs() >= MAX_BLOCK_INSTS
                && !self.fblocks.contains_key(&t)
            {
                self.chain_to = Some(t);
                return;
            }
        }
        // A direct call may hand live tracked slots to its continuation
        // before the remainder escapes.
        if let JumpKind::Call { .. } = block.jumpkind {
            if let Atom::Const(t) = block.next {
                self.bridge_call(t);
            }
        }
        self.flush_mem();
        match block.jumpkind {
            JumpKind::Call { .. } => {
                // The callee observes the argument registers — exactly
                // as far as its summary admits.
                let target = match block.next {
                    Atom::Const(t) => Some(t),
                    Atom::Tmp(_) => None,
                };
                self.call_transfer(target);
            }
            JumpKind::Ret => {
                // The caller observes the return value (returning a
                // parameter pointer hands it back untracked: escape).
                self.flush_regs(reg::A0, reg::A0);
                // A return must restore the caller's stack pointer:
                // either the block-entry `sp` (whole-function context)
                // or `fp + 16` (epilogue context; `fp` = entry-sp − 16).
                let ok = matches!(
                    self.st.regs[reg::SP as usize],
                    Stack { base: BaseReg::Sp, off: 0, .. }
                        | Stack { base: BaseReg::Fp, off: 16, .. }
                );
                if !ok {
                    self.facts.ret_mismatches.push(self.cur_pc);
                }
            }
            JumpKind::Halt => {}
            JumpKind::Boring => match block.next {
                Atom::Const(t) if t >= self.flo && t < self.fhi => {
                    // Intra-function transfer. If the lifter hit its
                    // instruction cap the continuation is plain
                    // straight-line code that may use any register the
                    // codegen assumed was still live.
                    if block.guest_instrs() >= MAX_BLOCK_INSTS {
                        self.flush_regs(0, NUM_REGS as u8 - 1);
                    } else {
                        // A branch-free transfer only carries the
                        // expression result in `t0` (e.g. the address
                        // selected by a ternary flowing into its join
                        // block, where it is reloaded as unknown).
                        self.escape_value(self.st.regs[reg::T0 as usize]);
                    }
                }
                Atom::Const(t) => {
                    // Tail transfer into another function: treat its
                    // register visibility like a call.
                    self.call_transfer(Some(t));
                }
                Atom::Tmp(_) => {
                    // Indirect jump: the continuation is unknown.
                    self.flush_regs(0, NUM_REGS as u8 - 1);
                }
            },
        }
    }
}

fn fold_const(op: BinOp, a: u64, b: u64) -> AbsVal {
    use BinOp::*;
    match op {
        Add => Const(a.wrapping_add(b)),
        Sub => Const(a.wrapping_sub(b)),
        Mul => Const(a.wrapping_mul(b)),
        And => Const(a & b),
        Or => Const(a | b),
        Xor => Const(a ^ b),
        Shl => Const(a.wrapping_shl(b as u32)),
        ShrU => Const(a.wrapping_shr(b as u32)),
        CmpEq => Const((a == b) as u64),
        CmpNe => Const((a != b) as u64),
        CmpLtS => Const(((a as i64) < (b as i64)) as u64),
        CmpLeS => Const(((a as i64) <= (b as i64)) as u64),
        CmpLtU => Const((a < b) as u64),
        _ => Other,
    }
}

fn data_symbols(module: &Module) -> Vec<DataSym> {
    let mut syms: Vec<_> = module.symbols.iter().filter(|s| s.kind == SymKind::Data).collect();
    syms.sort_by_key(|s| s.addr);
    let data_end = module.data_end();
    (0..syms.len())
        .map(|i| {
            let next = syms.get(i + 1).map(|s| s.addr).unwrap_or(data_end);
            let hi = if syms[i].size > 0 {
                (syms[i].addr + syms[i].size).min(next.max(syms[i].addr))
            } else {
                next
            };
            DataSym { name: syms[i].name.clone(), lo: syms[i].addr, hi: hi.max(syms[i].addr) }
        })
        .collect()
}

/// Interpret every superblock of one function in one configuration.
#[allow(clippy::too_many_arguments)]
fn interp_function(
    module: &Module,
    cfg: &Cfg,
    fi: usize,
    glob: &mut GlobalAcc,
    facts: &mut FnFacts,
    summaries: &Summaries,
    summary: &mut FnSummary,
    trusted: &BTreeMap<i64, u8>,
    mut probe: Option<&mut Probe>,
    bridge_escapes: Option<&BTreeSet<i64>>,
) -> bool {
    let f = &cfg.funcs[fi];
    let entry_block_end = f.blocks.get(&f.lo).map(|b| b.end).unwrap_or(f.lo);
    // Leaders with exactly one predecessor edge: the only ones a call
    // may seed with bridged slots.
    let mut preds: BTreeMap<u64, u32> = BTreeMap::new();
    for b in f.blocks.values() {
        for &s in &b.succs {
            *preds.entry(s).or_insert(0) += 1;
        }
    }
    let single_pred: BTreeSet<u64> =
        preds.iter().filter(|&(_, &n)| n == 1).map(|(&s, _)| s).collect();
    let mut bridge: BridgeMap = BTreeMap::new();
    let mut all_lifted = true;
    for &leader in f.blocks.keys() {
        // One context per leader — continued across lifter caps that
        // split a straight-line run (`chain_to`), carrying registers
        // and tracked slots; only the per-block temporaries reset.
        let mut at = leader;
        let mut carry: Option<BlockState> = None;
        loop {
            let Ok(block) = lift_superblock(module, at) else {
                facts.poisoned = true;
                all_lifted = false;
                break;
            };
            let mut st = match carry.take() {
                Some(prev) => BlockState {
                    tmps: vec![Other; block.n_temps as usize],
                    regs: prev.regs,
                    mem: prev.mem,
                },
                None => BlockState::new(block.n_temps, leader == f.lo),
            };
            if at == leader {
                if let Some(entries) = bridge.get(&leader) {
                    for &(k, v) in entries {
                        st.mem.insert(k, v);
                    }
                }
            }
            let mut interp = Interp {
                st,
                facts,
                glob,
                func: fi,
                flo: f.lo,
                fhi: f.hi,
                entry_block_end,
                cur_pc: at,
                summaries,
                summary,
                trusted,
                probe: probe.as_deref_mut(),
                bridge_escapes,
                single_pred: &single_pred,
                bridge_out: &mut bridge,
                fblocks: &f.blocks,
                chain_to: None,
            };
            interp.run(&block);
            match interp.chain_to {
                Some(next) => {
                    carry = Some(interp.st);
                    at = next;
                }
                None => break,
            }
        }
    }
    all_lifted
}

/// Run the dataflow passes over every lifted context of every function,
/// bottom-up over the call graph.
pub fn run(module: &Module, cfg: &Cfg) -> Dataflow {
    let mut glob = GlobalAcc {
        data_syms: data_symbols(module),
        written: BTreeSet::new(),
        addr_escaped: BTreeSet::new(),
        write_sites: Vec::new(),
        code_writes: Vec::new(),
        records: Vec::new(),
        call_args: BTreeMap::new(),
        data_lo: module.data_base,
        data_hi: module.data_end(),
        code_lo: module.code_base,
        code_hi: module.code_end(),
        muted: false,
    };
    let mut fn_facts: Vec<FnFacts> = vec![FnFacts::default(); cfg.funcs.len()];
    let cg = summaries::call_graph(cfg);
    let spawn = summaries::spawn_reachability(module, cfg, &cg);
    let mut sums = Summaries::new(cfg);
    let no_trust: BTreeMap<i64, u8> = BTreeMap::new();

    for scc in &cg.sccs {
        for &fi in scc {
            let f = &cfg.funcs[fi];
            // Phase 1 (muted probe): conservative local facts that gate
            // which prologue spill slots may be trusted in phase 2.
            glob.muted = true;
            let mut probe = Probe::default();
            let mut ph1 = FnFacts::default();
            let mut scratch = FnSummary::default();
            interp_function(
                module,
                cfg,
                fi,
                &mut glob,
                &mut ph1,
                &sums,
                &mut scratch,
                &no_trust,
                Some(&mut probe),
                None,
            );
            let entry_is_loop_target = f.blocks.values().any(|b| b.succs.contains(&f.lo));
            let mut trusted: BTreeMap<i64, u8> = BTreeMap::new();
            if !probe.wild && !ph1.poisoned && !entry_is_loop_target {
                for (&i, &(off, _pc)) in &probe.spill {
                    let single = probe.counts.get(&off).map(|pcs| pcs.len() == 1).unwrap_or(false);
                    if single && !ph1.escaped.contains(&off) {
                        trusted.insert(off, i);
                    }
                }
            }

            // Phase 2 (live): the real analysis, with trusted spill-slot
            // reloads keeping parameters visible across superblocks and
            // live slots bridged across direct calls (the probe's escape
            // set is complete only if phase 1 stayed unpoisoned).
            glob.muted = false;
            let mut summary = FnSummary::default();
            let bridge_ok = !probe.wild && !ph1.poisoned;
            let all_lifted = interp_function(
                module,
                cfg,
                fi,
                &mut glob,
                &mut fn_facts[fi],
                &sums,
                &mut summary,
                &trusted,
                None,
                bridge_ok.then_some(&ph1.escaped),
            );
            if !all_lifted {
                summary = FnSummary::widened();
            }
            sums.set(fi, summary);
        }
    }

    let ro: Vec<RoRange> = glob
        .data_syms
        .iter()
        .enumerate()
        .filter(|(i, s)| !glob.written.contains(i) && !glob.addr_escaped.contains(i) && s.hi > s.lo)
        .map(|(_, s)| RoRange { name: s.name.clone(), lo: s.lo, hi: s.hi })
        .collect();

    // Init-only globals: written, but every write site sits in a block
    // that provably runs before the first thread spawn, and the address
    // never escapes — so no access can race with the writes.
    let mut block_of: BTreeMap<u64, (u64, usize, u64)> = BTreeMap::new();
    for (fi, f) in cfg.funcs.iter().enumerate() {
        for b in f.blocks.values() {
            block_of.insert(b.start, (b.end, fi, b.start));
        }
    }
    let locate = |pc: u64| -> Option<(usize, u64)> {
        let (_, &(end, fi, start)) = block_of.range(..=pc).next_back()?;
        (pc < end).then_some((fi, start))
    };
    let mut writes_by_sym: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for &(si, pc) in &glob.write_sites {
        writes_by_sym.entry(si).or_default().push(pc);
    }
    let init_only: Vec<RoRange> = glob
        .data_syms
        .iter()
        .enumerate()
        .filter(|(i, s)| {
            s.hi > s.lo
                && glob.written.contains(i)
                && !glob.addr_escaped.contains(i)
                && writes_by_sym.get(i).is_some_and(|pcs| {
                    pcs.iter()
                        .all(|&pc| locate(pc).is_some_and(|(fi, start)| spawn.pre_spawn(fi, start)))
                })
        })
        .map(|(_, s)| RoRange { name: s.name.clone(), lo: s.lo, hi: s.hi })
        .collect();

    // Meet across contexts: a pc is safe only if every record agrees.
    let mut per_pc: BTreeMap<u64, bool> = BTreeMap::new();
    for r in &glob.records {
        let safe = match r.kind {
            AccessKind::StackCanon(off) => {
                !fn_facts[r.func].poisoned && !fn_facts[r.func].escaped.contains(&off)
            }
            AccessKind::StackAnon => !fn_facts[r.func].poisoned,
            AccessKind::ConstAddr { addr, size, write } => {
                let within = |s: &&RoRange| addr >= s.lo && addr.wrapping_add(size) <= s.hi;
                (!write && ro.iter().any(|s| within(&s))) || init_only.iter().any(|s| within(&s))
            }
            AccessKind::Unknown => false,
        };
        per_pc.entry(r.pc).and_modify(|s| *s &= safe).or_insert(safe);
    }
    let access_pcs = per_pc.len();
    let all_access_pcs: Vec<u64> = per_pc.keys().copied().collect();
    let safe_pcs: BTreeSet<u64> =
        per_pc.into_iter().filter_map(|(pc, safe)| safe.then_some(pc)).collect();
    let call_args: BTreeMap<u64, Option<u64>> = glob
        .call_args
        .iter()
        .map(|(&pc, &a)| {
            (
                pc,
                match a {
                    CallArg::Known(c) => Some(c),
                    CallArg::Many => None,
                },
            )
        })
        .collect();

    Dataflow {
        fn_facts,
        ro,
        init_only,
        safe_pcs,
        code_writes: glob.code_writes,
        access_pcs,
        all_access_pcs,
        call_args,
        summaries: sums,
    }
}
