//! Static binary analysis for TGA modules.
//!
//! This crate recovers a whole-program CFG and call graph from the
//! decoded instruction stream ([`mod@cfg`]), then runs conservative
//! dataflow passes over the lifted `vex-ir` superblocks ([`dataflow`]):
//! stack-slot escape analysis, stack-pointer protocol checking, and
//! read-only classification of globals. The verdicts are exported as a
//! [`StaticFacts`] table that Taskgrind consumes as an instrumentation
//! filter — loads and stores statically proven thread-private (frame
//! slots that never escape) or read-only (globals never written or
//! address-taken) skip interval-tree recording entirely, shrinking the
//! recording phase without changing any race verdict. The same facts
//! power the `lint` CLI subcommand, which prints CFG statistics and
//! the static findings with debug-info locations.

use std::collections::BTreeSet;
use tga::module::Module;

pub mod cfg;
pub mod dataflow;

pub use cfg::{Cfg, CfgStats};
pub use dataflow::{Dataflow, FnFacts, RoRange};

/// What a static finding is about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// A function not reachable from the entry point or any
    /// address-taken function.
    UnreachableFunction { name: String },
    /// A frame slot whose address flows out of its frame (into memory,
    /// a call, or a syscall); accesses to it stay instrumented.
    EscapingStackSlot { func: String, offset: i64 },
    /// The whole frame of a function had to be given up on (a stack
    /// address flowed through arithmetic the analysis cannot follow).
    FrameNotAnalyzable { func: String },
    /// A return site whose reconstructed stack pointer does not restore
    /// the caller's.
    SpMismatchOnReturn { func: String },
    /// A store with a constant target inside the text section.
    WriteToReadOnly { target: u64 },
}

/// One static finding, anchored to a guest pc with its source location
/// when the module has line info.
#[derive(Clone, Debug)]
pub struct Finding {
    pub kind: FindingKind,
    pub addr: u64,
    /// `file:line` from the module's line table, if present.
    pub loc: Option<String>,
}

impl Finding {
    fn describe(&self) -> String {
        match &self.kind {
            FindingKind::UnreachableFunction { name } => {
                format!("function `{name}` is unreachable from the entry point")
            }
            FindingKind::EscapingStackSlot { func, offset } => {
                format!("stack slot fp{offset:+} of `{func}` escapes its frame")
            }
            FindingKind::FrameNotAnalyzable { func } => {
                format!("frame of `{func}` not analyzable; accesses stay instrumented")
            }
            FindingKind::SpMismatchOnReturn { func } => {
                format!("`{func}` returns without restoring the caller's stack pointer")
            }
            FindingKind::WriteToReadOnly { target } => {
                format!("store targets read-only text address {target:#x}")
            }
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let loc = self.loc.as_deref().unwrap_or("<no debug info>");
        write!(f, "{loc}: {} (at {:#x})", self.describe(), self.addr)
    }
}

/// The exported verdict table: everything Taskgrind's instrumentation
/// filter and the `lint` subcommand need.
#[derive(Clone, Debug)]
pub struct StaticFacts {
    pub stats: CfgStats,
    /// Guest pcs of loads/stores proven thread-private or read-only in
    /// every lifted context that contains them.
    pub safe_pcs: BTreeSet<u64>,
    /// Globals classified read-only.
    pub ro: Vec<RoRange>,
    pub findings: Vec<Finding>,
    /// Distinct access pcs seen (denominator for the filter rate).
    pub access_pcs: usize,
}

impl StaticFacts {
    /// May the access at `pc` skip recording? Conservative: unknown pcs
    /// are always recorded, and atomics are never in `safe_pcs`.
    pub fn is_safe_access(&self, pc: u64, _write: bool) -> bool {
        self.safe_pcs.contains(&pc)
    }

    /// Human-readable lint report.
    pub fn render(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        out.push_str(&format!(
            "cfg: {} functions, {} blocks, {} edges, {} call edges, {} indirect exits\n",
            s.functions, s.blocks, s.edges, s.call_edges, s.indirect_exits
        ));
        let pct = if self.access_pcs > 0 {
            100.0 * self.safe_pcs.len() as f64 / self.access_pcs as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "facts: {}/{} access sites provably thread-private or read-only ({pct:.1}%)\n",
            self.safe_pcs.len(),
            self.access_pcs
        ));
        if self.ro.is_empty() {
            out.push_str("read-only globals: none\n");
        } else {
            let names: Vec<&str> = self.ro.iter().map(|r| r.name.as_str()).collect();
            out.push_str(&format!("read-only globals: {}\n", names.join(", ")));
        }
        out.push_str(&format!("findings: {}\n", self.findings.len()));
        for f in &self.findings {
            out.push_str(&format!("  {f}\n"));
        }
        out
    }
}

/// Run the full static pipeline: CFG recovery, dataflow, findings.
pub fn analyze(module: &Module) -> StaticFacts {
    let cfg = cfg::recover(module);
    let df = dataflow::run(module, &cfg);

    let loc = |addr: u64| module.line_for(addr).map(|l| l.to_string());
    let mut findings = Vec::new();
    for &i in &cfg.unreachable {
        let f = &cfg.funcs[i];
        findings.push(Finding {
            kind: FindingKind::UnreachableFunction { name: f.name.clone() },
            addr: f.lo,
            loc: loc(f.lo),
        });
    }
    for (i, facts) in df.fn_facts.iter().enumerate() {
        let fname = &cfg.funcs[i].name;
        for &(offset, pc) in &facts.escape_sites {
            // Non-negative offsets are the saved fp/ra slots and the
            // caller's frame — conservatively escaped in almost every
            // function, so reporting them is pure noise. They stay in
            // the escape set (accesses remain instrumented); only named
            // locals (negative fp offsets) become findings.
            if offset >= 0 {
                continue;
            }
            findings.push(Finding {
                kind: FindingKind::EscapingStackSlot { func: fname.clone(), offset },
                addr: pc,
                loc: loc(pc),
            });
        }
        if facts.poisoned {
            findings.push(Finding {
                kind: FindingKind::FrameNotAnalyzable { func: fname.clone() },
                addr: cfg.funcs[i].lo,
                loc: loc(cfg.funcs[i].lo),
            });
        }
        for &pc in &facts.ret_mismatches {
            findings.push(Finding {
                kind: FindingKind::SpMismatchOnReturn { func: fname.clone() },
                addr: pc,
                loc: loc(pc),
            });
        }
    }
    for &(pc, target) in &df.code_writes {
        findings.push(Finding {
            kind: FindingKind::WriteToReadOnly { target },
            addr: pc,
            loc: loc(pc),
        });
    }
    findings.sort_by_key(|f| f.addr);

    StaticFacts {
        stats: cfg.stats,
        safe_pcs: df.safe_pcs,
        ro: df.ro,
        findings,
        access_pcs: df.access_pcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tga::module::{SymKind, Symbol, CODE_BASE};
    use tga::INST_SIZE;

    /// A program with one escaping local (`leaked`, passed by address)
    /// and one that never leaves its frame (`kept`).
    const SAMPLE: &str = r#"
long sink;
void taker(long *p) { *p = 1; }
long sample() {
  long kept = 7;
  long leaked = 0;
  taker(&leaked);
  kept = kept + 2;
  return kept + leaked;
}
int main() { return sample(); }
"#;

    fn sample_module() -> Module {
        guest_rt::build_single("sample.c", SAMPLE).expect("sample compiles")
    }

    #[test]
    fn function_boundaries_match_symbol_table() {
        let m = sample_module();
        let c = cfg::recover(&m);
        for sym in m.symbols.iter().filter(|s| s.kind == SymKind::Func) {
            let f = c
                .funcs
                .iter()
                .find(|f| f.name == sym.name)
                .unwrap_or_else(|| panic!("no cfg function for symbol {}", sym.name));
            assert_eq!(f.lo, sym.addr, "{} starts at its symbol", sym.name);
            assert!(f.blocks.contains_key(&f.lo), "{} has an entry block", sym.name);
            for b in f.blocks.values() {
                assert!(b.start >= f.lo && b.end <= f.hi, "{} block in range", sym.name);
            }
        }
        assert!(c.stats.functions >= 3, "program + runtime functions recovered");
    }

    #[test]
    fn successor_edges_are_consistent() {
        let m = sample_module();
        let c = cfg::recover(&m);
        let mut edges = 0;
        for f in &c.funcs {
            for b in f.blocks.values() {
                for &s in &b.succs {
                    assert!(
                        f.blocks.contains_key(&s),
                        "successor {s:#x} of block {:#x} in `{}` is a block leader",
                        b.start,
                        f.name
                    );
                    edges += 1;
                }
                for &t in &b.calls {
                    assert!(
                        c.func_at(t).is_some() || !m.is_code_addr(t),
                        "call target {t:#x} from `{}` resolves to a function",
                        f.name
                    );
                }
            }
        }
        assert!(edges > 0, "some intra-procedural edges exist");
        assert_eq!(edges, c.stats.edges);
    }

    /// Line number (1-based) of the first SAMPLE line containing `pat`.
    fn sample_line(pat: &str) -> u32 {
        SAMPLE
            .lines()
            .position(|l| l.contains(pat))
            .map(|i| i as u32 + 1)
            .expect("pattern present in SAMPLE")
    }

    #[test]
    fn escape_analysis_is_conservative_but_not_vacuous() {
        let m = sample_module();
        let facts = analyze(&m);

        // `leaked` escapes: the analysis must report an escaping slot in
        // `sample`, and the finding carries debug info.
        let escape = facts
            .findings
            .iter()
            .find(|f| {
                matches!(&f.kind, FindingKind::EscapingStackSlot { func, .. } if func == "sample")
            })
            .expect("escaping local in `sample` is found");
        assert!(escape.loc.is_some(), "escape finding has a file:line");

        // `kept` never leaves the frame: at least one access on its
        // assignment line is proven thread-private.
        let kept_line = sample_line("kept = kept + 2");
        let sym = m.symbol_by_name("sample").expect("sample symbol").clone();
        let mut kept_pcs = Vec::new();
        let mut pc = sym.addr;
        while pc < sym.addr + sym.size {
            if let Some(l) = m.line_for(pc) {
                if l.line == kept_line {
                    kept_pcs.push(pc);
                }
            }
            pc += INST_SIZE;
        }
        assert!(!kept_pcs.is_empty(), "kept's line has instructions");
        assert!(
            kept_pcs.iter().any(|pc| facts.safe_pcs.contains(pc)),
            "an access to the non-escaping local is proven private"
        );
        // Direct accesses to the escaped slot stay instrumented: no pc
        // on `leaked`'s initialising store line is marked safe (the
        // line's only access is the store into the escaping slot).
        let leaked_line = sample_line("long leaked = 0");
        let mut pc = sym.addr;
        while pc < sym.addr + sym.size {
            if let (Some(l), true) = (m.line_for(pc), facts.safe_pcs.contains(&pc)) {
                assert_ne!(l.line, leaked_line, "no access to the escaping local is marked safe");
            }
            pc += INST_SIZE;
        }
    }

    /// Hand-written assembly: a store into the text section must be
    /// flagged, a read of a never-written global classified read-only.
    #[test]
    fn code_writes_flagged_and_ro_global_classified() {
        let data_base = 0x20_0000u64;
        let src = format!(
            "main:\n\
             addi sp, sp, -16\n\
             st ra, 8(sp)\n\
             st fp, 0(sp)\n\
             add fp, sp, zero\n\
             li t0, {code:#x}\n\
             li t1, 1\n\
             st t1, 0(t0)\n\
             li t2, {data:#x}\n\
             ld t3, 0(t2)\n\
             add sp, fp, zero\n\
             ld fp, 0(sp)\n\
             ld ra, 8(sp)\n\
             addi sp, sp, 16\n\
             jalr zero, ra, 0\n",
            code = CODE_BASE,
            data = data_base,
        );
        let (code, _) = tga::asm::assemble(&src, CODE_BASE).unwrap();
        let n = code.len() as u64;
        let mut m = Module::new();
        m.code = code;
        m.entry = CODE_BASE;
        m.data_base = data_base;
        m.data = vec![0u8; 8];
        m.symbols.push(Symbol {
            name: "main".into(),
            addr: CODE_BASE,
            size: n * INST_SIZE,
            kind: SymKind::Func,
        });
        m.symbols.push(Symbol {
            name: "ro_word".into(),
            addr: data_base,
            size: 8,
            kind: SymKind::Data,
        });

        let facts = analyze(&m);
        assert!(
            facts.findings.iter().any(|f| matches!(f.kind, FindingKind::WriteToReadOnly { target }
                    if target == CODE_BASE)),
            "store into the text section is flagged: {:?}",
            facts.findings
        );
        assert!(
            facts.ro.iter().any(|r| r.name == "ro_word"),
            "never-written global is read-only: {:?}",
            facts.ro
        );
        // The load of the read-only word is provably safe; the wild
        // store is not.
        let ld_pc = CODE_BASE + 8 * INST_SIZE;
        let wild_st_pc = CODE_BASE + 6 * INST_SIZE;
        assert!(facts.is_safe_access(ld_pc, false), "ro load may skip recording");
        assert!(!facts.is_safe_access(wild_st_pc, true), "wild store stays recorded");
        // Prologue link saves and the frame never escape here.
        let save_ra_pc = CODE_BASE + INST_SIZE;
        assert!(facts.is_safe_access(save_ra_pc, true), "link save is thread-private");
    }
}
