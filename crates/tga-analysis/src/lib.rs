//! Static binary analysis for TGA modules.
//!
//! This crate recovers a whole-program CFG and call graph from the
//! decoded instruction stream ([`mod@cfg`]), then runs conservative
//! dataflow passes over the lifted `vex-ir` superblocks ([`dataflow`]),
//! interprocedurally via bottom-up call-graph summaries
//! ([`summaries`]): stack-slot escape analysis, stack-pointer protocol
//! checking, and read-only / init-only classification of globals. The
//! verdicts are exported as a [`StaticFacts`] table that Taskgrind
//! consumes as an instrumentation filter — loads and stores statically
//! proven thread-private (frame slots that never escape), read-only
//! (globals never written or address-taken), or init-only (globals
//! written exclusively before the first thread spawn) skip
//! interval-tree recording entirely, shrinking the recording phase
//! without changing any race verdict.
//!
//! On top of the memory classification sits a static concurrency
//! analysis: a must-held lockset dataflow ([`lockset`]) and a
//! lock-order graph with cycle detection ([`lockorder`]). These feed
//! three lint finding kinds (potential deadlocks, double locks, lock
//! leaks) and a *guard map* — access sites provably executed with a
//! known lock held, tagged so the sweep can suppress pairs that share a
//! statically proven common lock. The same facts power the `lint` CLI
//! subcommand, which prints CFG statistics and the static findings with
//! debug-info locations.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use tga::module::{Module, SymKind};

pub mod cfg;
pub mod dataflow;
pub mod factsio;
pub mod lockorder;
pub mod lockset;
pub mod summaries;

pub use cfg::{Cfg, CfgStats};
pub use dataflow::{Dataflow, FnFacts, RoRange};

/// What a static finding is about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// A function not reachable from the entry point or any
    /// address-taken function.
    UnreachableFunction {
        /// Symbol name of the unreachable function.
        name: String,
    },
    /// A frame slot whose address flows out of its frame (into memory,
    /// a call, or a syscall); accesses to it stay instrumented.
    EscapingStackSlot {
        /// Function owning the frame.
        func: String,
        /// Canonical `fp`-relative offset of the escaping slot.
        offset: i64,
    },
    /// The whole frame of a function had to be given up on (a stack
    /// address flowed through arithmetic the analysis cannot follow).
    FrameNotAnalyzable {
        /// The affected function.
        func: String,
    },
    /// A return site whose reconstructed stack pointer does not restore
    /// the caller's.
    SpMismatchOnReturn {
        /// The affected function.
        func: String,
    },
    /// A store with a constant target inside the text section.
    WriteToReadOnly {
        /// The targeted text address.
        target: u64,
    },
    /// A cycle in the static lock-order graph: two threads taking these
    /// locks in the witnessed orders can deadlock.
    LockOrderCycle {
        /// Human-readable lock names along the cycle.
        locks: Vec<String>,
    },
    /// An acquisition of a lock the thread already holds (self-deadlock
    /// on the runtime's non-reentrant locks).
    DoubleLock {
        /// Human-readable name of the re-acquired lock.
        lock: String,
    },
    /// A lock released on some path to a return but still held on
    /// another.
    LockLeak {
        /// Function containing the divergence.
        func: String,
        /// Human-readable name of the conditionally leaked lock.
        lock: String,
    },
}

/// One static finding, anchored to a guest pc with its source location
/// when the module has line info.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The finding's classification and payload.
    pub kind: FindingKind,
    /// Guest pc the finding is anchored to.
    pub addr: u64,
    /// `file:line` from the module's line table, if present.
    pub loc: Option<String>,
}

impl Finding {
    fn describe(&self) -> String {
        match &self.kind {
            FindingKind::UnreachableFunction { name } => {
                format!("function `{name}` is unreachable from the entry point")
            }
            FindingKind::EscapingStackSlot { func, offset } => {
                format!("stack slot fp{offset:+} of `{func}` escapes its frame")
            }
            FindingKind::FrameNotAnalyzable { func } => {
                format!("frame of `{func}` not analyzable; accesses stay instrumented")
            }
            FindingKind::SpMismatchOnReturn { func } => {
                format!("`{func}` returns without restoring the caller's stack pointer")
            }
            FindingKind::WriteToReadOnly { target } => {
                format!("store targets read-only text address {target:#x}")
            }
            FindingKind::LockOrderCycle { locks } => {
                format!("potential deadlock: lock-order cycle {}", locks.join(" -> "))
            }
            FindingKind::DoubleLock { lock } => {
                format!("double lock: {lock} acquired while already held")
            }
            FindingKind::LockLeak { func, lock } => {
                format!("lock leak: `{func}` returns with {lock} held on some path only")
            }
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let loc = self.loc.as_deref().unwrap_or("<no debug info>");
        write!(f, "{loc}: {} (at {:#x})", self.describe(), self.addr)
    }
}

/// Options for [`analyze_with`].
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeOpts {
    /// Run the static concurrency pass (locksets, lock-order graph,
    /// guard map). When off, only the memory-classification facts are
    /// produced — lock findings and guarded-site tags are empty.
    pub concurrency: bool,
}

impl Default for AnalyzeOpts {
    fn default() -> AnalyzeOpts {
        AnalyzeOpts { concurrency: true }
    }
}

/// The exported verdict table: everything Taskgrind's instrumentation
/// filter and the `lint` subcommand need.
#[derive(Clone, Debug)]
pub struct StaticFacts {
    /// CFG recovery statistics.
    pub stats: CfgStats,
    /// Guest pcs of loads/stores proven thread-private, read-only or
    /// init-only in every lifted context that contains them.
    pub safe_pcs: BTreeSet<u64>,
    /// Globals classified read-only.
    pub ro: Vec<RoRange>,
    /// Globals written only before the first thread spawn, with their
    /// address never escaping.
    pub init_only: Vec<RoRange>,
    /// All static findings, sorted by pc.
    pub findings: Vec<Finding>,
    /// Distinct access pcs seen (denominator for the filter rate).
    pub access_pcs: usize,
    /// `(access pc, lock bitmask)` for recorded (non-pruned) access
    /// sites provably executed with at least one known lock held,
    /// sorted by pc. Bit `i` of a mask names `lock_universe[i]`.
    pub guarded: Vec<(u64, u64)>,
    /// The lock identities behind the guard-mask bits (at most 64; the
    /// identity is the raw critical id or lock address — the same value
    /// the runtime passes to `CRITICAL_ENTER`).
    pub lock_universe: Vec<u64>,
}

impl StaticFacts {
    /// Serialize for the persistent code cache ([`factsio`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        factsio::facts_to_bytes(self)
    }

    /// Deserialize facts written by [`StaticFacts::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<StaticFacts, grindcore::wire::WireError> {
        factsio::facts_from_bytes(bytes)
    }

    /// May the access at `pc` skip recording? Conservative: unknown pcs
    /// are always recorded, and atomics are never in `safe_pcs`.
    pub fn is_safe_access(&self, pc: u64, _write: bool) -> bool {
        self.safe_pcs.contains(&pc)
    }

    /// Statically proven guard mask of the access at `pc` (0 when no
    /// lock is proven held there).
    pub fn guard_mask(&self, pc: u64) -> u64 {
        match self.guarded.binary_search_by_key(&pc, |&(p, _)| p) {
            Ok(i) => self.guarded[i].1,
            Err(_) => 0,
        }
    }

    /// Human-readable lint report.
    pub fn render(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        out.push_str(&format!(
            "cfg: {} functions, {} blocks, {} edges, {} call edges, {} indirect exits\n",
            s.functions, s.blocks, s.edges, s.call_edges, s.indirect_exits
        ));
        let pct = if self.access_pcs > 0 {
            100.0 * self.safe_pcs.len() as f64 / self.access_pcs as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "facts: {}/{} access sites provably thread-private or read-only ({pct:.1}%)\n",
            self.safe_pcs.len(),
            self.access_pcs
        ));
        if self.ro.is_empty() {
            out.push_str("read-only globals: none\n");
        } else {
            let names: Vec<&str> = self.ro.iter().map(|r| r.name.as_str()).collect();
            out.push_str(&format!("read-only globals: {}\n", names.join(", ")));
        }
        if self.init_only.is_empty() {
            out.push_str("init-only globals: none\n");
        } else {
            let names: Vec<&str> = self.init_only.iter().map(|r| r.name.as_str()).collect();
            out.push_str(&format!("init-only globals: {}\n", names.join(", ")));
        }
        out.push_str(&format!(
            "locks: {} distinct, {} guarded access sites\n",
            self.lock_universe.len(),
            self.guarded.len()
        ));
        out.push_str(&format!("findings: {}\n", self.findings.len()));
        for f in &self.findings {
            out.push_str(&format!("  {f}\n"));
        }
        out
    }
}

/// Human-readable name of a lock identity: a critical-section id, a
/// data symbol (for `omp_lock_t` objects), or a raw address.
fn fmt_lock(module: &Module, id: u64) -> String {
    if let Some(s) = module
        .symbols
        .iter()
        .filter(|s| s.kind == SymKind::Data)
        .find(|s| id >= s.addr && id < s.addr + s.size.max(1))
    {
        if id == s.addr {
            format!("lock `{}`", s.name)
        } else {
            format!("lock `{}`+{}", s.name, id - s.addr)
        }
    } else if id < 0x1_0000 {
        format!("critical section #{id}")
    } else {
        format!("lock {id:#x}")
    }
}

/// Run the full static pipeline: CFG recovery, interprocedural
/// dataflow, locksets, findings.
pub fn analyze_with(module: &Module, opts: &AnalyzeOpts) -> StaticFacts {
    let cfg = cfg::recover(module);
    let df = dataflow::run(module, &cfg);

    let loc = |addr: u64| module.line_for(addr).map(|l| l.to_string());
    let mut findings = Vec::new();
    for &i in &cfg.unreachable {
        let f = &cfg.funcs[i];
        findings.push(Finding {
            kind: FindingKind::UnreachableFunction { name: f.name.clone() },
            addr: f.lo,
            loc: loc(f.lo),
        });
    }
    for (i, facts) in df.fn_facts.iter().enumerate() {
        let fname = &cfg.funcs[i].name;
        for &(offset, pc) in &facts.escape_sites {
            // Non-negative offsets are the saved fp/ra slots and the
            // caller's frame — conservatively escaped in almost every
            // function, so reporting them is pure noise. They stay in
            // the escape set (accesses remain instrumented); only named
            // locals (negative fp offsets) become findings.
            if offset >= 0 {
                continue;
            }
            findings.push(Finding {
                kind: FindingKind::EscapingStackSlot { func: fname.clone(), offset },
                addr: pc,
                loc: loc(pc),
            });
        }
        if facts.poisoned {
            findings.push(Finding {
                kind: FindingKind::FrameNotAnalyzable { func: fname.clone() },
                addr: cfg.funcs[i].lo,
                loc: loc(cfg.funcs[i].lo),
            });
        }
        for &pc in &facts.ret_mismatches {
            findings.push(Finding {
                kind: FindingKind::SpMismatchOnReturn { func: fname.clone() },
                addr: pc,
                loc: loc(pc),
            });
        }
    }
    for &(pc, target) in &df.code_writes {
        findings.push(Finding {
            kind: FindingKind::WriteToReadOnly { target },
            addr: pc,
            loc: loc(pc),
        });
    }

    let mut guarded: Vec<(u64, u64)> = Vec::new();
    let mut lock_universe: Vec<u64> = Vec::new();
    if opts.concurrency {
        let cg = summaries::call_graph(&cfg);
        let lf = lockset::analyze(&cfg, &cg, &df.call_args);
        lock_universe = lf.universe.iter().copied().take(64).collect();
        let bit_of = |l: u64| lock_universe.iter().position(|&u| u == l);
        for (start, end, held) in &lf.held_ranges {
            let mask = held.iter().filter_map(|&l| bit_of(l)).fold(0u64, |m, b| m | (1u64 << b));
            if mask == 0 {
                continue;
            }
            let lo = df.all_access_pcs.partition_point(|&pc| pc < *start);
            let hi = df.all_access_pcs.partition_point(|&pc| pc < *end);
            for &pc in &df.all_access_pcs[lo..hi] {
                if !df.safe_pcs.contains(&pc) {
                    guarded.push((pc, mask));
                }
            }
        }
        guarded.sort_unstable();
        // A pc seen under several blocks keeps only commonly held locks.
        guarded.dedup_by(|next, prev| {
            if next.0 == prev.0 {
                prev.1 &= next.1;
                true
            } else {
                false
            }
        });
        guarded.retain(|&(_, m)| m != 0);

        for d in &lf.double_locks {
            findings.push(Finding {
                kind: FindingKind::DoubleLock { lock: fmt_lock(module, d.lock) },
                addr: d.pc,
                loc: loc(d.pc),
            });
        }
        for l in &lf.lock_leaks {
            findings.push(Finding {
                kind: FindingKind::LockLeak {
                    func: l.func.clone(),
                    lock: fmt_lock(module, l.lock),
                },
                addr: l.pc,
                loc: loc(l.pc),
            });
        }
        let graph = lockorder::OrderGraph::build(&lf.order_edges);
        for c in graph.cycles() {
            let names = c.locks.iter().map(|&l| fmt_lock(module, l)).collect();
            let addr = c.pcs.first().copied().unwrap_or(0);
            findings.push(Finding {
                kind: FindingKind::LockOrderCycle { locks: names },
                addr,
                loc: loc(addr),
            });
        }
    }
    findings.sort_by_key(|f| f.addr);

    StaticFacts {
        stats: cfg.stats,
        safe_pcs: df.safe_pcs,
        ro: df.ro,
        init_only: df.init_only,
        findings,
        access_pcs: df.access_pcs,
        guarded,
        lock_universe,
    }
}

/// Run the full static pipeline with default options (concurrency pass
/// included).
pub fn analyze(module: &Module) -> StaticFacts {
    analyze_with(module, &AnalyzeOpts::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tga::module::{SymKind, Symbol, CODE_BASE};
    use tga::INST_SIZE;

    /// A program with one escaping local (`leaked`, captured by
    /// `taker`), one passed to a callee that only writes through the
    /// pointer (`local` — must *not* escape thanks to the summary
    /// pass), and one that never leaves the frame at all (`kept`).
    /// `writer` returns a value on purpose: a void minicc function
    /// leaves `a0` untouched, so the incoming pointer would still sit
    /// in `a0` at `ret` and the summary pass conservatively treats a
    /// parameter residing in `a0` at return as escaping.
    const SAMPLE: &str = r#"
long *sink_p;
void taker(long *p) { sink_p = p; *p = 1; }
long writer(long *p) { *p = 2; return 0; }
long sample() {
  long kept = 7;
  long leaked = 0;
  long local = 0;
  taker(&leaked);
  writer(&local);
  kept = kept + 2;
  return kept + leaked + local;
}
int main() { return sample(); }
"#;

    fn sample_module() -> Module {
        guest_rt::build_single("sample.c", SAMPLE).expect("sample compiles")
    }

    #[test]
    fn function_boundaries_match_symbol_table() {
        let m = sample_module();
        let c = cfg::recover(&m);
        for sym in m.symbols.iter().filter(|s| s.kind == SymKind::Func) {
            let f = c
                .funcs
                .iter()
                .find(|f| f.name == sym.name)
                .unwrap_or_else(|| panic!("no cfg function for symbol {}", sym.name));
            assert_eq!(f.lo, sym.addr, "{} starts at its symbol", sym.name);
            assert!(f.blocks.contains_key(&f.lo), "{} has an entry block", sym.name);
            for b in f.blocks.values() {
                assert!(b.start >= f.lo && b.end <= f.hi, "{} block in range", sym.name);
            }
        }
        assert!(c.stats.functions >= 3, "program + runtime functions recovered");
    }

    #[test]
    fn successor_edges_are_consistent() {
        let m = sample_module();
        let c = cfg::recover(&m);
        let mut edges = 0;
        for f in &c.funcs {
            for b in f.blocks.values() {
                for &s in &b.succs {
                    assert!(
                        f.blocks.contains_key(&s),
                        "successor {s:#x} of block {:#x} in `{}` is a block leader",
                        b.start,
                        f.name
                    );
                    edges += 1;
                }
                for &t in &b.calls {
                    assert!(
                        c.func_at(t).is_some() || !m.is_code_addr(t),
                        "call target {t:#x} from `{}` resolves to a function",
                        f.name
                    );
                }
            }
        }
        assert!(edges > 0, "some intra-procedural edges exist");
        assert_eq!(edges, c.stats.edges);
    }

    /// Line number (1-based) of the first SAMPLE line containing `pat`.
    fn sample_line(pat: &str) -> u32 {
        SAMPLE
            .lines()
            .position(|l| l.contains(pat))
            .map(|i| i as u32 + 1)
            .expect("pattern present in SAMPLE")
    }

    #[test]
    fn escape_analysis_is_conservative_but_not_vacuous() {
        let m = sample_module();
        let facts = analyze(&m);

        // `leaked` escapes: `taker` stores the pointer into a global.
        let escape = facts
            .findings
            .iter()
            .find(|f| {
                matches!(&f.kind, FindingKind::EscapingStackSlot { func, .. } if func == "sample")
            })
            .expect("escaping local in `sample` is found");
        assert!(escape.loc.is_some(), "escape finding has a file:line");

        // `kept` never leaves the frame: at least one access on its
        // assignment line is proven thread-private.
        let kept_line = sample_line("kept = kept + 2");
        let sym = m.symbol_by_name("sample").expect("sample symbol").clone();
        let mut kept_pcs = Vec::new();
        let mut pc = sym.addr;
        while pc < sym.addr + sym.size {
            if let Some(l) = m.line_for(pc) {
                if l.line == kept_line {
                    kept_pcs.push(pc);
                }
            }
            pc += INST_SIZE;
        }
        assert!(!kept_pcs.is_empty(), "kept's line has instructions");
        assert!(
            kept_pcs.iter().any(|pc| facts.safe_pcs.contains(pc)),
            "an access to the non-escaping local is proven private"
        );
        // Direct accesses to the escaped slot stay instrumented: no pc
        // on `leaked`'s initialising store line is marked safe (the
        // line's only access is the store into the escaping slot).
        let leaked_line = sample_line("long leaked = 0");
        let mut pc = sym.addr;
        while pc < sym.addr + sym.size {
            if let (Some(l), true) = (m.line_for(pc), facts.safe_pcs.contains(&pc)) {
                assert_ne!(l.line, leaked_line, "no access to the escaping local is marked safe");
            }
            pc += INST_SIZE;
        }
    }

    /// The interprocedural summary pass must keep `&local` passed to a
    /// write-only callee from escaping: no escape finding lands on the
    /// `writer(&local)` call line.
    #[test]
    fn pointer_to_non_capturing_callee_does_not_escape() {
        let m = sample_module();
        let facts = analyze(&m);
        let call_line = sample_line("writer(&local)");
        for f in &facts.findings {
            if let FindingKind::EscapingStackSlot { func, .. } = &f.kind {
                if func == "sample" {
                    if let Some(l) = m.line_for(f.addr) {
                        assert_ne!(
                            l.line, call_line,
                            "passing &local to a non-capturing callee must not escape it: {f}"
                        );
                    }
                }
            }
        }
        // And exactly one local of `sample` escapes (`leaked`).
        let escapes = facts
            .findings
            .iter()
            .filter(|f| {
                matches!(&f.kind, FindingKind::EscapingStackSlot { func, .. } if func == "sample")
            })
            .count();
        assert_eq!(escapes, 1, "only `leaked` escapes `sample`:\n{}", facts.render());
    }

    /// Hand-written assembly: a store into the text section must be
    /// flagged, a read of a never-written global classified read-only.
    #[test]
    fn code_writes_flagged_and_ro_global_classified() {
        let data_base = 0x20_0000u64;
        let src = format!(
            "main:\n\
             addi sp, sp, -16\n\
             st ra, 8(sp)\n\
             st fp, 0(sp)\n\
             add fp, sp, zero\n\
             li t0, {code:#x}\n\
             li t1, 1\n\
             st t1, 0(t0)\n\
             li t2, {data:#x}\n\
             ld t3, 0(t2)\n\
             add sp, fp, zero\n\
             ld fp, 0(sp)\n\
             ld ra, 8(sp)\n\
             addi sp, sp, 16\n\
             jalr zero, ra, 0\n",
            code = CODE_BASE,
            data = data_base,
        );
        let (code, _) = tga::asm::assemble(&src, CODE_BASE).unwrap();
        let n = code.len() as u64;
        let mut m = Module::new();
        m.code = code;
        m.entry = CODE_BASE;
        m.data_base = data_base;
        m.data = vec![0u8; 8];
        m.symbols.push(Symbol {
            name: "main".into(),
            addr: CODE_BASE,
            size: n * INST_SIZE,
            kind: SymKind::Func,
        });
        m.symbols.push(Symbol {
            name: "ro_word".into(),
            addr: data_base,
            size: 8,
            kind: SymKind::Data,
        });

        let facts = analyze(&m);
        assert!(
            facts.findings.iter().any(|f| matches!(f.kind, FindingKind::WriteToReadOnly { target }
                    if target == CODE_BASE)),
            "store into the text section is flagged: {:?}",
            facts.findings
        );
        assert!(
            facts.ro.iter().any(|r| r.name == "ro_word"),
            "never-written global is read-only: {:?}",
            facts.ro
        );
        // The load of the read-only word is provably safe; the wild
        // store is not.
        let ld_pc = CODE_BASE + 8 * INST_SIZE;
        let wild_st_pc = CODE_BASE + 6 * INST_SIZE;
        assert!(facts.is_safe_access(ld_pc, false), "ro load may skip recording");
        assert!(!facts.is_safe_access(wild_st_pc, true), "wild store stays recorded");
        // Prologue link saves and the frame never escape here.
        let save_ra_pc = CODE_BASE + INST_SIZE;
        assert!(facts.is_safe_access(save_ra_pc, true), "link save is thread-private");
    }

    /// A global written only before any thread exists is init-only and
    /// its accesses are safe; the same global written from a spawned
    /// worker's reachable code is not.
    #[test]
    fn init_only_global_classification() {
        const PRE: &str = r#"
long n_items;
long shared;
int main() {
  n_items = 42;
  #pragma omp parallel
  {
    shared = n_items + 1;
  }
  return (int) shared;
}
"#;
        let m = guest_rt::build_single("init_only.c", PRE).expect("compiles");
        let facts = analyze(&m);
        assert!(
            facts.init_only.iter().any(|r| r.name == "n_items"),
            "pre-spawn-written global is init-only: {}",
            facts.render()
        );
        assert!(
            !facts.init_only.iter().any(|r| r.name == "shared"),
            "global written inside the parallel region must stay instrumented"
        );
        assert!(!facts.ro.iter().any(|r| r.name == "n_items"), "written global is not read-only");
    }

    /// Lock findings: a nested re-acquire of the same critical section
    /// is a double lock, and opposite nesting orders of two criticals
    /// form a lock-order cycle.
    #[test]
    fn lock_findings_on_seeded_program() {
        const DEADLOCKY: &str = r#"
long x;
void ab() {
  #pragma omp critical(a)
  {
    #pragma omp critical(b)
    { x = x + 1; }
  }
}
void ba() {
  #pragma omp critical(b)
  {
    #pragma omp critical(a)
    { x = x + 2; }
  }
}
int main() {
  #pragma omp parallel
  {
    ab();
    ba();
  }
  return 0;
}
"#;
        let m = guest_rt::build_single("deadlocky.c", DEADLOCKY).expect("compiles");
        let facts = analyze(&m);
        assert!(
            facts.findings.iter().any(
                |f| matches!(&f.kind, FindingKind::LockOrderCycle { locks } if locks.len() == 2)
            ),
            "opposite critical nesting is a lock-order cycle:\n{}",
            facts.render()
        );
        // The guarded increments inside the criticals are tagged.
        assert!(!facts.lock_universe.is_empty(), "locks discovered");
        assert!(!facts.guarded.is_empty(), "guarded access sites tagged");
        // The toggle removes every concurrency fact but nothing else.
        let off = analyze_with(&m, &AnalyzeOpts { concurrency: false });
        assert!(off.guarded.is_empty() && off.lock_universe.is_empty());
        assert!(!off.findings.iter().any(|f| matches!(f.kind, FindingKind::LockOrderCycle { .. })));
        assert_eq!(off.safe_pcs, facts.safe_pcs, "memory facts unaffected by the toggle");
        assert_eq!(off.access_pcs, facts.access_pcs);
    }
}
