//! Static must-held lockset analysis over the recovered CFG.
//!
//! Lock operations appear in the binary as calls to the guest runtime's
//! lock primitives — `__kmp_critical_begin`/`__kmp_critical_end`
//! (OpenMP critical sections, identified by their critical id) and
//! `omp_set_lock`/`omp_unset_lock`/`omp_test_lock` (identified by the
//! lock's address). Both identities are exactly the argument the
//! runtime forwards to the `CRITICAL_ENTER`/`CRITICAL_EXIT` client
//! requests, so static and dynamic views of a lock always conflate.
//! The call-site argument comes from the dataflow pass's merged
//! abstract `a0` ([`crate::dataflow::Dataflow::call_args`]); a site
//! whose argument is not one known constant is treated as an unknown
//! lock.
//!
//! Per function, two forward fixpoints run over the basic blocks, with
//! lock events only at block terminators (calls):
//!
//! * **must-held** — meet is set intersection, function entry is the
//!   empty set. This is an *under*-approximation of the locks held in
//!   every execution reaching a block, which is the polarity the sweep
//!   integration needs: tagging an access "guarded by L" is only sound
//!   if L really is held whenever the access runs. Anything doubtful
//!   (unknown lock argument, unresolved or indirect callee, a callee
//!   that may release an unknown lock) clears or withholds from the
//!   set.
//! * **may-held** — join is set union. Used only for the lock-leak
//!   finding: a lock in the may-set but not the must-set at a return
//!   was left held on some path and released on another.
//!
//! Calls to analysed (non-primitive) functions apply that callee's
//! [`FnLocks`] transfer, computed bottom-up over the call-graph SCC
//! condensation; callees in the same SCC (recursion) and unknown
//! callees get the conservative transfer. Lock-order edges
//! (`held → acquired`) are collected for [`crate::lockorder`] from the
//! post-fixpoint must-sets, including acquisitions performed
//! transitively by callees.

use crate::cfg::Cfg;
use crate::summaries::CallGraph;
use std::collections::{BTreeMap, BTreeSet};
use tga::INST_SIZE;

/// A lock identity: the critical-section id or the lock object's
/// address — the same raw value the runtime passes to the
/// `CRITICAL_ENTER`/`CRITICAL_EXIT` client requests.
pub type LockId = u64;

/// Lock-primitive classification of a callee, by symbol name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Prim {
    Acquire,
    Release,
    /// `omp_test_lock`: may acquire, never blocks — contributes a
    /// lock-order edge but no must-held fact.
    TryAcquire,
}

fn primitive(name: &str) -> Option<Prim> {
    match name {
        "__kmp_critical_begin" | "omp_set_lock" => Some(Prim::Acquire),
        "__kmp_critical_end" | "omp_unset_lock" => Some(Prim::Release),
        "omp_test_lock" => Some(Prim::TryAcquire),
        _ => None,
    }
}

/// Transfer summary of one analysed function, as seen by its callers.
#[derive(Clone, Debug, Default)]
pub struct FnLocks {
    /// Locks held at every return (acquired and deliberately kept).
    pub exit_must: BTreeSet<LockId>,
    /// Locks held at some return.
    pub may_exit: BTreeSet<LockId>,
    /// Locks the function (transitively) may release.
    pub may_release: BTreeSet<LockId>,
    /// The function may release a lock it cannot name: callers must
    /// drop their entire must-set across the call.
    pub may_release_unknown: bool,
    /// Locks the function (transitively) may acquire, for lock-order
    /// edges out of callers' held sets.
    pub may_acquire: BTreeSet<LockId>,
}

impl FnLocks {
    /// The conservative transfer for recursion and unknown callees.
    fn widened() -> FnLocks {
        FnLocks { may_release_unknown: true, ..Default::default() }
    }
}

/// A `held → acquired` edge of the lock-order graph, with the call pc
/// that witnessed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderEdge {
    /// Lock already held.
    pub held: LockId,
    /// Lock being acquired (possibly by a callee) while `held` is held.
    pub acquired: LockId,
    /// Guest pc of the witnessing call instruction.
    pub pc: u64,
}

/// An acquisition of a lock the thread already holds (self-deadlock on
/// the runtime's non-reentrant spin locks).
#[derive(Clone, Copy, Debug)]
pub struct DoubleLock {
    /// The re-acquired lock.
    pub lock: LockId,
    /// Guest pc of the second acquisition's call instruction.
    pub pc: u64,
}

/// A lock released on some path to a return but still held on another.
#[derive(Clone, Debug)]
pub struct LockLeak {
    /// The leaked lock.
    pub lock: LockId,
    /// Function the divergence is in.
    pub func: String,
    /// Guest pc of the return (or tail transfer) reached with the lock
    /// conditionally held.
    pub pc: u64,
}

/// Everything the lockset pass learned.
#[derive(Clone, Debug, Default)]
pub struct LockFacts {
    /// Per-function transfer summaries, parallel to `cfg.funcs`.
    pub fn_locks: Vec<FnLocks>,
    /// `(block start, block end, must-held locks)` for every block with
    /// a non-empty must-held in-set — the raw material of the guard map.
    pub held_ranges: Vec<(u64, u64, BTreeSet<LockId>)>,
    /// Lock-order edges for deadlock detection.
    pub order_edges: Vec<OrderEdge>,
    /// Double-lock findings (user code only).
    pub double_locks: Vec<DoubleLock>,
    /// Lock-leak findings (user code only).
    pub lock_leaks: Vec<LockLeak>,
    /// Every distinct lock identity seen, sorted.
    pub universe: Vec<LockId>,
}

/// What a block's terminator does, lock-wise.
#[derive(Clone, Debug)]
enum Event {
    None,
    /// Primitive with a known lock argument.
    Prim(Prim, LockId),
    /// Primitive with an unknown lock argument.
    PrimUnknown(Prim),
    /// Call into an analysed function (index into `cfg.funcs`).
    User(usize),
    /// Indirect or unresolved transfer: assume nothing survives.
    Unknown,
}

/// Runtime-internal functions: the lock implementation itself and its
/// balanced wrappers. Their intra-function lock states are meaningless
/// to report (the acquire function "leaks" its lock by design).
fn is_runtime(name: &str) -> bool {
    name.starts_with("__kmp") || name.starts_with("omp_")
}

fn block_event(cfg: &Cfg, fi: usize, start: u64, call_args: &BTreeMap<u64, Option<u64>>) -> Event {
    let b = &cfg.funcs[fi].blocks[&start];
    if b.has_indirect {
        return Event::Unknown;
    }
    let Some(&target) = b.calls.first() else {
        return Event::None;
    };
    let pc = b.end - INST_SIZE;
    match cfg.func_at(target) {
        Some(ci) if target == cfg.funcs[ci].lo => {
            if let Some(p) = primitive(&cfg.funcs[ci].name) {
                match call_args.get(&pc).copied().flatten() {
                    Some(arg) => Event::Prim(p, arg),
                    None => Event::PrimUnknown(p),
                }
            } else {
                Event::User(ci)
            }
        }
        _ => Event::Unknown, // mid-function or unresolved target
    }
}

/// Apply `ev` to a must-held set.
fn must_transfer(ev: &Event, held: &BTreeSet<LockId>, fn_locks: &[FnLocks]) -> BTreeSet<LockId> {
    let mut out = held.clone();
    match ev {
        Event::None => {}
        Event::Prim(Prim::Acquire, l) => {
            out.insert(*l);
        }
        Event::Prim(Prim::Release, l) => {
            out.remove(l);
        }
        Event::Prim(Prim::TryAcquire, _) | Event::PrimUnknown(Prim::TryAcquire) => {}
        Event::PrimUnknown(Prim::Acquire) => {} // cannot name it: no must fact
        Event::PrimUnknown(Prim::Release) => out.clear(),
        Event::User(ci) => {
            let fl = &fn_locks[*ci];
            if fl.may_release_unknown {
                out.clear();
            } else {
                for l in &fl.may_release {
                    out.remove(l);
                }
            }
            out.extend(fl.exit_must.iter().copied());
        }
        Event::Unknown => out.clear(),
    }
    out
}

/// Apply `ev` to a may-held set.
fn may_transfer(ev: &Event, held: &BTreeSet<LockId>, fn_locks: &[FnLocks]) -> BTreeSet<LockId> {
    let mut out = held.clone();
    match ev {
        Event::None | Event::PrimUnknown(_) | Event::Unknown => {}
        Event::Prim(Prim::Acquire | Prim::TryAcquire, l) => {
            out.insert(*l);
        }
        Event::Prim(Prim::Release, l) => {
            out.remove(l);
        }
        Event::User(ci) => out.extend(fn_locks[*ci].may_exit.iter().copied()),
    }
    out
}

struct FnResult {
    locks: FnLocks,
    must_in: BTreeMap<u64, BTreeSet<LockId>>,
    may_in: BTreeMap<u64, BTreeSet<LockId>>,
}

fn analyze_fn(
    cfg: &Cfg,
    fi: usize,
    call_args: &BTreeMap<u64, Option<u64>>,
    fn_locks: &[FnLocks],
) -> FnResult {
    let f = &cfg.funcs[fi];
    let events: BTreeMap<u64, Event> =
        f.blocks.keys().map(|&s| (s, block_event(cfg, fi, s, call_args))).collect();

    // Must-held forward fixpoint: unvisited = ⊤ (identity of ∩).
    let mut must_in: BTreeMap<u64, Option<BTreeSet<LockId>>> =
        f.blocks.keys().map(|&s| (s, None)).collect();
    must_in.insert(f.lo, Some(BTreeSet::new()));
    let mut changed = true;
    while changed {
        changed = false;
        for (&s, b) in &f.blocks {
            let Some(in_set) = must_in[&s].clone() else { continue };
            let out = must_transfer(&events[&s], &in_set, fn_locks);
            for &succ in &b.succs {
                let slot = must_in.get_mut(&succ).unwrap();
                let new = match slot {
                    None => Some(out.clone()),
                    Some(cur) => {
                        let met: BTreeSet<LockId> = cur.intersection(&out).copied().collect();
                        (met != *cur).then_some(met)
                    }
                };
                if let Some(n) = new {
                    *slot = Some(n);
                    changed = true;
                }
            }
        }
    }

    // May-held forward fixpoint: unvisited = ∅ (identity of ∪).
    let mut may_in: BTreeMap<u64, BTreeSet<LockId>> =
        f.blocks.keys().map(|&s| (s, BTreeSet::new())).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (&s, b) in &f.blocks {
            let out = may_transfer(&events[&s], &may_in[&s], fn_locks);
            for &succ in &b.succs {
                let slot = may_in.get_mut(&succ).unwrap();
                let before = slot.len();
                slot.extend(out.iter().copied());
                changed |= slot.len() != before;
            }
        }
    }

    // Function summary: direct effects plus callee transitivity.
    let mut locks = FnLocks::default();
    let mut exit_must: Option<BTreeSet<LockId>> = None;
    for (&s, b) in &f.blocks {
        let ev = &events[&s];
        match ev {
            Event::Prim(Prim::Acquire | Prim::TryAcquire, l) => {
                locks.may_acquire.insert(*l);
            }
            Event::Prim(Prim::Release, l) => {
                locks.may_release.insert(*l);
            }
            Event::PrimUnknown(Prim::Acquire | Prim::TryAcquire) => {}
            Event::PrimUnknown(Prim::Release) => locks.may_release_unknown = true,
            Event::User(ci) => {
                let fl = &fn_locks[*ci];
                locks.may_acquire.extend(fl.may_acquire.iter().copied());
                locks.may_release.extend(fl.may_release.iter().copied());
                locks.may_release_unknown |= fl.may_release_unknown;
            }
            Event::Unknown if b.has_indirect || !b.calls.is_empty() => {
                locks.may_release_unknown = true;
            }
            _ => {}
        }
        // Exits: returns, and tail transfers out of the function.
        let is_tail = !b.calls.is_empty() && b.succs.is_empty() && !b.is_ret;
        if b.is_ret || is_tail {
            if let Some(in_set) = &must_in[&s] {
                let out = must_transfer(ev, in_set, fn_locks);
                exit_must = Some(match exit_must {
                    None => out,
                    Some(cur) => cur.intersection(&out).copied().collect(),
                });
            }
            locks.may_exit.extend(may_transfer(ev, &may_in[&s], fn_locks));
        }
    }
    locks.exit_must = exit_must.unwrap_or_default();

    FnResult {
        locks,
        must_in: must_in.into_iter().filter_map(|(s, v)| v.map(|v| (s, v))).collect(),
        may_in,
    }
}

/// Run the lockset pass over the whole program.
pub fn analyze(cfg: &Cfg, cg: &CallGraph, call_args: &BTreeMap<u64, Option<u64>>) -> LockFacts {
    let mut fn_locks: Vec<FnLocks> = vec![FnLocks::widened(); cfg.funcs.len()];
    let mut results: Vec<Option<FnResult>> = (0..cfg.funcs.len()).map(|_| None).collect();

    // Bottom-up over SCCs; same-SCC callees read as widened. A second
    // evaluation of recursive functions with their own computed summary
    // would only refine findings, not soundness — one pass suffices.
    for scc in &cg.sccs {
        for &fi in scc {
            let r = analyze_fn(cfg, fi, call_args, &fn_locks);
            fn_locks[fi] = r.locks.clone();
            results[fi] = Some(r);
        }
    }

    let mut facts = LockFacts { fn_locks, ..Default::default() };
    let mut universe: BTreeSet<LockId> = BTreeSet::new();
    for (fi, f) in cfg.funcs.iter().enumerate() {
        let r = results[fi].as_ref().unwrap();
        let runtime = is_runtime(&f.name);
        for (&s, b) in &f.blocks {
            let ev = block_event(cfg, fi, s, call_args);
            let pc = b.end.saturating_sub(INST_SIZE);
            // Guard map input.
            if let Some(held) = r.must_in.get(&s) {
                if !held.is_empty() {
                    universe.extend(held.iter().copied());
                    facts.held_ranges.push((b.start, b.end, held.clone()));
                }
            }
            // Order edges + double-lock need the must-set at the call.
            let Some(held) = r.must_in.get(&s) else { continue };
            match &ev {
                Event::Prim(Prim::Acquire, l) => {
                    universe.insert(*l);
                    for &h in held {
                        if h != *l {
                            facts.order_edges.push(OrderEdge { held: h, acquired: *l, pc });
                        }
                    }
                    if held.contains(l) && !runtime {
                        facts.double_locks.push(DoubleLock { lock: *l, pc });
                    }
                }
                Event::Prim(Prim::TryAcquire, l) => {
                    universe.insert(*l);
                    for &h in held {
                        if h != *l {
                            facts.order_edges.push(OrderEdge { held: h, acquired: *l, pc });
                        }
                    }
                }
                Event::User(ci) => {
                    for &h in held {
                        for &l in &facts.fn_locks[*ci].may_acquire {
                            if h != l {
                                facts.order_edges.push(OrderEdge { held: h, acquired: l, pc });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Lock leaks: conditionally held at an exit.
        if !runtime {
            for (&s, b) in &f.blocks {
                let is_tail = !b.calls.is_empty() && b.succs.is_empty() && !b.is_ret;
                if !(b.is_ret || is_tail) {
                    continue;
                }
                let ev = block_event(cfg, fi, s, call_args);
                let may_out = may_transfer(&ev, &r.may_in[&s], &facts.fn_locks);
                let must_out = r
                    .must_in
                    .get(&s)
                    .map(|in_set| must_transfer(&ev, in_set, &facts.fn_locks))
                    .unwrap_or_default();
                for &l in may_out.difference(&must_out) {
                    facts.lock_leaks.push(LockLeak {
                        lock: l,
                        func: f.name.clone(),
                        pc: b.end.saturating_sub(INST_SIZE),
                    });
                }
            }
        }
    }
    facts.order_edges.sort();
    facts.order_edges.dedup();
    facts.universe = universe.into_iter().collect();
    facts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_names_cover_both_lock_flavours() {
        assert_eq!(primitive("__kmp_critical_begin"), Some(Prim::Acquire));
        assert_eq!(primitive("omp_unset_lock"), Some(Prim::Release));
        assert_eq!(primitive("omp_test_lock"), Some(Prim::TryAcquire));
        assert_eq!(primitive("__kmp_barrier"), None);
    }

    #[test]
    fn must_transfer_clears_on_unknown_release() {
        let held: BTreeSet<LockId> = [1, 2].into_iter().collect();
        let out = must_transfer(&Event::PrimUnknown(Prim::Release), &held, &[]);
        assert!(out.is_empty());
        let out = must_transfer(&Event::Prim(Prim::Acquire, 7), &held, &[]);
        assert_eq!(out.len(), 3);
    }
}
