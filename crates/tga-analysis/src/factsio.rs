//! Hand-rolled binary (de)serialization for [`StaticFacts`].
//!
//! Static analysis is deterministic per (module, [`crate::AnalyzeOpts`])
//! pair, so the persistent code cache stores the analysis result next to
//! the compiled blocks and warm runs skip the whole interprocedural
//! pass. The encoding rides the same `grindcore::wire` primitives as
//! the flat-block codec: positional little-endian fields, one-byte
//! append-only tags for [`FindingKind`], length-prefixed sequences with
//! allocation guards. Decoding is total — corrupt input yields a
//! [`WireError`], never a panic — and the disk layer checksums each
//! record, so decoded facts are only used when they round-tripped
//! bit-exactly.

use std::collections::BTreeSet;

use grindcore::wire::{Dec, Enc, WireError, WireResult};

use crate::cfg::CfgStats;
use crate::dataflow::RoRange;
use crate::{Finding, FindingKind, StaticFacts};

fn enc_kind(e: &mut Enc, k: &FindingKind) {
    match k {
        FindingKind::UnreachableFunction { name } => {
            e.u8(0);
            e.str(name);
        }
        FindingKind::EscapingStackSlot { func, offset } => {
            e.u8(1);
            e.str(func);
            e.u64(*offset as u64);
        }
        FindingKind::FrameNotAnalyzable { func } => {
            e.u8(2);
            e.str(func);
        }
        FindingKind::SpMismatchOnReturn { func } => {
            e.u8(3);
            e.str(func);
        }
        FindingKind::WriteToReadOnly { target } => {
            e.u8(4);
            e.u64(*target);
        }
        FindingKind::LockOrderCycle { locks } => {
            e.u8(5);
            e.seq(locks.len());
            for l in locks {
                e.str(l);
            }
        }
        FindingKind::DoubleLock { lock } => {
            e.u8(6);
            e.str(lock);
        }
        FindingKind::LockLeak { func, lock } => {
            e.u8(7);
            e.str(func);
            e.str(lock);
        }
    }
}

fn dec_kind(d: &mut Dec) -> WireResult<FindingKind> {
    Ok(match d.u8("finding tag")? {
        0 => FindingKind::UnreachableFunction { name: d.str("unreachable name")? },
        1 => FindingKind::EscapingStackSlot {
            func: d.str("escaping func")?,
            offset: d.u64("escaping offset")? as i64,
        },
        2 => FindingKind::FrameNotAnalyzable { func: d.str("frame func")? },
        3 => FindingKind::SpMismatchOnReturn { func: d.str("spmismatch func")? },
        4 => FindingKind::WriteToReadOnly { target: d.u64("writero target")? },
        5 => {
            let n = d.seq(4, "cycle locks len")?;
            let mut locks = Vec::with_capacity(n);
            for _ in 0..n {
                locks.push(d.str("cycle lock")?);
            }
            FindingKind::LockOrderCycle { locks }
        }
        6 => FindingKind::DoubleLock { lock: d.str("double lock")? },
        7 => FindingKind::LockLeak { func: d.str("leak func")?, lock: d.str("leak lock")? },
        _ => return Err(WireError { what: "finding tag" }),
    })
}

fn enc_ranges(e: &mut Enc, ranges: &[RoRange]) {
    e.seq(ranges.len());
    for r in ranges {
        e.str(&r.name);
        e.u64(r.lo);
        e.u64(r.hi);
    }
}

fn dec_ranges(d: &mut Dec, what: &'static str) -> WireResult<Vec<RoRange>> {
    let n = d.seq(20, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(RoRange { name: d.str(what)?, lo: d.u64(what)?, hi: d.u64(what)? });
    }
    Ok(out)
}

/// Serialize `facts` into a fresh byte vector.
pub fn facts_to_bytes(facts: &StaticFacts) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(facts.stats.functions as u64);
    e.u64(facts.stats.blocks as u64);
    e.u64(facts.stats.edges as u64);
    e.u64(facts.stats.call_edges as u64);
    e.u64(facts.stats.indirect_exits as u64);
    e.u64(facts.stats.unreachable_functions as u64);
    e.seq(facts.safe_pcs.len());
    for &pc in &facts.safe_pcs {
        e.u64(pc);
    }
    enc_ranges(&mut e, &facts.ro);
    enc_ranges(&mut e, &facts.init_only);
    e.seq(facts.findings.len());
    for f in &facts.findings {
        enc_kind(&mut e, &f.kind);
        e.u64(f.addr);
        match &f.loc {
            Some(loc) => {
                e.bool(true);
                e.str(loc);
            }
            None => e.bool(false),
        }
    }
    e.u64(facts.access_pcs as u64);
    e.seq(facts.guarded.len());
    for &(pc, mask) in &facts.guarded {
        e.u64(pc);
        e.u64(mask);
    }
    e.seq(facts.lock_universe.len());
    for &l in &facts.lock_universe {
        e.u64(l);
    }
    e.into_inner()
}

/// Deserialize facts encoded by [`facts_to_bytes`], requiring every
/// byte to be consumed.
pub fn facts_from_bytes(bytes: &[u8]) -> WireResult<StaticFacts> {
    let mut d = Dec::new(bytes);
    let stats = CfgStats {
        functions: d.u64("stats functions")? as usize,
        blocks: d.u64("stats blocks")? as usize,
        edges: d.u64("stats edges")? as usize,
        call_edges: d.u64("stats call_edges")? as usize,
        indirect_exits: d.u64("stats indirect_exits")? as usize,
        unreachable_functions: d.u64("stats unreachable")? as usize,
    };
    let n_safe = d.seq(8, "safe_pcs len")?;
    let mut safe_pcs = BTreeSet::new();
    for _ in 0..n_safe {
        safe_pcs.insert(d.u64("safe pc")?);
    }
    let ro = dec_ranges(&mut d, "ro range")?;
    let init_only = dec_ranges(&mut d, "init_only range")?;
    let n_findings = d.seq(10, "findings len")?;
    let mut findings = Vec::with_capacity(n_findings);
    for _ in 0..n_findings {
        let kind = dec_kind(&mut d)?;
        let addr = d.u64("finding addr")?;
        let loc = if d.bool("finding loc flag")? { Some(d.str("finding loc")?) } else { None };
        findings.push(Finding { kind, addr, loc });
    }
    let access_pcs = d.u64("access_pcs")? as usize;
    let n_guarded = d.seq(16, "guarded len")?;
    let mut guarded = Vec::with_capacity(n_guarded);
    for _ in 0..n_guarded {
        guarded.push((d.u64("guarded pc")?, d.u64("guarded mask")?));
    }
    let n_locks = d.seq(8, "lock_universe len")?;
    let mut lock_universe = Vec::with_capacity(n_locks);
    for _ in 0..n_locks {
        lock_universe.push(d.u64("lock id")?);
    }
    if !d.is_empty() {
        return Err(WireError { what: "trailing bytes after facts" });
    }
    Ok(StaticFacts { stats, safe_pcs, ro, init_only, findings, access_pcs, guarded, lock_universe })
}
