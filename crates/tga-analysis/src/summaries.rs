//! Interprocedural call-graph summaries.
//!
//! The dataflow pass of this crate analyses one lifted context at a
//! time and historically treated every call as a black hole: any stack
//! or global address resident in an argument register escaped, and any
//! global written before the program's first parallelism could never be
//! re-classified. This module recovers the call structure so the
//! abstract interpreter can do better:
//!
//! * [`CallGraph`] — function-level call edges derived from the
//!   recovered CFG, condensed into strongly connected components with
//!   an iterative Tarjan walk and ordered bottom-up (callees before
//!   callers) so summaries are available at every monomorphic call
//!   site. Cycles (recursion) and indirect calls are handled by
//!   widening: a summary that is not yet available reads as
//!   [`FnSummary::widened`], which escapes everything.
//! * [`FnSummary`] — per-function *parameter effect* summary: for each
//!   of the eight argument registers, whether the callee may capture
//!   the pointer (store it, pass it somewhere untracked — `escapes`),
//!   may store through it (`writes`), or may load through it
//!   (`reads`). A caller passing `&local` or `&global` to a callee
//!   that only dereferences the pointer no longer loses the
//!   thread-private / read-only classification of the pointee.
//! * [`spawn_reachability`] — which functions may transitively execute
//!   the `THREAD_CREATE` syscall, and which basic blocks can only run
//!   *before* the first such spawn. Everything single-threaded in that
//!   prefix is the foundation of the "initialized-only" global
//!   classification in [`crate::dataflow`].

use crate::cfg::Cfg;
use std::collections::{BTreeMap, BTreeSet};
use tga::module::Module;
use tga::{Op, INST_SIZE};

/// Syscall number of `THREAD_CREATE` (see `grindcore::syscalls`): the
/// only way a new guest thread — and therefore any concurrency — comes
/// into existence.
const SYS_THREAD_CREATE: i64 = 3;

/// Effect summary of one function, indexed by argument register
/// (`a0..a7` map to bits `0..8`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Bit `i`: the callee may capture the pointer passed in `a{i}`
    /// (store it to memory, keep it live past a boundary, pass it to a
    /// syscall/client request, or forward it to a callee that does).
    pub escapes: u8,
    /// Bit `i`: the callee may store through the pointer in `a{i}`.
    pub writes: u8,
    /// Bit `i`: the callee may load through the pointer in `a{i}`.
    pub reads: u8,
    /// The summary was widened (recursion, missing callee, or lift
    /// failure): all bits are set and nothing can be trusted.
    pub widened: bool,
}

impl FnSummary {
    /// The conservative top element: every parameter escapes, is read
    /// and written.
    pub fn widened() -> FnSummary {
        FnSummary { escapes: 0xff, writes: 0xff, reads: 0xff, widened: true }
    }

    /// Fold another parameter's effects into bit `i`.
    pub fn taint(&mut self, i: u8, escapes: bool, writes: bool, reads: bool) {
        let bit = 1u8 << i.min(7);
        if escapes {
            self.escapes |= bit;
        }
        if writes {
            self.writes |= bit;
        }
        if reads {
            self.reads |= bit;
        }
    }
}

/// The function-level call graph with its bottom-up SCC order.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// `callees[f]`: indices into `cfg.funcs` called (or tail-called)
    /// from `f`, deduplicated.
    pub callees: Vec<Vec<usize>>,
    /// `f` contains a call whose target could not be resolved to a
    /// recovered function (indirect call, or a direct target outside
    /// every symbol).
    pub has_unknown_callee: Vec<bool>,
    /// Strongly connected components in bottom-up (callee-first)
    /// topological order.
    pub sccs: Vec<Vec<usize>>,
    /// `recursive[f]`: `f` sits on a call cycle (member of a non-trivial
    /// SCC, or calls itself).
    pub recursive: Vec<bool>,
}

/// Build the call graph of every recovered function.
pub fn call_graph(cfg: &Cfg) -> CallGraph {
    let n = cfg.funcs.len();
    let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut has_unknown_callee = vec![false; n];
    for (fi, f) in cfg.funcs.iter().enumerate() {
        for b in f.blocks.values() {
            if b.has_indirect {
                has_unknown_callee[fi] = true;
            }
            for &t in &b.calls {
                match cfg.func_at(t) {
                    Some(ci) => {
                        callees[fi].insert(ci);
                    }
                    None => has_unknown_callee[fi] = true,
                }
            }
        }
    }
    let callees: Vec<Vec<usize>> = callees.into_iter().map(|s| s.into_iter().collect()).collect();
    let sccs = tarjan_sccs(&callees);
    let mut recursive = vec![false; n];
    for scc in &sccs {
        if scc.len() > 1 {
            for &f in scc {
                recursive[f] = true;
            }
        } else if callees[scc[0]].contains(&scc[0]) {
            recursive[scc[0]] = true;
        }
    }
    CallGraph { callees, has_unknown_callee, sccs, recursive }
}

/// Iterative Tarjan SCC. Returned components are in reverse-topological
/// order of the condensation — i.e. callees appear before their
/// callers, which is exactly the order a bottom-up summary pass wants.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Where concurrency can begin, and which blocks provably run before
/// it.
#[derive(Clone, Debug)]
pub struct SpawnFacts {
    /// `may_spawn[f]`: `f` may transitively execute `THREAD_CREATE`.
    pub may_spawn: Vec<bool>,
    /// Block starts (keyed `(func index, block start)`) that may execute
    /// *after* some thread has been spawned — on a worker thread, in an
    /// address-taken (outlined) function, or downstream of a spawning
    /// call on the initial thread.
    pub post_spawn: BTreeSet<(usize, u64)>,
}

impl SpawnFacts {
    /// May the block starting at `start` in function `fi` only run
    /// while the program is still single-threaded?
    pub fn pre_spawn(&self, fi: usize, start: u64) -> bool {
        !self.post_spawn.contains(&(fi, start))
    }
}

/// Does the instruction range of `f` contain a direct `THREAD_CREATE`
/// syscall? The TGA `sys` instruction carries its number in the
/// immediate (minicc requires a literal), so this is a plain scan.
fn spawns_directly(module: &Module, lo: u64, hi: u64) -> bool {
    let mut pc = lo;
    while pc < hi {
        if let Some(inst) = module.fetch(pc) {
            if inst.op == Op::Sys && inst.imm == SYS_THREAD_CREATE {
                return true;
            }
        }
        pc += INST_SIZE;
    }
    false
}

/// Compute spawn reachability: which functions may create threads, and
/// which blocks may run after a thread exists.
///
/// The block-level `post_spawn` set is a forward closure over three
/// seed kinds: entry blocks of address-taken functions (outlined task
/// and parallel-region bodies, worker entry points — anything invoked
/// by address runs on or concurrently with worker threads), successors
/// of blocks that directly execute the spawn syscall, and successors of
/// blocks whose terminating call may transitively spawn. Membership
/// propagates along intra-procedural successor edges and into the
/// entry block of every function called from a post-spawn block.
pub fn spawn_reachability(module: &Module, cfg: &Cfg, cg: &CallGraph) -> SpawnFacts {
    let n = cfg.funcs.len();

    // Direct spawn scan, then transitive closure over call edges.
    // Indirect calls may reach any address-taken function, so a
    // function with an unresolved callee spawns if any address-taken
    // function does; iterate to a fixpoint (monotone, bounded).
    let direct: Vec<bool> = cfg.funcs.iter().map(|f| spawns_directly(module, f.lo, f.hi)).collect();
    let taken_idx: Vec<usize> = cfg.address_taken.iter().filter_map(|&a| cfg.func_at(a)).collect();
    let mut may_spawn = direct.clone();
    loop {
        let mut changed = false;
        let any_taken = taken_idx.iter().any(|&i| may_spawn[i]);
        for f in 0..n {
            if may_spawn[f] {
                continue;
            }
            let via_call = cg.callees[f].iter().any(|&c| may_spawn[c]);
            let via_indirect = cg.has_unknown_callee[f] && any_taken;
            if via_call || via_indirect {
                may_spawn[f] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let any_taken_spawns = taken_idx.iter().any(|&i| may_spawn[i]);

    // Seed the post-spawn block set.
    let mut post: BTreeSet<(usize, u64)> = BTreeSet::new();
    let mut work: Vec<(usize, u64)> = Vec::new();
    let mark =
        |fi: usize, start: u64, post: &mut BTreeSet<(usize, u64)>, work: &mut Vec<(usize, u64)>| {
            if post.insert((fi, start)) {
                work.push((fi, start));
            }
        };
    for &fi in &taken_idx {
        let entry = cfg.funcs[fi].lo;
        mark(fi, entry, &mut post, &mut work);
    }
    for (fi, f) in cfg.funcs.iter().enumerate() {
        for b in f.blocks.values() {
            // A spawn syscall terminates its block (`sys` ends blocks),
            // so only successors of the block run with the new thread
            // alive. The same holds for a call that may spawn: the call
            // is the block terminator.
            let sys_spawn = b.end >= b.start + INST_SIZE
                && module
                    .fetch(b.end - INST_SIZE)
                    .is_some_and(|i| i.op == Op::Sys && i.imm == SYS_THREAD_CREATE);
            let call_spawn =
                b.calls.iter().any(|&t| cfg.func_at(t).map(|ci| may_spawn[ci]).unwrap_or(true));
            let indirect_spawn = b.has_indirect && any_taken_spawns;
            if sys_spawn || call_spawn || indirect_spawn {
                for &s in &b.succs {
                    mark(fi, s, &mut post, &mut work);
                }
            }
        }
    }

    // Forward closure: successors, and callee entries of post-spawn
    // blocks (the terminating call of a post-spawn block runs
    // post-spawn).
    while let Some((fi, start)) = work.pop() {
        let Some(b) = cfg.funcs[fi].blocks.get(&start) else { continue };
        for &s in &b.succs {
            mark(fi, s, &mut post, &mut work);
        }
        for &t in &b.calls {
            if let Some(ci) = cfg.func_at(t) {
                let entry = cfg.funcs[ci].lo;
                mark(ci, entry, &mut post, &mut work);
            }
        }
        if b.has_indirect {
            for &ti in &taken_idx {
                let entry = cfg.funcs[ti].lo;
                mark(ti, entry, &mut post, &mut work);
            }
        }
    }

    SpawnFacts { may_spawn, post_spawn: post }
}

/// Memoized summary table, parallel to `cfg.funcs`, with widening for
/// entries that are not (yet) available.
#[derive(Clone, Debug, Default)]
pub struct Summaries {
    table: Vec<Option<FnSummary>>,
    /// Function entry address → index, for call-site resolution.
    by_entry: BTreeMap<u64, usize>,
}

impl Summaries {
    /// An empty table for `n` functions.
    pub fn new(cfg: &Cfg) -> Summaries {
        Summaries {
            table: vec![None; cfg.funcs.len()],
            by_entry: cfg.funcs.iter().enumerate().map(|(i, f)| (f.lo, i)).collect(),
        }
    }

    /// Record the computed summary of function `fi`.
    pub fn set(&mut self, fi: usize, s: FnSummary) {
        self.table[fi] = Some(s);
    }

    /// Summary of function `fi`; widened when not yet computed (cycle
    /// back-edges during the bottom-up pass).
    pub fn get(&self, fi: usize) -> FnSummary {
        self.table[fi].unwrap_or_else(FnSummary::widened)
    }

    /// Summary for a call to address `target`; widened for targets that
    /// are not a known function entry (mid-function jumps, data).
    pub fn for_target(&self, target: u64) -> FnSummary {
        match self.by_entry.get(&target) {
            Some(&fi) => self.get(fi),
            None => FnSummary::widened(),
        }
    }

    /// Index of the function whose entry is `target`, if any.
    pub fn func_of_target(&self, target: u64) -> Option<usize> {
        self.by_entry.get(&target).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_orders_callees_first_and_finds_cycles() {
        // 0 → 1 → 2, 2 → 1 (cycle {1,2}), 0 → 3.
        let adj = vec![vec![1, 3], vec![2], vec![1], vec![]];
        let sccs = tarjan_sccs(&adj);
        let pos = |f: usize| sccs.iter().position(|s| s.contains(&f)).unwrap();
        assert_eq!(pos(1), pos(2), "cycle members share an SCC");
        assert!(pos(1) < pos(0), "callee SCC comes before caller");
        assert!(pos(3) < pos(0));
        assert_eq!(sccs.iter().map(|s| s.len()).sum::<usize>(), 4);
    }

    #[test]
    fn widened_summary_taints_everything() {
        let w = FnSummary::widened();
        for i in 0..8 {
            assert_ne!(w.escapes & (1 << i), 0);
            assert_ne!(w.writes & (1 << i), 0);
        }
        let mut s = FnSummary::default();
        s.taint(2, true, false, true);
        assert_eq!(s.escapes, 4);
        assert_eq!(s.writes, 0);
        assert_eq!(s.reads, 4);
    }
}
