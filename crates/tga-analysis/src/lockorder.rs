//! Lock-order graph construction and potential-deadlock detection.
//!
//! The lockset pass emits `held → acquired` edges: at some call site a
//! thread provably holding lock `h` (transitively) acquires lock `l`.
//! If the directed graph over lock identities built from those edges
//! contains a cycle, two threads can interleave the acquisitions so
//! that each waits on a lock the other holds — the classic lock-order
//! deadlock. Cycle detection is a strongly-connected-component
//! condensation: every lock in a non-trivial SCC (or with a self-loop
//! edge) participates in a potential deadlock, and one representative
//! cycle per SCC is reported with the call sites that witnessed its
//! edges.
//!
//! This is a *may* analysis over statically witnessed orders: a
//! reported cycle is a real inversion of acquisition order in the code,
//! but whether it can fire dynamically depends on the threads actually
//! running the two paths concurrently (the dynamic deadlock detector
//! remains authoritative for observed executions).

use crate::lockset::{LockId, OrderEdge};
use std::collections::{BTreeMap, BTreeSet};

/// One potential deadlock: a cycle in the lock-order graph.
#[derive(Clone, Debug)]
pub struct OrderCycle {
    /// The locks on the cycle, in traversal order starting from the
    /// smallest identity.
    pub locks: Vec<LockId>,
    /// One witnessing call pc per traversed edge (parallel to `locks`;
    /// edge `i` goes from `locks[i]` to `locks[(i + 1) % len]`).
    pub pcs: Vec<u64>,
}

/// The lock-order graph: adjacency over the distinct lock identities.
#[derive(Clone, Debug, Default)]
pub struct OrderGraph {
    /// Distinct lock identities, sorted; node `i` is `nodes[i]`.
    pub nodes: Vec<LockId>,
    /// `adj[i]`: successor node indices, each with one witnessing pc.
    pub adj: Vec<Vec<(usize, u64)>>,
}

impl OrderGraph {
    /// Build the graph from the lockset pass's edges.
    pub fn build(edges: &[OrderEdge]) -> OrderGraph {
        let mut ids: BTreeSet<LockId> = BTreeSet::new();
        for e in edges {
            ids.insert(e.held);
            ids.insert(e.acquired);
        }
        let nodes: Vec<LockId> = ids.into_iter().collect();
        let index: BTreeMap<LockId, usize> =
            nodes.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nodes.len()];
        for e in edges {
            let (f, t) = (index[&e.held], index[&e.acquired]);
            if !adj[f].iter().any(|&(n, _)| n == t) {
                adj[f].push((t, e.pc));
            }
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        OrderGraph { nodes, adj }
    }

    /// Node indices that sit on some cycle (non-trivial SCC membership,
    /// or a self-loop).
    pub fn cyclic_nodes(&self) -> BTreeSet<usize> {
        let sccs = sccs(&self.adj);
        let mut on = BTreeSet::new();
        for scc in &sccs {
            if scc.len() > 1 {
                on.extend(scc.iter().copied());
            } else {
                let v = scc[0];
                if self.adj[v].iter().any(|&(n, _)| n == v) {
                    on.insert(v);
                }
            }
        }
        on
    }

    /// One representative cycle per strongly connected component.
    pub fn cycles(&self) -> Vec<OrderCycle> {
        let mut out = Vec::new();
        for scc in sccs(&self.adj) {
            let members: BTreeSet<usize> = scc.iter().copied().collect();
            let start = *scc.iter().min().unwrap();
            if scc.len() == 1 {
                match self.adj[start].iter().find(|&&(n, _)| n == start) {
                    Some(&(_, pc)) => {
                        out.push(OrderCycle { locks: vec![self.nodes[start]], pcs: vec![pc] })
                    }
                    None => continue,
                }
                continue;
            }
            // Walk greedily inside the SCC until the start repeats; the
            // SCC is strongly connected, so a path back always exists —
            // take a shortest one via BFS from each step.
            let mut locks = vec![self.nodes[start]];
            let mut pcs = Vec::new();
            let mut cur = start;
            loop {
                let (next, pc) = self.step_towards(cur, start, &members);
                pcs.push(pc);
                if next == start {
                    break;
                }
                locks.push(self.nodes[next]);
                cur = next;
            }
            out.push(OrderCycle { locks, pcs });
        }
        out.sort_by(|a, b| a.locks.cmp(&b.locks));
        out
    }

    /// First hop of a shortest path `from → goal` staying inside
    /// `members` (BFS; both are in the same SCC so it exists).
    fn step_towards(&self, from: usize, goal: usize, members: &BTreeSet<usize>) -> (usize, u64) {
        let mut prev: BTreeMap<usize, (usize, u64)> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        'bfs: while let Some(v) = queue.pop_front() {
            for &(w, pc) in &self.adj[v] {
                if !members.contains(&w) {
                    continue;
                }
                if w == goal {
                    prev.insert(w, (v, pc));
                    break 'bfs;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = prev.entry(w) {
                    e.insert((v, pc));
                    queue.push_back(w);
                }
            }
        }
        // Walk back from goal to the first hop out of `from`.
        let mut node = goal;
        loop {
            let &(p, pc) = &prev[&node];
            if p == from {
                return (node, pc);
            }
            node = p;
        }
    }
}

/// Iterative Tarjan over the weighted adjacency.
fn sccs(adj: &[Vec<(usize, u64)>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci].0;
                *ci += 1;
                if index[w] == UNSEEN {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    out.push(scc);
                }
            }
        }
    }
    out
}

/// Brute-force oracle: a node is on a cycle iff some simple path of
/// outgoing edges returns to it. Exponential; test-sized graphs only.
#[cfg(test)]
fn cyclic_nodes_bruteforce(adj: &[Vec<(usize, u64)>]) -> BTreeSet<usize> {
    fn reaches(
        adj: &[Vec<(usize, u64)>],
        cur: usize,
        goal: usize,
        visited: &mut BTreeSet<usize>,
    ) -> bool {
        for &(w, _) in &adj[cur] {
            if w == goal {
                return true;
            }
            if visited.insert(w) && reaches(adj, w, goal, visited) {
                return true;
            }
        }
        false
    }
    (0..adj.len())
        .filter(|&v| {
            let mut visited = BTreeSet::new();
            visited.insert(v);
            reaches(adj, v, v, &mut visited)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn graph_of(edges: &[(u64, u64)]) -> OrderGraph {
        let es: Vec<OrderEdge> = edges
            .iter()
            .enumerate()
            .map(|(i, &(h, a))| OrderEdge { held: h, acquired: a, pc: 0x1000 + i as u64 })
            .collect();
        OrderGraph::build(&es)
    }

    #[test]
    fn two_lock_inversion_is_one_cycle() {
        let g = graph_of(&[(1, 2), (2, 1)]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec![1, 2]);
        assert_eq!(cycles[0].pcs.len(), 2);
    }

    #[test]
    fn consistent_order_has_no_cycles() {
        let g = graph_of(&[(1, 2), (2, 3), (1, 3)]);
        assert!(g.cycles().is_empty());
        assert!(g.cyclic_nodes().is_empty());
    }

    #[test]
    fn self_loop_is_reported() {
        let g = graph_of(&[(5, 5), (5, 6)]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec![5]);
    }

    proptest! {
        #[test]
        fn scc_cycle_detection_matches_bruteforce_oracle(
            edges in prop::collection::vec((0u64..8, 0u64..8), 0..24),
        ) {
            let g = graph_of(&edges);
            prop_assert_eq!(g.cyclic_nodes(), cyclic_nodes_bruteforce(&g.adj));
            // Every reported cycle is a real closed walk in the graph.
            for c in g.cycles() {
                let idx = |l: LockId| g.nodes.iter().position(|&n| n == l).unwrap();
                for i in 0..c.locks.len() {
                    let from = idx(c.locks[i]);
                    let to = idx(c.locks[(i + 1) % c.locks.len()]);
                    prop_assert!(g.adj[from].iter().any(|&(n, _)| n == to));
                }
            }
            // And there is a cycle iff there are cyclic nodes.
            prop_assert_eq!(g.cycles().is_empty(), g.cyclic_nodes().is_empty());
        }
    }
}
