use tga::{reg, INST_SIZE};

// A local whose address escapes only through a ternary join:
// `p = c ? &x : &y` leaves the selected address in T0 across the
// `jal zero` join block. Each arm's superblock ends with the address
// still in a scratch register, so the escape is only visible if the
// analysis treats block-crossing register residue as observable.
const SRC: &str = r#"
void taker(long *p) { *p = 1; }
long f(int c) {
  long x = 0;
  long y = 0;
  long *p = c ? &x : &y;
  taker(p);
  x = x + 1;
  return x + y;
}
int main() { return f(1); }
"#;

#[test]
fn ternary_selected_address_escape() {
    let m = guest_rt::build_single("t.c", SRC).expect("compiles");
    let facts = tga_analysis::analyze(&m);
    // find line of "x = x + 1"
    let line = SRC.lines().position(|l| l.contains("x = x + 1")).unwrap() as u32 + 1;
    let sym = m.symbol_by_name("f").expect("f").clone();
    println!("findings:");
    for f in &facts.findings {
        println!("  {f}");
    }
    // Walk the instructions on that line. The `fp`-relative load of `x`
    // names its frame slot; that slot escaped via the ternary, so the
    // load and the store back through the popped pointer must both stay
    // instrumented. Operand-stack pushes/pops on the same line are
    // `sp`-relative same-thread traffic and may still be pruned.
    let mut x_off = None;
    let mut checked = 0;
    let mut pc = sym.addr;
    while pc < sym.addr + sym.size {
        if m.line_for(pc).map(|l| l.line) == Some(line) {
            let inst = m.code[((pc - m.code_base) / INST_SIZE) as usize];
            let is_x_load = inst.op == tga::Op::Ld && inst.rs1 == reg::FP;
            let is_indirect_store =
                inst.op == tga::Op::St && inst.rs1 != reg::SP && inst.rs1 != reg::FP;
            if is_x_load {
                x_off = Some(inst.imm);
            }
            if is_x_load || is_indirect_store {
                checked += 1;
                assert!(
                    !facts.safe_pcs.contains(&pc),
                    "access to x at {pc:#x} ({:?}) was classified thread-private \
                     even though &x escaped via ternary",
                    inst.op
                );
            }
        }
        pc += INST_SIZE;
    }
    assert!(checked >= 2, "the line has a load of x and a store through p's value");
    // And the escape itself is reported as a finding against `f`.
    let x_off = x_off.expect("x is loaded fp-relative");
    assert!(
        facts.findings.iter().any(|f| matches!(&f.kind,
            tga_analysis::FindingKind::EscapingStackSlot { func, offset }
                if func == "f" && *offset == x_off)),
        "escape of x (fp{x_off:+}) is reported: {:?}",
        facts.findings
    );
}
