use tga::INST_SIZE;

// A local whose address escapes only through a ternary join:
// `p = c ? &x : &y` leaves the selected address in T0 across the
// `jal zero` join block, where the analysis sees it as Other.
const SRC: &str = r#"
void taker(long *p) { *p = 1; }
long f(int c) {
  long x = 0;
  long y = 0;
  long *p = c ? &x : &y;
  taker(p);
  x = x + 1;
  return x + y;
}
int main() { return f(1); }
"#;

#[test]
fn ternary_selected_address_escape() {
    let m = guest_rt::build_single("t.c", SRC).expect("compiles");
    let facts = tga_analysis::analyze(&m);
    // find line of "x = x + 1"
    let line = SRC.lines().position(|l| l.contains("x = x + 1")).unwrap() as u32 + 1;
    let sym = m.symbol_by_name("f").expect("f").clone();
    let mut pcs = Vec::new();
    let mut pc = sym.addr;
    while pc < sym.addr + sym.size {
        if let Some(l) = m.line_for(pc) {
            if l.line == line { pcs.push(pc); }
        }
        pc += INST_SIZE;
    }
    println!("findings:");
    for f in &facts.findings { println!("  {f}"); }
    let pruned: Vec<_> = pcs.iter().filter(|pc| facts.safe_pcs.contains(pc)).collect();
    println!("pcs on 'x = x + 1' line: {pcs:?}, pruned-as-safe: {pruned:?}");
    assert!(pruned.is_empty(),
        "accesses to x were classified thread-private even though &x escaped via ternary");
}
