//! Seeded guest programs for the static concurrency pass: a lock-order
//! cycle (potential deadlock), a double lock, and a lock leak, each
//! asserted down to the finding kind and `file:line` anchor — plus a
//! balanced program that must stay clean, and the `concurrency: false`
//! escape hatch that must silence all three.

use tga_analysis::{analyze_with, AnalyzeOpts, Finding, FindingKind, StaticFacts};

fn lint(name: &str, src: &str) -> StaticFacts {
    let m = guest_rt::build_single(name, src).expect("compiles");
    analyze_with(&m, &AnalyzeOpts::default())
}

/// The lock findings (everything the concurrency pass contributes).
fn lock_findings(facts: &StaticFacts) -> Vec<&Finding> {
    facts
        .findings
        .iter()
        .filter(|f| {
            matches!(
                f.kind,
                FindingKind::LockOrderCycle { .. }
                    | FindingKind::DoubleLock { .. }
                    | FindingKind::LockLeak { .. }
            )
        })
        .collect()
}

/// 1-based line of the `n`th source line containing `marker`.
fn line_of(src: &str, marker: &str, n: usize) -> u32 {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains(marker))
        .map(|(i, _)| i as u32 + 1)
        .nth(n)
        .unwrap_or_else(|| panic!("marker {marker:?} #{n} not in source"))
}

fn loc_line(f: &Finding, file: &str) -> u32 {
    let loc = f.loc.as_deref().unwrap_or_else(|| panic!("finding has no file:line: {f}"));
    let (fname, line) = loc.rsplit_once(':').expect("file:line shape");
    assert_eq!(fname, file, "finding anchored in the guest source: {f}");
    line.parse().expect("numeric line")
}

const DEADLOCK: &str = r#"
int main(void) {
    #pragma omp parallel
    {
        #pragma omp critical (a)
        {
            #pragma omp critical (b)
            { }
        }
        #pragma omp critical (b)
        {
            #pragma omp critical (a)
            { }
        }
    }
    return 0;
}
"#;

#[test]
fn lock_order_cycle_is_reported_with_location() {
    let facts = lint("deadlock.c", DEADLOCK);
    let lock = lock_findings(&facts);
    assert_eq!(lock.len(), 1, "exactly the cycle: {lock:?}");
    let f = lock[0];
    let FindingKind::LockOrderCycle { locks } = &f.kind else {
        panic!("expected a lock-order cycle, got {f}");
    };
    assert_eq!(locks.len(), 2, "two-lock cycle: {locks:?}");
    assert!(locks[0].contains("critical section"), "{locks:?}");
    // anchored at one of the two *inner* (second-of-a-pair) acquisitions
    let inner_b = line_of(DEADLOCK, "critical (b)", 0); // b inside a
    let inner_a = line_of(DEADLOCK, "critical (a)", 1); // a inside b
    let line = loc_line(f, "deadlock.c");
    assert!(
        line == inner_b || line == inner_a,
        "cycle anchored at an inner acquisition (line {inner_b} or {inner_a}), got {line}: {f}"
    );
}

const DOUBLE: &str = r#"
int x;
int main(void) {
    #pragma omp parallel
    {
        #pragma omp critical (a)
        {
            #pragma omp critical (a)
            { x = x + 1; }
        }
    }
    return 0;
}
"#;

#[test]
fn double_lock_is_reported_at_the_inner_acquisition() {
    let facts = lint("double.c", DOUBLE);
    let lock = lock_findings(&facts);
    assert_eq!(lock.len(), 1, "exactly the double lock: {lock:?}");
    let f = lock[0];
    let FindingKind::DoubleLock { lock: name } = &f.kind else {
        panic!("expected a double lock, got {f}");
    };
    assert!(name.contains("critical section"), "{name}");
    assert_eq!(loc_line(f, "double.c"), line_of(DOUBLE, "critical (a)", 1), "{f}");
}

const LEAK: &str = r#"
long lock;
int leaky(int c) {
    omp_set_lock(&lock);
    if (c) { return 1; }
    omp_unset_lock(&lock);
    return 0;
}
int main(void) {
    int r = leaky(0);
    return r;
}
"#;

#[test]
fn lock_leak_is_reported_against_the_leaking_function() {
    let facts = lint("leak.c", LEAK);
    let lock = lock_findings(&facts);
    let leak = lock
        .iter()
        .find(|f| matches!(&f.kind, FindingKind::LockLeak { func, .. } if func == "leaky"))
        .unwrap_or_else(|| panic!("no lock-leak finding for `leaky`: {lock:?}"));
    let FindingKind::LockLeak { lock: name, .. } = &leak.kind else { unreachable!() };
    assert_eq!(name, "lock `lock`", "identity resolved to the data symbol");
    // anchored at the return where the must/may locksets diverge
    let _ = loc_line(leak, "leak.c");
    // every other lock finding is the same leak propagating to callers
    // (main's exit lockset diverges too) — never a cycle or double lock
    for f in &lock {
        assert!(matches!(f.kind, FindingKind::LockLeak { .. }), "unexpected: {f}");
    }
}

const BALANCED: &str = r#"
long l1;
long l2;
int sum;
int add(int k) {
    omp_set_lock(&l1);
    sum = sum + k;
    omp_unset_lock(&l1);
    return sum;
}
int main(void) {
    #pragma omp parallel
    {
        #pragma omp critical (a)
        {
            #pragma omp critical (b)
            { sum = sum + 1; }
        }
        omp_set_lock(&l2);
        add(1);
        omp_unset_lock(&l2);
    }
    return 0;
}
"#;

#[test]
fn balanced_nesting_produces_no_lock_findings() {
    // consistent a→b order, balanced explicit locks, a lock-using callee:
    // none of it is a finding, and the guarded map sees the locked sites
    let facts = lint("balanced.c", BALANCED);
    assert!(lock_findings(&facts).is_empty(), "{:?}", lock_findings(&facts));
    assert!(facts.lock_universe.len() >= 3, "criticals + l1/l2: {:?}", facts.lock_universe);
    assert!(!facts.guarded.is_empty(), "locked accesses are tagged");
}

#[test]
fn concurrency_toggle_silences_lock_findings_only() {
    let m = guest_rt::build_single("deadlock.c", DEADLOCK).expect("compiles");
    let on = analyze_with(&m, &AnalyzeOpts { concurrency: true });
    let off = analyze_with(&m, &AnalyzeOpts { concurrency: false });
    assert!(!lock_findings(&on).is_empty());
    assert!(lock_findings(&off).is_empty());
    assert!(off.guarded.is_empty() && off.lock_universe.is_empty());
    // the memory-classification facts are untouched by the toggle
    assert_eq!(on.safe_pcs, off.safe_pcs);
    assert_eq!(on.access_pcs, off.access_pcs);
}
