//! Property tests for the [`StaticFacts`] wire codec
//! (`tga_analysis::factsio`): encode→decode is the identity on random
//! facts covering every `FindingKind`, and decoding is total. A cached
//! facts record that survives the disk layer's checksum must
//! reconstruct the analysis result exactly — `safe_pcs` drives which
//! accesses get instrumented, `guarded` drives sweep suppression, so
//! any drift here would silently change verdicts on warm runs.

use std::collections::BTreeSet;

use proptest::prelude::*;
use tga_analysis::cfg::CfgStats;
use tga_analysis::dataflow::RoRange;
use tga_analysis::{Finding, FindingKind, StaticFacts};

/// Identifier-ish strings, including empty and non-ASCII-letter bytes
/// mapped into the lowercase range.
fn name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 0..10)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

fn finding_kind() -> impl Strategy<Value = FindingKind> {
    prop_oneof![
        name().prop_map(|name| FindingKind::UnreachableFunction { name }),
        (name(), any::<i64>())
            .prop_map(|(func, offset)| FindingKind::EscapingStackSlot { func, offset }),
        name().prop_map(|func| FindingKind::FrameNotAnalyzable { func }),
        name().prop_map(|func| FindingKind::SpMismatchOnReturn { func }),
        any::<u64>().prop_map(|target| FindingKind::WriteToReadOnly { target }),
        prop::collection::vec(name(), 0..4).prop_map(|locks| FindingKind::LockOrderCycle { locks }),
        name().prop_map(|lock| FindingKind::DoubleLock { lock }),
        (name(), name()).prop_map(|(func, lock)| FindingKind::LockLeak { func, lock }),
    ]
}

fn finding() -> impl Strategy<Value = Finding> {
    (finding_kind(), any::<u64>(), (any::<bool>(), name())).prop_map(
        |(kind, addr, (has_loc, loc))| Finding { kind, addr, loc: has_loc.then_some(loc) },
    )
}

fn ro_range() -> impl Strategy<Value = RoRange> {
    (name(), any::<u64>(), any::<u64>()).prop_map(|(name, lo, hi)| RoRange { name, lo, hi })
}

fn facts() -> impl Strategy<Value = StaticFacts> {
    (
        (
            0usize..10_000,
            0usize..10_000,
            0usize..10_000,
            0usize..10_000,
            0usize..10_000,
            0usize..10_000,
        ),
        prop::collection::vec(any::<u64>(), 0..32),
        prop::collection::vec(ro_range(), 0..4),
        prop::collection::vec(ro_range(), 0..4),
        prop::collection::vec(finding(), 0..8),
        any::<u16>(),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        prop::collection::vec(any::<u64>(), 0..8),
    )
        .prop_map(
            |(s, safe_pcs, ro, init_only, findings, access_pcs, guarded, lock_universe)| {
                StaticFacts {
                    stats: CfgStats {
                        functions: s.0,
                        blocks: s.1,
                        edges: s.2,
                        call_edges: s.3,
                        indirect_exits: s.4,
                        unreachable_functions: s.5,
                    },
                    safe_pcs: safe_pcs.into_iter().collect::<BTreeSet<u64>>(),
                    ro,
                    init_only,
                    findings,
                    access_pcs: access_pcs as usize,
                    guarded,
                    lock_universe,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode→decode is the identity on every field, including all
    /// eight `FindingKind` variants.
    #[test]
    fn encode_decode_is_identity(f in facts()) {
        let bytes = f.to_bytes();
        let back = StaticFacts::from_bytes(&bytes).expect("own encoding decodes");
        prop_assert_eq!(format!("{:?}", back), format!("{:?}", f));
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Every strict prefix of a valid encoding is rejected cleanly.
    #[test]
    fn truncation_errors_cleanly(f in facts(), pct in 0usize..100) {
        let bytes = f.to_bytes();
        let cut = bytes.len() * pct / 100;
        prop_assert!(cut == bytes.len() || StaticFacts::from_bytes(&bytes[..cut]).is_err());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = StaticFacts::from_bytes(&bytes);
    }
}

/// The facts of a real module survive the round trip — pins the codec
/// to the analysis output, not just to hand-built values.
#[test]
fn real_module_facts_round_trip() {
    let src = r#"
int counter = 0;
int main(void) {
    int *x = (int*) malloc(4 * sizeof(int));
    #pragma omp parallel
    {
        #pragma omp critical
        counter = counter + 1;
        #pragma omp single
        {
            #pragma omp task shared(x)
            x[0] = 1;
        }
    }
    return counter;
}
"#;
    let m = guest_rt::build_single("facts_rt.c", src).unwrap();
    let facts = tga_analysis::analyze_with(&m, &tga_analysis::AnalyzeOpts { concurrency: true });
    let back = StaticFacts::from_bytes(&facts.to_bytes()).expect("decodes");
    assert_eq!(format!("{back:?}"), format!("{facts:?}"));
    assert!(!facts.safe_pcs.is_empty(), "analysis should prove some accesses safe");
}
