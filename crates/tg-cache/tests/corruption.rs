//! Corruption robustness: whatever is on disk — truncated files, flipped
//! bytes, stale format versions, wrong-key headers — opening the cache
//! must never panic and never serve a block that differs from what was
//! stored. A damaged record degrades to a miss (the engine falls back to
//! a cold compile); it must not become wrong code.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use grindcore::flat::FlatBlock;
use grindcore::flatio::flat_to_bytes;
use grindcore::CodeCache;
use tg_cache::{DiskCodeCache, FORMAT_VERSION};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "tg-cache-corrupt-{}-{}-{}",
        tag,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

/// A small translated block: `n` guest instructions, fallthrough next.
fn sample_flat(base: u64, n: u64) -> FlatBlock {
    use vex_ir::{Atom, IrBlock, Stmt};
    let mut b = IrBlock::new(base);
    for i in 0..n {
        b.stmts.push(Stmt::IMark { addr: base + i * 16, len: 16 });
    }
    b.next = Atom::imm(base + n * 16);
    grindcore::flat::compile(&b)
}

const BASES: [u64; 4] = [0x1_0000, 0x1_0100, 0x1_0200, 0x1_0300];
const FACTS: &[u8] = b"opaque-facts-payload";

/// Build the reference cache file, returning (its bytes, the expected
/// per-pc encodings for comparison after damage).
fn reference_file(dir: &Path, bin: u64, fp: u64) -> (Vec<u8>, Vec<(u64, Vec<u8>)>) {
    let mut c = DiskCodeCache::open(dir, bin, fp).unwrap();
    let mut expected = Vec::new();
    for (i, &base) in BASES.iter().enumerate() {
        let fb = sample_flat(base, 1 + i as u64);
        c.store(base, base + 16 * (1 + i as u64), 64, &fb);
        expected.push((base, flat_to_bytes(&fb)));
    }
    c.store_facts(FACTS);
    c.flush().unwrap();
    (fs::read(c.path()).unwrap(), expected)
}

/// Open a (possibly damaged) image and assert the safety contract:
/// every served block is bit-identical to what was stored, and served
/// facts are bit-identical to what was stored. Returns how many blocks
/// survived.
fn assert_no_wrong_code(
    dir: &Path,
    bin: u64,
    fp: u64,
    image: &[u8],
    expected: &[(u64, Vec<u8>)],
) -> usize {
    let file = dir.join(format!("tgc-{bin:016x}-{fp:016x}.tgc"));
    fs::create_dir_all(dir).unwrap();
    fs::write(&file, image).unwrap();
    let mut c = DiskCodeCache::open(dir, bin, fp).unwrap();
    let mut survived = 0;
    for (pc, bytes) in expected {
        if let Some(hit) = c.load(*pc) {
            assert_eq!(&flat_to_bytes(&hit.flat), bytes, "pc {pc:#x} served a different block");
            survived += 1;
        }
    }
    if let Some(f) = c.load_facts() {
        assert_eq!(f, FACTS, "served different facts bytes");
    }
    survived
}

/// Every strict prefix of a valid cache file opens cleanly; surviving
/// records are bit-exact, missing ones are plain misses.
#[test]
fn truncation_at_every_length_is_tolerated() {
    let dir = temp_dir("trunc");
    let (image, expected) = reference_file(&dir, 11, 22);
    let mut survivors_seen = Vec::new();
    for cut in 0..image.len() {
        let n = assert_no_wrong_code(&dir, 11, 22, &image[..cut], &expected);
        survivors_seen.push(n);
    }
    assert_eq!(*survivors_seen.first().unwrap(), 0, "empty file has no entries");
    // truncation strictly before the end loses at least the last record
    assert!(survivors_seen.iter().all(|&n| n < expected.len()));
    let _ = fs::remove_dir_all(&dir);
}

/// Flipping any single byte anywhere in the file must be detected (the
/// record degrades to a miss) or provably harmless (served bytes still
/// bit-exact).
#[test]
fn every_single_byte_flip_is_detected_or_harmless() {
    let dir = temp_dir("flip");
    let (image, expected) = reference_file(&dir, 33, 44);
    for pos in 0..image.len() {
        let mut bad = image.clone();
        bad[pos] ^= 0x5a;
        assert_no_wrong_code(&dir, 33, 44, &bad, &expected);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A file written by a future (or ancient) format version is ignored
/// wholesale and rewritten cleanly on the next flush.
#[test]
fn stale_format_version_reads_as_empty_and_rewrites() {
    let dir = temp_dir("version");
    let (mut image, expected) = reference_file(&dir, 55, 66);
    // header: magic[8] | version u32 | bin_hash u64 | fingerprint u64
    image[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    assert_eq!(assert_no_wrong_code(&dir, 55, 66, &image, &expected), 0);

    // the stale file is replaced by a fresh, fully decodable one
    let mut c = DiskCodeCache::open(&dir, 55, 66).unwrap();
    assert!(c.is_empty());
    let fb = sample_flat(0x2_0000, 1);
    c.store(0x2_0000, 0x2_0010, 64, &fb);
    c.flush().unwrap();
    let mut c2 = DiskCodeCache::open(&dir, 55, 66).unwrap();
    assert_eq!(c2.len(), 1);
    assert!(c2.load(0x2_0000).is_some());
    let _ = fs::remove_dir_all(&dir);
}

/// A file whose *name* matches the key but whose header fingerprint
/// does not (e.g. a hand-copied cache) is rejected as empty — the
/// header, not the filename, is authoritative.
#[test]
fn header_fingerprint_mismatch_rejects_file() {
    let dir = temp_dir("fp");
    let (mut image, expected) = reference_file(&dir, 77, 88);
    image[20..28].copy_from_slice(&999u64.to_le_bytes());
    assert_eq!(assert_no_wrong_code(&dir, 77, 88, &image, &expected), 0);
    let _ = fs::remove_dir_all(&dir);
}

/// Same for the binary hash field: a cache of a different binary must
/// never serve blocks, even under the right filename.
#[test]
fn header_binary_hash_mismatch_rejects_file() {
    let dir = temp_dir("bin");
    let (mut image, expected) = reference_file(&dir, 99, 111);
    image[12..20].copy_from_slice(&123_456u64.to_le_bytes());
    assert_eq!(assert_no_wrong_code(&dir, 99, 111, &image, &expected), 0);
    let _ = fs::remove_dir_all(&dir);
}

/// A salvage-opened (damaged) cache marks itself dirty: the next flush
/// writes a clean file that fully decodes on reopen.
#[test]
fn salvage_open_rewrites_clean_file() {
    let dir = temp_dir("salvage");
    let (image, expected) = reference_file(&dir, 13, 14);
    let cut = image.len() - 7; // lose the tail of the last record
    let survived = assert_no_wrong_code(&dir, 13, 14, &image[..cut], &expected);

    let mut c = DiskCodeCache::open(&dir, 13, 14).unwrap();
    c.flush().unwrap(); // salvage marked it dirty → rewrite
    drop(c);
    let mut c2 = DiskCodeCache::open(&dir, 13, 14).unwrap();
    assert_eq!(c2.len(), survived, "rewritten file keeps exactly the survivors");
    for (pc, bytes) in &expected {
        if let Some(hit) = c2.load(*pc) {
            assert_eq!(&flat_to_bytes(&hit.flat), bytes);
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
