//! Persistent on-disk cache of compiled code and static analysis facts.
//!
//! Taskgrind's heavyweight pipeline pays decode→lift→instrument→fuse→
//! compile on every run of the same binary. This crate makes that cost
//! pay once per *fleet*: [`DiskCodeCache`] persists the compiled
//! [`FlatBlock`]s (fusion output included) and the serialized
//! `StaticFacts` to a versioned container file, keyed by
//! **(binary content hash, engine-config fingerprint)** — change either
//! and the cache reads as empty, so stale code can never be executed.
//!
//! # On-disk format (version 1)
//!
//! One file per key, named `tgc-<bin_hash>-<fingerprint>.tgc` inside the
//! cache directory. Little-endian throughout, laid out for sequential
//! mmap-style scanning (fixed header, then self-delimiting records):
//!
//! ```text
//! header   magic   [u8; 8]  = "TGCACHE\0"
//!          version u32      = FORMAT_VERSION
//!          bin_hash u64       FNV-1a over the module content
//!          fingerprint u64    FNV-1a over the translation-relevant config
//! record   kind    u8         1 = compiled block, 2 = static facts
//!          len     u32        payload byte count
//!          checksum u32       FNV-1a-32 over the payload
//!          payload [u8; len]
//! block payload   pc u64 | end u64 | bytes u64 | flatio-encoded FlatBlock
//! facts payload   opaque bytes (tga-analysis factsio encoding)
//! ```
//!
//! # Corruption and invalidation story
//!
//! Reading is *salvage, never trust*: a bad magic, version, or key
//! mismatch empties the whole file; a record with a bad checksum, an
//! undecodable body, or a truncated tail is dropped individually and
//! parsing continues (or stops at the tail). Every failure mode
//! degrades to a cold compile — the engine's behavior is identical
//! either way, just slower, and the corrupt bytes are rewritten on the
//! next flush.
//!
//! Runtime invalidation mirrors the tcache: when self-modifying code or
//! a `DISCARD_TRANSLATIONS` client request discards translations in
//! `[lo, hi)`, overlapping disk entries are dropped from the in-memory
//! table and therefore evicted from disk at the end-of-run [`flush`]
//! (an atomic tmp-file + rename rewrite).
//!
//! [`flush`]: DiskCodeCache::flush

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use grindcore::codecache::{CachedTranslation, CodeCache, CodeCacheStats};
use grindcore::flat::FlatBlock;
use grindcore::flatio;
use grindcore::wire::{checksum, fold64, Dec, Enc};
use tga::module::{Module, SymKind};

/// Version written into (and required of) every container header.
/// Bumped whenever the record layout or the flat-block/facts encodings
/// change shape; a mismatch empties the cache rather than misreading it.
pub const FORMAT_VERSION: u32 = 1;

/// Container magic: identifies the file type before any parsing.
pub const MAGIC: [u8; 8] = *b"TGCACHE\0";

const REC_BLOCK: u8 = 1;
const REC_FACTS: u8 = 2;

/// Content hash of a loaded module: everything that affects lifting,
/// instrumentation, or static analysis — code, data, TLS image, entry
/// point, symbols, and the debug line table (findings embed `file:line`
/// strings). Two modules with equal hashes translate identically.
pub fn module_hash(m: &Module) -> u64 {
    let mut h = fold64(0, &m.code_base.to_le_bytes());
    for inst in &m.code {
        h = fold64(h, &inst.encode());
    }
    h = fold64(h, &m.data_base.to_le_bytes());
    h = fold64(h, &m.data);
    h = fold64(h, &m.bss_size.to_le_bytes());
    h = fold64(h, &m.tls_template);
    h = fold64(h, &m.tls_bss.to_le_bytes());
    h = fold64(h, &m.entry.to_le_bytes());
    for s in &m.symbols {
        h = fold64(h, s.name.as_bytes());
        h = fold64(h, &s.addr.to_le_bytes());
        h = fold64(h, &s.size.to_le_bytes());
        let kind = match s.kind {
            SymKind::Func => 0u8,
            SymKind::Data => 1,
            SymKind::Tls => 2,
        };
        h = fold64(h, &[kind]);
    }
    for f in &m.files {
        h = fold64(h, f.as_bytes());
    }
    for l in &m.lines {
        h = fold64(h, &l.addr.to_le_bytes());
        h = fold64(h, &l.file.to_le_bytes());
        h = fold64(h, &l.line.to_le_bytes());
    }
    h
}

/// One cached compiled block, kept encoded in memory (decoded lazily on
/// [`CodeCache::load`], so a warm open stays cheap even for binaries
/// whose blocks are never all executed).
struct DiskEntry {
    /// One past the last guest byte the block covers (for range
    /// invalidation).
    end: u64,
    /// tcache accounting size of the original translation.
    bytes: u64,
    /// `flatio` encoding of the compiled block.
    flat_bytes: Vec<u8>,
}

/// The on-disk cache for one (binary, config) key. See the module docs
/// for format and semantics.
pub struct DiskCodeCache {
    path: PathBuf,
    bin_hash: u64,
    fingerprint: u64,
    entries: BTreeMap<u64, DiskEntry>,
    facts: Option<Vec<u8>>,
    /// Entries were added, dropped, or salvaged around corruption —
    /// the file must be rewritten on flush.
    dirty: bool,
    stats: CodeCacheStats,
}

impl DiskCodeCache {
    /// Open (creating the directory if needed) the cache for the given
    /// key. A missing, empty, or unreadable-beyond-salvage file is not
    /// an error — it is an empty cache; only directory creation can
    /// fail.
    pub fn open(dir: &Path, bin_hash: u64, fingerprint: u64) -> io::Result<DiskCodeCache> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("tgc-{bin_hash:016x}-{fingerprint:016x}.tgc"));
        let mut cache = DiskCodeCache {
            path,
            bin_hash,
            fingerprint,
            entries: BTreeMap::new(),
            facts: None,
            dirty: false,
            stats: CodeCacheStats { enabled: true, ..CodeCacheStats::default() },
        };
        if let Ok(data) = fs::read(&cache.path) {
            let t0 = Instant::now();
            cache.parse(&data);
            cache.stats.load_nanos += t0.elapsed().as_nanos() as u64;
        }
        Ok(cache)
    }

    /// Salvage whatever validates from `data`. Sets `dirty` when any
    /// byte had to be discarded, so the next flush rewrites a clean file.
    fn parse(&mut self, data: &[u8]) {
        let mut d = Dec::new(data);
        let header_ok = (|| {
            let magic = [
                d.u8("magic").ok()?,
                d.u8("magic").ok()?,
                d.u8("magic").ok()?,
                d.u8("magic").ok()?,
                d.u8("magic").ok()?,
                d.u8("magic").ok()?,
                d.u8("magic").ok()?,
                d.u8("magic").ok()?,
            ];
            if magic != MAGIC {
                return None;
            }
            if d.u32("version").ok()? != FORMAT_VERSION {
                return None;
            }
            if d.u64("bin_hash").ok()? != self.bin_hash {
                return None;
            }
            if d.u64("fingerprint").ok()? != self.fingerprint {
                return None;
            }
            Some(())
        })()
        .is_some();
        if !header_ok {
            // Foreign, stale-version, or wrong-key file: read as empty
            // and reclaim the slot on the next flush.
            self.dirty = !data.is_empty();
            return;
        }
        while !d.is_empty() {
            let ok = (|| {
                let kind = d.u8("record kind").ok()?;
                if kind != REC_BLOCK && kind != REC_FACTS {
                    return None;
                }
                let len = d.u32("record len").ok()? as usize;
                if len > d.remaining().saturating_sub(4) {
                    return None; // truncated tail
                }
                let sum = d.u32("record checksum").ok()?;
                let mut payload = Vec::with_capacity(len);
                for _ in 0..len {
                    payload.push(d.u8("record payload").ok()?);
                }
                if checksum(&payload) != sum {
                    // Bit flip inside this record: drop it, keep going —
                    // the framing is still intact.
                    self.dirty = true;
                    return Some(());
                }
                match kind {
                    REC_BLOCK => {
                        let mut pd = Dec::new(&payload);
                        let pc = pd.u64("entry pc").ok()?;
                        let end = pd.u64("entry end").ok()?;
                        let bytes = pd.u64("entry bytes").ok()?;
                        let rest = &payload[24..];
                        // Validate decodability now so load() can trust
                        // the entry later.
                        if flatio::flat_from_bytes(rest).is_err() {
                            self.dirty = true;
                            return Some(());
                        }
                        self.entries
                            .insert(pc, DiskEntry { end, bytes, flat_bytes: rest.to_vec() });
                    }
                    _ => self.facts = Some(payload),
                }
                Some(())
            })()
            .is_some();
            if !ok {
                // Lost framing (truncation or garbage): everything past
                // this point is unrecoverable.
                self.dirty = true;
                return;
            }
        }
    }

    /// True when a compiled block starting at `pc` is cached.
    pub fn contains(&self, pc: u64) -> bool {
        self.entries.contains_key(&pc)
    }

    /// Number of cached compiled blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when serialized static facts are cached.
    pub fn has_facts(&self) -> bool {
        self.facts.is_some()
    }

    /// The container file this cache reads and writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append_record(out: &mut Enc, kind: u8, payload: &[u8]) {
        out.u8(kind);
        out.u32(payload.len() as u32);
        out.u32(checksum(payload));
        out.raw(payload);
    }

    /// Persist the current state: atomic tmp-file + rename rewrite of
    /// the whole container. Entries invalidated during the run are
    /// gone from the in-memory table, so this is also where they get
    /// evicted from disk. A no-op when nothing changed.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        let t0 = Instant::now();
        let mut out = Enc::new();
        out.raw(&MAGIC);
        out.u32(FORMAT_VERSION);
        out.u64(self.bin_hash);
        out.u64(self.fingerprint);
        if let Some(facts) = &self.facts {
            Self::append_record(&mut out, REC_FACTS, facts);
        }
        for (pc, e) in &self.entries {
            let mut payload = Enc::new();
            payload.u64(*pc);
            payload.u64(e.end);
            payload.u64(e.bytes);
            payload.raw(&e.flat_bytes);
            Self::append_record(&mut out, REC_BLOCK, &payload.into_inner());
        }
        let tmp = self.path.with_extension(format!("tmp{}", std::process::id()));
        fs::write(&tmp, out.into_inner())?;
        fs::rename(&tmp, &self.path)?;
        self.dirty = false;
        self.stats.store_nanos += t0.elapsed().as_nanos() as u64;
        Ok(())
    }
}

impl CodeCache for DiskCodeCache {
    fn load(&mut self, pc: u64) -> Option<CachedTranslation> {
        let t0 = Instant::now();
        let out = self.entries.get(&pc).and_then(|e| {
            let flat = flatio::flat_from_bytes(&e.flat_bytes).ok()?;
            Some((flat, e.end, e.bytes, e.flat_bytes.len() as u64))
        });
        self.stats.load_nanos += t0.elapsed().as_nanos() as u64;
        match out {
            Some((flat, end, bytes, encoded_len)) => {
                self.stats.hits += 1;
                self.stats.bytes_loaded += encoded_len;
                Some(CachedTranslation { flat, end, bytes })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn store(&mut self, pc: u64, end: u64, bytes: u64, flat: &FlatBlock) {
        let t0 = Instant::now();
        let flat_bytes = flatio::flat_to_bytes(flat);
        self.stats.bytes_stored += flat_bytes.len() as u64;
        self.entries.insert(pc, DiskEntry { end, bytes, flat_bytes });
        self.dirty = true;
        self.stats.store_nanos += t0.elapsed().as_nanos() as u64;
    }

    fn invalidate_range(&mut self, lo: u64, hi: u64) {
        if lo >= hi {
            return;
        }
        let victims: Vec<u64> = self
            .entries
            .iter()
            .filter(|(&pc, e)| pc < hi && e.end > lo)
            .map(|(&pc, _)| pc)
            .collect();
        for pc in victims {
            self.entries.remove(&pc);
            self.stats.invalidations += 1;
            self.dirty = true;
        }
    }

    fn load_facts(&mut self) -> Option<Vec<u8>> {
        let f = self.facts.clone();
        if let Some(f) = &f {
            self.stats.bytes_loaded += f.len() as u64;
        }
        f
    }

    fn store_facts(&mut self, bytes: &[u8]) {
        self.stats.bytes_stored += bytes.len() as u64;
        self.facts = Some(bytes.to_vec());
        self.dirty = true;
    }

    fn stats(&self) -> CodeCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "tg-cache-test-{}-{}-{}",
            tag,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_flat(base: u64) -> FlatBlock {
        use vex_ir::{Atom, IrBlock, Stmt};
        let mut b = IrBlock::new(base);
        b.stmts.push(Stmt::IMark { addr: base, len: 16 });
        b.next = Atom::imm(base + 16);
        grindcore::flat::compile(&b)
    }

    #[test]
    fn store_flush_reopen_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut c = DiskCodeCache::open(&dir, 7, 9).unwrap();
        assert!(c.is_empty());
        let fb = sample_flat(0x1000);
        c.store(0x1000, 0x1010, 64, &fb);
        c.store_facts(b"facts-bytes");
        c.flush().unwrap();

        let mut c2 = DiskCodeCache::open(&dir, 7, 9).unwrap();
        assert_eq!(c2.len(), 1);
        let hit = c2.load(0x1000).expect("stored block must load");
        assert_eq!(hit.flat.base, 0x1000);
        assert_eq!(hit.end, 0x1010);
        assert_eq!(hit.bytes, 64);
        assert_eq!(c2.load_facts().as_deref(), Some(&b"facts-bytes"[..]));
        assert!(c2.load(0x2000).is_none());
        let s = c2.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.enabled);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_reads_as_empty() {
        let dir = temp_dir("wrongkey");
        let mut c = DiskCodeCache::open(&dir, 1, 2).unwrap();
        c.store(0x1000, 0x1010, 64, &sample_flat(0x1000));
        c.flush().unwrap();
        let stale = c.path().to_path_buf();
        // Same file contents, opened under a different key (simulates a
        // renamed/copied cache file): header mismatch → empty.
        let other = dir.join("tgc-0000000000000003-0000000000000004.tgc");
        fs::copy(&stale, &other).unwrap();
        let c2 = DiskCodeCache::open(&dir, 3, 4).unwrap();
        assert!(c2.is_empty(), "wrong-key entries must be rejected");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_range_evicts_from_disk_on_flush() {
        let dir = temp_dir("invalidate");
        let mut c = DiskCodeCache::open(&dir, 5, 5).unwrap();
        c.store(0x1000, 0x1010, 64, &sample_flat(0x1000));
        c.store(0x2000, 0x2010, 64, &sample_flat(0x2000));
        c.flush().unwrap();

        let mut c2 = DiskCodeCache::open(&dir, 5, 5).unwrap();
        c2.invalidate_range(0x1008, 0x1009);
        assert_eq!(c2.stats().invalidations, 1);
        assert!(!c2.contains(0x1000));
        assert!(c2.contains(0x2000));
        c2.flush().unwrap();

        let c3 = DiskCodeCache::open(&dir, 5, 5).unwrap();
        assert!(!c3.contains(0x1000), "invalidated entry must be gone from disk");
        assert!(c3.contains(0x2000));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_is_noop_when_clean() {
        let dir = temp_dir("noop");
        let mut c = DiskCodeCache::open(&dir, 1, 1).unwrap();
        c.store(0x1000, 0x1010, 64, &sample_flat(0x1000));
        c.flush().unwrap();
        let mtime = fs::metadata(c.path()).unwrap().modified().unwrap();
        let mut c2 = DiskCodeCache::open(&dir, 1, 1).unwrap();
        assert!(c2.load(0x1000).is_some());
        c2.flush().unwrap(); // nothing changed
        assert_eq!(fs::metadata(c2.path()).unwrap().modified().unwrap(), mtime);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn module_hash_tracks_content() {
        let mut m = Module::new();
        let h0 = module_hash(&m);
        m.data.push(1);
        let h1 = module_hash(&m);
        assert_ne!(h0, h1, "data change must change the hash");
        m.entry = 0x40;
        assert_ne!(module_hash(&m), h1, "entry change must change the hash");
    }
}
