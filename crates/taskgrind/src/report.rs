//! Error reporting (paper §III-C, §V-C, Listings 5–6).
//!
//! Taskgrind overloads the memory allocator to save a stack trace on
//! each block allocation, so conflicting accesses can be matched with
//! source locations from the binary's debug information. A report reads:
//!
//! ```text
//! Segments task.1.c:8 and task.1.c:11 were declared independent while
//!     accessing the same memory address
//! 8 bytes from 0xc3ea040 allocated in block 0xc3ea040 of size 8
//! from task.1.c:3
//! ```
//!
//! [`render_minimal`] reproduces the ROMP-style report (Listing 5) —
//! raw shadow addresses, no source information — used by the error-
//! reporting comparison (E4).

use crate::analysis::Candidate;
use crate::graph::{SegId, SegmentGraph};
use std::collections::BTreeMap;
use std::sync::Arc;
use tga::module::Module;

/// A heap block recorded by the allocator replacement.
#[derive(Clone, Debug)]
pub struct AllocBlock {
    pub base: u64,
    pub size: u64,
    /// Guest return addresses, innermost first.
    pub alloc_stack: Vec<u64>,
}

/// Locate the block containing `addr` among blocks sorted by base.
pub fn find_block(blocks: &[AllocBlock], addr: u64) -> Option<&AllocBlock> {
    let idx = blocks.partition_point(|b| b.base <= addr);
    if idx == 0 {
        return None;
    }
    let b = &blocks[idx - 1];
    (addr < b.base + b.size).then_some(b)
}

/// A deduplicated determinacy-race report.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Source sites of the two conflicting segments (`file:line`).
    pub site1: String,
    pub site2: String,
    /// An example conflicting address and the bytes overlapping there.
    pub example_addr: u64,
    pub example_bytes: u64,
    /// Total distinct candidate ranges merged into this report.
    pub occurrences: usize,
    /// Heap block info when the address belongs to a recorded block.
    pub block: Option<(u64, u64, String)>,
    /// Memory-region classification for the report text.
    pub region: &'static str,
}

fn seg_site(g: &SegmentGraph, module: &Module, seg: SegId) -> String {
    let s = &g.segments[seg as usize];
    let Some(tid) = s.task else {
        return format!("sync#{seg}");
    };
    let t = &g.tasks[tid as usize];
    if t.fn_addr != 0 {
        if let Some(loc) = module.line_for(t.fn_addr) {
            return loc.to_string();
        }
        if let Some(f) = module.find_func(t.fn_addr) {
            return f.name.clone();
        }
    }
    if t.implicit {
        format!("implicit-task#{tid}")
    } else {
        format!("task#{tid}")
    }
}

/// Resolve the first stack frame that falls in user code (skipping the
/// allocator and runtime frames) to a `file:line`.
fn alloc_site(module: &Module, stack: &[u64], ignore: &[String]) -> String {
    for &pc in stack {
        let Some(f) = module.find_func(pc) else { continue };
        let ignored = ignore.iter().any(|p| grindcore::tool::pattern_matches(p, &f.name));
        if ignored {
            continue;
        }
        if let Some(loc) = module.line_for(pc) {
            return loc.to_string();
        }
    }
    "<unknown>".to_string()
}

/// Group candidates into per-(site-pair, block) reports.
pub fn summarize(
    g: &SegmentGraph,
    module: &Arc<Module>,
    blocks: &[AllocBlock],
    candidates: &[Candidate],
    ignore: &[String],
) -> Vec<RaceReport> {
    let mut grouped: BTreeMap<(String, String, u64), RaceReport> = BTreeMap::new();
    for c in candidates {
        let mut s1 = seg_site(g, module, c.seg1);
        let mut s2 = seg_site(g, module, c.seg2);
        if s1 > s2 {
            std::mem::swap(&mut s1, &mut s2);
        }
        let block = find_block(blocks, c.lo);
        let block_key = block.map(|b| b.base).unwrap_or(0);
        let region = match block {
            Some(_) => "heap",
            None => {
                if c.lo >= module.data_base && c.lo < module.data_end() {
                    "global"
                } else if c.lo >= 0x7000_0000_0000 {
                    "stack"
                } else {
                    "memory"
                }
            }
        };
        let entry =
            grouped.entry((s1.clone(), s2.clone(), block_key)).or_insert_with(|| RaceReport {
                site1: s1,
                site2: s2,
                example_addr: c.lo,
                example_bytes: c.hi - c.lo,
                occurrences: 0,
                block: block.map(|b| (b.base, b.size, alloc_site(module, &b.alloc_stack, ignore))),
                region,
            });
        entry.occurrences += 1;
    }
    grouped.into_values().collect()
}

/// Render in Taskgrind's style (Listing 6).
pub fn render_taskgrind(r: &RaceReport) -> String {
    let mut out = format!(
        "Segments {} and {} were declared independent while accessing the same memory address\n",
        r.site1, r.site2
    );
    match &r.block {
        Some((base, size, site)) => {
            out.push_str(&format!(
                "{} bytes from {:#x} allocated in block {:#x} of size {}\nfrom {}\n",
                r.example_bytes, r.example_addr, base, size, site
            ));
        }
        None => {
            out.push_str(&format!(
                "{} bytes from {:#x} in {} memory\n",
                r.example_bytes, r.example_addr, r.region
            ));
        }
    }
    if r.occurrences > 1 {
        out.push_str(&format!("({} conflicting ranges total)\n", r.occurrences));
    }
    out
}

/// Render in ROMP's style (Listing 5): no source information at all.
pub fn render_minimal(r: &RaceReport) -> String {
    format!("data race found:\n  addr = {:#x}\n", r.example_addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks() -> Vec<AllocBlock> {
        vec![
            AllocBlock { base: 0x1000, size: 16, alloc_stack: vec![] },
            AllocBlock { base: 0x2000, size: 8, alloc_stack: vec![] },
        ]
    }

    #[test]
    fn block_lookup() {
        let b = blocks();
        assert_eq!(find_block(&b, 0x1000).unwrap().base, 0x1000);
        assert_eq!(find_block(&b, 0x100f).unwrap().base, 0x1000);
        assert!(find_block(&b, 0x1010).is_none());
        assert!(find_block(&b, 0xfff).is_none());
        assert_eq!(find_block(&b, 0x2007).unwrap().base, 0x2000);
        assert!(find_block(&b, 0x2008).is_none());
    }

    #[test]
    fn render_formats() {
        let r = RaceReport {
            site1: "task.c:8".into(),
            site2: "task.c:11".into(),
            example_addr: 0xc3ea040,
            example_bytes: 4,
            occurrences: 1,
            block: Some((0xc3ea040, 8, "task.c:3".into())),
            region: "heap",
        };
        let text = render_taskgrind(&r);
        assert!(text.contains("task.c:8 and task.c:11"));
        assert!(text.contains("declared independent"));
        assert!(text.contains("4 bytes from 0xc3ea040"));
        assert!(text.contains("block 0xc3ea040 of size 8"));
        assert!(text.contains("from task.c:3"));

        let minimal = render_minimal(&r);
        assert!(minimal.contains("data race found"));
        assert!(!minimal.contains("task.c"), "ROMP style has no source info");
    }

    #[test]
    fn non_heap_report_names_region() {
        let r = RaceReport {
            site1: "a.c:1".into(),
            site2: "a.c:2".into(),
            example_addr: 0x7000_0000_1000,
            example_bytes: 8,
            occurrences: 3,
            block: None,
            region: "stack",
        };
        let text = render_taskgrind(&r);
        assert!(text.contains("in stack memory"));
        assert!(text.contains("3 conflicting ranges"));
    }
}
