//! The segment graph (paper §II-A, Fig. 1) and its event-driven builder.
//!
//! Nodes are *segments* — non-divisible instruction sequences of one
//! task execution — plus synthetic sync nodes (parallel-region begin/
//! end, barriers) that encode the happens-before relation without
//! quadratic edge blowup. A path `s1 → s2` exists iff a synchronization
//! imposes `s1 ≺ s2`.
//!
//! [`GraphBuilder`] consumes the client-request events the guest
//! runtime emits (the OMPT-tool of Fig. 2) and produces the final
//! [`SegmentGraph`]:
//!
//! * task creation **splits** the creator's segment — code after the
//!   spawn is concurrent with the child until a taskwait/taskgroup/
//!   barrier joins them;
//! * `depend` clauses create task-level edges resolved post-mortem
//!   (predecessor's final segment → successor's first segment), matched
//!   **per parent task** as the OpenMP spec scopes dependences to
//!   sibling tasks — which is how non-sibling races (DRB173) stay
//!   visible;
//! * the parallel-region rule (Eq. 1) falls out of the region begin/end
//!   sync nodes: every segment of region `r` is sandwiched between its
//!   begin and end nodes, which chain through the master thread;
//! * `critical` sections split segments and tag them with the held lock
//!   set; `mutexinoutset` tags tasks with their mutex objects — both are
//!   consumed by suppression, not by reachability.

use crate::itree::IntervalTree;
use crate::stream::{Epoch, EpochSeg, EpochSink, SegSnapshot};
use grindcore::creq::task_flags;
use grindcore::Tid;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

pub type SegId = u32;
pub type TaskId = u32;

/// Dependence kinds (mirror `grindcore::creq::dep_kind`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    In,
    Out,
    Inout,
    Mutexinoutset,
    Inoutset,
}

impl DepKind {
    pub fn from_u64(v: u64) -> DepKind {
        match v {
            0 => DepKind::In,
            1 => DepKind::Out,
            2 => DepKind::Inout,
            3 => DepKind::Mutexinoutset,
            _ => DepKind::Inoutset,
        }
    }
}

/// Per-thread execution metadata captured at event time, used by the
/// false-positive suppression layers (§IV-C, §IV-D).
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadMeta {
    pub tid: Tid,
    /// Stack pointer at the event — the "registered stack frame".
    pub sp: u64,
    pub stack_low: u64,
    pub stack_high: u64,
    pub tls_base: u64,
    pub tls_size: u64,
    /// DTV generation analog.
    pub tls_gen: u64,
}

/// One segment.
#[derive(Clone, Debug)]
pub struct Segment {
    pub id: SegId,
    /// Owning task; `None` for synthetic sync nodes.
    pub task: Option<TaskId>,
    /// Executing VM thread.
    pub thread: Tid,
    pub sync: bool,
    /// Human-readable kind, for DOT dumps.
    pub kind: &'static str,
    pub reads: IntervalTree,
    pub writes: IntervalTree,
    /// Stack pointer registered at segment start (§IV-D).
    pub start_sp: u64,
    pub stack_low: u64,
    pub stack_high: u64,
    /// TCB/DTV record (§IV-C).
    pub tls_base: u64,
    pub tls_size: u64,
    pub tls_gen: u64,
    /// Critical-section locks held throughout this segment.
    pub locks: Vec<u64>,
    pub region: Option<u32>,
    /// AND-fold of the static guard masks of every access recorded into
    /// this segment (see [`crate::analysis::SegView::guard_mask`]).
    /// Starts at `!0`; a single access without a static proof zeroes
    /// it.
    pub guard_mask: u64,
}

impl Segment {
    pub fn bytes(&self) -> u64 {
        self.reads.heap_bytes() + self.writes.heap_bytes() + 160
    }
}

/// One task (explicit, implicit, or a thread root).
#[derive(Clone, Debug)]
pub struct TaskNode {
    pub id: TaskId,
    pub flags: u64,
    /// Address of the outlined body (for source attribution).
    pub fn_addr: u64,
    pub parent: Option<TaskId>,
    /// Creator's segment at creation (edge to `first_seg`).
    pub create_seg: Option<SegId>,
    pub first_seg: Option<SegId>,
    pub last_seg: Option<SegId>,
    pub children: Vec<TaskId>,
    /// Task-level dependence predecessors (resolved at finalize).
    pub dep_preds: Vec<TaskId>,
    /// mutexinoutset dependence objects this task holds.
    pub mutex_objs: Vec<u64>,
    /// For `detach` tasks: the segment that fulfilled the completion
    /// event — join edges come from here as well as from `last_seg`.
    pub fulfill_seg: Option<SegId>,
    pub implicit: bool,
}

/// The finished graph.
#[derive(Clone, Debug, Default)]
pub struct SegmentGraph {
    pub segments: Vec<Segment>,
    pub tasks: Vec<TaskNode>,
    pub edges: Vec<(SegId, SegId)>,
}

impl SegmentGraph {
    pub fn n_nodes(&self) -> usize {
        self.segments.len()
    }

    /// Successor adjacency lists.
    pub fn successors(&self) -> Vec<Vec<SegId>> {
        let mut adj = vec![Vec::new(); self.segments.len()];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
        }
        adj
    }

    /// Approximate host bytes held by the graph (Table II accounting).
    pub fn heap_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes()).sum::<u64>()
            + self.tasks.len() as u64 * 160
            + self.edges.len() as u64 * 8
    }

    /// Structural validation: edges in range, acyclic, task segment
    /// bookkeeping consistent, sync nodes access-free. Returns every
    /// defect found (empty = valid). Used by tests and debug builds.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let n = self.segments.len() as u32;
        for &(a, b) in &self.edges {
            if a >= n || b >= n {
                errs.push(format!("edge ({a},{b}) out of range (n={n})"));
            }
            if a == b {
                errs.push(format!("self edge on segment {a}"));
            }
        }
        // Kahn: a cycle leaves nodes unprocessed
        let succ = self.successors();
        let mut indeg = vec![0u32; self.segments.len()];
        for &(_, b) in &self.edges {
            if (b as usize) < indeg.len() {
                indeg[b as usize] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..self.segments.len()).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        let mut qi = 0;
        while qi < queue.len() {
            let u = queue[qi];
            qi += 1;
            seen += 1;
            for &v in &succ[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v as usize);
                }
            }
        }
        if seen != self.segments.len() {
            errs.push(format!(
                "graph has a cycle: {seen}/{} nodes in topological order",
                self.segments.len()
            ));
        }
        for s in &self.segments {
            if s.sync && (!s.reads.is_empty() || !s.writes.is_empty()) {
                errs.push(format!("sync node {} has recorded accesses", s.id));
            }
            if let Some(t) = s.task {
                if t as usize >= self.tasks.len() {
                    errs.push(format!("segment {} references bad task {t}", s.id));
                }
            }
        }
        for t in &self.tasks {
            if t.first_seg.is_some() != t.last_seg.is_some() {
                errs.push(format!("task {} has first/last segment mismatch", t.id));
            }
        }
        errs
    }

    /// Graphviz dump (Fig. 1 regeneration).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph segments {\n  rankdir=TB;\n");
        for s in &self.segments {
            let shape = if s.sync { "diamond" } else { "box" };
            let label = match s.task {
                Some(t) => format!("S{} ({}, task {})", s.id, s.kind, t),
                None => format!("{} #{}", s.kind, s.id),
            };
            let _ = writeln!(out, "  n{} [shape={shape}, label=\"{label}\"];", s.id);
        }
        for &(a, b) in &self.edges {
            let _ = writeln!(out, "  n{a} -> n{b};");
        }
        out.push('}');
        out
    }
}

/// Append-only access buffer for the bulk-ingestion path: flat
/// `(lo, hi)` interval triples (split by direction) appended straight
/// from the access callback, drained into the segment's interval trees
/// when the segment closes. A one-entry "last interval" fast path
/// absorbs dense sequential and strided accesses in place, so a tight
/// array sweep costs one bounds check and a compare-extend per access
/// instead of a `BTreeMap` insert.
#[derive(Default)]
struct AccessBuf {
    reads: Vec<(u64, u64)>,
    writes: Vec<(u64, u64)>,
    /// Raw access counts represented by the buffers (the fast path
    /// collapses entries, so `len()` undercounts).
    n_reads: u64,
    n_writes: u64,
}

impl AccessBuf {
    #[inline]
    fn push(&mut self, lo: u64, hi: u64, write: bool) {
        if lo >= hi {
            return;
        }
        let (v, n) = if write {
            (&mut self.writes, &mut self.n_writes)
        } else {
            (&mut self.reads, &mut self.n_reads)
        };
        *n += 1;
        if let Some(last) = v.last_mut() {
            // touching or overlapping the previously appended interval:
            // extend it in place (any merge is sound — the drain sorts
            // and coalesces the whole buffer anyway)
            if lo <= last.1 && last.0 <= hi {
                last.0 = last.0.min(lo);
                last.1 = last.1.max(hi);
                return;
            }
        }
        v.push((lo, hi));
    }

    fn is_empty(&self) -> bool {
        self.n_reads == 0 && self.n_writes == 0
    }

    fn heap_bytes(&self) -> u64 {
        ((self.reads.capacity() + self.writes.capacity()) * 16) as u64
    }
}

/// Drain a context's access buffer into its current segment's trees.
fn flush_buf(segments: &mut [Segment], c: &mut ExecCtx) {
    if c.buf.is_empty() {
        return;
    }
    let s = &mut segments[c.cur_seg as usize];
    let reads = std::mem::take(&mut c.buf.reads);
    let n_reads = std::mem::replace(&mut c.buf.n_reads, 0);
    if n_reads > 0 {
        s.reads.bulk_extend(reads, n_reads);
    }
    let writes = std::mem::take(&mut c.buf.writes);
    let n_writes = std::mem::replace(&mut c.buf.n_writes, 0);
    if n_writes > 0 {
        s.writes.bulk_extend(writes, n_writes);
    }
}

/// Insert into a sorted vector, keeping it sorted (duplicates kept,
/// matching the old push semantics). Lock sets and mutex-object sets
/// stay sorted at build time so [`crate::analysis`] can intersect them
/// with a linear merge instead of an `O(n·m)` contains scan.
fn insert_sorted(v: &mut Vec<u64>, x: u64) {
    let pos = v.partition_point(|&e| e < x);
    v.insert(pos, x);
}

struct ExecCtx {
    task: TaskId,
    cur_seg: SegId,
    locks: Vec<u64>,
    group: Option<u32>,
    /// Stack pointer at context entry. Segment splits register this
    /// frame (not the split point's deeper sp): everything the task's
    /// call tree allocates lives below it, so §IV-D locality holds for
    /// all of the context's segments.
    base_sp: u64,
    /// Pending accesses of `cur_seg` (bulk-ingestion mode only).
    buf: AccessBuf,
}

struct TaskgroupState {
    members: Vec<TaskId>,
    parent: Option<u32>,
}

struct RegionState {
    begin_node: SegId,
    end_node: SegId,
    team: u64,
    barrier_arrived: u64,
    cur_barrier_node: Option<SegId>,
    /// Explicit tasks created in this region (joined at barriers and at
    /// region end — a barrier completes all tasks generated so far).
    tasks_created: Vec<TaskId>,
    /// Region between its `parallel_begin` and `parallel_end` events.
    active: bool,
    /// The master's pre-region segment: open but *dormant* for the whole
    /// region, so the retirement frontier treats it specially (ordered
    /// either way suffices — see [`GraphBuilder::maybe_retire`]).
    master_pre: SegId,
    /// Implicit tasks begun so far; until the whole team arrived, the
    /// region begin node is a frontier node (future segments attach).
    implicit_begun: u64,
}

#[derive(Default)]
struct DepEntry {
    /// Current writer set (one out-task, or the inoutset members).
    writers: Vec<TaskId>,
    readers: Vec<TaskId>,
    /// Set-mode base predecessors.
    basew: Vec<TaskId>,
    baser: Vec<TaskId>,
    set_mode: bool,
}

/// Memory and retirement statistics of one graph build, returned by
/// [`GraphBuilder::finalize_with_stats`]. Populated for both engines:
/// batch mode simply never retires, so its peak equals its total.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphMemStats {
    /// High-water count of real (non-sync) segments whose interval trees
    /// were resident in the builder.
    pub peak_live_segments: u64,
    /// High-water bytes of closed interval trees plus pending bulk
    /// buffers (the structures retirement frees).
    pub peak_tool_bytes: u64,
    /// Retirement epochs emitted (streaming only).
    pub epochs: u64,
    /// Segments retired before finalize (streaming only; includes
    /// access-free segments retired at close without an epoch).
    pub retired_segments: u64,
    /// Times the `--max-live-segments` backpressure knob blocked the
    /// guest on the analysis pool.
    pub throttle_waits: u64,
    /// Root contexts created after the first retirement. Must stay 0 for
    /// the frontier rule to be sound (DESIGN.md §9); the modelled
    /// runtimes only run user code inside tasks, so it always is.
    pub late_root_ctxs: u64,
}

/// Streaming-retirement bookkeeping (see DESIGN.md §9 and
/// [`crate::stream`]).
struct StreamState {
    sink: Box<dyn EpochSink>,
    /// Detached trees of closed-but-unretired segments.
    snapshots: HashMap<SegId, Arc<SegSnapshot>>,
    /// Closed, access-bearing segments not yet proven retirable.
    closed_unretired: Vec<SegId>,
    /// Joins whose task had not completed at registration. Non-empty
    /// pending lists block retirement: the final graph will gain edges
    /// whose placement is not yet known.
    pending_joins: Vec<(TaskId, SegId)>,
    /// `(pred, succ)` dependences whose predecessor had not completed
    /// when the successor task began.
    pending_deps: Vec<(TaskId, TaskId)>,
    /// Spawned tasks that have not begun: their `create_seg` is a
    /// frontier node (the child's first segment will hang off it).
    spawned_unbegun: HashSet<TaskId>,
    /// `--max-live-segments` (0 = unlimited).
    max_live: usize,
    epoch_seq: u64,
    retired_count: u64,
    throttle_waits: u64,
    late_roots: u64,
    any_retired: bool,
}

/// Builds a [`SegmentGraph`] from runtime events.
pub struct GraphBuilder {
    pub segments: Vec<Segment>,
    pub tasks: Vec<TaskNode>,
    edges: Vec<(SegId, SegId)>,
    /// (task, segment): edge from the task's final segment to `segment`.
    last_to_seg: Vec<(TaskId, SegId)>,
    ctx: HashMap<Tid, Vec<ExecCtx>>,
    regions: Vec<RegionState>,
    taskgroups: Vec<TaskgroupState>,
    deps: HashMap<(Option<TaskId>, u64), DepEntry>,
    user_deferrable: bool,
    /// Strip only the UNDEFERRED flag (see [`Self::set_ignore_undeferred`]).
    ignore_undeferred: bool,
    /// Match dependences globally instead of per parent task (baseline
    /// tools that do not scope deps to siblings set this).
    global_dep_scope: bool,
    cur_region: Option<u32>,
    /// Bulk ingestion: buffer accesses per context and drain at segment
    /// close (default). `false` is the per-access reference path
    /// (`TG_NO_BULK` / `RecordOptions::bulk_ingest`).
    bulk: bool,
    /// Streaming retirement (`None` = batch mode).
    stream: Option<StreamState>,
    /// Real segments whose interval trees are currently resident.
    live_segments: u64,
    peak_live_segments: u64,
    /// Bytes of closed, still-resident interval trees.
    closed_bytes: u64,
    peak_bytes: u64,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder::new()
    }
}

impl GraphBuilder {
    pub fn new() -> GraphBuilder {
        GraphBuilder {
            segments: Vec::new(),
            tasks: Vec::new(),
            edges: Vec::new(),
            last_to_seg: Vec::new(),
            ctx: HashMap::new(),
            regions: Vec::new(),
            taskgroups: Vec::new(),
            deps: HashMap::new(),
            user_deferrable: false,
            ignore_undeferred: false,
            global_dep_scope: false,
            cur_region: None,
            bulk: true,
            stream: None,
            live_segments: 0,
            peak_live_segments: 0,
            closed_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Switch the builder into streaming-retirement mode. Must be called
    /// before any event is recorded. Closed segments detach their trees
    /// and, once the frontier rule proves them race-free with respect to
    /// every future segment, ship to `sink` ([`Self::maybe_retire`]).
    /// `max_live_segments` (0 = unlimited) bounds the closed-unretired
    /// set by draining the sink when exceeded.
    pub fn enable_streaming(&mut self, sink: Box<dyn EpochSink>, max_live_segments: usize) {
        self.stream = Some(StreamState {
            sink,
            snapshots: HashMap::new(),
            closed_unretired: Vec::new(),
            pending_joins: Vec::new(),
            pending_deps: Vec::new(),
            spawned_unbegun: HashSet::new(),
            max_live: max_live_segments,
            epoch_seq: 0,
            retired_count: 0,
            throttle_waits: 0,
            late_roots: 0,
            any_retired: false,
        });
    }

    /// Toggle bulk access ingestion (see [`Self::record_access`]). The
    /// reference per-access path is kept for the differential tests and
    /// the `TG_NO_BULK` escape hatch; call before recording starts.
    pub fn set_bulk_ingest(&mut self, v: bool) {
        self.bulk = v;
    }

    /// Host bytes held by not-yet-drained access buffers (bulk mode).
    pub fn pending_bytes(&self) -> u64 {
        self.ctx.values().flatten().map(|c| c.buf.heap_bytes()).sum()
    }

    /// Baseline behaviour: match dependences by address only, ignoring
    /// the sibling-task scoping of the OpenMP spec.
    pub fn set_global_dep_scope(&mut self, v: bool) {
        self.global_dep_scope = v;
    }

    /// Baseline behaviour (ROMP): the `if(0)`/undeferred ordering is not
    /// modelled, but included tasks (runtime serialization) still are.
    pub fn set_ignore_undeferred(&mut self, v: bool) {
        self.ignore_undeferred = v;
    }

    /// Is the task currently executing on `tid` an explicit task?
    pub fn current_task_explicit(&self, tid: Tid) -> bool {
        self.ctx
            .get(&tid)
            .and_then(|s| s.last())
            .map(|c| !self.tasks[c.task as usize].implicit)
            .unwrap_or(false)
    }

    /// §V-B annotation: treat runtime-serialized tasks as deferrable.
    pub fn set_user_deferrable(&mut self, v: bool) {
        self.user_deferrable = v;
    }

    fn new_segment(
        &mut self,
        meta: &ThreadMeta,
        task: Option<TaskId>,
        kind: &'static str,
        locks: Vec<u64>,
    ) -> SegId {
        let id = self.segments.len() as SegId;
        self.segments.push(Segment {
            id,
            task,
            thread: meta.tid,
            sync: task.is_none(),
            kind,
            reads: IntervalTree::new(),
            writes: IntervalTree::new(),
            start_sp: meta.sp,
            stack_low: meta.stack_low,
            stack_high: meta.stack_high,
            tls_base: meta.tls_base,
            tls_size: meta.tls_size,
            tls_gen: meta.tls_gen,
            locks,
            region: self.cur_region,
            guard_mask: !0,
        });
        if task.is_some() {
            self.live_segments += 1;
            self.peak_live_segments = self.peak_live_segments.max(self.live_segments);
        }
        id
    }

    fn edge(&mut self, a: SegId, b: SegId) {
        self.edges.push((a, b));
    }

    fn new_task(
        &mut self,
        flags: u64,
        fn_addr: u64,
        parent: Option<TaskId>,
        implicit: bool,
    ) -> TaskId {
        let id = self.tasks.len() as TaskId;
        self.tasks.push(TaskNode {
            id,
            flags,
            fn_addr,
            parent,
            create_seg: None,
            first_seg: None,
            last_seg: None,
            children: Vec::new(),
            dep_preds: Vec::new(),
            mutex_objs: Vec::new(),
            fulfill_seg: None,
            implicit,
        });
        if let Some(p) = parent {
            self.tasks[p as usize].children.push(id);
        }
        id
    }

    /// Root execution context for a thread (main, or anything running
    /// user code outside an implicit task).
    fn ensure_ctx(&mut self, meta: &ThreadMeta) -> usize {
        let stack = self.ctx.entry(meta.tid).or_default();
        if stack.is_empty() {
            let task = self.tasks.len() as TaskId;
            self.tasks.push(TaskNode {
                id: task,
                flags: 0,
                fn_addr: 0,
                parent: None,
                create_seg: None,
                first_seg: None,
                last_seg: None,
                children: Vec::new(),
                dep_preds: Vec::new(),
                mutex_objs: Vec::new(),
                fulfill_seg: None,
                implicit: true,
            });
            let seg = {
                let id = self.segments.len() as SegId;
                self.segments.push(Segment {
                    id,
                    task: Some(task),
                    thread: meta.tid,
                    sync: false,
                    kind: "root",
                    reads: IntervalTree::new(),
                    writes: IntervalTree::new(),
                    start_sp: meta.sp,
                    stack_low: meta.stack_low,
                    stack_high: meta.stack_high,
                    tls_base: meta.tls_base,
                    tls_size: meta.tls_size,
                    tls_gen: meta.tls_gen,
                    locks: Vec::new(),
                    region: None,
                    guard_mask: !0,
                });
                id
            };
            self.live_segments += 1;
            self.peak_live_segments = self.peak_live_segments.max(self.live_segments);
            if let Some(st) = self.stream.as_mut() {
                // a root context born after retirement started has no
                // in-edges — the frontier rule cannot see it coming
                // (DESIGN.md §9); count it so tests can assert 0
                if st.any_retired {
                    st.late_roots += 1;
                }
            }
            self.tasks[task as usize].first_seg = Some(seg);
            self.ctx.get_mut(&meta.tid).unwrap().push(ExecCtx {
                task,
                cur_seg: seg,
                locks: Vec::new(),
                group: None,
                base_sp: meta.sp,
                buf: AccessBuf::default(),
            });
        }
        self.ctx[&meta.tid].len() - 1
    }

    fn top(&mut self, meta: &ThreadMeta) -> &mut ExecCtx {
        self.ensure_ctx(meta);
        self.ctx.get_mut(&meta.tid).unwrap().last_mut().unwrap()
    }

    /// Drain the top context's pending accesses into its current
    /// segment. Must run before `cur_seg` changes or the context pops.
    fn flush_top(&mut self, tid: Tid) {
        if let Some(c) = self.ctx.get_mut(&tid).and_then(|s| s.last_mut()) {
            flush_buf(&mut self.segments, c);
        }
    }

    /// Split the current segment of the thread's top context: a new
    /// segment ordered after the old one.
    fn split(&mut self, meta: &ThreadMeta, kind: &'static str) -> (SegId, SegId) {
        self.ensure_ctx(meta);
        self.flush_top(meta.tid);
        let (task, old, locks, base_sp) = {
            let c = self.ctx.get_mut(&meta.tid).unwrap().last_mut().unwrap();
            (c.task, c.cur_seg, c.locks.clone(), c.base_sp)
        };
        let meta = &ThreadMeta { sp: base_sp, ..*meta };
        let new = self.new_segment(meta, Some(task), kind, locks);
        self.edge(old, new);
        let c = self.ctx.get_mut(&meta.tid).unwrap().last_mut().unwrap();
        c.cur_seg = new;
        self.close_segment(old);
        (old, new)
    }

    /// Sample the analysis-structure high-water mark: closed interval
    /// trees resident in the tool — exactly the population streaming
    /// retirement frees (batch mode never frees, so its peak is the
    /// final total). Open-segment state (record buffers, growing trees)
    /// is recording-side, identical across engines, and accounted in
    /// the overall `tool_bytes` metric instead.
    pub fn note_peak(&mut self) {
        if self.closed_bytes > self.peak_bytes {
            self.peak_bytes = self.closed_bytes;
        }
    }

    /// A segment will receive no further accesses: account its bytes
    /// and, in streaming mode, detach its trees for the analysis pool.
    /// Access-free segments retire on the spot. Callers must invoke this
    /// *after* the owning context's `cur_seg` moved on (or the context
    /// popped), so a retirement sweep triggered here never sees the
    /// segment as open.
    fn close_segment(&mut self, seg: SegId) {
        if self.segments[seg as usize].sync {
            return;
        }
        let bytes = {
            let s = &self.segments[seg as usize];
            s.reads.heap_bytes() + s.writes.heap_bytes()
        };
        self.closed_bytes += bytes;
        let mut throttle = false;
        if let Some(st) = self.stream.as_mut() {
            let s = &mut self.segments[seg as usize];
            if s.reads.is_empty() && s.writes.is_empty() {
                // nothing to analyze against: retire without an epoch
                st.retired_count += 1;
                self.live_segments -= 1;
            } else {
                let snap = Arc::new(SegSnapshot {
                    reads: std::mem::take(&mut s.reads),
                    writes: std::mem::take(&mut s.writes),
                });
                st.snapshots.insert(seg, snap);
                st.closed_unretired.push(seg);
                throttle = st.max_live > 0 && st.closed_unretired.len() > st.max_live;
            }
        }
        self.note_peak();
        if tg_obs::trace::enabled() {
            tg_obs::trace::counter(
                "closed_bytes",
                tg_obs::trace::PID_GUEST,
                tg_obs::trace::TID_RETIRE,
                self.closed_bytes,
            );
        }
        if throttle {
            self.maybe_retire();
            let st = self.stream.as_mut().unwrap();
            if st.closed_unretired.len() > st.max_live {
                st.throttle_waits += 1;
                let _bp = tg_obs::trace::host_span("backpressure");
                st.sink.wait_drained();
            }
        }
    }

    /// Streaming: are all of the task's join-relevant segments final?
    /// (`last_seg` set, and for detached tasks the fulfill segment too.)
    fn stream_task_complete(&self, t: TaskId) -> bool {
        let task = &self.tasks[t as usize];
        task.last_seg.is_some()
            && (task.flags & task_flags::DETACHED == 0 || task.fulfill_seg.is_some())
    }

    /// Register a join: the task's final (and fulfill) segment is
    /// ordered before `node`. Batch mode resolves these at finalize; the
    /// streaming engine also adds the edges *eagerly* so the per-epoch
    /// reachability snapshot matches the final graph. If the task is not
    /// yet complete, the join is parked and blocks retirement until it
    /// resolves ([`Self::stream_resolve_task`]).
    fn join_task_to(&mut self, t: TaskId, node: SegId) {
        self.last_to_seg.push((t, node));
        if self.stream.is_none() {
            return;
        }
        if self.stream_task_complete(t) {
            let (l, f) = {
                let task = &self.tasks[t as usize];
                (task.last_seg, task.fulfill_seg)
            };
            if let Some(l) = l {
                self.edge(l, node);
            }
            if let Some(f) = f {
                self.edge(f, node);
            }
        } else {
            self.stream.as_mut().unwrap().pending_joins.push((t, node));
        }
    }

    /// A task completed (or fulfilled): resolve parked joins and
    /// dependence successors now that its final segments are known.
    fn stream_resolve_task(&mut self, t: TaskId) {
        if self.stream.is_none() || !self.stream_task_complete(t) {
            return;
        }
        let (l, f) = {
            let task = &self.tasks[t as usize];
            (task.last_seg, task.fulfill_seg)
        };
        let st = self.stream.as_mut().unwrap();
        let mut joins: Vec<SegId> = Vec::new();
        st.pending_joins.retain(|&(pt, node)| {
            if pt == t {
                joins.push(node);
                false
            } else {
                true
            }
        });
        let mut succs: Vec<TaskId> = Vec::new();
        st.pending_deps.retain(|&(pred, succ)| {
            if pred == t {
                succs.push(succ);
                false
            } else {
                true
            }
        });
        for node in joins {
            if let Some(l) = l {
                self.edge(l, node);
            }
            if let Some(f) = f {
                self.edge(f, node);
            }
        }
        for sc in succs {
            if let Some(fs) = self.tasks[sc as usize].first_seg {
                if let Some(l) = l {
                    self.edge(l, fs);
                }
                if let Some(f) = f {
                    self.edge(f, fs);
                }
            }
        }
    }

    /// Streaming: retire every closed segment that can no longer race
    /// with any future segment, shipping them to the sink as one epoch.
    /// No-op in batch mode. Called at segment-closing sync points
    /// (`Tool::sync_point`) and by the backpressure throttle.
    ///
    /// **Frontier rule.** The frontier `F` is the set of graph nodes
    /// future segments can attach behind: every open segment (each
    /// context's `cur_seg`), the `create_seg` of spawned-but-unbegun
    /// tasks, the begin node of active regions whose team has not fully
    /// begun, and the current barrier node of active regions. A closed
    /// segment `A` retires iff `A` reaches every node of `F` — then any
    /// future segment `X` (which descends from some `f ∈ F`) satisfies
    /// `A ≺ X`, so the pair can never be a race. One relaxation: the
    /// master's pre-region segment is open but *dormant* during an
    /// active region; since its next out-edge is the post-region split
    /// whose target also descends from the region end node, "`A` ordered
    /// with it either way" suffices. Retirement is blocked entirely
    /// while a pending join/dependence is unresolved (edges with unknown
    /// placement). Closed segments never gain in-edges, so verdicts
    /// computed against the epoch's edge snapshot are final.
    pub fn maybe_retire(&mut self) {
        let Some(st) = self.stream.as_ref() else { return };
        if st.closed_unretired.is_empty()
            || !st.pending_joins.is_empty()
            || !st.pending_deps.is_empty()
        {
            return;
        }
        let mut strict: Vec<SegId> = Vec::new();
        let mut relaxed: Vec<SegId> = Vec::new();
        let mut master_pre: HashSet<SegId> = HashSet::new();
        for r in &self.regions {
            if !r.active {
                continue;
            }
            master_pre.insert(r.master_pre);
            if r.implicit_begun < r.team {
                strict.push(r.begin_node);
            }
            if let Some(b) = r.cur_barrier_node {
                strict.push(b);
            }
        }
        for stack in self.ctx.values() {
            for c in stack {
                if master_pre.contains(&c.cur_seg) {
                    relaxed.push(c.cur_seg);
                } else {
                    strict.push(c.cur_seg);
                }
            }
        }
        for &t in &st.spawned_unbegun {
            if let Some(cs) = self.tasks[t as usize].create_seg {
                strict.push(cs);
            }
        }
        strict.sort_unstable();
        strict.dedup();
        relaxed.sort_unstable();
        relaxed.dedup();
        relaxed.retain(|s| !strict.contains(s));
        let total = (strict.len() + relaxed.len()) as u32;

        let n = self.segments.len();
        let mut fwd: Vec<Vec<SegId>> = vec![Vec::new(); n];
        let mut rev: Vec<Vec<SegId>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            fwd[a as usize].push(b);
            rev[b as usize].push(a);
        }
        // Per frontier node: mark the satisfying set (ancestors; for the
        // relaxed node also descendants) and count how many frontier
        // nodes each graph node satisfies.
        fn mark_dir(
            adj: &[Vec<SegId>],
            seed: Vec<SegId>,
            stamp: u32,
            sat: &mut [u32],
            mark: &mut [u32],
        ) {
            let mut q = seed;
            while let Some(u) = q.pop() {
                if mark[u as usize] == stamp {
                    continue;
                }
                mark[u as usize] = stamp;
                sat[u as usize] += 1;
                for &v in &adj[u as usize] {
                    if mark[v as usize] != stamp {
                        q.push(v);
                    }
                }
            }
        }
        let mut sat = vec![0u32; n];
        let mut mark = vec![0u32; n];
        let mut stamp = 0u32;
        for &fnode in &strict {
            stamp += 1;
            mark_dir(&rev, vec![fnode], stamp, &mut sat, &mut mark);
        }
        for &fnode in &relaxed {
            stamp += 1;
            mark_dir(&rev, vec![fnode], stamp, &mut sat, &mut mark);
            // descendants, seeded past the (already marked) node itself;
            // in a DAG they are disjoint from its ancestors, so the
            // shared stamp cannot double-count
            mark_dir(&fwd, fwd[fnode as usize].clone(), stamp, &mut sat, &mut mark);
        }

        let st = self.stream.as_ref().unwrap();
        let retire: Vec<SegId> =
            st.closed_unretired.iter().copied().filter(|&s| sat[s as usize] == total).collect();
        if retire.is_empty() {
            return;
        }
        self.emit_epoch(retire);
    }

    /// Package the retire set (plus every other closed-unretired segment
    /// as live context) into an epoch, ship it, and free the retired
    /// trees on the builder side.
    fn emit_epoch(&mut self, retire: Vec<SegId>) {
        let retire_set: HashSet<SegId> = retire.iter().copied().collect();
        let st = self.stream.as_mut().unwrap();
        st.epoch_seq += 1;
        let mut segs = Vec::with_capacity(st.closed_unretired.len());
        for &id in &st.closed_unretired {
            let s = &self.segments[id as usize];
            segs.push(EpochSeg {
                id,
                retired: retire_set.contains(&id),
                thread: s.thread,
                start_sp: s.start_sp,
                stack_low: s.stack_low,
                stack_high: s.stack_high,
                tls_base: s.tls_base,
                tls_size: s.tls_size,
                tls_gen: s.tls_gen,
                locks: s.locks.clone(),
                task: s.task,
                mutex_objs: s
                    .task
                    .map(|t| self.tasks[t as usize].mutex_objs.clone())
                    .unwrap_or_default(),
                guard_mask: s.guard_mask,
                trees: st.snapshots[&id].clone(),
            });
        }
        let epoch = Epoch {
            seq: st.epoch_seq,
            n_nodes: self.segments.len() as u32,
            edges: Arc::new(self.edges.clone()),
            segs,
        };
        for &id in &retire {
            let snap = st.snapshots.remove(&id).unwrap();
            self.closed_bytes -= snap.heap_bytes();
        }
        st.closed_unretired.retain(|id| !retire_set.contains(id));
        st.retired_count += retire.len() as u64;
        st.any_retired = true;
        self.live_segments -= retire.len() as u64;
        let st = self.stream.as_mut().unwrap();
        if tg_obs::trace::enabled() {
            tg_obs::trace::instant(
                format!("epoch {}", st.epoch_seq),
                tg_obs::trace::PID_GUEST,
                tg_obs::trace::TID_RETIRE,
                vec![("retired", retire.len() as u64), ("live", self.live_segments)],
            );
        }
        st.sink.submit(epoch);
    }

    // ---- events ----

    pub fn parallel_begin(&mut self, meta: &ThreadMeta, nthreads: u64) -> u64 {
        self.ensure_ctx(meta);
        let master_seg = self.top(meta).cur_seg;
        let begin = self.new_segment(meta, None, "region-begin", Vec::new());
        let end = self.new_segment(meta, None, "region-end", Vec::new());
        self.edge(master_seg, begin);
        let rid = self.regions.len() as u32;
        self.regions.push(RegionState {
            begin_node: begin,
            end_node: end,
            team: nthreads,
            barrier_arrived: 0,
            cur_barrier_node: None,
            tasks_created: Vec::new(),
            active: true,
            master_pre: master_seg,
            implicit_begun: 0,
        });
        self.cur_region = Some(rid);
        rid as u64
    }

    pub fn parallel_end(&mut self, meta: &ThreadMeta, region: u64) {
        let (end, created) = {
            let Some(r) = self.regions.get(region as usize) else { return };
            (r.end_node, r.tasks_created.clone())
        };
        // the implicit barrier at region end completes every task
        for t in created {
            self.join_task_to(t, end);
        }
        if let Some(r) = self.regions.get_mut(region as usize) {
            r.active = false;
        }
        self.cur_region = None;
        let (_, new) = self.split(meta, "after-parallel");
        self.edge(end, new);
    }

    pub fn implicit_task_begin(&mut self, meta: &ThreadMeta, region: u64, _index: u64) {
        let Some(r) = self.regions.get(region as usize) else { return };
        let begin = r.begin_node;
        let task = self.new_task(0, 0, None, true);
        let seg = self.new_segment(meta, Some(task), "implicit", Vec::new());
        self.tasks[task as usize].first_seg = Some(seg);
        self.edge(begin, seg);
        if let Some(r) = self.regions.get_mut(region as usize) {
            r.implicit_begun += 1;
        }
        self.ctx.entry(meta.tid).or_default().push(ExecCtx {
            task,
            cur_seg: seg,
            locks: Vec::new(),
            group: None,
            base_sp: meta.sp,
            buf: AccessBuf::default(),
        });
    }

    pub fn implicit_task_end(&mut self, meta: &ThreadMeta, region: u64, _index: u64) {
        let end_node = self.regions.get(region as usize).map(|r| r.end_node);
        let mut done: Option<(TaskId, SegId)> = None;
        if let Some(stack) = self.ctx.get_mut(&meta.tid) {
            if let Some(mut c) = stack.pop() {
                flush_buf(&mut self.segments, &mut c);
                self.tasks[c.task as usize].last_seg = Some(c.cur_seg);
                if let Some(end) = end_node {
                    self.edge(c.cur_seg, end);
                }
                done = Some((c.task, c.cur_seg));
            }
        }
        if let Some((t, s)) = done {
            self.stream_resolve_task(t);
            self.close_segment(s);
        }
    }

    pub fn task_create(&mut self, meta: &ThreadMeta, flags: u64, fn_addr: u64) -> u64 {
        self.ensure_ctx(meta);
        let flags = if self.user_deferrable {
            flags & !(task_flags::UNDEFERRED | task_flags::INCLUDED)
        } else if self.ignore_undeferred {
            flags & !task_flags::UNDEFERRED
        } else {
            flags
        };
        let (parent, group) = {
            let c = self.ctx.get_mut(&meta.tid).unwrap().last_mut().unwrap();
            (c.task, c.group)
        };
        let task = self.new_task(flags, fn_addr, Some(parent), false);
        if let Some(g) = group {
            self.taskgroups[g as usize].members.push(task);
        }
        if let Some(r) = self.cur_region {
            self.regions[r as usize].tasks_created.push(task);
        }
        task as u64
    }

    /// The task becomes runnable: everything the creator did so far
    /// (payload copies, dependence registration) happens-before the
    /// child; the creator's continuation is concurrent with it.
    pub fn task_spawn(&mut self, meta: &ThreadMeta, task: u64) {
        let task = task as TaskId;
        let create_seg = self.top(meta).cur_seg;
        self.tasks[task as usize].create_seg = Some(create_seg);
        if let Some(st) = self.stream.as_mut() {
            st.spawned_unbegun.insert(task);
        }
        self.split(meta, "after-spawn");
    }

    pub fn task_dep(&mut self, task: u64, addr: u64, _len: u64, kind: DepKind) {
        let task = task as TaskId;
        let parent = if self.global_dep_scope {
            None
        } else {
            self.tasks.get(task as usize).and_then(|t| t.parent)
        };
        let e = self.deps.entry((parent, addr)).or_default();
        let mut preds: Vec<TaskId> = Vec::new();
        match kind {
            DepKind::In => {
                preds.extend(&e.writers);
                e.readers.push(task);
            }
            DepKind::Out | DepKind::Inout => {
                preds.extend(&e.writers);
                preds.extend(&e.readers);
                e.writers = vec![task];
                e.readers.clear();
                e.set_mode = false;
                e.basew.clear();
                e.baser.clear();
            }
            DepKind::Inoutset | DepKind::Mutexinoutset => {
                // entering set mode — or starting a NEW set generation
                // when readers arrived since the current set formed
                // (inoutset behaves like `out` w.r.t. `in`)
                if !e.set_mode || !e.readers.is_empty() {
                    e.basew = std::mem::take(&mut e.writers);
                    e.baser = std::mem::take(&mut e.readers);
                    e.set_mode = true;
                }
                preds.extend(&e.basew);
                preds.extend(&e.baser);
                e.writers.push(task);
            }
        }
        if kind == DepKind::Mutexinoutset {
            insert_sorted(&mut self.tasks[task as usize].mutex_objs, addr);
        }
        let t = &mut self.tasks[task as usize];
        for p in preds {
            if p != task && !t.dep_preds.contains(&p) {
                t.dep_preds.push(p);
            }
        }
    }

    pub fn task_begin(&mut self, meta: &ThreadMeta, task: u64) {
        let task = task as TaskId;
        let group = {
            // executing task inherits its creator's taskgroup (descendant
            // tasks extend the group)
            self.task_group_of(task)
        };
        let seg = self.new_segment(meta, Some(task), "task", Vec::new());
        self.tasks[task as usize].first_seg = Some(seg);
        if self.stream.is_some() {
            self.stream.as_mut().unwrap().spawned_unbegun.remove(&task);
            // eager spawn and dependence in-edges (batch defers these to
            // finalize): the first segment is brand new, so adding them
            // now keeps epoch reachability equal to the final graph
            if let Some(c) = self.tasks[task as usize].create_seg {
                self.edge(c, seg);
            }
            let preds = self.tasks[task as usize].dep_preds.clone();
            for p in preds {
                if self.stream_task_complete(p) {
                    let (pl, pf) = {
                        let pt = &self.tasks[p as usize];
                        (pt.last_seg, pt.fulfill_seg)
                    };
                    if let Some(pl) = pl {
                        self.edge(pl, seg);
                    }
                    if let Some(pf) = pf {
                        self.edge(pf, seg);
                    }
                } else {
                    self.stream.as_mut().unwrap().pending_deps.push((p, task));
                }
            }
        }
        self.ctx.entry(meta.tid).or_default().push(ExecCtx {
            task,
            cur_seg: seg,
            locks: Vec::new(),
            group,
            base_sp: meta.sp,
            buf: AccessBuf::default(),
        });
    }

    fn task_group_of(&self, _task: TaskId) -> Option<u32> {
        // group membership is recorded at creation; execution context
        // group is only used for *new* tasks created inside this task,
        // which inherit through this value.
        None
    }

    pub fn task_end(&mut self, meta: &ThreadMeta, task: u64) {
        let task = task as TaskId;
        let mut done: Option<SegId> = None;
        if let Some(stack) = self.ctx.get_mut(&meta.tid) {
            if let Some(mut c) = stack.pop() {
                flush_buf(&mut self.segments, &mut c);
                self.tasks[c.task as usize].last_seg = Some(c.cur_seg);
                done = Some(c.cur_seg);
            }
        }
        self.stream_resolve_task(task);
        if let Some(s) = done {
            self.close_segment(s);
        }
        // Inline (undeferred/included) execution orders the parent's
        // continuation after the child.
        let flags = self.tasks[task as usize].flags;
        let inline = flags & (task_flags::UNDEFERRED | task_flags::INCLUDED) != 0;
        if inline {
            let same_parent = self
                .ctx
                .get(&meta.tid)
                .and_then(|s| s.last())
                .map(|c| Some(c.task) == self.tasks[task as usize].parent)
                .unwrap_or(false);
            if same_parent {
                let child_last = self.tasks[task as usize].last_seg;
                let (_, new) = self.split(meta, "after-inline-task");
                if let Some(cl) = child_last {
                    self.edge(cl, new);
                }
            }
        }
    }

    /// `omp_fulfill_event` on a detached task: the fulfilling segment
    /// happens-before everything joining on the task. The fulfiller's
    /// segment splits so only its pre-fulfill accesses are ordered.
    pub fn task_fulfill(&mut self, meta: &ThreadMeta, task: u64) {
        self.ensure_ctx(meta);
        let (fulfill_seg, _) = self.split(meta, "after-fulfill");
        if let Some(t) = self.tasks.get_mut(task as usize) {
            t.fulfill_seg = Some(fulfill_seg);
        }
        if (task as usize) < self.tasks.len() {
            self.stream_resolve_task(task as TaskId);
        }
    }

    pub fn taskwait(&mut self, meta: &ThreadMeta) {
        self.ensure_ctx(meta);
        let task = self.top(meta).task;
        let children = self.tasks[task as usize].children.clone();
        let (_, new) = self.split(meta, "after-taskwait");
        for ch in children {
            self.join_task_to(ch, new);
        }
    }

    pub fn taskgroup_begin(&mut self, meta: &ThreadMeta) {
        self.ensure_ctx(meta);
        let parent = self.top(meta).group;
        let gid = self.taskgroups.len() as u32;
        self.taskgroups.push(TaskgroupState { members: Vec::new(), parent });
        self.top(meta).group = Some(gid);
    }

    pub fn taskgroup_end(&mut self, meta: &ThreadMeta) {
        self.ensure_ctx(meta);
        let Some(gid) = self.top(meta).group else {
            self.split(meta, "after-taskgroup");
            return;
        };
        let members = self.taskgroups[gid as usize].members.clone();
        let parent = self.taskgroups[gid as usize].parent;
        let (_, new) = self.split(meta, "after-taskgroup");
        for m in members {
            self.join_task_to(m, new);
            // descendants of members also joined the group at creation
            self.collect_descendants(m, new);
        }
        self.top(meta).group = parent;
    }

    fn collect_descendants(&mut self, task: TaskId, join: SegId) {
        let children = self.tasks[task as usize].children.clone();
        for ch in children {
            self.join_task_to(ch, join);
            self.collect_descendants(ch, join);
        }
    }

    pub fn barrier(&mut self, meta: &ThreadMeta, region: u64) {
        self.ensure_ctx(meta);
        if self.regions.get(region as usize).is_none() || self.cur_region.is_none() {
            // solo barrier outside a region: a plain split
            self.split(meta, "after-barrier");
            return;
        }
        let r = region as usize;
        let node = match self.regions[r].cur_barrier_node {
            Some(n) => n,
            None => {
                let n = self.new_segment(meta, None, "barrier", Vec::new());
                self.regions[r].cur_barrier_node = Some(n);
                n
            }
        };
        self.flush_top(meta.tid);
        let cur = self.top(meta).cur_seg;
        self.edge(cur, node);
        let task = self.top(meta).task;
        let locks = self.top(meta).locks.clone();
        let base_sp = self.top(meta).base_sp;
        let meta = &ThreadMeta { sp: base_sp, ..*meta };
        let new = self.new_segment(meta, Some(task), "after-barrier", locks);
        self.edge(node, new);
        self.top(meta).cur_seg = new;
        self.close_segment(cur);
        // the barrier completes every task generated in the region so far
        for t in self.regions[r].tasks_created.clone() {
            self.join_task_to(t, node);
        }
        self.regions[r].barrier_arrived += 1;
        if self.regions[r].barrier_arrived >= self.regions[r].team {
            self.regions[r].barrier_arrived = 0;
            self.regions[r].cur_barrier_node = None;
        }
    }

    pub fn critical_enter(&mut self, meta: &ThreadMeta, lock: u64) {
        self.ensure_ctx(meta);
        self.flush_top(meta.tid);
        insert_sorted(&mut self.top(meta).locks, lock);
        let locks = self.top(meta).locks.clone();
        let task = self.top(meta).task;
        let old = self.top(meta).cur_seg;
        let base_sp = self.top(meta).base_sp;
        let meta = &ThreadMeta { sp: base_sp, ..*meta };
        let new = self.new_segment(meta, Some(task), "critical", locks);
        self.edge(old, new);
        self.top(meta).cur_seg = new;
        self.close_segment(old);
    }

    pub fn critical_exit(&mut self, meta: &ThreadMeta, lock: u64) {
        self.ensure_ctx(meta);
        self.top(meta).locks.retain(|&l| l != lock);
        self.split(meta, "after-critical");
    }

    pub fn record_access(&mut self, meta: &ThreadMeta, addr: u64, size: u64, write: bool) {
        self.record_access_masked(meta, addr, size, write, 0);
    }

    /// [`Self::record_access`] with a static guard mask attached: bit
    /// *i* set means static analysis proved lock *i* of its lock
    /// universe is held across this access. The mask is AND-folded into
    /// the current segment's [`Segment::guard_mask`]; `0` (the plain
    /// `record_access` default) marks the access — and therefore the
    /// whole segment — unproven. Sound in bulk-ingestion mode too: the
    /// buffer is flushed before every segment split, so buffered
    /// accesses always land in the segment that was current here.
    pub fn record_access_masked(
        &mut self,
        meta: &ThreadMeta,
        addr: u64,
        size: u64,
        write: bool,
        mask: u64,
    ) {
        self.ensure_ctx(meta);
        let bulk = self.bulk;
        let c = self.ctx.get_mut(&meta.tid).unwrap().last_mut().unwrap();
        let seg = c.cur_seg;
        if bulk {
            // hot path: append to the context's flat buffer; the
            // interval trees are built in bulk at segment close
            c.buf.push(addr, addr + size, write);
        } else {
            let s = &mut self.segments[seg as usize];
            if write {
                s.writes.insert(addr, addr + size);
            } else {
                s.reads.insert(addr, addr + size);
            }
        }
        self.segments[seg as usize].guard_mask &= mask;
    }

    /// Resolve deferred edges and produce the final graph.
    pub fn finalize(self) -> SegmentGraph {
        self.finalize_with_stats().0
    }

    /// [`Self::finalize`], also returning memory and retirement
    /// statistics. In streaming mode this additionally emits one final
    /// epoch over the completed edge list — the frontier is empty, so
    /// every remaining closed segment retires — and drops the epoch
    /// sink, letting a [`crate::stream::Pipeline`] finish.
    pub fn finalize_with_stats(mut self) -> (SegmentGraph, GraphMemStats) {
        // drain every context's pending accesses (bulk-ingestion mode)
        for stack in self.ctx.values_mut() {
            for c in stack.iter_mut() {
                flush_buf(&mut self.segments, c);
            }
        }
        // any context still open: its current segment is the task's last
        let open: Vec<(TaskId, SegId)> =
            self.ctx.values().flatten().map(|c| (c.task, c.cur_seg)).collect();
        self.ctx.clear();
        for (t, s) in open {
            if self.tasks[t as usize].last_seg.is_none() {
                self.tasks[t as usize].last_seg = Some(s);
            }
            self.close_segment(s);
        }
        // spawn edges: creator segment → first segment
        let mut extra: Vec<(SegId, SegId)> = Vec::new();
        for t in &self.tasks {
            if let (Some(c), Some(f)) = (t.create_seg, t.first_seg) {
                extra.push((c, f));
            }
            if let Some(f) = t.first_seg {
                for &p in &t.dep_preds {
                    let pred = &self.tasks[p as usize];
                    if let Some(pl) = pred.last_seg {
                        extra.push((pl, f));
                    }
                    if let Some(pf) = pred.fulfill_seg {
                        extra.push((pf, f));
                    }
                }
            }
        }
        for (t, s) in &self.last_to_seg {
            let task = &self.tasks[*t as usize];
            if let Some(l) = task.last_seg {
                extra.push((l, *s));
            }
            if let Some(f) = task.fulfill_seg {
                extra.push((f, *s));
            }
        }
        self.edges.extend(extra);
        self.edges.sort_unstable();
        self.edges.dedup();
        // final retirement epoch: nothing can race with the future now
        if let Some(st) = self.stream.as_mut() {
            st.pending_joins.clear();
            st.pending_deps.clear();
            st.spawned_unbegun.clear();
            let remaining = st.closed_unretired.clone();
            if !remaining.is_empty() {
                self.emit_epoch(remaining);
            }
        }
        let stats = GraphMemStats {
            peak_live_segments: self.peak_live_segments,
            peak_tool_bytes: self.peak_bytes,
            epochs: self.stream.as_ref().map_or(0, |st| st.epoch_seq),
            retired_segments: self.stream.as_ref().map_or(0, |st| st.retired_count),
            throttle_waits: self.stream.as_ref().map_or(0, |st| st.throttle_waits),
            late_root_ctxs: self.stream.as_ref().map_or(0, |st| st.late_roots),
        };
        // drop the sink before returning: a bounded-channel pipeline
        // needs all senders gone to see end-of-stream
        drop(self.stream.take());
        let g = SegmentGraph { segments: self.segments, tasks: self.tasks, edges: self.edges };
        debug_assert!(g.validate().is_empty(), "{:?}", g.validate());
        (g, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::Reachability;

    fn meta(tid: Tid) -> ThreadMeta {
        ThreadMeta {
            tid,
            sp: 0x7000_0000,
            stack_low: 0x6000_0000,
            stack_high: 0x7000_0100,
            tls_base: 0x100,
            tls_size: 64,
            tls_gen: 0,
        }
    }

    fn seg_of_task(g: &SegmentGraph, t: TaskId) -> SegId {
        g.tasks[t as usize].first_seg.unwrap()
    }

    /// create + spawn in one step (most tests need no dep window)
    fn spawn_task(b: &mut GraphBuilder, m: &ThreadMeta, fn_addr: u64) -> u64 {
        let t = b.task_create(m, 0, fn_addr);
        b.task_spawn(m, t);
        t
    }

    #[test]
    fn two_independent_tasks_are_unordered() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t1 = spawn_task(&mut b, &m, 0x100) as TaskId;
        let t2 = spawn_task(&mut b, &m, 0x200) as TaskId;
        b.task_begin(&m, t1 as u64);
        b.record_access(&m, 0x5000, 8, true);
        b.task_end(&m, t1 as u64);
        b.task_begin(&m, t2 as u64);
        b.record_access(&m, 0x5000, 8, true);
        b.task_end(&m, t2 as u64);
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let s1 = seg_of_task(&g, t1);
        let s2 = seg_of_task(&g, t2);
        assert!(!r.ordered(s1, s2), "independent tasks must stay unordered");
    }

    #[test]
    fn spawn_orders_creator_before_child_but_not_continuation() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        b.record_access(&m, 0x10, 8, true); // root segment access
        let root_seg = 0;
        let t1 = spawn_task(&mut b, &m, 0x100);
        b.record_access(&m, 0x20, 8, true); // continuation access
        b.task_begin(&m, t1);
        b.task_end(&m, t1);
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let child = g.tasks[t1 as usize].first_seg.unwrap();
        // creator's pre-spawn segment precedes the child...
        assert!(r.reaches(root_seg, child));
        // ...but the continuation segment does not (nor vice versa)
        let cont = g.segments.iter().find(|s| s.kind == "after-spawn").unwrap().id;
        assert!(!r.ordered(cont, child));
    }

    #[test]
    fn taskwait_joins_children() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t1 = spawn_task(&mut b, &m, 0x100);
        b.task_begin(&m, t1);
        b.record_access(&m, 0x99, 8, true);
        b.task_end(&m, t1);
        b.taskwait(&m);
        b.record_access(&m, 0x99, 8, true);
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let child = g.tasks[t1 as usize].first_seg.unwrap();
        let after = g.segments.iter().find(|s| s.kind == "after-taskwait").unwrap().id;
        assert!(r.reaches(child, after), "taskwait joins the child");
    }

    #[test]
    fn dependences_order_sibling_tasks() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t1 = b.task_create(&m, 0, 0x100);
        b.task_dep(t1, 0xAAAA, 8, DepKind::Out);
        b.task_spawn(&m, t1);
        let t2 = b.task_create(&m, 0, 0x200);
        b.task_dep(t2, 0xAAAA, 8, DepKind::In);
        b.task_spawn(&m, t2);
        b.task_begin(&m, t1);
        b.task_end(&m, t1);
        b.task_begin(&m, t2);
        b.task_end(&m, t2);
        let g = b.finalize();
        let r = Reachability::compute(&g);
        assert!(r.reaches(
            g.tasks[t1 as usize].first_seg.unwrap(),
            g.tasks[t2 as usize].first_seg.unwrap()
        ));
    }

    #[test]
    fn non_sibling_dependences_do_not_synchronize() {
        // DRB173: depend clauses on tasks with different parents
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let p1 = spawn_task(&mut b, &m, 0x100);
        let p2 = spawn_task(&mut b, &m, 0x200);
        b.task_begin(&m, p1);
        let c1 = b.task_create(&m, 0, 0x110);
        b.task_dep(c1, 0xBBBB, 8, DepKind::Out);
        b.task_spawn(&m, c1);
        b.task_begin(&m, c1);
        b.task_end(&m, c1);
        b.task_end(&m, p1);
        b.task_begin(&m, p2);
        let c2 = b.task_create(&m, 0, 0x210);
        b.task_dep(c2, 0xBBBB, 8, DepKind::Out);
        b.task_spawn(&m, c2);
        b.task_begin(&m, c2);
        b.task_end(&m, c2);
        b.task_end(&m, p2);
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let s1 = g.tasks[c1 as usize].first_seg.unwrap();
        let s2 = g.tasks[c2 as usize].first_seg.unwrap();
        assert!(
            !r.ordered(s1, s2),
            "deps are scoped to siblings; non-sibling tasks stay concurrent"
        );
    }

    #[test]
    fn inoutset_members_are_mutually_unordered_but_follow_out() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t0 = b.task_create(&m, 0, 0x100);
        b.task_dep(t0, 0xCC, 8, DepKind::Out);
        b.task_spawn(&m, t0);
        let t1 = b.task_create(&m, 0, 0x200);
        b.task_dep(t1, 0xCC, 8, DepKind::Inoutset);
        b.task_spawn(&m, t1);
        let t2 = b.task_create(&m, 0, 0x300);
        b.task_dep(t2, 0xCC, 8, DepKind::Inoutset);
        b.task_spawn(&m, t2);
        let t3 = b.task_create(&m, 0, 0x400);
        b.task_dep(t3, 0xCC, 8, DepKind::In);
        b.task_spawn(&m, t3);
        for t in [t0, t1, t2, t3] {
            b.task_begin(&m, t);
            b.task_end(&m, t);
        }
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let s = |t: u64| g.tasks[t as usize].first_seg.unwrap();
        assert!(r.reaches(s(t0), s(t1)));
        assert!(r.reaches(s(t0), s(t2)));
        assert!(!r.ordered(s(t1), s(t2)), "set members unordered");
        assert!(r.reaches(s(t1), s(t3)));
        assert!(r.reaches(s(t2), s(t3)));
    }

    #[test]
    fn mutexinoutset_tags_tasks_with_mutex_objects() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t1 = b.task_create(&m, 0, 0x100);
        b.task_dep(t1, 0xDD, 8, DepKind::Mutexinoutset);
        b.task_spawn(&m, t1);
        let t2 = b.task_create(&m, 0, 0x200);
        b.task_dep(t2, 0xDD, 8, DepKind::Mutexinoutset);
        b.task_spawn(&m, t2);
        for t in [t1, t2] {
            b.task_begin(&m, t);
            b.task_end(&m, t);
        }
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let s1 = g.tasks[t1 as usize].first_seg.unwrap();
        let s2 = g.tasks[t2 as usize].first_seg.unwrap();
        assert!(!r.ordered(s1, s2), "members unordered (mutual exclusion only)");
        assert_eq!(g.tasks[t1 as usize].mutex_objs, vec![0xDD]);
        assert_eq!(g.tasks[t2 as usize].mutex_objs, vec![0xDD]);
    }

    #[test]
    fn parallel_region_rule_eq1() {
        // all segments of region 1 precede all segments of region 2
        let mut b = GraphBuilder::new();
        let m0 = meta(0);
        let m1 = meta(1);
        let r1 = b.parallel_begin(&m0, 2);
        b.implicit_task_begin(&m0, r1, 0);
        b.implicit_task_begin(&m1, r1, 1);
        b.record_access(&m1, 0x42, 8, true);
        let r1_seg = b.ctx[&1].last().unwrap().cur_seg;
        b.implicit_task_end(&m0, r1, 0);
        b.implicit_task_end(&m1, r1, 1);
        b.parallel_end(&m0, r1);

        let r2 = b.parallel_begin(&m0, 2);
        b.implicit_task_begin(&m0, r2, 0);
        b.implicit_task_begin(&m1, r2, 1);
        let r2_seg = b.ctx[&1].last().unwrap().cur_seg;
        b.implicit_task_end(&m0, r2, 0);
        b.implicit_task_end(&m1, r2, 1);
        b.parallel_end(&m0, r2);

        let g = b.finalize();
        let r = Reachability::compute(&g);
        assert!(
            r.reaches(r1_seg, r2_seg),
            "Eq. 1: p1 ≺ p2 ⇒ every segment of p1 ≺ every segment of p2"
        );
    }

    #[test]
    fn barrier_orders_team_segments() {
        let mut b = GraphBuilder::new();
        let m0 = meta(0);
        let m1 = meta(1);
        let r = b.parallel_begin(&m0, 2);
        b.implicit_task_begin(&m0, r, 0);
        b.implicit_task_begin(&m1, r, 1);
        b.record_access(&m0, 0x10, 8, true);
        let pre0 = b.ctx[&0].last().unwrap().cur_seg;
        b.barrier(&m0, r);
        b.barrier(&m1, r);
        let post1 = b.ctx[&1].last().unwrap().cur_seg;
        b.record_access(&m1, 0x10, 8, true);
        let g = b.finalize();
        let rc = Reachability::compute(&g);
        assert!(rc.reaches(pre0, post1), "pre-barrier ≺ post-barrier across threads");
    }

    #[test]
    fn two_barriers_create_distinct_sync_nodes() {
        let mut b = GraphBuilder::new();
        let m0 = meta(0);
        let m1 = meta(1);
        let r = b.parallel_begin(&m0, 2);
        b.implicit_task_begin(&m0, r, 0);
        b.implicit_task_begin(&m1, r, 1);
        b.barrier(&m0, r);
        b.barrier(&m1, r);
        b.barrier(&m0, r);
        b.barrier(&m1, r);
        let g = b.finalize();
        let n_barriers = g.segments.iter().filter(|s| s.kind == "barrier").count();
        assert_eq!(n_barriers, 2);
    }

    #[test]
    fn critical_sections_tag_segments_with_locks() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        b.critical_enter(&m, 7);
        b.record_access(&m, 0x77, 8, true);
        let in_crit = b.ctx[&0].last().unwrap().cur_seg;
        b.critical_exit(&m, 7);
        b.record_access(&m, 0x88, 8, true);
        let after = b.ctx[&0].last().unwrap().cur_seg;
        let g = b.finalize();
        assert_eq!(g.segments[in_crit as usize].locks, vec![7]);
        assert!(g.segments[after as usize].locks.is_empty());
    }

    #[test]
    fn taskgroup_joins_descendants() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        b.taskgroup_begin(&m);
        let t1 = spawn_task(&mut b, &m, 0x100);
        b.task_begin(&m, t1);
        // child created inside the member task (descendant)
        let t2 = spawn_task(&mut b, &m, 0x110);
        b.task_begin(&m, t2);
        b.record_access(&m, 0x5A, 8, true);
        b.task_end(&m, t2);
        b.task_end(&m, t1);
        b.taskgroup_end(&m);
        b.record_access(&m, 0x5A, 8, true);
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let desc = g.tasks[t2 as usize].first_seg.unwrap();
        let after = g.segments.iter().rfind(|s| s.kind == "after-taskgroup").unwrap().id;
        assert!(r.reaches(desc, after), "taskgroup waits for descendants");
    }

    #[test]
    fn user_deferrable_strips_inline_flags() {
        let mut b = GraphBuilder::new();
        b.set_user_deferrable(true);
        let m = meta(0);
        let t = b.task_create(&m, task_flags::INCLUDED, 0x100);
        b.task_spawn(&m, t);
        b.task_begin(&m, t);
        b.record_access(&m, 0x123, 8, true);
        b.task_end(&m, t);
        b.record_access(&m, 0x123, 8, true);
        let g = b.finalize();
        let r = Reachability::compute(&g);
        let child = g.tasks[t as usize].first_seg.unwrap();
        let cont = g.segments.iter().find(|s| s.kind == "after-spawn").unwrap().id;
        assert!(!r.ordered(child, cont), "annotated deferrable: no inline continuation edge");

        // without the annotation, included tasks order the continuation
        let mut b2 = GraphBuilder::new();
        let t = b2.task_create(&m, task_flags::INCLUDED, 0x100);
        b2.task_spawn(&m, t);
        b2.task_begin(&m, t);
        b2.task_end(&m, t);
        b2.record_access(&m, 0x123, 8, true);
        let g2 = b2.finalize();
        let r2 = Reachability::compute(&g2);
        let child = g2.tasks[t as usize].first_seg.unwrap();
        let cont = g2.segments.iter().find(|s| s.kind == "after-inline-task").unwrap().id;
        assert!(r2.reaches(child, cont));
    }

    #[test]
    fn dot_export_mentions_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let m = meta(0);
        let t = spawn_task(&mut b, &m, 0x100);
        b.task_begin(&m, t);
        b.task_end(&m, t);
        let g = b.finalize();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        assert!(dot.contains("task"));
    }
}
